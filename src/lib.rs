//! # Darwin — adaptive rule discovery for labeling text data
//!
//! A Rust reproduction of *"Adaptive Rule Discovery for Labeling Text Data"*
//! (Galhotra, Golshan, Tan — VLDB/SIGMOD 2021). Darwin interactively
//! discovers labeling heuristics over a text corpus: starting from a single
//! seed rule, it proposes candidate rules drawn from a context-free rule
//! grammar, asks an oracle YES/NO questions about them, and accumulates a
//! set of precise, high-coverage rules for weak supervision.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`text`] — tokenizer, POS tagger, dependency parser, embeddings
//! * [`grammar`] — TokensRegex and TreeMatch heuristic grammars
//! * [`index`] — derivation sketches and the trie index (paper §3.1)
//! * [`classifier`] — from-scratch Kim-CNN and logistic regression
//! * [`labelmodel`] — Snorkel-style generative de-noising
//! * [`datasets`] — synthetic versions of the five evaluation corpora
//! * [`wire`] — the versioned wire protocol and transports for
//!   out-of-process shard, oracle and classifier workers
//! * [`core`] — the Darwin pipeline: candidate generation, hierarchy,
//!   LocalSearch/UniversalSearch/HybridSearch traversals, oracles
//! * [`baselines`] — Snuba, active learning, keyword sampling, HighP/HighC
//! * [`eval`] — metrics, curves and report rendering
//!
//! ## Quickstart
//!
//! ```
//! use darwin::prelude::*;
//!
//! // A tiny corpus (Example 1 of the paper).
//! let corpus = Corpus::from_texts([
//!     "What is the best way to get to SFO airport?",
//!     "Is there a bart from SFO to the hotel?",
//!     "What is the best way to check in there?",
//!     "Is Uber the fastest way to get to the airport?",
//!     "Would Uber Eats be the fastest way to order?",
//!     "What is the best way to order food from you?",
//! ]);
//! let labels = vec![true, true, false, true, false, false];
//!
//! let index = IndexSet::build(&corpus, &IndexConfig::small());
//! let seed = Heuristic::phrase(&corpus, "best way to get").unwrap();
//! let mut oracle = GroundTruthOracle::new(&labels, 0.8);
//! let cfg = DarwinConfig { budget: 5, ..DarwinConfig::fast() };
//! let run = Darwin::new(&corpus, &index, cfg).run(Seed::Rule(seed), &mut oracle);
//! assert!(!run.accepted.is_empty());
//! ```

pub use darwin_baselines as baselines;
pub use darwin_classifier as classifier;
pub use darwin_core as core;
pub use darwin_datasets as datasets;
pub use darwin_eval as eval;
pub use darwin_grammar as grammar;
pub use darwin_index as index;
pub use darwin_labelmodel as labelmodel;
pub use darwin_text as text;
pub use darwin_wire as wire;

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use darwin_classifier::{ClassifierKind, TextClassifier};
    pub use darwin_core::{
        AsyncOracle, BatchPolicy, CostModel, Darwin, DarwinConfig, Fanout, GroundTruthOracle,
        Immediate, Oracle, QuestionId, RunResult, SampledAnnotatorOracle, Seed, SessionOutcome,
        Snapshot, SnapshotError, TraversalKind,
    };
    pub use darwin_datasets::Dataset;
    pub use darwin_eval::{coverage, f1_score, Curve};
    pub use darwin_grammar::Heuristic;
    pub use darwin_index::{IndexConfig, IndexSet};
    pub use darwin_text::{Corpus, Embeddings, PosTag, Sentence, Sym, Vocab};
}

//! `darwin-worker` — an out-of-process Darwin worker.
//!
//! Speaks the [`darwin_wire`] protocol over stdio (stdout carries nothing
//! but frames; diagnostics go to stderr), or — with `--dial <addr>` —
//! over a TCP connection to a listening coordinator, opened with a
//! registration frame declaring the worker's role. One process serves one
//! role:
//!
//! ```text
//! darwin-worker shard [--dial <addr> [--span <lo> <hi>]]
//!     A benefit-shard worker: initialized entirely over the wire
//!     (corpus, index recipe, span, state), then answers
//!     track/delta/rebuild requests with fragment deltas. `--span`
//!     advertises a partition preference in the registration frame (a
//!     restarted worker reclaiming its old span).
//!
//! darwin-worker oracle --directions <n> <seed> [--threshold <t>] [--dial <addr>]
//!     A ground-truth oracle worker over the deterministic `directions`
//!     dataset (both sides regenerate the identical fixture from
//!     <n, seed>), answering submitted questions at precision ≥ t
//!     (default 0.8).
//!
//! darwin-worker classifier [--dial <addr>]
//!     A remote benefit classifier: initialized over the wire
//!     (corpus, embedding seed, model recipe), then serves
//!     fit / predict_batch.
//! ```
//!
//! This binary is what `examples/distributed.rs`, `examples/cluster.rs`,
//! the `Proc`/`Tcp` rows of the test matrix and the CI distributed job
//! spawn.

use darwin_core::{serve_classifier, serve_oracle, serve_shard, GroundTruthOracle};
use darwin_wire::{register, Registration, StdioTransport, Transport, WorkerRole};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let NetOptions {
        dial: dial_addr,
        span,
    } = match net_options(&mut args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("darwin-worker: {msg}");
            return usage();
        }
    };
    let role = args.first().map(String::as_str).unwrap_or("").to_string();
    let worker_role = match role.as_str() {
        "shard" => WorkerRole::Shard,
        "oracle" => WorkerRole::Oracle,
        "classifier" => WorkerRole::Classifier,
        _ => return usage(),
    };
    let mut transport: Box<dyn Transport> = match &dial_addr {
        None => Box::new(StdioTransport::new()),
        Some(addr) => {
            let mut t = match darwin_wire::dial(addr.as_str()) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("darwin-worker ({role}): dial {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let reg = Registration {
                role: worker_role,
                span,
            };
            if let Err(e) = register(&mut t, &reg) {
                eprintln!("darwin-worker ({role}): register with {addr}: {e}");
                return ExitCode::FAILURE;
            }
            Box::new(t)
        }
    };
    let served = match worker_role {
        WorkerRole::Shard => serve_shard(transport.as_mut()),
        WorkerRole::Classifier => serve_classifier(transport.as_mut()),
        WorkerRole::Oracle => match oracle_config(&args[1..]) {
            Ok((n, seed, threshold)) => {
                let data = darwin_datasets::directions::generate(n, seed);
                let mut oracle = GroundTruthOracle::new(&data.labels, threshold);
                serve_oracle(transport.as_mut(), &data.corpus, &mut oracle)
            }
            Err(msg) => {
                eprintln!("darwin-worker: {msg}");
                return usage();
            }
        },
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("darwin-worker ({role}): {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--dial <addr>` and `--span <lo> <hi>`, stripped out of the
/// argument list by [`net_options`].
struct NetOptions {
    dial: Option<String>,
    span: Option<(u32, u32)>,
}

/// Strip `--dial <addr>` and `--span <lo> <hi>` from the argument list
/// (they may appear anywhere after the role) and return them.
fn net_options(args: &mut Vec<String>) -> Result<NetOptions, String> {
    let mut dial = None;
    let mut span = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dial" => {
                if i + 1 >= args.len() {
                    return Err("--dial needs <addr>".into());
                }
                dial = Some(args.remove(i + 1));
                args.remove(i);
            }
            "--span" => {
                if i + 2 >= args.len() {
                    return Err("--span needs <lo> <hi>".into());
                }
                let lo = args[i + 1].parse().map_err(|_| "--span needs integers")?;
                let hi = args[i + 2].parse().map_err(|_| "--span needs integers")?;
                span = Some((lo, hi));
                args.drain(i..i + 3);
            }
            _ => i += 1,
        }
    }
    if span.is_some() && dial.is_none() {
        return Err("--span only makes sense with --dial".into());
    }
    Ok(NetOptions { dial, span })
}

/// Parse `oracle --directions <n> <seed> [--threshold <t>]`.
fn oracle_config(args: &[String]) -> Result<(usize, u64, f64), String> {
    let mut n = None;
    let mut seed = None;
    let mut threshold = 0.8f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--directions" => {
                n = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--directions needs <n> <seed>")?,
                );
                seed = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--directions needs <n> <seed>")?,
                );
            }
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threshold needs a number")?;
            }
            other => return Err(format!("unknown oracle option {other}")),
        }
    }
    match (n, seed) {
        (Some(n), Some(seed)) => Ok((n, seed, threshold)),
        _ => Err("oracle needs --directions <n> <seed>".into()),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: darwin-worker shard [--dial <addr> [--span <lo> <hi>]]\n       darwin-worker oracle --directions <n> <seed> [--threshold <t>] [--dial <addr>]\n       darwin-worker classifier [--dial <addr>]"
    );
    ExitCode::FAILURE
}

//! `darwin-worker` — an out-of-process Darwin worker.
//!
//! Speaks the [`darwin_wire`] protocol over stdio (stdout carries nothing
//! but frames; diagnostics go to stderr). One process serves one role:
//!
//! ```text
//! darwin-worker shard
//!     A benefit-shard worker: initialized entirely over the wire
//!     (corpus, index recipe, span, state), then answers
//!     track/delta/rebuild requests with fragment deltas.
//!
//! darwin-worker oracle --directions <n> <seed> [--threshold <t>]
//!     A ground-truth oracle worker over the deterministic `directions`
//!     dataset (both sides regenerate the identical fixture from
//!     <n, seed>), answering submitted questions at precision ≥ t
//!     (default 0.8).
//!
//! darwin-worker classifier
//!     A remote benefit classifier: initialized over the wire
//!     (corpus, embedding seed, model recipe), then serves
//!     fit / predict_batch.
//! ```
//!
//! This binary is what `examples/distributed.rs`, the `Proc` rows of the
//! test matrix and the CI distributed job spawn.

use darwin_core::{serve_classifier, serve_oracle, serve_shard, GroundTruthOracle};
use darwin_wire::StdioTransport;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let role = args.first().map(String::as_str).unwrap_or("");
    let mut transport = StdioTransport::new();
    let served = match role {
        "shard" => serve_shard(&mut transport),
        "classifier" => serve_classifier(&mut transport),
        "oracle" => match oracle_config(&args[1..]) {
            Ok((n, seed, threshold)) => {
                let data = darwin_datasets::directions::generate(n, seed);
                let mut oracle = GroundTruthOracle::new(&data.labels, threshold);
                serve_oracle(&mut transport, &data.corpus, &mut oracle)
            }
            Err(msg) => {
                eprintln!("darwin-worker: {msg}");
                return usage();
            }
        },
        _ => return usage(),
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("darwin-worker ({role}): {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse `oracle --directions <n> <seed> [--threshold <t>]`.
fn oracle_config(args: &[String]) -> Result<(usize, u64, f64), String> {
    let mut n = None;
    let mut seed = None;
    let mut threshold = 0.8f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--directions" => {
                n = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--directions needs <n> <seed>")?,
                );
                seed = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--directions needs <n> <seed>")?,
                );
            }
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threshold needs a number")?;
            }
            other => return Err(format!("unknown oracle option {other}")),
        }
    }
    match (n, seed) {
        (Some(n), Some(seed)) => Ok((n, seed, threshold)),
        _ => Err("oracle needs --directions <n> <seed>".into()),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: darwin-worker shard\n       darwin-worker oracle --directions <n> <seed> [--threshold <t>]\n       darwin-worker classifier"
    );
    ExitCode::FAILURE
}

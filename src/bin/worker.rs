//! `darwin-worker` — an out-of-process Darwin worker.
//!
//! Speaks the [`darwin_wire`] protocol over stdio (stdout carries nothing
//! but frames; diagnostics go to stderr), or — with `--dial <addr>` —
//! over a TCP connection to a listening coordinator, opened with a
//! registration frame declaring the worker's role. One process serves one
//! role:
//!
//! ```text
//! darwin-worker shard [--dial <addr> [--span <lo> <hi>]]
//!     A benefit-shard worker: initialized entirely over the wire
//!     (corpus, index recipe, span, state), then answers
//!     track/delta/rebuild requests with fragment deltas. `--span`
//!     advertises a partition preference in the registration frame (a
//!     restarted worker reclaiming its old span).
//!
//! darwin-worker oracle --directions <n> <seed> [--threshold <t>] [--dial <addr>]
//!     A ground-truth oracle worker over the deterministic `directions`
//!     dataset (both sides regenerate the identical fixture from
//!     <n, seed>), answering submitted questions at precision ≥ t
//!     (default 0.8).
//!
//! darwin-worker classifier [--dial <addr>]
//!     A remote benefit classifier: initialized over the wire
//!     (corpus, embedding seed, model recipe), then serves
//!     fit / predict_batch.
//!
//! darwin-worker session --directions <n> <seed> [--threshold <t>]
//!         [--budget <b>] [--batch <k>]
//!         [--suspend-after <w> --snapshot <file>] [--resume <file>]
//!     A whole coordinator session over the deterministic `directions`
//!     fixture — the durable-session entry point. Uninterrupted, it
//!     prints a deterministic digest of the completed run. With
//!     `--suspend-after`, it suspends at that wave barrier and writes
//!     the snapshot to <file>; a later process resumes it with
//!     `--resume <file>` and prints the digest of the completed run,
//!     which must equal the uninterrupted one bit for bit.
//! ```
//!
//! This binary is what `examples/distributed.rs`, `examples/cluster.rs`,
//! the `Proc`/`Tcp` rows of the test matrix and the CI distributed job
//! spawn.

use darwin_core::{
    serve_classifier, serve_oracle, serve_shard, AsyncRunResult, BatchPolicy, Darwin, DarwinConfig,
    GroundTruthOracle, Immediate, Seed, SessionOutcome,
};
use darwin_grammar::Heuristic;
use darwin_index::{IndexConfig, IndexSet};
use darwin_wire::{register, Encode, Registration, StdioTransport, Transport, WorkerRole};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("session") {
        return match session_main(&args[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("darwin-worker (session): {msg}");
                usage()
            }
        };
    }
    let NetOptions {
        dial: dial_addr,
        span,
    } = match net_options(&mut args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("darwin-worker: {msg}");
            return usage();
        }
    };
    let role = args.first().map(String::as_str).unwrap_or("").to_string();
    let worker_role = match role.as_str() {
        "shard" => WorkerRole::Shard,
        "oracle" => WorkerRole::Oracle,
        "classifier" => WorkerRole::Classifier,
        _ => return usage(),
    };
    let mut transport: Box<dyn Transport> = match &dial_addr {
        None => Box::new(StdioTransport::new()),
        Some(addr) => {
            let mut t = match darwin_wire::dial(addr.as_str()) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("darwin-worker ({role}): dial {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let reg = Registration {
                role: worker_role,
                span,
            };
            if let Err(e) = register(&mut t, &reg) {
                eprintln!("darwin-worker ({role}): register with {addr}: {e}");
                return ExitCode::FAILURE;
            }
            Box::new(t)
        }
    };
    let served = match worker_role {
        WorkerRole::Shard => serve_shard(transport.as_mut()),
        WorkerRole::Classifier => serve_classifier(transport.as_mut()),
        WorkerRole::Oracle => match oracle_config(&args[1..]) {
            Ok((n, seed, threshold)) => {
                let data = darwin_datasets::directions::generate(n, seed);
                let mut oracle = GroundTruthOracle::new(&data.labels, threshold);
                serve_oracle(transport.as_mut(), &data.corpus, &mut oracle)
            }
            Err(msg) => {
                eprintln!("darwin-worker: {msg}");
                return usage();
            }
        },
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("darwin-worker ({role}): {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--dial <addr>` and `--span <lo> <hi>`, stripped out of the
/// argument list by [`net_options`].
struct NetOptions {
    dial: Option<String>,
    span: Option<(u32, u32)>,
}

/// Strip `--dial <addr>` and `--span <lo> <hi>` from the argument list
/// (they may appear anywhere after the role) and return them.
fn net_options(args: &mut Vec<String>) -> Result<NetOptions, String> {
    let mut dial = None;
    let mut span = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dial" => {
                if i + 1 >= args.len() {
                    return Err("--dial needs <addr>".into());
                }
                dial = Some(args.remove(i + 1));
                args.remove(i);
            }
            "--span" => {
                if i + 2 >= args.len() {
                    return Err("--span needs <lo> <hi>".into());
                }
                let lo = args[i + 1].parse().map_err(|_| "--span needs integers")?;
                let hi = args[i + 2].parse().map_err(|_| "--span needs integers")?;
                span = Some((lo, hi));
                args.drain(i..i + 3);
            }
            _ => i += 1,
        }
    }
    if span.is_some() && dial.is_none() {
        return Err("--span only makes sense with --dial".into());
    }
    Ok(NetOptions { dial, span })
}

/// Parse `oracle --directions <n> <seed> [--threshold <t>]`.
fn oracle_config(args: &[String]) -> Result<(usize, u64, f64), String> {
    let mut n = None;
    let mut seed = None;
    let mut threshold = 0.8f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--directions" => {
                n = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--directions needs <n> <seed>")?,
                );
                seed = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--directions needs <n> <seed>")?,
                );
            }
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threshold needs a number")?;
            }
            other => return Err(format!("unknown oracle option {other}")),
        }
    }
    match (n, seed) {
        (Some(n), Some(seed)) => Ok((n, seed, threshold)),
        _ => Err("oracle needs --directions <n> <seed>".into()),
    }
}

/// Configuration of a `session` run, parsed by [`session_config`].
struct SessionConfig {
    n: usize,
    seed: u64,
    threshold: f64,
    budget: usize,
    batch: usize,
    suspend_after: Option<u64>,
    snapshot_path: Option<String>,
    resume_path: Option<String>,
}

/// Parse `session --directions <n> <seed> [--threshold <t>] [--budget <b>]
/// [--batch <k>] [--suspend-after <w> --snapshot <file>] [--resume <file>]`.
fn session_config(args: &[String]) -> Result<SessionConfig, String> {
    let mut cfg = SessionConfig {
        n: 0,
        seed: 0,
        threshold: 0.8,
        budget: 12,
        batch: 3,
        suspend_after: None,
        snapshot_path: None,
        resume_path: None,
    };
    let mut directions = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("{what} needs a number"))
        };
        match a.as_str() {
            "--directions" => {
                cfg.n = num("--directions")? as usize;
                cfg.seed = num("--directions")?;
                directions = true;
            }
            "--threshold" => {
                cfg.threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threshold needs a number")?;
            }
            "--budget" => cfg.budget = num("--budget")? as usize,
            "--batch" => cfg.batch = num("--batch")? as usize,
            "--suspend-after" => cfg.suspend_after = Some(num("--suspend-after")?),
            "--snapshot" => {
                cfg.snapshot_path = Some(it.next().ok_or("--snapshot needs <file>")?.clone());
            }
            "--resume" => {
                cfg.resume_path = Some(it.next().ok_or("--resume needs <file>")?.clone());
            }
            other => return Err(format!("unknown session option {other}")),
        }
    }
    if !directions {
        return Err("session needs --directions <n> <seed>".into());
    }
    if cfg.suspend_after.is_some() != cfg.snapshot_path.is_some() {
        return Err("--suspend-after and --snapshot go together".into());
    }
    if cfg.resume_path.is_some() && cfg.suspend_after.is_some() {
        return Err("--resume and --suspend-after are exclusive".into());
    }
    Ok(cfg)
}

/// FNV-1a 64 digest over the run's replay surface: the encoded trace,
/// the final positive set and the final score bits. Two runs print the
/// same digest iff they are byte-identical where determinism is owed.
fn session_digest(result: &AsyncRunResult) -> u64 {
    let mut bytes = Vec::new();
    result.run.trace.encode(&mut bytes);
    result.run.positives.encode(&mut bytes);
    for s in &result.run.scores {
        bytes.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive (or resume) a whole coordinator session over the `directions`
/// fixture. See the module docs for the command shape; prints
/// `digest=<hex> questions=<q> positives=<p>` on completion, or
/// `suspended=<wave> bytes=<len>` after writing a snapshot.
fn session_main(args: &[String]) -> Result<ExitCode, String> {
    let sc = session_config(args)?;
    let data = darwin_datasets::directions::generate(sc.n, sc.seed);
    let index = IndexSet::build(
        &data.corpus,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 2,
            ..Default::default()
        },
    );
    let cfg = DarwinConfig {
        budget: sc.budget,
        n_candidates: 1200,
        batch: BatchPolicy::Fixed(sc.batch),
        ..DarwinConfig::fast()
    };
    let darwin = Darwin::new(&data.corpus, &index, cfg);
    let mut oracle = Immediate::new(GroundTruthOracle::new(&data.labels, sc.threshold));

    let done = if let Some(path) = &sc.resume_path {
        let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
        darwin
            .resume(&bytes, &mut oracle)
            .map_err(|e| format!("resume from {path}: {e}"))?
    } else {
        let seed = Seed::Rule(
            Heuristic::phrase(&data.corpus, data.seed_rules[0])
                .map_err(|e| format!("seed rule: {e}"))?,
        );
        match sc.suspend_after {
            None => darwin.run_async(seed, &mut oracle),
            Some(w) => match darwin.snapshot(seed, &mut oracle, w) {
                SessionOutcome::Suspended(snap) => {
                    let path = sc.snapshot_path.as_deref().expect("validated above");
                    let bytes = snap.to_bytes();
                    std::fs::write(path, &bytes).map_err(|e| format!("write {path}: {e}"))?;
                    println!("suspended={} bytes={}", snap.counters.waves, bytes.len());
                    return Ok(ExitCode::SUCCESS);
                }
                SessionOutcome::Finished(done) => done,
            },
        }
    };
    println!(
        "digest={:016x} questions={} positives={}",
        session_digest(&done),
        done.report.submitted,
        done.run.positives.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: darwin-worker shard [--dial <addr> [--span <lo> <hi>]]\n       darwin-worker oracle --directions <n> <seed> [--threshold <t>] [--dial <addr>]\n       darwin-worker classifier [--dial <addr>]\n       darwin-worker session --directions <n> <seed> [--threshold <t>] [--budget <b>] [--batch <k>] [--suspend-after <w> --snapshot <file>] [--resume <file>]"
    );
    ExitCode::FAILURE
}

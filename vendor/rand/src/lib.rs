//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the small slice of `rand` it actually calls:
//!
//! * [`rngs::StdRng`] / [`rngs::SmallRng`] — deterministic xoshiro256++
//!   generators seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over integer and float ranges,
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose_multiple`].
//!
//! Streams are deterministic per seed (what every Darwin experiment relies
//! on) but are *not* the same streams the real crate produces; all seeds in
//! this repo were chosen against this implementation.

/// Core sampling source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a small seed (the only constructor this workspace
/// uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open range a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64, far
                // below anything an experiment sweep can observe.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 random bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard the open upper bound against rounding.
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256++ core, seeded through SplitMix64 like the reference
/// implementation recommends.
#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// The raw 256-bit generator state. Together with
    /// [`Xoshiro256::from_state`] this lets a caller checkpoint a stream
    /// mid-flight and continue it elsewhere bit for bit (session
    /// snapshot/resume relies on this).
    fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator at an exact previously-captured state.
    fn from_state(s: [u64; 4]) -> Xoshiro256 {
        Xoshiro256 { s }
    }

    fn seed_from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    macro_rules! rng_type {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Clone, Debug)]
            pub struct $name(Xoshiro256);

            impl RngCore for $name {
                #[inline]
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $name {
                fn seed_from_u64(state: u64) -> Self {
                    $name(Xoshiro256::seed_from_u64(state))
                }
            }

            impl $name {
                /// Capture the raw generator state for checkpointing.
                /// Restoring via [`Self::from_state`] continues the exact
                /// stream: the words drawn after restore equal the words
                /// that would have been drawn had the capture never
                /// happened.
                pub fn state(&self) -> [u64; 4] {
                    self.0.state()
                }

                /// Rebuild a generator at a previously captured state.
                pub fn from_state(s: [u64; 4]) -> Self {
                    $name(Xoshiro256::from_state(s))
                }
            }
        };
    }

    rng_type!(
        /// The workspace's general-purpose deterministic generator.
        StdRng
    );
    rng_type!(
        /// Same engine as [`StdRng`]; kept as a distinct type so call sites
        /// mirror the real crate's split.
        SmallRng
    );
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice sampling helpers.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// `amount` distinct elements in selection order (fewer when the
        /// slice is shorter).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots end up holding
            // a uniform sample without permuting the whole index vector.
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u32), b.gen_range(0..1_000_000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn integer_sampling_covers_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..37 {
            a.gen_range(0..1_000u32);
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u32), b.gen_range(0..1_000_000u32));
        }
    }

    #[test]
    fn choose_multiple_is_distinct_sample() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = (0..100).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10, "sample must be distinct");
        let over: Vec<u32> = v.choose_multiple(&mut rng, 1000).copied().collect();
        assert_eq!(over.len(), 100, "clamped to slice length");
    }
}

//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Provides the benchmark-harness surface the workspace's benches are
//! written against: [`Criterion::bench_function`], benchmark groups with
//! `sample_size`/`measurement_time`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark reports min/median/max
//! wall-clock time per iteration on stdout. No statistical analysis, HTML
//! reports, or baselines — compare numbers by eye or via the repo's
//! JSON-emitting bench binaries.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim runs one routine call
/// per setup call regardless; the variants exist for call-site
/// compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy)]
struct BenchConfig {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    cfg: BenchConfig,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, batching iterations so each sample is long enough to
    /// measure reliably.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let calib = Instant::now();
        black_box(f());
        let single = calib.elapsed().max(Duration::from_nanos(1));
        // Aim for ~2ms per sample so Instant resolution noise stays small.
        let iters =
            (Duration::from_millis(2).as_nanos() / single.as_nanos()).clamp(1, 100_000) as u32;
        let budget = Instant::now();
        for _ in 0..self.cfg.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed() / iters);
            if budget.elapsed() > self.cfg.measurement_time {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let budget = Instant::now();
        for _ in 0..self.cfg.sample_size.max(1) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if budget.elapsed() > self.cfg.measurement_time {
                break;
            }
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<50} time: [no samples]");
        return;
    }
    samples.sort_unstable();
    let fmt = |d: Duration| {
        let ns = d.as_nanos();
        if ns >= 1_000_000_000 {
            format!("{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.3} µs", ns as f64 / 1e3)
        } else {
            format!("{ns} ns")
        }
    };
    let median = samples[samples.len() / 2];
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt(samples[0]),
        fmt(median),
        fmt(samples[samples.len() - 1])
    );
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    cfg: BenchConfig,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            cfg: self.cfg,
            samples: Vec::new(),
        };
        f(&mut b);
        report(id, &mut b.samples);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: self.cfg,
            _parent: self,
        }
    }
}

/// A named group with its own sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: BenchConfig,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            cfg: self.cfg,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.samples);
        self
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| ());
            ran += 1;
        });
        assert_eq!(ran, 1);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        g.bench_function("spin", |b| b.iter(|| std::hint::black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 16],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            );
        });
    }
}

//! Offline stand-in for `proptest` (1.x API subset).
//!
//! Property tests in this workspace are written against the real crate's
//! surface: the [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`],
//! [`strategy::Strategy`] with `prop_map`, `prop::sample::select`,
//! `prop::collection::vec`, `prop::bool::ANY`, integer-range strategies and
//! `ProptestConfig { cases, .. }`. This shim runs each test body against
//! `cases` deterministically-seeded random inputs (seeded from the test
//! name, so failures reproduce). There is **no shrinking**: a failing case
//! panics with the full generated input.

pub mod test_runner {
    use std::fmt;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
        /// Accepted for compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; the shim never forks.
        pub fork: bool,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
                fork: false,
            }
        }
    }

    /// A failed assertion inside a property-test body.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-test random source (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from the test's identity so every run replays the same
        /// case sequence.
        pub fn for_test(file: &str, name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in file.bytes().chain([0]).chain(name.bytes()) {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: usize) -> usize {
            ((self.next_u64() as u128 * bound as u128) >> 64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    /// The constant strategy (`Just(v)` in the real crate's prelude).
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A boxed generator closure — one arm of a [`Union`].
    pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice between heterogeneous strategies sharing a value
    /// type — what [`prop_oneof!`](crate::prop_oneof) builds. (The real
    /// crate weights branches; the shim draws uniformly.)
    pub struct Union<V> {
        options: Vec<UnionArm<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given generator closures.
        pub fn new(options: Vec<UnionArm<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (self.options[rng.below(self.options.len())])(rng)
        }
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128 * span) >> 64;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-range strategy — `any::<T>()`.
    pub trait Arbitrary: Sized {
        /// Draw one full-range value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_arbitrary {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }
    tuple_arbitrary!(A);
    tuple_arbitrary!(A, B);
    tuple_arbitrary!(A, B, C);
    tuple_arbitrary!(A, B, C, D);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy [`any`] returns.
    pub struct Any<T>(PhantomData<T>);

    /// The canonical full-range strategy for `T` (`any::<u32>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform booleans.
    pub struct Any;

    /// `prop::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed option list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `prop::sample::select` — one of the given values, cloned.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Vectors with uniformly random length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `prop::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Define a union strategy: uniform choice between the given arms, which
/// may be different strategy types as long as their values unify. (The
/// real crate supports `weight => strategy` arms; the shim is uniform.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy constructors, as the real crate exposes them.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `#[test] fn name(arg in
/// strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(file!(), stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let inputs = format!(concat!($("  ", stringify!($arg), " = {:?}\n",)*), $(&$arg),*);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs:\n{}",
                        stringify!($name), case + 1, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

/// Assert inside a property-test body; failures abort only the current
/// case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: both sides equal {:?}", l);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

        /// Generated vectors respect the requested size range.
        #[test]
        fn vec_sizes_in_range(v in prop::collection::vec(0u32..10, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn select_only_yields_options(w in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&w));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..5, prop::bool::ANY),
            s in prop::sample::select(vec![1usize, 2, 3]).prop_map(|x| x * 10),
        ) {
            prop_assert!(pair.0 < 5);
            prop_assert!([10, 20, 30].contains(&s));
        }

        #[test]
        fn early_ok_return_works(x in 0u32..100) {
            if x % 2 == 0 {
                return Ok(());
            }
            prop_assert!(x % 2 == 1);
        }

        #[test]
        fn any_and_just_and_oneof_compose(
            full in any::<u64>(),
            arr in any::<[u32; 3]>(),
            choice in prop_oneof![
                Just(0u32),
                (1u32..10).prop_map(|x| x * 100),
            ],
        ) {
            let _ = (full, arr);
            prop_assert!(choice == 0u32 || (100u32..1000u32).contains(&choice));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("f", "t");
        let mut b = crate::test_runner::TestRng::for_test("f", "t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_input() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..Default::default() })]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}

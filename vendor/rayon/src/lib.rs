//! Offline stand-in for `rayon` (1.x API subset).
//!
//! Implements the handful of data-parallel shapes this workspace uses —
//! [`join`], `par_iter().map(..).collect()`, `par_chunks(..)`,
//! `par_chunks_mut(..).for_each(..)` — on plain
//! `std::thread::scope` with one contiguous chunk per worker. Results are
//! always concatenated in input order, so parallel and sequential execution
//! produce identical outputs (the engine's determinism guarantee leans on
//! this). Worker count is `available_parallelism`, bounded by the number of
//! items; callers control effective parallelism by how much work they
//! submit per call.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSlice, ParallelSliceMut};
}

/// Run two closures, the first on a worker thread, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let ha = s.spawn(a);
        let rb = b();
        (ha.join().expect("rayon-shim worker panicked"), rb)
    })
}

fn worker_count(items: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    avail.min(items).max(1)
}

/// Map `f` over `0..n` with scoped workers; output preserves index order.
fn parallel_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut parts: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for part in parts.iter_mut() {
        out.append(part);
    }
    out
}

/// Entry point mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;

    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'data T) + Sync,
    {
        parallel_map_indices(self.items.len(), |i| f(&self.items[i]));
    }
}

/// The result of [`ParIter::map`]; terminal ops execute the pipeline.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        parallel_map_indices(self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .collect()
    }
}

/// Chunked views, mirroring `rayon::slice::ParallelSlice::par_chunks`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            items: self,
            chunk_size,
        }
    }
}

pub struct ParChunks<'data, T> {
    items: &'data [T],
    chunk_size: usize,
}

impl<'data, T: Sync> ParChunks<'data, T> {
    pub fn map<R, F>(self, f: F) -> ParChunksMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data [T]) -> R + Sync,
    {
        ParChunksMap {
            items: self.items,
            chunk_size: self.chunk_size,
            f,
        }
    }
}

pub struct ParChunksMap<'data, T, F> {
    items: &'data [T],
    chunk_size: usize,
    f: F,
}

impl<'data, T, R, F> ParChunksMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data [T]) -> R + Sync,
{
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let chunks: Vec<&[T]> = self.items.chunks(self.chunk_size).collect();
        parallel_map_indices(chunks.len(), |i| (self.f)(chunks[i]))
            .into_iter()
            .collect()
    }
}

/// Mutable chunked views, mirroring `rayon::slice::ParallelSliceMut::par_chunks_mut`.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            items: self,
            chunk_size,
        }
    }
}

pub struct ParChunksMut<'data, T> {
    items: &'data mut [T],
    chunk_size: usize,
}

impl<'data, T: Send> ParChunksMut<'data, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        let mut chunks: Vec<&'data mut [T]> = self.items.chunks_mut(self.chunk_size).collect();
        let workers = worker_count(chunks.len());
        if workers <= 1 {
            for c in chunks {
                f(c);
            }
            return;
        }
        let per = chunks.len().div_ceil(workers);
        std::thread::scope(|s| {
            while !chunks.is_empty() {
                let take = per.min(chunks.len());
                let group: Vec<&'data mut [T]> = chunks.drain(..take).collect();
                let f = &f;
                s.spawn(move || {
                    for c in group {
                        f(c);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn par_chunks_covers_all_items() {
        let v: Vec<u32> = (0..1001).collect();
        let sums: Vec<u64> = v
            .par_chunks(100)
            .map(|c| c.iter().map(|&x| x as u64).sum())
            .collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u64>(), (0..1001u64).sum());
    }

    #[test]
    fn par_chunks_mut_mutates_every_item() {
        let mut v: Vec<u32> = (0..1001).collect();
        v.par_chunks_mut(64).for_each(|c| {
            for x in c.iter_mut() {
                *x += 1;
            }
        });
        assert_eq!(v, (1..1002).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}

//! The async batched-oracle loop against a simulated slow crowd
//! (paper §4.3: annotator latency dwarfs engine compute).
//!
//! Runs the same discovery task at batch sizes 1 (the synchronous
//! reference), 4, and latency-adaptive, against an oracle that takes
//! 50 ms per answer, and prints the wall-clock, pipelining depth and
//! §4.3 crowd cost of each.
//!
//! ```sh
//! cargo run --release --example async_crowd
//! ```

use darwin::core::batch::SimulatedLatency;
use darwin::core::CostModel;
use darwin::datasets::directions;
use darwin::prelude::*;
use std::time::Duration;

fn main() {
    let data = directions::generate(4000, 42);
    let index = IndexSet::build(
        &data.corpus,
        &IndexConfig {
            max_phrase_len: 5,
            min_count: 2,
            ..Default::default()
        },
    );
    let latency = Duration::from_millis(50);

    for (label, policy) in [
        ("batch 1 (sequential)", BatchPolicy::Fixed(1)),
        ("batch 4", BatchPolicy::Fixed(4)),
        ("adaptive (max 8)", BatchPolicy::LatencyTargeted { max: 8 }),
    ] {
        let cfg = DarwinConfig {
            budget: 24,
            n_candidates: 3000,
            batch: policy,
            ..Default::default()
        };
        let darwin = Darwin::new(&data.corpus, &index, cfg);
        let seed = Heuristic::phrase(&data.corpus, data.seed_rules[0]).unwrap();
        let mut oracle = SimulatedLatency::new(GroundTruthOracle::new(&data.labels, 0.8), latency);
        let out = darwin.run_async_costed(Seed::Rule(seed), &mut oracle, &CostModel::paper());
        println!(
            "{label:<22} {:>6.2} s wall  {:>2} waves  peak {:>2} in flight  recall {:.2}  cost ${:.2}",
            out.report.wall_ns as f64 / 1e9,
            out.report.waves,
            out.report.peak_in_flight,
            coverage(&out.run.positives, &data.labels),
            out.report.cost.dollars(),
        );
    }
    println!("\n50 ms × 24 answers = 1.2 s of pure annotator latency; batching overlaps it.");
}

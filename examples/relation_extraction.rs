//! Relation extraction on the `cause-effect` dataset, showing the
//! generalize-then-specialize traversal the paper illustrates in Figure 11
//! (`has been caused by` → `caused by` → reject `by` → `triggered by`),
//! plus Snorkel-style de-noising of the discovered rules (Table 2).
//!
//! ```sh
//! cargo run --release --example relation_extraction
//! ```

use darwin::datasets::cause_effect;
use darwin::labelmodel::{GenerativeConfig, GenerativeModel, LfMatrix};
use darwin::prelude::*;

fn main() {
    let n: usize = std::env::var("DARWIN_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6000);
    let data = cause_effect::generate(n, 42);
    println!("{:?}", data.stats());

    let index = IndexSet::build(
        &data.corpus,
        &IndexConfig {
            max_phrase_len: 5,
            min_count: 2,
            ..Default::default()
        },
    );

    let cfg = DarwinConfig {
        budget: 40,
        n_candidates: 3000,
        ..Default::default()
    };
    let darwin = Darwin::new(&data.corpus, &index, cfg);
    let seed = Heuristic::phrase(&data.corpus, "has been caused by").expect("seed parses");
    let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
    let run = darwin.run(Seed::Rule(seed), &mut oracle);

    println!("\ntraversal (YES = accepted, no = rejected):");
    for step in run.trace.iter().take(20) {
        println!(
            "  q{:<2} {:<28} -> {}",
            step.question,
            step.rule.display(data.corpus.vocab()),
            if step.answer { "YES" } else { "no" }
        );
    }
    println!(
        "\nrecall of discovered positives: {:.2}",
        coverage(&run.positives, &data.labels)
    );

    // De-noise the accepted rules with the generative label model and
    // compare raw-union labels against de-noised labels.
    let coverages: Vec<Vec<u32>> = run
        .accepted
        .iter()
        .map(|h| h.coverage(&data.corpus))
        .collect();
    let refs: Vec<&[u32]> = coverages.iter().map(|c| c.as_slice()).collect();
    let matrix = LfMatrix::from_coverages(data.corpus.len(), &refs);
    let model = GenerativeModel::fit(&matrix, &GenerativeConfig::default());
    let denoised: Vec<u32> = model
        .posteriors()
        .iter()
        .enumerate()
        .filter(|(_, &p)| p >= 0.5)
        .map(|(i, _)| i as u32)
        .collect();
    println!(
        "label-model: prior {:.3}, de-noised positives {} (raw union {})",
        model.prior(),
        denoised.len(),
        run.positives.len()
    );
    for (j, rule) in run.accepted.iter().enumerate().take(8) {
        println!(
            "  LF {:<28} estimated precision {:.2}",
            rule.display(data.corpus.vocab()),
            model.lf_precision(j)
        );
    }
}

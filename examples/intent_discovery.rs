//! Intent discovery on the `directions` dataset (paper Example 1 at full
//! scale): one seed rule, a 50-question budget, HybridSearch.
//!
//! ```sh
//! cargo run --release --example intent_discovery
//! ```

use darwin::datasets::directions;
use darwin::prelude::*;

fn main() {
    let n: usize = std::env::var("DARWIN_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8000);
    println!("generating directions dataset ({n} sentences)…");
    let data = directions::generate(n, 42);
    let stats = data.stats();
    println!(
        "{}: {} sentences, {:.1}% positive ({} positives)",
        stats.name,
        stats.sentences,
        stats.positive_pct,
        data.positives()
    );

    println!("building index…");
    let index = IndexSet::build(
        &data.corpus,
        &IndexConfig {
            max_phrase_len: 6,
            min_count: 2,
            ..Default::default()
        },
    );
    println!("  {} heuristics indexed", index.rules());

    let cfg = DarwinConfig {
        budget: 50,
        n_candidates: 4000,
        ..Default::default()
    };
    let darwin = Darwin::new(&data.corpus, &index, cfg);
    let seed = Heuristic::phrase(&data.corpus, data.seed_rules[0]).expect("seed parses");
    println!("seed rule: {:?}", data.seed_rules[0]);

    let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
    let run = darwin.run(Seed::Rule(seed), &mut oracle);

    println!("\ncoverage curve (fraction of all positives discovered):");
    for q in [5, 10, 20, 30, 40, 50] {
        let p = run.positives_after(q.min(run.questions()));
        println!(
            "  after {:>3} questions: {:.2}",
            q,
            coverage(&p, &data.labels)
        );
    }

    println!("\naccepted rules ({}):", run.accepted.len());
    for rule in run.accepted.iter().take(15) {
        let cov = rule.coverage(&data.corpus);
        let pos = cov.iter().filter(|&&i| data.labels[i as usize]).count();
        println!(
            "  {:<32} coverage {:>4}  precision {:.2}",
            rule.display(data.corpus.vocab()),
            cov.len(),
            pos as f64 / cov.len().max(1) as f64
        );
    }

    let final_cov = coverage(&run.positives, &data.labels);
    println!(
        "\nfinal: {} positives, recall {:.2}",
        run.positives.len(),
        final_cov
    );
}

//! A real multi-process Darwin session: coordinator + 2 shard workers +
//! 1 oracle worker, spawned as child processes over stdio pipes.
//!
//! The coordinator runs the same interactive discovery task twice —
//! once fully in-process, once with the benefit partitions living in
//! shard worker *processes* and the oracle in a third — and asserts the
//! distributed run reproduces the local positives and scores exactly.
//! That is the wire boundary's defining contract: a deployment is an
//! execution detail, never a behavioral one.
//!
//! ```sh
//! cargo run --release --example distributed
//! ```
//!
//! (The binary re-executes itself in worker mode for the children, so no
//! separate worker binary is needed; the shipped `darwin-worker` binary
//! serves the same roles for external deployments.)

use darwin::core::{serve_oracle, serve_shard, ShardConnector, WireOracle};
use darwin::prelude::*;
use darwin::wire::{ProcTransport, StdioTransport, Transport};
use darwin_datasets::directions;
use std::process::Command;
use std::time::Instant;

const N: usize = 1200;
const SEED: u64 = 42;
const SHARDS: usize = 2;

fn main() {
    // Child processes re-enter main with a worker role argument.
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker-shard") => {
            let mut t = StdioTransport::new();
            serve_shard(&mut t).expect("shard worker failed");
            return;
        }
        Some("worker-oracle") => {
            let data = directions::generate(N, SEED);
            let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
            let mut t = StdioTransport::new();
            serve_oracle(&mut t, &data.corpus, &mut oracle).expect("oracle worker failed");
            return;
        }
        _ => {}
    }

    // ---- coordinator ----
    let data = directions::generate(N, SEED);
    let index_cfg = IndexConfig {
        max_phrase_len: 4,
        min_count: 2,
        ..Default::default()
    };
    let index = IndexSet::build(&data.corpus, &index_cfg);
    let cfg = DarwinConfig {
        budget: 20,
        n_candidates: 2000,
        shards: SHARDS,
        batch: BatchPolicy::Fixed(2),
        ..DarwinConfig::fast()
    };
    let seed_rule = Heuristic::phrase(&data.corpus, data.seed_rules[0]).unwrap();

    // Local reference: everything in this process.
    let t0 = Instant::now();
    let local = {
        let darwin = Darwin::new(&data.corpus, &index, cfg.clone());
        let mut oracle = Immediate::new(GroundTruthOracle::new(&data.labels, 0.8));
        darwin.run_async(Seed::Rule(seed_rule.clone()), &mut oracle)
    };
    let local_wall = t0.elapsed();

    // Distributed: 2 shard worker processes + 1 oracle worker process.
    let exe = std::env::current_exe().expect("own path");
    let connect: Box<ShardConnector> = {
        let exe = exe.clone();
        Box::new(move |s, range| {
            eprintln!("[coordinator] spawning shard worker {s} for ids {range:?}");
            let t = ProcTransport::spawn(Command::new(&exe).arg("worker-shard"))?;
            Ok(Box::new(t) as Box<dyn Transport>)
        })
    };
    let t1 = Instant::now();
    let distributed = {
        let darwin = Darwin::new(&data.corpus, &index, cfg).with_remote_shards(connect);
        let oracle_t = ProcTransport::spawn(Command::new(&exe).arg("worker-oracle"))
            .expect("spawn oracle worker");
        let mut oracle = WireOracle::connect(Box::new(oracle_t)).expect("oracle handshake");
        darwin.run_async(Seed::Rule(seed_rule), &mut oracle)
    };
    let dist_wall = t1.elapsed();

    // ---- the contract ----
    assert!(
        distributed.run.wire_error.is_none(),
        "distributed run failed: {:?}",
        distributed.run.wire_error
    );
    assert_eq!(
        local.run.positives, distributed.run.positives,
        "distributed P must equal the local P exactly"
    );
    assert_eq!(
        local.run.scores, distributed.run.scores,
        "distributed scores must be bit-identical to local"
    );
    assert_eq!(local.run.questions(), distributed.run.questions());

    let recall = coverage(&distributed.run.positives, &data.labels);
    println!(
        "local run:        {:>6.2?}  ({} questions)",
        local_wall,
        local.run.questions()
    );
    println!(
        "distributed run:  {:>6.2?}  ({SHARDS} shard workers + 1 oracle worker, {} waves)",
        dist_wall, distributed.report.waves
    );
    println!(
        "accepted {} rules, |P| = {}, recall {recall:.2} — identical P and bit-identical scores across deployments",
        distributed.run.accepted.len(),
        distributed.run.positives.len(),
    );
}

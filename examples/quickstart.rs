//! Quickstart: discover labeling rules on a hotel-concierge corpus built
//! around the paper's Example 1.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use darwin::prelude::*;

fn main() {
    // Example 1 of the paper, expanded with template variations so rules
    // have measurable coverage (a corpus of one-off sentences has nothing
    // for weak supervision to generalize over).
    let mut texts: Vec<String> = vec![
        "What is the best way to get to SFO airport?".into(),
        "Is there a bart from SFO to the hotel?".into(),
        "What is the best way to check in there?".into(),
        "Is Uber the fastest way to get to the airport?".into(),
        "Would Uber Eats be the fastest way to order?".into(),
        "What is the best way to order food from you?".into(),
    ];
    let mut labels = vec![true, true, false, true, false, false];
    let places = [
        "the pier",
        "union square",
        "downtown",
        "the museum",
        "the stadium",
    ];
    let foods = ["pizza", "sushi", "breakfast", "dessert", "coffee"];
    // Mirror the paper's class imbalance: positives are a small minority,
    // so randomly sampled "presumed negatives" are mostly correct.
    for i in 0..10 {
        let p = places[i % places.len()];
        let f = foods[i % foods.len()];
        texts.push(format!("What is the best way to get to {p}?"));
        labels.push(true);
        if i < 5 {
            texts.push(format!("Is there a shuttle to {p} tonight?"));
            labels.push(true);
            texts.push(format!("Is there a bart from Oakland to {p}?"));
            labels.push(true);
        }
        texts.push(format!("Can I order {f} to the room?"));
        labels.push(false);
        texts.push(format!("Is {f} included with the stay tonight?"));
        labels.push(false);
        texts.push(format!(
            "What time does the pool open for guests on day {i}?"
        ));
        labels.push(false);
        texts.push(format!("Is the gym free for guests on day {i}?"));
        labels.push(false);
        texts.push(format!("Can housekeeping bring {i} extra towels?"));
        labels.push(false);
        texts.push(format!("The wifi in room {i} stopped working."));
        labels.push(false);
        texts.push(format!("Do you have a table for {i} at the restaurant?"));
        labels.push(false);
    }

    // 1. Analyze the corpus (tokenize, POS-tag, dependency-parse).
    let corpus = Corpus::from_texts(&texts);

    // 2. Build the heuristic index (TokensRegex trie + TreeMatch table).
    let index = IndexSet::build(&corpus, &IndexConfig::small());
    println!(
        "indexed {} candidate heuristics over {} sentences",
        index.rules(),
        corpus.len()
    );

    // 3. Seed Darwin with one labeling rule and let it ask questions.
    let seed = Heuristic::phrase(&corpus, "best way to get to").expect("seed rule parses");
    let cfg = DarwinConfig {
        budget: 15,
        n_candidates: 1000,
        ..DarwinConfig::fast()
    };
    let darwin = Darwin::new(&corpus, &index, cfg);
    let mut oracle = GroundTruthOracle::new(&labels, 0.8);
    let run = darwin.run(Seed::Rule(seed), &mut oracle);

    // 4. Inspect what happened.
    println!("\nquestions asked: {}", run.questions());
    for step in &run.trace {
        println!(
            "  q{:<2} {:<30} -> {}",
            step.question,
            step.rule.display(corpus.vocab()),
            if step.answer { "YES" } else { "no" }
        );
    }
    println!("\naccepted rules:");
    for rule in &run.accepted {
        println!("  {}", rule.display(corpus.vocab()));
    }
    let recall = coverage(&run.positives, &labels);
    println!(
        "\ndiscovered {} positives (recall {:.0}%)",
        run.positives.len(),
        100.0 * recall
    );
    assert!(
        recall >= 0.5,
        "quickstart should find at least half the positives"
    );
}

//! Entity extraction on the `musicians` dataset with the TreeMatch grammar
//! enabled, comparing all three traversal strategies (paper §4.3).
//!
//! ```sh
//! cargo run --release --example entity_extraction
//! ```

use darwin::core::TraversalKind;
use darwin::datasets::musicians;
use darwin::prelude::*;

fn main() {
    let n: usize = std::env::var("DARWIN_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6000);
    let data = musicians::generate(n, 42);
    println!("{:?}", data.stats());

    let index = IndexSet::build(
        &data.corpus,
        &IndexConfig {
            max_phrase_len: 5,
            min_count: 2,
            enable_tree: true,
            ..Default::default()
        },
    );
    println!("index: {} rules (tree patterns included)", index.rules());

    for kind in [
        TraversalKind::Local,
        TraversalKind::Universal,
        TraversalKind::Hybrid,
    ] {
        let cfg = DarwinConfig {
            budget: 40,
            n_candidates: 3000,
            traversal: kind,
            ..Default::default()
        };
        let darwin = Darwin::new(&data.corpus, &index, cfg);
        let seed = Heuristic::phrase(&data.corpus, "composer").expect("seed parses");
        let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
        let run = darwin.run(Seed::Rule(seed), &mut oracle);
        let recall = coverage(&run.positives, &data.labels);
        println!(
            "\n{}: {} questions, {} accepted rules, recall {:.2}",
            kind.name(),
            run.questions(),
            run.accepted.len(),
            recall
        );
        // Show any TreeMatch rules that were discovered.
        let tree_rules: Vec<String> = run
            .accepted
            .iter()
            .filter(|h| h.grammar_name() == "TreeMatch")
            .map(|h| h.display(data.corpus.vocab()))
            .collect();
        if !tree_rules.is_empty() {
            println!("  TreeMatch rules: {tree_rules:?}");
        }
    }
}

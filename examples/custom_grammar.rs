//! Using the grammar layer directly: gapped TokensRegex patterns, TreeMatch
//! patterns over parse trees, formal CFG derivation witnesses, and a
//! noisy-annotator oracle.
//!
//! ```sh
//! cargo run --release --example custom_grammar
//! ```

use darwin::core::SampledAnnotatorOracle;
use darwin::datasets::professions;
use darwin::grammar::cfg::Cfg;
use darwin::prelude::*;

fn main() {
    let data = professions::generate(20_000, 42);
    println!("{:?}", data.stats());
    let corpus = &data.corpus;

    // --- TokensRegex with gap operators -------------------------------
    // `worked + as a` matches "worked for years as a …" as well as
    // "worked briefly as a …" — one or more arbitrary tokens at the `+`.
    let gapped = Heuristic::phrase(corpus, "worked * as a").expect("parses");
    let cov = gapped.coverage(corpus);
    let pos = cov.iter().filter(|&&i| data.labels[i as usize]).count();
    println!(
        "\ngapped rule {:?}: coverage {}, precision {:.2}",
        gapped.display(corpus.vocab()),
        cov.len(),
        pos as f64 / cov.len().max(1) as f64
    );

    // --- TreeMatch over dependency parses ------------------------------
    // The paper's professions example: an `is` clause with a NOUN child
    // and `job` below it.
    let tree = Heuristic::tree(corpus, "is/NOUN & is//job").expect("parses");
    let tcov = tree.coverage(corpus);
    let tpos = tcov.iter().filter(|&&i| data.labels[i as usize]).count();
    println!(
        "tree rule {:?}: coverage {}, precision {:.2}",
        tree.display(corpus.vocab()),
        tcov.len(),
        tpos as f64 / tcov.len().max(1) as f64
    );

    // --- Formal CFG derivations ----------------------------------------
    let cfg = Cfg::tokens_regex();
    if let Heuristic::Phrase(p) = &gapped {
        println!(
            "derivation of the gapped rule under {}: {:?}",
            cfg.name,
            cfg.derivation_of_phrase(p).expect("derivable")
        );
    }

    // --- Running the pipeline with a noisy human-like oracle -----------
    let index = IndexSet::build(
        corpus,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 3,
            ..Default::default()
        },
    );
    let cfg = DarwinConfig {
        budget: 30,
        n_candidates: 3000,
        ..Default::default()
    };
    let darwin = Darwin::new(corpus, &index, cfg);
    // The annotator inspects only 5 sampled matches per question (paper
    // Figure 2 / §4.5) and therefore sometimes errs.
    let mut annotator = SampledAnnotatorOracle::new(&data.labels, 5, 7);
    let run = darwin.run(
        Seed::Rule(Heuristic::phrase(corpus, "worked as a").unwrap()),
        &mut annotator,
    );
    println!(
        "\nnoisy-annotator run: {} questions, {} accepted, recall {:.2}, precision of P {:.2}",
        run.questions(),
        run.accepted.len(),
        coverage(&run.positives, &data.labels),
        run.positives
            .iter()
            .filter(|&&i| data.labels[i as usize])
            .count() as f64
            / run.positives.len().max(1) as f64
    );
}

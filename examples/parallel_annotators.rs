//! Parallel rule discovery with a crowd of annotators (paper §1, §4.3).
//!
//! Three annotators answer different, coverage-diverse questions each
//! round; a fourth run uses a majority-vote crowd oracle with the paper's
//! 2¢-per-evaluation cost model.
//!
//! ```sh
//! cargo run --release --example parallel_annotators
//! ```

use darwin::core::{MajorityOracle, Oracle, SampledAnnotatorOracle};
use darwin::datasets::directions;
use darwin::prelude::*;

fn main() {
    let data = directions::generate(6000, 42);
    let index = IndexSet::build(
        &data.corpus,
        &IndexConfig {
            max_phrase_len: 5,
            min_count: 2,
            ..Default::default()
        },
    );
    let cfg = DarwinConfig {
        budget: 30,
        n_candidates: 3000,
        ..Default::default()
    };
    let darwin = Darwin::new(&data.corpus, &index, cfg);
    let seed = Heuristic::phrase(&data.corpus, data.seed_rules[0]).unwrap();

    // --- three annotators answering in parallel -------------------------
    let mut a = GroundTruthOracle::new(&data.labels, 0.8);
    let mut b = GroundTruthOracle::new(&data.labels, 0.8);
    let mut c = GroundTruthOracle::new(&data.labels, 0.8);
    let mut annotators: Vec<&mut dyn Oracle> = vec![&mut a, &mut b, &mut c];
    let run = darwin.run_parallel(Seed::Rule(seed.clone()), &mut annotators, 10);
    println!(
        "parallel (3 annotators × 10 rounds): {} questions, {} accepted, recall {:.2}",
        run.questions(),
        run.accepted.len(),
        coverage(&run.positives, &data.labels)
    );
    // Wall-clock accounting: 10 rounds of concurrent annotation at the
    // paper's 23 s per answer ≈ 4 minutes of human time for ~30 answers.
    println!(
        "  ≈ {} s of wall-clock annotation time at 23 s/answer",
        10 * 23
    );

    // --- crowd oracle: majority of three noisy workers ------------------
    let w1 = Box::new(SampledAnnotatorOracle::new(&data.labels, 5, 1));
    let w2 = Box::new(SampledAnnotatorOracle::new(&data.labels, 5, 2));
    let w3 = Box::new(SampledAnnotatorOracle::new(&data.labels, 5, 3));
    let mut crowd = MajorityOracle::new(vec![w1, w2, w3]);
    let run2 = darwin.run(Seed::Rule(seed), &mut crowd);
    println!(
        "crowd majority (3 × k=5 workers): {} questions, recall {:.2}, cost ${:.2}",
        run2.questions(),
        coverage(&run2.positives, &data.labels),
        crowd.cost_cents() as f64 / 100.0
    );
}

//! A real Darwin cluster over loopback TCP: coordinator + 2 shard
//! workers + 1 oracle worker, every worker a `darwin-worker` child
//! process dialing the coordinator's socket.
//!
//! The coordinator binds an ephemeral listener, launches the workers
//! with `--dial` (shard workers advertise their spans with `--span`),
//! collects the dial-ins through [`WorkerRegistry`], and runs the same
//! interactive discovery task twice — once fully in-process, once with
//! the benefit partitions and the oracle behind real sockets — then
//! asserts the cluster run reproduces the local positives and scores
//! exactly. Deployment is an execution detail, never a behavioral one;
//! sockets are no exception.
//!
//! ```sh
//! cargo build --release && cargo run --release --example cluster
//! ```
//!
//! (The build step matters: the example spawns the shipped
//! `darwin-worker` binary next to its own executable.)
//!
//! With `--resume`, the cluster leg additionally exercises the durable
//! session path: the in-process run is suspended at a wave barrier,
//! serialized to snapshot bytes, and the *cluster* completes it — the
//! resumed socket deployment must land on the identical final P and
//! bit-identical scores.

use darwin::core::{ShardConnector, WireOracle};
use darwin::index::ShardMap;
use darwin::prelude::*;
use darwin::wire::{Listener, Transport, WireError, WorkerRegistry};
use darwin_datasets::directions;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::Mutex;
use std::time::Instant;

const N: usize = 1200;
const SEED: u64 = 42;
const SHARDS: usize = 2;

/// The shipped worker binary, next to this example's executable
/// (`target/<profile>/examples/cluster` → `target/<profile>/darwin-worker`).
fn worker_exe() -> PathBuf {
    let exe = std::env::current_exe().expect("own path");
    exe.parent()
        .and_then(|p| p.parent())
        .map(|d| d.join("darwin-worker"))
        .filter(|p| p.exists())
        .expect("darwin-worker not found — run `cargo build --release` first")
}

fn main() {
    let resume_mode = std::env::args().any(|a| a == "--resume");
    let data = directions::generate(N, SEED);
    let index_cfg = IndexConfig {
        max_phrase_len: 4,
        min_count: 2,
        ..Default::default()
    };
    let index = IndexSet::build(&data.corpus, &index_cfg);
    let cfg = DarwinConfig {
        budget: 20,
        n_candidates: 2000,
        shards: SHARDS,
        batch: BatchPolicy::Fixed(2),
        fanout: Fanout::Concurrent,
        ..DarwinConfig::fast()
    };
    let seed_rule = Heuristic::phrase(&data.corpus, data.seed_rules[0]).unwrap();

    // Local reference: everything in this process.
    let t0 = Instant::now();
    let local = {
        let darwin = Darwin::new(&data.corpus, &index, cfg.clone());
        let mut oracle = Immediate::new(GroundTruthOracle::new(&data.labels, 0.8));
        darwin.run_async(Seed::Rule(seed_rule.clone()), &mut oracle)
    };
    let local_wall = t0.elapsed();

    // ---- stand up the cluster ----
    let listener = Listener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let exe = worker_exe();
    let map = ShardMap::new(N, SHARDS);
    let mut children: Vec<Child> = Vec::new();
    for s in 0..SHARDS {
        let span = map.range(s);
        eprintln!("[coordinator] launching shard worker for ids {span:?}");
        children.push(
            Command::new(&exe)
                .args(["shard", "--dial", &addr, "--span"])
                .arg(span.start.to_string())
                .arg(span.end.to_string())
                .spawn()
                .expect("spawn shard worker"),
        );
    }
    eprintln!("[coordinator] launching oracle worker");
    children.push(
        Command::new(&exe)
            .args(["oracle", "--directions"])
            .arg(N.to_string())
            .arg(SEED.to_string())
            .args(["--dial", &addr])
            .spawn()
            .expect("spawn oracle worker"),
    );
    // Workers dial in and register; the registry orders the shard
    // connections by their advertised spans.
    let registry = WorkerRegistry::accept(&listener, SHARDS, 1, 0).expect("workers register");

    // Hand the registered connections to the engine: connect-or-abort —
    // a shard whose advertised span disagrees with the partition the
    // engine asks for is refused, and (in this minimal deployment) so is
    // any reconnect attempt after a worker death.
    let slots: Mutex<Vec<_>> = Mutex::new(registry.shards.into_iter().map(Some).collect());
    let connect: Box<ShardConnector> = Box::new(move |s, range| {
        let (reg, t) = slots.lock().unwrap()[s]
            .take()
            .ok_or_else(|| WireError::Protocol(format!("no spare worker for shard {s}")))?;
        if reg.span != Some((range.start, range.end)) {
            return Err(WireError::Protocol(format!(
                "shard {s} wants {range:?} but the worker advertised {:?}",
                reg.span
            )));
        }
        Ok(Box::new(t) as Box<dyn Transport>)
    });

    // With `--resume`, the cluster doesn't start the session — it
    // *finishes* one. Suspend the in-process run at a wave barrier, keep
    // only the serialized bytes (the suspended engine and its oracle are
    // dropped — that's the crash), and hand them to the socket deployment.
    let snapshot_bytes = resume_mode.then(|| {
        let darwin = Darwin::new(&data.corpus, &index, cfg.clone());
        let mut oracle = Immediate::new(GroundTruthOracle::new(&data.labels, 0.8));
        match darwin.snapshot(Seed::Rule(seed_rule.clone()), &mut oracle, 2) {
            SessionOutcome::Suspended(snap) => {
                eprintln!(
                    "[coordinator] suspended at wave {} — {} snapshot bytes survive the crash",
                    snap.counters.waves,
                    snap.to_bytes().len()
                );
                snap.to_bytes()
            }
            SessionOutcome::Finished(_) => unreachable!("budget {} outlives wave 2", cfg.budget),
        }
    });

    let t1 = Instant::now();
    let clustered = {
        let darwin = Darwin::new(&data.corpus, &index, cfg).with_remote_shards(connect);
        let (_, oracle_t) = registry.oracles.into_iter().next().expect("oracle slot");
        let mut oracle = WireOracle::connect(Box::new(oracle_t)).expect("oracle handshake");
        match &snapshot_bytes {
            Some(bytes) => darwin
                .resume(bytes, &mut oracle)
                .expect("resume on cluster"),
            None => darwin.run_async(Seed::Rule(seed_rule), &mut oracle),
        }
    };
    let cluster_wall = t1.elapsed();
    for mut child in children {
        let _ = child.wait();
    }

    // ---- the contract ----
    assert!(
        clustered.run.wire_error.is_none(),
        "cluster run failed: {:?}",
        clustered.run.wire_error
    );
    assert_eq!(
        local.run.positives, clustered.run.positives,
        "cluster P must equal the local P exactly"
    );
    assert_eq!(
        local.run.scores, clustered.run.scores,
        "cluster scores must be bit-identical to local"
    );
    assert_eq!(local.run.questions(), clustered.run.questions());

    let recall = coverage(&clustered.run.positives, &data.labels);
    println!(
        "local run:    {:>6.2?}  ({} questions)",
        local_wall,
        local.run.questions()
    );
    println!(
        "cluster run:  {:>6.2?}  ({SHARDS} shard workers + 1 oracle worker over TCP, {} waves{})",
        cluster_wall,
        clustered.report.waves,
        if resume_mode {
            ", resumed from a wave-2 snapshot"
        } else {
            ""
        }
    );
    println!(
        "accepted {} rules, |P| = {}, recall {recall:.2} — identical P and bit-identical scores across deployments",
        clustered.run.accepted.len(),
        clustered.run.positives.len(),
    );
}

//! The protocol messages spoken across the wire boundary.
//!
//! One [`Request`] / [`Response`] pair covers all three worker roles —
//! shard partitions, oracles and classifiers — so a single serve loop can
//! dispatch whatever the coordinator sends and reply [`Response::Error`]
//! to anything out of place. Every request receives exactly one response
//! (strict request/response discipline: the coordinator never pipelines,
//! so a reply can always be attributed to its request).
//!
//! Aggregates cross the wire as [`WireAgg`] (plain integers, not
//! `darwin-core` types — this crate sits below the engine) and corpora as
//! [`CorpusSlice`] (the display texts, re-analyzed on the worker: the
//! tokenizer, tagger, parser and index construction are deterministic, so
//! both sides materialize bit-identical sentences, vocabularies and rule
//! numberings from the same texts).

use crate::codec::{Decode, Encode, Reader};
use crate::error::WireError;
use crate::frame::PROTOCOL_VERSION;
use crate::transport::Transport;
use darwin_grammar::Heuristic;
use darwin_index::{IndexConfig, RuleRef};
use darwin_text::Corpus;

/// A shippable corpus: the sentence display texts of a contiguous id
/// range. `base` is the id of the first text, so a slice can describe a
/// shard's span or (with `base = 0` and every text) the whole corpus.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusSlice {
    /// Sentence id of `texts[0]`.
    pub base: u32,
    /// Display text per sentence, in id order.
    pub texts: Vec<String>,
}

impl CorpusSlice {
    /// The whole corpus as a slice (what shard/classifier init ships: the
    /// heuristic index needs global postings, so workers hold the full
    /// corpus even though they own only a span of it).
    pub fn full(corpus: &Corpus) -> CorpusSlice {
        CorpusSlice {
            base: 0,
            texts: (0..corpus.len() as u32).map(|id| corpus.text(id)).collect(),
        }
    }

    /// Re-analyze into a [`Corpus`]. Only valid for `base == 0` slices
    /// (sentence ids are positions, so a partial slice would renumber).
    pub fn restore(&self) -> Result<Corpus, WireError> {
        if self.base != 0 {
            return Err(WireError::Protocol(
                "cannot restore a corpus from a non-zero-based slice".into(),
            ));
        }
        Ok(Corpus::from_texts(self.texts.iter()))
    }
}

impl Encode for CorpusSlice {
    fn encode(&self, out: &mut Vec<u8>) {
        self.base.encode(out);
        self.texts.encode(out);
    }
}
impl Decode for CorpusSlice {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CorpusSlice {
            base: u32::decode(r)?,
            texts: Vec::decode(r)?,
        })
    }
}

/// A benefit-aggregate fragment in wire form (mirrors
/// `darwin_core::BenefitAgg`; integer fields, so merging and comparison
/// are exact on both sides of the boundary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireAgg {
    /// `|C_r ∩ P|` restricted to the shard's span.
    pub covered_pos: u64,
    /// `|C_r \ P|` restricted to the span.
    pub new_instances: u64,
    /// Fixed-point score sum over the span's `C_r \ P`.
    pub sum_q: i64,
}

impl Encode for WireAgg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.covered_pos.encode(out);
        self.new_instances.encode(out);
        self.sum_q.encode(out);
    }
}
impl Decode for WireAgg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(WireAgg {
            covered_pos: u64::decode(r)?,
            new_instances: u64::decode(r)?,
            sum_q: i64::decode(r)?,
        })
    }
}

/// A freshly generated candidate with its search statistics (mirrors
/// `darwin_core::candidates::Candidate`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScoredRule {
    /// The candidate's index handle.
    pub rule: RuleRef,
    /// `|C_r ∩ P|` at generation time (global).
    pub overlap: u64,
    /// `|C_r|` (global).
    pub count: u64,
}

impl Encode for ScoredRule {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rule.encode(out);
        self.overlap.encode(out);
        self.count.encode(out);
    }
}
impl Decode for ScoredRule {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ScoredRule {
            rule: RuleRef::decode(r)?,
            overlap: u64::decode(r)?,
            count: u64::decode(r)?,
        })
    }
}

/// The benefit classifier a remote scorer should build (mirrors
/// `darwin_classifier::ClassifierKind` without depending on it).
#[derive(Clone, Debug, PartialEq)]
pub enum WireClassifierKind {
    /// The Kim CNN with explicit hyper-parameters.
    Cnn {
        /// Convolution widths.
        widths: Vec<u32>,
        /// Filters per width.
        filters: u32,
        /// First fully-connected layer width.
        hidden: u32,
        /// Maximum sentence length.
        max_len: u32,
        /// Training epochs.
        epochs: u32,
        /// Adam learning rate.
        lr: f32,
        /// Minibatch size.
        batch: u32,
    },
    /// Logistic regression with explicit hyper-parameters.
    LogReg {
        /// Training epochs.
        epochs: u32,
        /// Learning rate.
        lr: f32,
        /// L2 on the dense block.
        l2: f32,
        /// L2 on the bag-of-words block.
        l2_bow: f32,
    },
}

impl Encode for WireClassifierKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireClassifierKind::Cnn {
                widths,
                filters,
                hidden,
                max_len,
                epochs,
                lr,
                batch,
            } => {
                out.push(0);
                widths.encode(out);
                filters.encode(out);
                hidden.encode(out);
                max_len.encode(out);
                epochs.encode(out);
                lr.encode(out);
                batch.encode(out);
            }
            WireClassifierKind::LogReg {
                epochs,
                lr,
                l2,
                l2_bow,
            } => {
                out.push(1);
                epochs.encode(out);
                lr.encode(out);
                l2.encode(out);
                l2_bow.encode(out);
            }
        }
    }
}
impl Decode for WireClassifierKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(WireClassifierKind::Cnn {
                widths: Vec::decode(r)?,
                filters: u32::decode(r)?,
                hidden: u32::decode(r)?,
                max_len: u32::decode(r)?,
                epochs: u32::decode(r)?,
                lr: f32::decode(r)?,
                batch: u32::decode(r)?,
            }),
            1 => Ok(WireClassifierKind::LogReg {
                epochs: u32::decode(r)?,
                lr: f32::decode(r)?,
                l2: f32::decode(r)?,
                l2_bow: f32::decode(r)?,
            }),
            t => Err(WireError::Corrupt(format!("classifier kind tag {t}"))),
        }
    }
}

/// Coordinator → worker messages. See the module docs for the discipline.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Version negotiation opener (must be the first request).
    Hello {
        /// Newest protocol version the client speaks.
        version: u8,
    },
    /// Stand up a shard partition: full corpus, index recipe, owned span,
    /// current positives (restricted to the span) and span scores.
    ShardInit {
        /// The corpus (workers re-analyze and re-index it).
        corpus: CorpusSlice,
        /// Index construction recipe — must match the coordinator's.
        index: IndexConfig,
        /// First owned sentence id.
        lo: u32,
        /// One past the last owned sentence id.
        hi: u32,
        /// Current positive ids within `[lo, hi)`.
        positives: Vec<u32>,
        /// Current scores for `[lo, hi)`, in id order.
        scores: Vec<f32>,
    },
    /// Start tracking fragments for `rules` (scratch computation).
    Track {
        /// Rules to track.
        rules: Vec<RuleRef>,
    },
    /// Start tracking freshly generated candidates (statistics-seeded).
    TrackScored {
        /// Candidates with their search statistics.
        cands: Vec<ScoredRule>,
    },
    /// A full re-score epoch: replace the span scores and rebuild every
    /// fragment.
    Rebuild {
        /// New scores for the span, in id order.
        scores: Vec<f32>,
    },
    /// Drop fragments for every rule *not* listed.
    Retain {
        /// Rules to keep.
        keep: Vec<RuleRef>,
    },
    /// `P` grew by these ids (all within the span, none previously
    /// positive); patch fragments with pre-retrain scores, then extend the
    /// worker's positive set.
    PositivesAdded {
        /// The new positive ids.
        ids: Vec<u32>,
    },
    /// Incremental re-score journal for the span (`(id, old, new)`,
    /// id-sorted — a `ScoreCache::changes_in` slice).
    ScoresChanged {
        /// The journal run.
        changes: Vec<(u32, f32, f32)>,
    },
    /// Read fragments for `rules` (resync/audit; the steady-state path
    /// rides mutation replies instead).
    Fragments {
        /// Rules to read.
        rules: Vec<RuleRef>,
    },
    /// Submit one oracle question.
    Submit {
        /// Driver-assigned question id.
        qid: u64,
        /// The rule under question.
        rule: Heuristic,
        /// Its coverage set `C_r`.
        coverage: Vec<u32>,
    },
    /// Collect available oracle answers, waiting up to `timeout_ms` for
    /// the first one (0 = return immediately).
    Poll {
        /// Longest the worker may block before replying.
        timeout_ms: u64,
    },
    /// Stand up a remote classifier over the corpus.
    ClassifierInit {
        /// The corpus (workers re-analyze it).
        corpus: CorpusSlice,
        /// Seed for the deterministic embedding training.
        embed_seed: u64,
        /// Which classifier to build.
        kind: WireClassifierKind,
        /// Model seed.
        model_seed: u64,
    },
    /// Train the remote classifier from scratch on these examples.
    Fit {
        /// Positive sentence ids.
        pos: Vec<u32>,
        /// Negative sentence ids.
        neg: Vec<u32>,
    },
    /// Score these sentence ids.
    PredictBatch {
        /// Ids to score, in the order scores should come back.
        ids: Vec<u32>,
    },
    /// Orderly teardown; the worker replies `Ack` and exits its loop.
    Shutdown,
    /// The coordinator appended sentences to the corpus: grow the worker's
    /// corpus, index and span-local state to match. Sent to every shard
    /// (each needs the full grown corpus to index), and to the classifier
    /// worker (which grows its corpus and embedding table).
    CorpusAppend {
        /// The appended sentence texts, in corpus-id order.
        texts: Vec<String>,
        /// The receiver's owned span's new exclusive upper bound — the
        /// grown corpus length for the last shard and the classifier,
        /// unchanged for every other shard (epoch rule: the chunk split
        /// is frozen, appended ids all join the last shard).
        new_hi: u32,
        /// Scores for ids the receiver *newly* owns (the appended tail of
        /// the last shard's span; empty for the others).
        scores: Vec<f32>,
    },
}

/// Worker → coordinator messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Version negotiation answer: `min(client, worker)`.
    Hello {
        /// The agreed session version.
        version: u8,
    },
    /// The request was applied; nothing to report.
    Ack,
    /// Fragments that changed under the preceding mutation, with their new
    /// values (sorted by rule, so replies are deterministic).
    FragmentDeltas {
        /// `(rule, fragment)` pairs.
        changed: Vec<(RuleRef, WireAgg)>,
    },
    /// Fragment read results, in request order (`None` = untracked).
    Fragments {
        /// One slot per requested rule.
        aggs: Vec<Option<WireAgg>>,
    },
    /// Oracle answers that have arrived, sorted by question id.
    Answers {
        /// `(qid, verdict)` pairs.
        answers: Vec<(u64, bool)>,
    },
    /// Prediction results, in request order.
    Scores {
        /// One score per requested id.
        scores: Vec<f32>,
    },
    /// The worker could not apply the request.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Encode for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Hello { version } => {
                out.push(0);
                version.encode(out);
            }
            Request::ShardInit {
                corpus,
                index,
                lo,
                hi,
                positives,
                scores,
            } => {
                out.push(1);
                corpus.encode(out);
                index.encode(out);
                lo.encode(out);
                hi.encode(out);
                positives.encode(out);
                scores.encode(out);
            }
            Request::Track { rules } => {
                out.push(2);
                rules.encode(out);
            }
            Request::TrackScored { cands } => {
                out.push(3);
                cands.encode(out);
            }
            Request::Rebuild { scores } => {
                out.push(4);
                scores.encode(out);
            }
            Request::Retain { keep } => {
                out.push(5);
                keep.encode(out);
            }
            Request::PositivesAdded { ids } => {
                out.push(6);
                ids.encode(out);
            }
            Request::ScoresChanged { changes } => {
                out.push(7);
                changes.encode(out);
            }
            Request::Fragments { rules } => {
                out.push(8);
                rules.encode(out);
            }
            Request::Submit {
                qid,
                rule,
                coverage,
            } => {
                out.push(9);
                qid.encode(out);
                rule.encode(out);
                coverage.encode(out);
            }
            Request::Poll { timeout_ms } => {
                out.push(10);
                timeout_ms.encode(out);
            }
            Request::ClassifierInit {
                corpus,
                embed_seed,
                kind,
                model_seed,
            } => {
                out.push(11);
                corpus.encode(out);
                embed_seed.encode(out);
                kind.encode(out);
                model_seed.encode(out);
            }
            Request::Fit { pos, neg } => {
                out.push(12);
                pos.encode(out);
                neg.encode(out);
            }
            Request::PredictBatch { ids } => {
                out.push(13);
                ids.encode(out);
            }
            Request::Shutdown => out.push(14),
            Request::CorpusAppend {
                texts,
                new_hi,
                scores,
            } => {
                out.push(15);
                texts.encode(out);
                new_hi.encode(out);
                scores.encode(out);
            }
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Request::Hello {
                version: u8::decode(r)?,
            }),
            1 => Ok(Request::ShardInit {
                corpus: CorpusSlice::decode(r)?,
                index: IndexConfig::decode(r)?,
                lo: u32::decode(r)?,
                hi: u32::decode(r)?,
                positives: Vec::decode(r)?,
                scores: Vec::decode(r)?,
            }),
            2 => Ok(Request::Track {
                rules: Vec::decode(r)?,
            }),
            3 => Ok(Request::TrackScored {
                cands: Vec::decode(r)?,
            }),
            4 => Ok(Request::Rebuild {
                scores: Vec::decode(r)?,
            }),
            5 => Ok(Request::Retain {
                keep: Vec::decode(r)?,
            }),
            6 => Ok(Request::PositivesAdded {
                ids: Vec::decode(r)?,
            }),
            7 => Ok(Request::ScoresChanged {
                changes: Vec::decode(r)?,
            }),
            8 => Ok(Request::Fragments {
                rules: Vec::decode(r)?,
            }),
            9 => Ok(Request::Submit {
                qid: u64::decode(r)?,
                rule: Heuristic::decode(r)?,
                coverage: Vec::decode(r)?,
            }),
            10 => Ok(Request::Poll {
                timeout_ms: u64::decode(r)?,
            }),
            11 => Ok(Request::ClassifierInit {
                corpus: CorpusSlice::decode(r)?,
                embed_seed: u64::decode(r)?,
                kind: WireClassifierKind::decode(r)?,
                model_seed: u64::decode(r)?,
            }),
            12 => Ok(Request::Fit {
                pos: Vec::decode(r)?,
                neg: Vec::decode(r)?,
            }),
            13 => Ok(Request::PredictBatch {
                ids: Vec::decode(r)?,
            }),
            14 => Ok(Request::Shutdown),
            15 => Ok(Request::CorpusAppend {
                texts: Vec::decode(r)?,
                new_hi: u32::decode(r)?,
                scores: Vec::decode(r)?,
            }),
            t => Err(WireError::Corrupt(format!("request tag {t}"))),
        }
    }
}

impl Encode for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Hello { version } => {
                out.push(0);
                version.encode(out);
            }
            Response::Ack => out.push(1),
            Response::FragmentDeltas { changed } => {
                out.push(2);
                changed.encode(out);
            }
            Response::Fragments { aggs } => {
                out.push(3);
                aggs.encode(out);
            }
            Response::Answers { answers } => {
                out.push(4);
                answers.encode(out);
            }
            Response::Scores { scores } => {
                out.push(5);
                scores.encode(out);
            }
            Response::Error { message } => {
                out.push(6);
                message.encode(out);
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Response::Hello {
                version: u8::decode(r)?,
            }),
            1 => Ok(Response::Ack),
            2 => Ok(Response::FragmentDeltas {
                changed: Vec::decode(r)?,
            }),
            3 => Ok(Response::Fragments {
                aggs: Vec::decode(r)?,
            }),
            4 => Ok(Response::Answers {
                answers: Vec::decode(r)?,
            }),
            5 => Ok(Response::Scores {
                scores: Vec::decode(r)?,
            }),
            6 => Ok(Response::Error {
                message: String::decode(r)?,
            }),
            t => Err(WireError::Corrupt(format!("response tag {t}"))),
        }
    }
}

/// Client side of one protocol connection: owns the transport and the
/// request sequence counter. Every request is tagged with a
/// monotonically increasing `seq` that the worker must echo — a
/// duplicated, dropped or reordered frame desynchronizes the echo and
/// surfaces as a clean [`WireError::Protocol`] instead of a stale reply
/// being silently accepted for the wrong request.
pub struct Session {
    transport: Box<dyn Transport>,
    seq: u64,
}

impl Session {
    /// A client session over `transport` (sequence starts at 0).
    pub fn new(transport: Box<dyn Transport>) -> Session {
        Session { transport, seq: 0 }
    }

    /// One strict request/response exchange: tag, send, block for the
    /// echo-checked reply, and translate a worker-reported
    /// [`Response::Error`] into [`WireError::Remote`].
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        self.send_request(req)?;
        self.recv_reply()
    }

    /// Send phase of an exchange: tag `req` with the next sequence number
    /// and flush it to the worker, without waiting for the reply. A
    /// concurrent fan-out drives the send phase on every shard session
    /// first, then joins the [`Session::recv_reply`]s in fixed shard
    /// order — each session still carries at most one request in flight,
    /// so the sequence-echo discipline is untouched.
    pub fn send_request(&mut self, req: &Request) -> Result<(), WireError> {
        let mut body = Vec::new();
        req.encode(&mut body);
        self.send_encoded(&body)
    }

    /// Send phase over a pre-encoded request body (the bytes
    /// `Request::encode` would produce, without the sequence tag).
    /// Shard-invariant broadcasts encode the body once and ship the same
    /// bytes to every session, each under its own sequence number.
    pub fn send_encoded(&mut self, body: &[u8]) -> Result<(), WireError> {
        self.seq += 1;
        let mut buf = Vec::with_capacity(8 + body.len());
        self.seq.encode(&mut buf);
        buf.extend_from_slice(body);
        self.transport.send(&buf)?;
        self.transport.flush()
    }

    /// Receive phase of an exchange: block for the reply to the request
    /// sent by the last [`Session::send_request`]/[`Session::send_encoded`],
    /// check the sequence echo, and translate a worker-reported
    /// [`Response::Error`] into [`WireError::Remote`].
    pub fn recv_reply(&mut self) -> Result<Response, WireError> {
        let frame = self.transport.recv()?;
        let mut r = Reader::new(&frame);
        let seq = u64::decode(&mut r)?;
        let resp = Response::decode(&mut r)?;
        r.finish()?;
        if seq != self.seq {
            return Err(WireError::Protocol(format!(
                "reply for request {seq} while awaiting {} (duplicated or dropped frame)",
                self.seq
            )));
        }
        match resp {
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Ok(other),
        }
    }

    /// Version negotiation (see [`crate::frame`] docs): offer our newest
    /// version, accept the worker's `min`, and return the agreed session
    /// version.
    pub fn hello(&mut self) -> Result<u8, WireError> {
        let reply = self.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match reply {
            Response::Hello { version }
                if (crate::frame::MIN_SUPPORTED_VERSION..=PROTOCOL_VERSION).contains(&version) =>
            {
                Ok(version)
            }
            Response::Hello { version } => Err(WireError::BadVersion {
                got: version,
                want: PROTOCOL_VERSION,
            }),
            other => Err(WireError::Protocol(format!(
                "expected Hello, got {other:?}"
            ))),
        }
    }
}

/// Worker side: receive the next tagged request. `Ok(None)` on orderly
/// disconnect.
pub fn recv_request(t: &mut dyn Transport) -> Result<Option<(u64, Request)>, WireError> {
    let frame = match t.recv() {
        Ok(f) => f,
        Err(WireError::Disconnected) => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut r = Reader::new(&frame);
    let seq = u64::decode(&mut r)?;
    let req = Request::decode(&mut r)?;
    r.finish()?;
    Ok(Some((seq, req)))
}

/// Worker side: send `resp` echoing the request's `seq`, flushed — a
/// response is always a boundary (the coordinator is blocked on it).
pub fn send_response(t: &mut dyn Transport, seq: u64, resp: &Response) -> Result<(), WireError> {
    let mut buf = Vec::new();
    seq.encode(&mut buf);
    resp.encode(&mut buf);
    t.send(&buf)?;
    t.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(m: Request) {
        assert_eq!(Request::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    fn roundtrip_resp(m: Response) {
        assert_eq!(Response::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn requests_roundtrip() {
        let c = Corpus::from_texts(["the shuttle to the airport", "order a pizza now"]);
        roundtrip_req(Request::Hello { version: 1 });
        roundtrip_req(Request::ShardInit {
            corpus: CorpusSlice::full(&c),
            index: IndexConfig::small(),
            lo: 0,
            hi: 2,
            positives: vec![0],
            scores: vec![0.5, 0.25],
        });
        roundtrip_req(Request::Track {
            rules: vec![RuleRef::Root, RuleRef::Phrase(3)],
        });
        roundtrip_req(Request::TrackScored {
            cands: vec![ScoredRule {
                rule: RuleRef::Tree(2),
                overlap: 1,
                count: 9,
            }],
        });
        roundtrip_req(Request::Rebuild {
            scores: vec![0.1, 0.9],
        });
        roundtrip_req(Request::Retain {
            keep: vec![RuleRef::Phrase(1)],
        });
        roundtrip_req(Request::PositivesAdded { ids: vec![1] });
        roundtrip_req(Request::ScoresChanged {
            changes: vec![(1, 0.5, 0.75)],
        });
        roundtrip_req(Request::Fragments {
            rules: vec![RuleRef::Phrase(1)],
        });
        roundtrip_req(Request::Submit {
            qid: 7,
            rule: Heuristic::phrase(&c, "shuttle to").unwrap(),
            coverage: vec![0],
        });
        roundtrip_req(Request::Poll { timeout_ms: 250 });
        roundtrip_req(Request::ClassifierInit {
            corpus: CorpusSlice::full(&c),
            embed_seed: 42,
            kind: WireClassifierKind::LogReg {
                epochs: 12,
                lr: 0.1,
                l2: 1e-4,
                l2_bow: 1e-2,
            },
            model_seed: 42,
        });
        roundtrip_req(Request::Fit {
            pos: vec![0],
            neg: vec![1],
        });
        roundtrip_req(Request::PredictBatch { ids: vec![0, 1] });
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::CorpusAppend {
            texts: vec!["the late bus to the airport".into(), "pizza now".into()],
            new_hi: 9,
            scores: vec![0.5, 0.5],
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Hello { version: 1 });
        roundtrip_resp(Response::Ack);
        roundtrip_resp(Response::FragmentDeltas {
            changed: vec![(
                RuleRef::Phrase(4),
                WireAgg {
                    covered_pos: 2,
                    new_instances: 5,
                    sum_q: -17,
                },
            )],
        });
        roundtrip_resp(Response::Fragments {
            aggs: vec![
                None,
                Some(WireAgg {
                    covered_pos: 0,
                    new_instances: 1,
                    sum_q: 10_000,
                }),
            ],
        });
        roundtrip_resp(Response::Answers {
            answers: vec![(0, true), (3, false)],
        });
        roundtrip_resp(Response::Scores {
            scores: vec![0.125, 0.875],
        });
        roundtrip_resp(Response::Error {
            message: "span mismatch".into(),
        });
    }

    #[test]
    fn corpus_slice_restores_identically() {
        let c = Corpus::from_texts([
            "what is the best way to get to the airport",
            "order a pizza, please!",
        ]);
        let slice = CorpusSlice::full(&c);
        let back = slice.restore().unwrap();
        assert_eq!(back.len(), c.len());
        for id in 0..c.len() as u32 {
            assert_eq!(back.sentence(id).tokens, c.sentence(id).tokens);
            assert_eq!(back.sentence(id).tags, c.sentence(id).tags);
            assert_eq!(back.sentence(id).heads, c.sentence(id).heads);
        }
        assert!(CorpusSlice {
            base: 1,
            texts: vec![]
        }
        .restore()
        .is_err());
    }

    #[test]
    fn session_refuses_stale_replies() {
        use crate::transport::InProc;
        let (client, mut server) = InProc::pair();
        let mut session = Session::new(Box::new(client));
        // A conforming worker echoing sequence numbers.
        let echo = std::thread::spawn(move || {
            for _ in 0..2 {
                let (seq, _req) = recv_request(&mut server).unwrap().unwrap();
                send_response(&mut server, seq, &Response::Ack).unwrap();
            }
            // Then one *stale* reply: a retransmit of the old sequence.
            let (_seq, _req) = recv_request(&mut server).unwrap().unwrap();
            send_response(&mut server, 1, &Response::Ack).unwrap();
        });
        assert_eq!(session.call(&Request::Shutdown).unwrap(), Response::Ack);
        assert_eq!(session.call(&Request::Shutdown).unwrap(), Response::Ack);
        let err = session.call(&Request::Shutdown).unwrap_err();
        assert!(matches!(err, WireError::Protocol(_)), "got {err:?}");
        echo.join().unwrap();
    }

    #[test]
    fn session_hello_negotiates_version_one() {
        use crate::transport::InProc;
        let (client, mut server) = InProc::pair();
        let worker = std::thread::spawn(move || {
            let (seq, req) = recv_request(&mut server).unwrap().unwrap();
            let Request::Hello { version } = req else {
                panic!("expected hello")
            };
            send_response(
                &mut server,
                seq,
                &Response::Hello {
                    version: version.min(PROTOCOL_VERSION),
                },
            )
            .unwrap();
        });
        let mut session = Session::new(Box::new(client));
        assert_eq!(session.hello().unwrap(), PROTOCOL_VERSION);
        worker.join().unwrap();
    }

    #[test]
    fn corrupt_message_is_a_clean_error() {
        assert!(matches!(
            Request::from_bytes(&[200]),
            Err(WireError::Corrupt(_))
        ));
        assert!(matches!(
            Response::from_bytes(&[]),
            Err(WireError::Truncated { .. })
        ));
    }
}

//! The wire-level error type.

use std::fmt;

/// Everything that can go wrong at the codec, frame or transport layer.
///
/// The coordinator-side contract is that a wire failure is always
/// *surfaced* as one of these variants — never a panic, and never a
/// silently partial result: a failed shard operation poisons its
/// coordinator (reads stop answering), a failed oracle transport reports
/// unhealthy so the wave driver abandons cleanly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The underlying byte channel failed (pipe or socket error).
    Io(String),
    /// The peer hung up: EOF, a closed channel, a dead worker process.
    Disconnected,
    /// A frame header did not start with the protocol magic.
    BadMagic([u8; 2]),
    /// The peer speaks a protocol version outside our supported window.
    BadVersion {
        /// The version the peer offered.
        got: u8,
        /// The newest version we speak.
        want: u8,
    },
    /// A frame or payload ended before its declared length.
    Truncated {
        /// Bytes the header or field declared.
        want: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The frame checksum did not match its payload (corrupt in transit).
    Checksum,
    /// A payload failed to decode as the expected message.
    Corrupt(String),
    /// A structurally valid message violated the request/response protocol
    /// (e.g. a reply of the wrong kind, or a frame after shutdown).
    Protocol(String),
    /// The worker reported an application-level failure.
    Remote(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Disconnected => write!(f, "wire peer disconnected"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion { got, want } => {
                write!(f, "unsupported protocol version {got} (we speak {want})")
            }
            WireError::Truncated { want, got } => {
                write!(f, "truncated frame: declared {want} bytes, got {got}")
            }
            WireError::Checksum => write!(f, "frame checksum mismatch"),
            WireError::Corrupt(m) => write!(f, "corrupt payload: {m}"),
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
            WireError::Remote(m) => write!(f, "remote worker error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::UnexpectedEof | ErrorKind::BrokenPipe | ErrorKind::ConnectionReset => {
                WireError::Disconnected
            }
            _ => WireError::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_eof_maps_to_disconnected() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert_eq!(WireError::from(eof), WireError::Disconnected);
        let other = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(WireError::from(other), WireError::Io(_)));
    }

    #[test]
    fn displays_are_informative() {
        let e = WireError::BadVersion { got: 9, want: 1 };
        assert!(e.to_string().contains('9'));
        assert!(WireError::Truncated { want: 10, got: 3 }
            .to_string()
            .contains("10"));
    }
}

//! Byte transports the protocol runs over.
//!
//! A [`Transport`] moves whole frames between a coordinator and one
//! worker. Two backends ship:
//!
//! * [`InProc`] — a pair of in-process channels. The worker is a thread.
//!   Frames still pass through the real encoder, framer and checksum, so
//!   tests and CI exercise the full codec path with zero process-spawn
//!   cost.
//! * [`ProcTransport`] / [`StdioTransport`] — a spawned child process
//!   spoken to over its stdin/stdout pipes ([`ProcTransport`] is the
//!   parent side, [`StdioTransport`] the child side). A reader thread
//!   owns the child's stdout so receives can honor timeouts; the child is
//!   killed when the transport drops.
//!
//! Both implement the same trait, and the engine's equivalence guarantee
//! quantifies over it: any transport replays the in-process trace byte
//! for byte.

use crate::error::WireError;
use crate::frame;
use std::io::{BufWriter, Read, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::time::Duration;

/// Write-buffer capacity for byte-stream transports. Sized to hold a
/// typical request burst (sequence tag + message) in one syscall while
/// staying far below the frame cap — oversized frames fall through
/// [`BufWriter`]'s large-write path untouched.
pub const WRITE_BUF_BYTES: usize = 64 << 10;

/// A reliable, ordered frame channel to one peer.
pub trait Transport: Send {
    /// Send one message payload (framed by the transport). Byte-stream
    /// backends may buffer; callers mark request/response boundaries with
    /// [`Transport::flush`].
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError>;

    /// Push any buffered frames to the peer. Called at request/response
    /// boundaries (after a request is sent, after a response is sent) —
    /// never per frame, so multi-frame bursts coalesce into one write.
    /// Message-passing backends have nothing to buffer; the default is a
    /// no-op.
    fn flush(&mut self) -> Result<(), WireError> {
        Ok(())
    }

    /// Receive the next payload, waiting at most `timeout` (`None` =
    /// block until a frame or disconnect). `Ok(None)` means the timeout
    /// elapsed with nothing arriving.
    fn recv_timeout(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>, WireError>;

    /// Receive the next payload, blocking until it arrives.
    fn recv(&mut self) -> Result<Vec<u8>, WireError> {
        match self.recv_timeout(None)? {
            Some(p) => Ok(p),
            None => Err(WireError::Disconnected),
        }
    }
}

/// In-process channel transport (the worker is a thread).
pub struct InProc {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl InProc {
    /// A connected pair: what one end sends, the other receives.
    pub fn pair() -> (InProc, InProc) {
        let (atx, brx) = mpsc::channel();
        let (btx, arx) = mpsc::channel();
        (InProc { tx: atx, rx: arx }, InProc { tx: btx, rx: brx })
    }
}

impl Transport for InProc {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        self.tx
            .send(frame::frame(payload))
            .map_err(|_| WireError::Disconnected)
    }

    fn recv_timeout(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>, WireError> {
        let framed = match timeout {
            None => self.rx.recv().map_err(|_| WireError::Disconnected)?,
            Some(d) => match self.rx.recv_timeout(d) {
                Ok(f) => f,
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(WireError::Disconnected),
            },
        };
        frame::parse_frame(&framed).map(Some)
    }
}

/// Parent side of a spawned worker process: frames go down the child's
/// stdin, replies come back up its stdout (via a reader thread, so
/// timeouts work on every platform). The child's stderr is inherited —
/// worker panics stay visible.
pub struct ProcTransport {
    child: Child,
    stdin: BufWriter<ChildStdin>,
    frames: Receiver<Result<Vec<u8>, WireError>>,
}

impl ProcTransport {
    /// Spawn `cmd` (stdin/stdout piped) and connect to it.
    pub fn spawn(cmd: &mut Command) -> Result<ProcTransport, WireError> {
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| WireError::Io(format!("spawn failed: {e}")))?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| WireError::Io("worker stdin was not piped".into()))?;
        let mut stdout = child
            .stdout
            .take()
            .ok_or_else(|| WireError::Io("worker stdout was not piped".into()))?;
        let (tx, frames): (SyncSender<_>, _) = mpsc::sync_channel(64);
        std::thread::spawn(move || loop {
            match frame::read_frame(&mut stdout) {
                Ok(payload) => {
                    if tx.send(Ok(payload)).is_err() {
                        break; // parent side dropped
                    }
                }
                Err(WireError::Disconnected) => break, // orderly EOF
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        });
        Ok(ProcTransport {
            child,
            stdin: BufWriter::with_capacity(WRITE_BUF_BYTES, stdin),
            frames,
        })
    }
}

impl Transport for ProcTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        frame::write_frame(&mut self.stdin, payload)
    }

    fn flush(&mut self) -> Result<(), WireError> {
        self.stdin.flush()?;
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>, WireError> {
        match timeout {
            None => match self.frames.recv() {
                Ok(f) => f.map(Some),
                Err(_) => Err(WireError::Disconnected),
            },
            Some(d) => match self.frames.recv_timeout(d) {
                Ok(f) => f.map(Some),
                Err(RecvTimeoutError::Timeout) => Ok(None),
                Err(RecvTimeoutError::Disconnected) => Err(WireError::Disconnected),
            },
        }
    }
}

impl Drop for ProcTransport {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Child side of a [`ProcTransport`]: the current process's stdin/stdout.
/// Workers block on requests, so `recv_timeout` here ignores the timeout
/// and blocks (the parent owns pacing).
pub struct StdioTransport {
    stdin: std::io::Stdin,
    stdout: BufWriter<std::io::Stdout>,
}

impl StdioTransport {
    /// The current process's stdio as a transport. Take it once; stdout
    /// must carry nothing but frames (log to stderr).
    pub fn new() -> StdioTransport {
        StdioTransport {
            stdin: std::io::stdin(),
            stdout: BufWriter::with_capacity(WRITE_BUF_BYTES, std::io::stdout()),
        }
    }
}

impl Default for StdioTransport {
    fn default() -> StdioTransport {
        StdioTransport::new()
    }
}

impl Transport for StdioTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        frame::write_frame(&mut self.stdout, payload)
    }

    fn flush(&mut self) -> Result<(), WireError> {
        self.stdout.flush()?;
        Ok(())
    }

    fn recv_timeout(&mut self, _timeout: Option<Duration>) -> Result<Option<Vec<u8>>, WireError> {
        frame::read_frame(&mut self.stdin.lock()).map(Some)
    }
}

/// A transport whose pipe already closed — every operation reports
/// [`WireError::Disconnected`]. Fault-injection tests use it to model a
/// worker that died before (or mid-) conversation.
pub struct DeadTransport;

impl Transport for DeadTransport {
    fn send(&mut self, _payload: &[u8]) -> Result<(), WireError> {
        Err(WireError::Disconnected)
    }

    fn recv_timeout(&mut self, _timeout: Option<Duration>) -> Result<Option<Vec<u8>>, WireError> {
        Err(WireError::Disconnected)
    }
}

/// Generic byte-stream transport over any `Read + Write` pair — the
/// building block for socket-backed deployments (a `TcpStream` clone pair
/// slots straight in, see [`crate::net`]). Blocking; timeouts fall back
/// to blocking reads, so wrap sockets with their own read timeouts where
/// needed. Writes are buffered ([`WRITE_BUF_BYTES`]) and pushed to the
/// peer by [`Transport::flush`] at request/response boundaries.
pub struct StreamTransport<R, W: Write> {
    r: R,
    w: BufWriter<W>,
}

impl<R: Read + Send, W: Write + Send> StreamTransport<R, W> {
    /// A transport reading frames from `r` and writing frames to `w`.
    pub fn new(r: R, w: W) -> StreamTransport<R, W> {
        StreamTransport {
            r,
            w: BufWriter::with_capacity(WRITE_BUF_BYTES, w),
        }
    }
}

impl<R: Read + Send, W: Write + Send> Transport for StreamTransport<R, W> {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        frame::write_frame(&mut self.w, payload)
    }

    fn flush(&mut self) -> Result<(), WireError> {
        self.w.flush()?;
        Ok(())
    }

    fn recv_timeout(&mut self, _timeout: Option<Duration>) -> Result<Option<Vec<u8>>, WireError> {
        frame::read_frame(&mut self.r).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_pair_roundtrips_frames() {
        let (mut a, mut b) = InProc::pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
    }

    #[test]
    fn inproc_timeout_and_disconnect() {
        let (mut a, b) = InProc::pair();
        assert_eq!(
            a.recv_timeout(Some(Duration::from_millis(1))).unwrap(),
            None
        );
        drop(b);
        assert_eq!(a.recv(), Err(WireError::Disconnected));
        assert_eq!(a.send(b"x"), Err(WireError::Disconnected));
    }

    #[test]
    fn inproc_preserves_order() {
        let (mut a, mut b) = InProc::pair();
        for i in 0..10u8 {
            a.send(&[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn dead_transport_reports_disconnected() {
        let mut t = DeadTransport;
        assert_eq!(t.send(b"x"), Err(WireError::Disconnected));
        assert_eq!(t.recv(), Err(WireError::Disconnected));
    }

    #[test]
    fn stream_transport_over_buffers() {
        // Write into a Vec, then read the same bytes back.
        let mut wire = Vec::new();
        {
            let mut t = StreamTransport::new(std::io::empty(), &mut wire);
            t.send(b"hello").unwrap();
            t.send(b"world").unwrap();
            t.flush().unwrap();
        }
        let mut t = StreamTransport::new(&wire[..], std::io::sink());
        assert_eq!(t.recv().unwrap(), b"hello");
        assert_eq!(t.recv().unwrap(), b"world");
        assert_eq!(t.recv(), Err(WireError::Disconnected));
    }

    #[test]
    fn proc_transport_spawns_and_kills() {
        // `cat` echoes our frames back verbatim.
        let mut t = match ProcTransport::spawn(&mut Command::new("cat")) {
            Ok(t) => t,
            Err(_) => return, // no `cat` on this host; skip
        };
        t.send(b"through the pipe").unwrap();
        t.flush().unwrap();
        assert_eq!(t.recv().unwrap(), b"through the pipe");
        assert_eq!(
            t.recv_timeout(Some(Duration::from_millis(5))).unwrap(),
            None
        );
        drop(t); // must kill the child, not hang
    }

    /// A writer that counts how many times the transport reaches the
    /// underlying sink — the observable cost model for syscalls.
    struct CountingWriter {
        writes: std::sync::Arc<std::sync::atomic::AtomicUsize>,
        sink: Vec<u8>,
    }

    impl Write for CountingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.writes
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.sink.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// The flush discipline, pinned: N buffered frames reach the sink as
    /// exactly one write when `flush` marks the boundary — never one
    /// write per frame.
    #[test]
    fn frames_buffer_until_flush_boundary() {
        let writes = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let w = CountingWriter {
            writes: writes.clone(),
            sink: Vec::new(),
        };
        let mut t = StreamTransport::new(std::io::empty(), w);
        for i in 0..5u8 {
            t.send(&[i; 100]).unwrap();
        }
        assert_eq!(
            writes.load(std::sync::atomic::Ordering::SeqCst),
            0,
            "frames must buffer until the boundary"
        );
        t.flush().unwrap();
        assert_eq!(
            writes.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "one boundary, one write"
        );
    }
}

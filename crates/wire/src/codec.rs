//! The hand-rolled binary codec.
//!
//! Everything on the wire is encoded with [`Encode`] and decoded with
//! [`Decode`] against a bounds-checked [`Reader`]. The format is plain
//! little-endian, length-prefixed where variable:
//!
//! * fixed-width integers and floats are little-endian byte images
//!   (`f32` round-trips *bit for bit* — the byte-equivalence guarantee of
//!   the distributed engine leans on this);
//! * `String` and `Vec<T>` are a `u32` element count followed by the
//!   elements;
//! * `Option<T>` is a presence byte followed by the value;
//! * enums are a `u8` discriminant followed by the variant's fields.
//!
//! Decoding never panics and never over-allocates on corrupt input: every
//! length prefix is validated against the bytes actually remaining before
//! any allocation, and recursive patterns ([`TreePattern`]) are
//! depth-bounded.

use crate::error::WireError;
use darwin_grammar::{Heuristic, PhraseElem, PhrasePattern, TreePattern, TreeTerm};
use darwin_index::{IndexConfig, RuleRef, TreeSketchConfig};
use darwin_text::{PosTag, Sym};

/// Maximum nesting of recursive patterns a decoder will accept. Real
/// TreeMatch derivations are depth ≤ 10 (the paper's sketch bound); this
/// only guards the stack against adversarial or corrupt frames.
const MAX_PATTERN_DEPTH: usize = 64;

/// Serialize `self` onto a byte buffer.
pub trait Encode {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// The encoding as a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Deserialize `Self` from a [`Reader`].
pub trait Decode: Sized {
    /// Byte width of the encoding when it is the same for every value and
    /// every byte image is valid (`None` otherwise). Fixed-width types
    /// also implement [`Decode::decode_fixed`]; `Vec<T>` decoding uses the
    /// pair to take one bounds check for the whole vector and run a
    /// branch-free per-element loop — the hot path of score-journal
    /// frames. `bool`/`usize` stay variable: their decoders validate.
    const WIDTH: Option<usize> = None;

    /// Decode from exactly [`Decode::WIDTH`] bytes, already
    /// bounds-checked by the caller. Implemented only when `WIDTH` is
    /// `Some`.
    fn decode_fixed(_b: &[u8]) -> Self {
        unreachable!("decode_fixed on a variable-width type")
    }

    /// Consume and decode one `Self` from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Decode from a complete buffer, rejecting trailing garbage.
    fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// A bounds-checked cursor over an encoded payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                want: n,
                got: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Corrupt(format!(
                "{} trailing bytes after message",
                self.remaining()
            )))
        }
    }

    /// Decode a length prefix and validate it against the bytes left:
    /// every encoded element occupies at least `min_elem` bytes, so a
    /// corrupt prefix can never trigger a huge allocation.
    fn len_prefix(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let n = u32::decode(self)? as usize;
        let floor = n.saturating_mul(min_elem.max(1));
        if floor > self.remaining() {
            return Err(WireError::Truncated {
                want: floor,
                got: self.remaining(),
            });
        }
        Ok(n)
    }
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            const WIDTH: Option<usize> = Some(std::mem::size_of::<$t>());
            fn decode_fixed(b: &[u8]) -> Self {
                <$t>::from_le_bytes(b.try_into().unwrap())
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(Self::decode_fixed(r.take(std::mem::size_of::<$t>())?))
            }
        }
    )*};
}
int_codec!(u8, u16, u32, u64, i64);

impl Encode for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}
impl Decode for f32 {
    const WIDTH: Option<usize> = Some(4);
    fn decode_fixed(b: &[u8]) -> Self {
        f32::from_le_bytes(b.try_into().unwrap())
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self::decode_fixed(r.take(4)?))
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}
impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Corrupt(format!("bool byte {b}"))),
        }
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}
impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        usize::try_from(u64::decode(r)?).map_err(|_| WireError::Corrupt("usize overflow".into()))
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}
impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.len_prefix(1)?;
        String::from_utf8(r.take(n)?.to_vec())
            .map_err(|_| WireError::Corrupt("invalid utf-8".into()))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for x in self {
            x.encode(out);
        }
    }
}
impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match T::WIDTH {
            // Fixed-width elements: one bounds check for the whole vector
            // (the prefix validation doubles as it — `min_elem = w`), then
            // a branch-free chunked loop. This is the decode hot path:
            // score journals are `Vec<(u32, f32, f32)>`, coverage lists
            // are `Vec<u32>`.
            Some(w) => {
                let n = r.len_prefix(w)?;
                let bytes = r.take(n * w)?;
                Ok(bytes.chunks_exact(w).map(T::decode_fixed).collect())
            }
            None => {
                let n = r.len_prefix(1)?;
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(T::decode(r)?);
                }
                Ok(out)
            }
        }
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(WireError::Corrupt(format!("option byte {b}"))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}
impl<A: Decode, B: Decode> Decode for (A, B) {
    const WIDTH: Option<usize> = match (A::WIDTH, B::WIDTH) {
        (Some(a), Some(b)) => Some(a + b),
        _ => None,
    };
    fn decode_fixed(b: &[u8]) -> Self {
        let wa = A::WIDTH.unwrap();
        (A::decode_fixed(&b[..wa]), B::decode_fixed(&b[wa..]))
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
}
impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    const WIDTH: Option<usize> = match (A::WIDTH, B::WIDTH, C::WIDTH) {
        (Some(a), Some(b), Some(c)) => Some(a + b + c),
        _ => None,
    };
    fn decode_fixed(b: &[u8]) -> Self {
        let (wa, wb) = (A::WIDTH.unwrap(), B::WIDTH.unwrap());
        (
            A::decode_fixed(&b[..wa]),
            B::decode_fixed(&b[wa..wa + wb]),
            C::decode_fixed(&b[wa + wb..]),
        )
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

// ---- domain types -------------------------------------------------------

impl Encode for Sym {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}
impl Decode for Sym {
    const WIDTH: Option<usize> = Some(4);
    fn decode_fixed(b: &[u8]) -> Self {
        Sym(u32::decode_fixed(b))
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Sym(u32::decode(r)?))
    }
}

impl Encode for PosTag {
    fn encode(&self, out: &mut Vec<u8>) {
        let i = PosTag::ALL.iter().position(|p| p == self).unwrap() as u8;
        out.push(i);
    }
}
impl Decode for PosTag {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let i = u8::decode(r)? as usize;
        PosTag::ALL
            .get(i)
            .copied()
            .ok_or_else(|| WireError::Corrupt(format!("pos tag {i}")))
    }
}

impl Encode for PhraseElem {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PhraseElem::Tok(s) => {
                out.push(0);
                s.encode(out);
            }
            PhraseElem::Plus => out.push(1),
            PhraseElem::Star => out.push(2),
        }
    }
}
impl Decode for PhraseElem {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(PhraseElem::Tok(Sym::decode(r)?)),
            1 => Ok(PhraseElem::Plus),
            2 => Ok(PhraseElem::Star),
            t => Err(WireError::Corrupt(format!("phrase elem tag {t}"))),
        }
    }
}

impl Encode for PhrasePattern {
    fn encode(&self, out: &mut Vec<u8>) {
        self.elems.encode(out);
    }
}
impl Decode for PhrasePattern {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PhrasePattern {
            elems: Vec::decode(r)?,
        })
    }
}

impl Encode for TreeTerm {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TreeTerm::Tok(s) => {
                out.push(0);
                s.encode(out);
            }
            TreeTerm::Pos(p) => {
                out.push(1);
                p.encode(out);
            }
        }
    }
}
impl Decode for TreeTerm {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(TreeTerm::Tok(Sym::decode(r)?)),
            1 => Ok(TreeTerm::Pos(PosTag::decode(r)?)),
            t => Err(WireError::Corrupt(format!("tree term tag {t}"))),
        }
    }
}

impl Encode for TreePattern {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TreePattern::Term(t) => {
                out.push(0);
                t.encode(out);
            }
            TreePattern::Child(a, b) => {
                out.push(1);
                a.encode(out);
                b.encode(out);
            }
            TreePattern::Desc(a, b) => {
                out.push(2);
                a.encode(out);
                b.encode(out);
            }
            TreePattern::And(a, b) => {
                out.push(3);
                a.encode(out);
                b.encode(out);
            }
        }
    }
}
impl Decode for TreePattern {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        decode_tree(r, 0)
    }
}

fn decode_tree(r: &mut Reader<'_>, depth: usize) -> Result<TreePattern, WireError> {
    if depth > MAX_PATTERN_DEPTH {
        return Err(WireError::Corrupt("tree pattern too deep".into()));
    }
    let pair = |r: &mut Reader<'_>| -> Result<(Box<TreePattern>, Box<TreePattern>), WireError> {
        Ok((
            Box::new(decode_tree(r, depth + 1)?),
            Box::new(decode_tree(r, depth + 1)?),
        ))
    };
    match u8::decode(r)? {
        0 => Ok(TreePattern::Term(TreeTerm::decode(r)?)),
        1 => {
            let (a, b) = pair(r)?;
            Ok(TreePattern::Child(a, b))
        }
        2 => {
            let (a, b) = pair(r)?;
            Ok(TreePattern::Desc(a, b))
        }
        3 => {
            let (a, b) = pair(r)?;
            Ok(TreePattern::And(a, b))
        }
        t => Err(WireError::Corrupt(format!("tree pattern tag {t}"))),
    }
}

impl Encode for Heuristic {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Heuristic::Phrase(p) => {
                out.push(0);
                p.encode(out);
            }
            Heuristic::Tree(t) => {
                out.push(1);
                t.encode(out);
            }
        }
    }
}
impl Decode for Heuristic {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Heuristic::Phrase(PhrasePattern::decode(r)?)),
            1 => Ok(Heuristic::Tree(TreePattern::decode(r)?)),
            t => Err(WireError::Corrupt(format!("heuristic tag {t}"))),
        }
    }
}

impl Encode for RuleRef {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RuleRef::Root => out.push(0),
            RuleRef::Phrase(n) => {
                out.push(1);
                n.encode(out);
            }
            RuleRef::Tree(p) => {
                out.push(2);
                p.encode(out);
            }
        }
    }
}
impl Decode for RuleRef {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(RuleRef::Root),
            1 => Ok(RuleRef::Phrase(u32::decode(r)?)),
            2 => Ok(RuleRef::Tree(u32::decode(r)?)),
            t => Err(WireError::Corrupt(format!("rule ref tag {t}"))),
        }
    }
}

impl Encode for TreeSketchConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.include_and.encode(out);
        self.skip_punct.encode(out);
        self.max_patterns.encode(out);
    }
}
impl Decode for TreeSketchConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TreeSketchConfig {
            include_and: bool::decode(r)?,
            skip_punct: bool::decode(r)?,
            max_patterns: usize::decode(r)?,
        })
    }
}

impl Encode for IndexConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.max_phrase_len.encode(out);
        self.min_count.encode(out);
        self.enable_tree.encode(out);
        self.tree.encode(out);
        self.threads.encode(out);
    }
}
impl Decode for IndexConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(IndexConfig {
            max_phrase_len: usize::decode(r)?,
            min_count: usize::decode(r)?,
            enable_tree: bool::decode(r)?,
            tree: TreeSketchConfig::decode(r)?,
            threads: usize::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::Corpus;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(3.25f32);
        roundtrip(String::from("caused + by"));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(7u32));
        roundtrip((3u32, 0.5f32, 0.75f32));
    }

    #[test]
    fn f32_roundtrips_bit_for_bit() {
        for bits in [0u32, 1, 0x7fc0_0001, 0xff80_0000, 0x3f80_0000, 0x0000_0001] {
            let x = f32::from_bits(bits);
            let back = f32::from_bytes(&x.to_bytes()).unwrap();
            assert_eq!(back.to_bits(), bits);
        }
    }

    #[test]
    fn heuristics_roundtrip() {
        let c = Corpus::from_texts(["the shuttle to the airport", "is the job done"]);
        for text in ["shuttle to", "shuttle + airport", "the * airport"] {
            roundtrip(Heuristic::phrase(&c, text).unwrap());
        }
        for text in ["is/NOUN & is//job", "the//job", "is & done"] {
            roundtrip(Heuristic::tree(&c, text).unwrap());
        }
    }

    #[test]
    fn rule_refs_and_configs_roundtrip() {
        roundtrip(RuleRef::Root);
        roundtrip(RuleRef::Phrase(17));
        roundtrip(RuleRef::Tree(0));
        let cfg = IndexConfig::small();
        let back = IndexConfig::from_bytes(&cfg.to_bytes()).unwrap();
        assert_eq!(back.max_phrase_len, cfg.max_phrase_len);
        assert_eq!(back.min_count, cfg.min_count);
        assert_eq!(back.enable_tree, cfg.enable_tree);
        assert_eq!(back.tree.max_patterns, cfg.tree.max_patterns);
    }

    #[test]
    fn pos_tags_roundtrip() {
        for t in PosTag::ALL {
            roundtrip(t);
        }
        assert!(matches!(
            PosTag::from_bytes(&[99]),
            Err(WireError::Corrupt(_))
        ));
    }

    /// The score-journal entry type is on the fixed-width fast path with
    /// its exact wire footprint, and compound widths compose by constant.
    #[test]
    fn fixed_widths_compose() {
        assert_eq!(<(u32, f32, f32)>::WIDTH, Some(12));
        assert_eq!(<(u32, u32)>::WIDTH, Some(8));
        assert_eq!(Sym::WIDTH, Some(4));
        // Variable or validating types stay off the fast path.
        assert_eq!(String::WIDTH, None);
        assert_eq!(bool::WIDTH, None);
        assert_eq!(usize::WIDTH, None);
        assert_eq!(<(u32, bool)>::WIDTH, None);
        assert_eq!(Heuristic::WIDTH, None);
    }

    /// The chunked fast path decodes exactly what the per-element path
    /// encoded — including every NaN payload bit.
    #[test]
    fn fixed_width_vec_roundtrips_bit_for_bit() {
        let journal: Vec<(u32, f32, f32)> = (0..1250)
            .map(|i| {
                (
                    i,
                    f32::from_bits(0x7fc0_0000 | i), // NaN payloads survive
                    (i as f32) * 0.125,
                )
            })
            .collect();
        let bytes = journal.to_bytes();
        assert_eq!(bytes.len(), 4 + 12 * journal.len());
        let back = Vec::<(u32, f32, f32)>::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), journal.len());
        for (a, b) in journal.iter().zip(&back) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
            assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
        roundtrip(vec![Sym(0), Sym(u32::MAX)]);
    }

    #[test]
    fn fixed_width_vec_rejects_truncation() {
        let mut bytes = vec![3u32, 4, 5].to_bytes();
        bytes.pop();
        assert!(matches!(
            Vec::<u32>::from_bytes(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_length_prefix_never_overallocates() {
        // A Vec<u32> claiming 2^31 elements with 4 bytes of payload must
        // fail cleanly, not allocate gigabytes.
        let mut buf = Vec::new();
        (0x8000_0000u32).encode(&mut buf);
        buf.extend_from_slice(&[1, 2, 3, 4]);
        assert!(matches!(
            Vec::<u32>::from_bytes(&buf),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u32::from_bytes(&bytes),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn deep_tree_pattern_is_bounded() {
        // depth > MAX_PATTERN_DEPTH of nested Child tags, then garbage.
        let mut buf = vec![1u8; 80];
        buf.push(0);
        assert!(TreePattern::from_bytes(&buf).is_err());
    }
}

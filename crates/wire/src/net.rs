//! Socket plumbing: TCP listen/dial and the worker registry.
//!
//! [`StreamTransport`] already speaks frames over any `Read + Write`
//! pair; this module supplies the missing node-level pieces for a real
//! cluster:
//!
//! * [`dial`] / [`Listener`] — `TcpStream`-backed transports with
//!   `TCP_NODELAY` set (the frame writer buffers and flushes at request
//!   boundaries, so Nagle coalescing would only add latency on top).
//! * [`Registration`] / [`WorkerRegistry`] — connection direction is
//!   independent of protocol role: *workers dial the coordinator*, then
//!   immediately send one registration frame declaring their role (and,
//!   for shard workers, an optional span advertisement). The registry
//!   accepts until every requested role is filled and hands back the
//!   connected transports grouped and deterministically ordered.
//!
//! The registration frame rides the normal frame format (magic, version
//! byte, checksum), so an alien or stale peer is refused before it can
//! register; protocol version negotiation proper still happens through
//! the `Hello` exchange that opens every [`crate::Session`].

use crate::codec::{Decode, Encode, Reader};
use crate::error::WireError;
use crate::transport::{StreamTransport, Transport};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

/// A frame transport over one TCP connection.
pub type TcpTransport = StreamTransport<TcpStream, TcpStream>;

fn transport_of(stream: TcpStream) -> Result<TcpTransport, WireError> {
    // The transport flushes whole requests; Nagle would delay the final
    // partial segment of every flush for no win.
    stream.set_nodelay(true)?;
    let reader = stream.try_clone()?;
    Ok(StreamTransport::new(reader, stream))
}

/// Connect to a listening peer and wrap the socket as a transport.
pub fn dial(addr: impl ToSocketAddrs) -> Result<TcpTransport, WireError> {
    transport_of(TcpStream::connect(addr)?)
}

/// A bound TCP listener handing out frame transports.
pub struct Listener {
    inner: TcpListener,
}

impl Listener {
    /// Bind `addr` (use port 0 for an ephemeral port; see
    /// [`Listener::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Listener, WireError> {
        Ok(Listener {
            inner: TcpListener::bind(addr)?,
        })
    }

    /// The bound address — what workers should [`dial`].
    pub fn local_addr(&self) -> Result<SocketAddr, WireError> {
        Ok(self.inner.local_addr()?)
    }

    /// Accept one connection as a transport.
    pub fn accept(&self) -> Result<TcpTransport, WireError> {
        let (stream, _peer) = self.inner.accept()?;
        transport_of(stream)
    }
}

/// The protocol role a dialing worker offers to serve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerRole {
    /// A benefit-store shard partition (`serve_shard`).
    Shard,
    /// An oracle endpoint (`serve_oracle`).
    Oracle,
    /// A remote classifier (`serve_classifier`).
    Classifier,
}

impl Encode for WorkerRole {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            WorkerRole::Shard => 0,
            WorkerRole::Oracle => 1,
            WorkerRole::Classifier => 2,
        });
    }
}
impl Decode for WorkerRole {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(WorkerRole::Shard),
            1 => Ok(WorkerRole::Oracle),
            2 => Ok(WorkerRole::Classifier),
            t => Err(WireError::Corrupt(format!("worker role tag {t}"))),
        }
    }
}

/// What a worker declares immediately after dialing in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Registration {
    /// The role this connection will serve.
    pub role: WorkerRole,
    /// Optional span advertisement `[lo, hi)` for shard workers that
    /// want a specific partition (a restarted worker reclaiming its old
    /// span). `None` lets the coordinator assign spans in registration
    /// order.
    pub span: Option<(u32, u32)>,
}

impl Registration {
    /// A role with no span preference.
    pub fn role(role: WorkerRole) -> Registration {
        Registration { role, span: None }
    }
}

impl Encode for Registration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.role.encode(out);
        match self.span {
            None => out.push(0),
            Some((lo, hi)) => {
                out.push(1);
                lo.encode(out);
                hi.encode(out);
            }
        }
    }
}
impl Decode for Registration {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let role = WorkerRole::decode(r)?;
        let span = match u8::decode(r)? {
            0 => None,
            1 => Some((u32::decode(r)?, u32::decode(r)?)),
            t => return Err(WireError::Corrupt(format!("span tag {t}"))),
        };
        Ok(Registration { role, span })
    }
}

/// Worker side: announce `reg` as the first frame on a fresh connection.
pub fn register(t: &mut dyn Transport, reg: &Registration) -> Result<(), WireError> {
    t.send(&reg.to_bytes())?;
    t.flush()
}

/// Coordinator side: read the registration frame that must open every
/// inbound connection.
pub fn accept_registration(t: &mut dyn Transport) -> Result<Registration, WireError> {
    let frame = t.recv()?;
    Registration::from_bytes(&frame)
}

/// The coordinator's view of a dialed-in worker fleet: transports grouped
/// by role, shard transports deterministically ordered.
pub struct WorkerRegistry {
    /// Shard connections — span-advertised workers first (sorted by
    /// advertised `lo`), then unadvertised ones in registration order.
    pub shards: Vec<(Registration, TcpTransport)>,
    /// Oracle connections, in registration order.
    pub oracles: Vec<(Registration, TcpTransport)>,
    /// Classifier connections, in registration order.
    pub classifiers: Vec<(Registration, TcpTransport)>,
}

impl WorkerRegistry {
    /// Accept connections on `listener` until `shards`/`oracles`/
    /// `classifiers` slots are all filled. A connection that fails to
    /// register, or registers a role whose slots are full, is dropped
    /// (the worker sees a disconnect) without failing the whole accept
    /// loop.
    pub fn accept(
        listener: &Listener,
        shards: usize,
        oracles: usize,
        classifiers: usize,
    ) -> Result<WorkerRegistry, WireError> {
        let mut reg = WorkerRegistry {
            shards: Vec::new(),
            oracles: Vec::new(),
            classifiers: Vec::new(),
        };
        while reg.shards.len() < shards
            || reg.oracles.len() < oracles
            || reg.classifiers.len() < classifiers
        {
            let mut t = listener.accept()?;
            let r = match accept_registration(&mut t) {
                Ok(r) => r,
                Err(_) => continue, // alien peer; drop the connection
            };
            let (bucket, cap) = match r.role {
                WorkerRole::Shard => (&mut reg.shards, shards),
                WorkerRole::Oracle => (&mut reg.oracles, oracles),
                WorkerRole::Classifier => (&mut reg.classifiers, classifiers),
            };
            if bucket.len() < cap {
                bucket.push((r, t));
            }
        }
        // Deterministic shard order: advertised spans first, by span
        // start; unadvertised workers keep registration order behind
        // them. Stable sort, so ties preserve arrival order.
        reg.shards
            .sort_by_key(|(r, _)| r.span.map(|(lo, _)| (0u8, lo)).unwrap_or((1, u32::MAX)));
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_roundtrips() {
        for reg in [
            Registration::role(WorkerRole::Oracle),
            Registration {
                role: WorkerRole::Shard,
                span: Some((10, 20)),
            },
        ] {
            assert_eq!(Registration::from_bytes(&reg.to_bytes()).unwrap(), reg);
        }
        assert!(Registration::from_bytes(&[9]).is_err());
    }

    #[test]
    fn dial_listen_roundtrip_over_loopback() {
        let listener = Listener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let dialer = std::thread::spawn(move || {
            let mut t = dial(addr).expect("dial");
            register(&mut t, &Registration::role(WorkerRole::Shard)).unwrap();
            t.send(b"after registration").unwrap();
            t.flush().unwrap();
            assert_eq!(t.recv().unwrap(), b"reply");
        });
        let mut t = listener.accept().expect("accept");
        let reg = accept_registration(&mut t).unwrap();
        assert_eq!(reg.role, WorkerRole::Shard);
        assert_eq!(t.recv().unwrap(), b"after registration");
        t.send(b"reply").unwrap();
        t.flush().unwrap();
        dialer.join().unwrap();
    }

    #[test]
    fn registry_fills_roles_and_orders_shards() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let spawn = |reg: Registration| {
            std::thread::spawn(move || {
                let mut t = dial(addr).unwrap();
                register(&mut t, &reg).unwrap();
                // Hold the connection open until the registry is done.
                let _ = t.recv();
            })
        };
        // Two shard workers advertising spans (dialed high-span first)
        // plus one oracle, arriving in whatever order the scheduler
        // picks: the registry must fill every role and order the shards
        // by advertised span regardless.
        let handles = vec![
            spawn(Registration {
                role: WorkerRole::Shard,
                span: Some((50, 100)),
            }),
            spawn(Registration {
                role: WorkerRole::Shard,
                span: Some((0, 50)),
            }),
            spawn(Registration::role(WorkerRole::Oracle)),
        ];
        let reg = WorkerRegistry::accept(&listener, 2, 1, 0).expect("registry fills");
        assert_eq!(reg.shards.len(), 2);
        assert_eq!(reg.oracles.len(), 1);
        assert!(reg.classifiers.is_empty());
        assert_eq!(reg.shards[0].0.span, Some((0, 50)));
        assert_eq!(reg.shards[1].0.span, Some((50, 100)));
        drop(reg); // closes the connections, releasing the workers
        for h in handles {
            h.join().unwrap();
        }
    }
}

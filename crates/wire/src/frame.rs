//! Length-prefixed, versioned, checksummed frames.
//!
//! Every message travels inside one frame:
//!
//! | offset | size | field                                        |
//! |-------:|-----:|----------------------------------------------|
//! | 0      | 2    | magic `0xDA 0x71`                            |
//! | 2      | 1    | protocol version                             |
//! | 3      | 4    | payload length `n` (u32, little-endian)      |
//! | 7      | n    | payload (one encoded message)                |
//! | 7 + n  | 4    | FNV-1a checksum of the payload (u32, LE)     |
//!
//! The reader validates magic, version window, length bound and checksum
//! before handing the payload up — a truncated, corrupt or alien frame is
//! a clean [`WireError`], never a panic or a garbage message.
//!
//! **Version negotiation rule:** the first exchange on every connection is
//! `Hello` / `Hello`. The client offers its newest version; the worker
//! replies with `min(client, worker)`; both sides then speak that version
//! and reject frames stamped with any other. A peer whose newest version
//! is older than the other side's oldest supported version
//! ([`MIN_SUPPORTED_VERSION`]) is refused with [`WireError::BadVersion`].
//! Version 1 is the only version in existence, so today the rule reduces
//! to "both sides say 1" — but every frame already carries the byte, so a
//! future v2 coordinator can drive v1 workers without a flag day.

use crate::error::WireError;
use std::io::{Read, Write};

/// Frame magic: `0xDA` for Darwin, `0x71` for the wire ("q" of "query").
pub const MAGIC: [u8; 2] = [0xDA, 0x71];

/// The newest protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// The oldest protocol version this build still accepts.
pub const MIN_SUPPORTED_VERSION: u8 = 1;

/// Upper bound on a single frame's payload (64 MiB). Corpus shipments for
/// shard init are the largest real frames; anything bigger is corrupt.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Header length: magic + version + payload length.
const HEADER_LEN: usize = 7;

/// FNV-1a over the payload — cheap, deterministic, order-sensitive; it
/// exists to catch truncation and bit rot, not adversaries.
pub fn checksum(payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in payload {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Wrap `payload` into a complete frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out
}

/// Write one frame to a byte sink. Deliberately does **not** flush:
/// transports buffer their writers and flush at request/response
/// boundaries ([`crate::Transport::flush`]), so a multi-frame burst —
/// a concurrent fan-out sending to many workers, or an init sequence —
/// costs one syscall per boundary instead of one per frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    w.write_all(&frame(payload))?;
    Ok(())
}

/// Read and validate one frame from a byte source, returning its payload.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    validate_header(&header)?;
    let n = u32::from_le_bytes(header[3..7].try_into().unwrap()) as usize;
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)?;
    let mut sum = [0u8; 4];
    r.read_exact(&mut sum)?;
    if u32::from_le_bytes(sum) != checksum(&payload) {
        return Err(WireError::Checksum);
    }
    Ok(payload)
}

/// Validate a complete in-memory frame (the channel transports move whole
/// frames as one message), returning its payload.
pub fn parse_frame(buf: &[u8]) -> Result<Vec<u8>, WireError> {
    if buf.len() < HEADER_LEN + 4 {
        return Err(WireError::Truncated {
            want: HEADER_LEN + 4,
            got: buf.len(),
        });
    }
    validate_header(&buf[..HEADER_LEN])?;
    let n = u32::from_le_bytes(buf[3..7].try_into().unwrap()) as usize;
    if buf.len() != HEADER_LEN + n + 4 {
        return Err(WireError::Truncated {
            want: HEADER_LEN + n + 4,
            got: buf.len(),
        });
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + n];
    let sum = u32::from_le_bytes(buf[HEADER_LEN + n..].try_into().unwrap());
    if sum != checksum(payload) {
        return Err(WireError::Checksum);
    }
    Ok(payload.to_vec())
}

fn validate_header(header: &[u8]) -> Result<(), WireError> {
    if header[..2] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1]]));
    }
    let version = header[2];
    if !(MIN_SUPPORTED_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(WireError::BadVersion {
            got: version,
            want: PROTOCOL_VERSION,
        });
    }
    let n = u32::from_le_bytes(header[3..7].try_into().unwrap()) as usize;
    if n > MAX_FRAME_LEN {
        return Err(WireError::Corrupt(format!("frame length {n} exceeds cap")));
    }
    Ok(())
}

// ---- snapshot frames ----------------------------------------------------
//
// A durable session snapshot travels (and rests on disk) inside a frame of
// the same shape as a wire frame, but under its own magic and its own
// version window: snapshots outlive processes, so their format evolves on
// a different schedule than the connection protocol, and a snapshot file
// must never be mistaken for (or replayed as) a protocol frame. The
// payload cap is larger too — a snapshot carries per-sentence scores and
// the frontier memo, which can dwarf any single protocol message.

/// Snapshot-frame magic: `0xDA` for Darwin, `0x53` ("S" for snapshot).
pub const SNAPSHOT_MAGIC: [u8; 2] = [0xDA, 0x53];

/// The newest snapshot format version this build writes.
pub const SNAPSHOT_VERSION: u8 = 1;

/// The oldest snapshot format version this build still resumes.
pub const MIN_SNAPSHOT_VERSION: u8 = 1;

/// Upper bound on a snapshot payload (256 MiB). Scores and the frontier
/// memo scale with corpus size; anything bigger is corrupt.
pub const MAX_SNAPSHOT_LEN: usize = 256 << 20;

/// Wrap an encoded snapshot into a checksummed snapshot frame.
pub fn snapshot_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.push(SNAPSHOT_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out
}

/// Validate a complete snapshot frame (magic, version window, length
/// bound, checksum), returning its payload. A truncated, corrupt, alien
/// or version-incompatible snapshot is a clean [`WireError`] — decoding
/// never panics and the length bound is checked before any allocation.
pub fn parse_snapshot_frame(buf: &[u8]) -> Result<Vec<u8>, WireError> {
    if buf.len() < HEADER_LEN + 4 {
        return Err(WireError::Truncated {
            want: HEADER_LEN + 4,
            got: buf.len(),
        });
    }
    if buf[..2] != SNAPSHOT_MAGIC {
        return Err(WireError::BadMagic([buf[0], buf[1]]));
    }
    let version = buf[2];
    if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(WireError::BadVersion {
            got: version,
            want: SNAPSHOT_VERSION,
        });
    }
    let n = u32::from_le_bytes(buf[3..7].try_into().unwrap()) as usize;
    if n > MAX_SNAPSHOT_LEN {
        return Err(WireError::Corrupt(format!(
            "snapshot length {n} exceeds cap"
        )));
    }
    if buf.len() != HEADER_LEN + n + 4 {
        return Err(WireError::Truncated {
            want: HEADER_LEN + n + 4,
            got: buf.len(),
        });
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + n];
    let sum = u32::from_le_bytes(buf[HEADER_LEN + n..].try_into().unwrap());
    if sum != checksum(payload) {
        return Err(WireError::Checksum);
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_a_stream() {
        let payload = b"benefit fragments".to_vec();
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).unwrap();
        write_frame(&mut stream, b"").unwrap();
        let mut r = &stream[..];
        assert_eq!(read_frame(&mut r).unwrap(), payload);
        assert_eq!(read_frame(&mut r).unwrap(), Vec::<u8>::new());
        assert!(matches!(read_frame(&mut r), Err(WireError::Disconnected)));
    }

    #[test]
    fn parse_frame_matches_read_frame() {
        let f = frame(b"abc");
        assert_eq!(parse_frame(&f).unwrap(), b"abc");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut f = frame(b"abc");
        f[0] = 0x00;
        assert!(matches!(parse_frame(&f), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn alien_version_rejected() {
        let mut f = frame(b"abc");
        f[2] = 200;
        assert!(matches!(
            parse_frame(&f),
            Err(WireError::BadVersion { got: 200, .. })
        ));
    }

    #[test]
    fn truncation_and_corruption_detected() {
        let f = frame(b"scores");
        assert!(matches!(
            parse_frame(&f[..f.len() - 2]),
            Err(WireError::Truncated { .. })
        ));
        let mut flipped = f.clone();
        let mid = HEADER_LEN + 2;
        flipped[mid] ^= 0xFF;
        assert_eq!(parse_frame(&flipped), Err(WireError::Checksum));
        // Declared length longer than the buffer (classic truncated pipe).
        let mut r = &f[..HEADER_LEN + 2];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut f = frame(b"x");
        f[3..7].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(parse_frame(&f), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn snapshot_frame_roundtrips() {
        let f = snapshot_frame(b"engine state");
        assert_eq!(parse_snapshot_frame(&f).unwrap(), b"engine state");
        assert_eq!(parse_snapshot_frame(&snapshot_frame(b"")).unwrap(), b"");
    }

    #[test]
    fn snapshot_and_protocol_frames_do_not_cross() {
        // A protocol frame is never a snapshot, and vice versa: the magics
        // differ in the second byte.
        let wire = frame(b"abc");
        assert!(matches!(
            parse_snapshot_frame(&wire),
            Err(WireError::BadMagic(_))
        ));
        let snap = snapshot_frame(b"abc");
        assert!(matches!(parse_frame(&snap), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn snapshot_version_window_enforced() {
        let mut f = snapshot_frame(b"abc");
        f[2] = 200;
        assert!(matches!(
            parse_snapshot_frame(&f),
            Err(WireError::BadVersion { got: 200, .. })
        ));
    }

    #[test]
    fn snapshot_corruption_detected() {
        let f = snapshot_frame(b"scores and memo");
        assert!(matches!(
            parse_snapshot_frame(&f[..f.len() - 3]),
            Err(WireError::Truncated { .. })
        ));
        let mut flipped = f.clone();
        flipped[HEADER_LEN + 4] ^= 0x10;
        assert_eq!(parse_snapshot_frame(&flipped), Err(WireError::Checksum));
        let mut inflated = f;
        inflated[3..7].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            parse_snapshot_frame(&inflated),
            Err(WireError::Corrupt(_))
        ));
    }
}

//! The Darwin wire protocol: a serialization and transport boundary
//! between the question-loop coordinator and its workers.
//!
//! Everything the sharded engine, the async oracle loop and the remote
//! classifier exchange is expressible as a handful of messages
//! ([`Request`]/[`Response`]): corpus shipments, benefit-fragment deltas,
//! score-journal runs, oracle questions and answers, and `predict_batch`
//! calls. This crate defines:
//!
//! * the hand-rolled binary codec ([`codec`]) — little-endian,
//!   length-prefixed, `f32`s bit-exact, decoding bounds-checked and
//!   panic-free;
//! * the frame format and version-negotiation rule ([`frame`]) —
//!   magic + version + length + payload + FNV-1a checksum;
//! * the message vocabulary ([`msg`]) with strict request/response
//!   discipline;
//! * the [`Transport`] trait with two shipped backends ([`transport`]):
//!   [`InProc`] channels (worker threads — tests, CI) and
//!   [`ProcTransport`]/[`StdioTransport`] (spawned child processes over
//!   stdio pipes).
//!
//! The layer above (`darwin-core`) builds the actual workers and clients:
//! `RemoteShard` partitions, `WireOracle`, `WireClassifier`, and the
//! `serve_*` loops. The defining invariant lives up there too: any
//! transport × shard count × thread count × batch size replays the
//! in-process single-shard trace byte for byte — this crate's job is to
//! make that possible (bit-exact codec) and safe (every failure a clean
//! [`WireError`]).

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod frame;
pub mod msg;
pub mod net;
pub mod transport;

pub use codec::{Decode, Encode, Reader};
pub use error::WireError;
pub use frame::{
    parse_snapshot_frame, snapshot_frame, MAX_FRAME_LEN, MAX_SNAPSHOT_LEN, MIN_SNAPSHOT_VERSION,
    MIN_SUPPORTED_VERSION, PROTOCOL_VERSION, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use msg::{
    recv_request, send_response, CorpusSlice, Request, Response, ScoredRule, Session, WireAgg,
    WireClassifierKind,
};
pub use net::{
    accept_registration, dial, register, Listener, Registration, TcpTransport, WorkerRegistry,
    WorkerRole,
};
pub use transport::{
    DeadTransport, InProc, ProcTransport, StdioTransport, StreamTransport, Transport,
};

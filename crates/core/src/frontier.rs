//! The incremental candidate frontier.
//!
//! Hierarchy regeneration (paper §3.7) re-runs Algorithm 2's best-first
//! walk after every YES answer, and the walk's cost is dominated by one
//! thing: computing `overlap = |C_r ∩ P|` with a posting scan for every
//! rule it visits. Between two consecutive regenerations almost nothing
//! about those numbers changes — the index is immutable, so `count = |C_r|`
//! never moves, and `P` only *grows*, by exactly the ids the YES answer
//! added — yet the from-scratch walk pays the full scan bill again.
//!
//! [`FrontierPool`] keeps the expansion state alive across YES answers:
//!
//! * a memo of `(overlap, count)` for every rule any walk has ever visited
//!   (the union of all emitted candidates, open heap entries and
//!   zero-overlap pruned children — the "frontier" in the wide sense),
//!   stored as a flat table over [`darwin_index::IndexSet::dense_id`] so a
//!   probe is an array load, not a hash;
//! * a **dirty-id journal**: [`FrontierPool::note_positives`] records the
//!   newly-labeled sentence ids lazily, and the next regeneration re-scores
//!   exactly the frontier entries whose postings intersect them — via the
//!   inverted postings ([`darwin_index::IndexSet::rules_covering`]) when
//!   the batch is small, or one sorted posting intersection per entry
//!   ([`darwin_index::intersect_count`]) when it is large;
//! * an **epoch stamp** (the pool's view of `|P|`): regeneration checks it
//!   against the live positive set and, on any mismatch, rejects the cached
//!   state and falls back to a full from-scratch walk — stale reuse can
//!   slow a regeneration down, never corrupt one.
//!
//! Each regeneration then *replays* the best-first expansion over the
//! memoized statistics (`candidates::best_first_walk`, the same
//! control flow the full walk runs), resuming from the surviving pool
//! instead of re-deriving it: heap pushes read the memo, and only rules the
//! frontier reaches for the first time pay a posting scan. Replay rather
//! than heap surgery is what makes equivalence unconditional — overlaps
//! only ever grow, so a previously-emitted candidate can be overtaken, a
//! pruned subtree can revive, and the surviving heap's *order* is generally
//! stale; re-running the (cheap, scan-free) selection over exact statistics
//! reproduces the from-scratch pop sequence bit for bit instead of
//! approximating it.
//!
//! Scores never enter this module: Algorithm 2 ranks by overlap with `P`
//! alone, so the classifier's re-score journal is irrelevant to frontier
//! invalidation — the epoch stamp tracks `|P|` only. (The benefit
//! aggregates, which *do* depend on scores, live in [`crate::engine`] and
//! consume the `ScoreCache` journal separately.)

use crate::candidates::{best_first_walk, Candidate, WalkSource};
use darwin_index::{intersect_count, AppendDelta, IdSet, IndexSet, RuleRef};

/// Memoized best-first statistics for one visited rule. `count` is
/// immutable (the index never changes within a run); `overlap` is patched
/// by dirty-id deltas as `P` grows. `seen_gen` doubles as the replay
/// walk's seen-set: stamping it with the walk's generation costs no extra
/// memory traffic, because the slot is already in cache for the statistics
/// read — one random access per visited child instead of two. `kids` is
/// the rule's offset into the adjacency arena once it has been expanded
/// (0 = not yet): derivation edges are as immutable as `count`, and
/// re-walking the trie's child maps every replay is measurable.
#[derive(Clone, Copy, Debug)]
struct NodeStat {
    overlap: u32,
    count: u32,
    seen_gen: u32,
    kids: u32,
}

/// Table sentinel: "this rule was never visited". No real rule has this
/// count — coverage is bounded by the (u32-id) corpus size.
const ABSENT: u32 = u32::MAX;

impl NodeStat {
    #[inline]
    fn absent(&self) -> bool {
        self.count == ABSENT
    }
}

/// Counters exposed for tests, benches and diagnostics — how much work the
/// incremental path actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Regenerations served (full or incremental).
    pub generations: u64,
    /// Times the cached state was rejected (epoch-stale) and dropped.
    pub full_rebuilds: u64,
    /// Dirty-id batches applied by delta.
    pub delta_batches: u64,
    /// Total overlap increments applied by delta batches —
    /// `Σ |C_r ∩ dirty|` over memoized rules, identical whichever delta
    /// route a batch takes.
    pub rules_rescored: u64,
    /// Delta batches routed through the inverted postings (small batches).
    pub deltas_by_postings: u64,
    /// Delta batches routed through per-entry posting intersection (large
    /// batches).
    pub deltas_by_intersection: u64,
    /// Rules that paid a posting scan because the frontier reached them for
    /// the first time (every other visit was a memo hit).
    pub fresh_nodes: u64,
}

/// Persistent best-first expansion state for hierarchy regeneration — see
/// the [module docs](self) for the design and the equivalence argument.
///
/// # Contract
///
/// A pool serves one index and one monotonically-growing positive set:
/// every id added to `P` must be reported exactly once via
/// [`FrontierPool::note_positives`] before the next
/// [`FrontierPool::generate_scored`] call. The pool cross-checks this two
/// ways — the epoch stamp (`|P|` as it believes it to be) catches
/// omissions, and the reflected-id set catches duplicate or
/// already-positive reports, including compensating combinations — and
/// falls back to a full rebuild on any mismatch, so a violated contract
/// costs speed, not correctness.
#[derive(Clone, Debug, Default)]
pub struct FrontierPool {
    /// Memo over the dense rule numbering; sized on first use.
    nodes: Vec<NodeStat>,
    /// Adjacency arena: `[len, child, child, ...]` runs of dense child
    /// ids, one run per expanded rule ([`NodeStat::kids`] points at the
    /// run; slot 0 is a dummy so offset 0 can mean "unexpanded"). Survives
    /// overlap invalidation — edges don't depend on `P`.
    kids: Vec<u32>,
    /// Number of non-[`ABSENT`] entries.
    memoized: usize,
    /// Newly-positive ids reported since the last regeneration, applied
    /// lazily (a YES may be recorded long before the hierarchy is needed —
    /// the parallel loop records a whole round first).
    pending: Vec<u32>,
    /// Epoch stamp: the `|P|` the memoized overlaps reflect.
    synced_p: usize,
    /// The exact positive ids the memoized overlaps reflect (baselined to
    /// `P` at every rebuild, advanced as the journal drains). The `|P|`
    /// stamp alone would accept *compensating* contract violations — a
    /// double-reported id masking a missed one — so the delta path also
    /// requires every journaled id to be positive now and not reflected
    /// yet.
    reflected: IdSet,
    /// Current walk generation (the replay's seen-set stamp).
    walk_gen: u32,
    /// `Σ count` over memoized rules — an upper bound on what one
    /// posting-intersection pass over the memo costs, used to route dirty
    /// batches (see [`FrontierPool::apply_dirty`]).
    total_cov: u64,
    stats: FrontierStats,
}

impl FrontierPool {
    /// An empty pool; tables are sized lazily on first use.
    pub fn new() -> FrontierPool {
        FrontierPool::default()
    }

    /// Number of rules with memoized statistics.
    pub fn len(&self) -> usize {
        self.memoized
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.memoized == 0
    }

    /// The pool's epoch stamp: how many positive ids it has been told
    /// about. Regeneration rejects the cached state unless this equals the
    /// live `|P|`.
    pub fn epoch(&self) -> usize {
        self.synced_p + self.pending.len()
    }

    /// Work counters (see [`FrontierStats`]).
    pub fn stats(&self) -> FrontierStats {
        self.stats
    }

    /// Report ids newly added to `P` (each exactly once, never ids already
    /// positive). Cheap — the ids are journaled and applied lazily at the
    /// next [`FrontierPool::generate_scored`].
    pub fn note_positives(&mut self, new_ids: &[u32]) {
        self.pending.extend_from_slice(new_ids);
    }

    /// Drop all cached state; the next regeneration walks from scratch.
    pub fn invalidate(&mut self) {
        self.nodes.clear();
        self.kids.clear();
        self.memoized = 0;
        self.pending.clear();
        self.synced_p = 0;
        self.reflected = IdSet::default();
        self.total_cov = 0;
    }

    /// Incremental [`crate::candidates::generate_scored`]: byte-for-byte
    /// the same output, with posting scans only for first-visited rules
    /// (plus the dirty-delta application below).
    pub fn generate_scored(
        &mut self,
        index: &IndexSet,
        p: &IdSet,
        k: usize,
        max_count: usize,
    ) -> Vec<Candidate> {
        self.sync(index, p);
        self.stats.generations += 1;
        self.walk_gen += 1;
        let mut src = PoolSource {
            index,
            p,
            gen: self.walk_gen,
            nodes: &mut self.nodes,
            kids: &mut self.kids,
            memoized: &mut self.memoized,
            total_cov: &mut self.total_cov,
            fresh: &mut self.stats.fresh_nodes,
        };
        best_first_walk(k, max_count, &mut src)
    }

    /// Bring the memoized overlaps up to date with `p`: size the table,
    /// drain the pending dirty ids, verify the epoch stamp, and either
    /// patch by delta or (on a stale stamp) drop everything.
    ///
    /// [`FrontierPool::generate_scored`] calls this implicitly; it is
    /// public so callers can flush the journal eagerly (e.g. off the
    /// selection path, or to observe the delta cost in isolation — the
    /// benches do).
    pub fn sync(&mut self, index: &IndexSet, p: &IdSet) {
        if self.nodes.len() != index.dense_rules() {
            // First use (or a different index — a broken contract we treat
            // as plain invalidation): size the memo table.
            self.invalidate();
            self.nodes = vec![
                NodeStat {
                    overlap: 0,
                    count: ABSENT,
                    seen_gen: 0,
                    kids: 0,
                };
                index.dense_rules()
            ];
            self.kids = vec![0]; // slot 0 is the "unexpanded" sentinel
            self.walk_gen = 0;
        }
        let pending = std::mem::take(&mut self.pending);
        if self.memoized == 0 {
            // Nothing memoized — the walk below computes every statistic
            // fresh against the live `p`, so any journal is moot. Baseline
            // the reflected set to what that walk will see.
            self.synced_p = p.len();
            self.reflected = p.clone();
            return;
        }
        // Journal validation: a legitimate report contains only ids that
        // are positive now and not yet reflected in the memo (P is
        // monotone, so every id is reported exactly once). Checked
        // alongside the |P| stamp — the stamp catches omissions, the
        // reflected set catches duplicates and already-positive reports,
        // including compensating combinations the stamp alone would pass.
        let mut journal_ok = true;
        for &id in &pending {
            let positive_now = p.contains(id);
            let newly_reflected = self.reflected.insert(id);
            journal_ok &= positive_now && newly_reflected;
        }
        if !journal_ok || self.synced_p + pending.len() != p.len() {
            // Epoch-stale: `P` moved in a way note_positives never
            // reported, or the journal claimed ids that were not new. The
            // cached overlaps cannot be trusted; reject them and let the
            // walk rebuild from scratch.
            for slot in &mut self.nodes {
                slot.count = ABSENT;
            }
            self.memoized = 0;
            self.total_cov = 0;
            self.stats.full_rebuilds += 1;
            self.synced_p = p.len();
            self.reflected = p.clone();
            return;
        }
        if !pending.is_empty() {
            self.apply_dirty(&pending, index);
            self.stats.delta_batches += 1;
            self.synced_p = p.len();
        }
    }

    /// Fold corpus-appended sentence ids into the memoized statistics.
    ///
    /// Called at an append barrier, after the index has grown over
    /// `new_ids` (which are **not** in `P` — appended sentences enter
    /// unlabeled, so overlaps are untouched; contrast
    /// [`FrontierPool::note_positives`], the journal for ids *joining*
    /// `P`). Three things change under the memo's feet:
    ///
    /// * the dense numbering is *remapped*, not just grown: `RuleRef`s
    ///   are append-stable, but dense ids lay phrases out before trees,
    ///   so the [`AppendDelta::tree_shift`] new phrase nodes push every
    ///   tree rule's slot up — the memo's tree block moves with them, and
    ///   appended rules start `ABSENT` like any never-visited rule;
    /// * every memoized `count = |C_r|` grows by the rule's appended
    ///   coverage, patched through the same inverted-postings delta route
    ///   as a small dirty batch (`rules_covering` per appended id);
    /// * derivation edges are no longer immutable: an existing node can
    ///   gain children materialized by the new sentences (and the root
    ///   gains new tree roots), so the adjacency cache — whose runs also
    ///   store now-stale dense child ids — is dropped and re-fills on
    ///   demand; edge recomputation is cheap and involves no posting
    ///   scans.
    ///
    /// After the fold, a pooled regeneration is byte-identical to a
    /// scratch walk over the grown index and unchanged `P` — the memo
    /// holds exactly the `(overlap, count)` a fresh visit would compute.
    pub fn append_ids(&mut self, index: &IndexSet, new_ids: &[u32], delta: &AppendDelta) {
        if self.nodes.is_empty() {
            return; // never used: sized lazily against the grown index
        }
        debug_assert_eq!(self.nodes.len(), delta.dense_before, "stale delta");
        let absent = NodeStat {
            overlap: 0,
            count: ABSENT,
            seen_gen: 0,
            kids: 0,
        };
        let mut nodes = vec![absent; delta.dense_after];
        nodes[..delta.phrase_before].copy_from_slice(&self.nodes[..delta.phrase_before]);
        for (i, slot) in self.nodes[delta.phrase_before..].iter().enumerate() {
            nodes[delta.phrase_after + i] = *slot;
        }
        self.nodes = nodes;
        self.kids.clear();
        self.kids.push(0); // slot 0 stays the "unexpanded" sentinel
        for slot in &mut self.nodes {
            slot.kids = 0;
        }
        for &id in new_ids {
            for &r in index.inverted().rules_covering(id) {
                let slot = &mut self.nodes[index.dense_id(r) as usize];
                if !slot.absent() {
                    slot.count += 1;
                    self.total_cov += 1;
                }
            }
        }
    }

    /// Re-score exactly the frontier entries whose postings intersect the
    /// dirty ids. Two exact strategies, chosen by measured cost: walking
    /// the inverted postings costs `Σ |rules_covering(d)|` memo probes —
    /// optimal for the typical YES, whose handful of new ids touch a tiny
    /// slice of the memo — while one sorted intersection per memoized
    /// entry costs at most `Σ min(|C_r|, |dirty|)` and wins only when a
    /// YES floods in so many ids that the per-id bill would exceed a
    /// whole-memo sweep (`total_cov` bounds that sweep from above).
    fn apply_dirty(&mut self, dirty: &[u32], index: &IndexSet) {
        let inv = index.inverted();
        let per_id_cost: u64 = dirty
            .iter()
            .map(|&d| inv.rules_covering(d).len() as u64)
            .sum();
        if per_id_cost <= self.total_cov {
            self.stats.deltas_by_postings += 1;
            for &d in dirty {
                for &r in inv.rules_covering(d) {
                    let slot = &mut self.nodes[index.dense_id(r) as usize];
                    if !slot.absent() {
                        slot.overlap += 1;
                        debug_assert!(slot.overlap <= slot.count, "{r:?} overlap beyond coverage");
                        self.stats.rules_rescored += 1;
                    }
                }
            }
        } else {
            self.apply_by_intersection(dirty, index);
        }
    }

    /// The large-batch delta path: one [`intersect_count`] against the
    /// sorted dirty ids per memoized entry.
    #[cold]
    fn apply_by_intersection(&mut self, dirty: &[u32], index: &IndexSet) {
        self.stats.deltas_by_intersection += 1;
        let mut sorted: Vec<u32> = dirty.to_vec();
        sorted.sort_unstable();
        for (dense, slot) in self.nodes.iter_mut().enumerate() {
            if slot.absent() {
                continue;
            }
            let r = index.rule_of_dense(dense as u32);
            let moved = intersect_count(index.coverage(r), &sorted);
            if moved > 0 {
                slot.overlap += moved as u32;
                debug_assert!(slot.overlap <= slot.count, "{r:?} overlap beyond coverage");
                self.stats.rules_rescored += moved as u64;
            }
        }
    }
}

/// A plain-data image of a [`FrontierPool`]'s persistent state, produced
/// by [`FrontierPool::export`] and consumed by [`FrontierPool::import`].
/// Session snapshots serialize this through the wire codec.
///
/// The image is *canonical*: walk-local bookkeeping (`seen_gen`,
/// `walk_gen`) is normalized away — it only disambiguates visits within
/// one regeneration and resets naturally on import — and derived totals
/// (`memoized`, `total_cov`) are recomputed rather than stored, so two
/// pools with the same memo always export byte-identical images.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FrontierImage {
    /// `(overlap, count, kids)` per dense rule id; `count == u32::MAX`
    /// marks a never-visited slot.
    pub nodes: Vec<(u32, u32, u32)>,
    /// Adjacency arena: `[len, child...]` runs of dense child ids (slot 0
    /// is the "unexpanded" dummy). Empty only when the pool was never
    /// used.
    pub kids: Vec<u32>,
    /// Journaled dirty ids not yet applied to the memo.
    pub pending: Vec<u32>,
    /// Epoch stamp: the `|P|` the memoized overlaps reflect.
    pub synced_p: u64,
    /// The reflected positive ids, in increasing order.
    pub reflected: Vec<u32>,
    /// Universe (corpus size) the reflected set is sized for.
    pub universe: u32,
    /// Work counters, carried across the suspend so diagnostics stay
    /// continuous.
    pub stats: FrontierStats,
}

impl FrontierPool {
    /// Capture the pool's persistent state as a [`FrontierImage`].
    /// `universe` is the corpus size (sizes the reflected-id set on
    /// import).
    pub fn export(&self, universe: usize) -> FrontierImage {
        FrontierImage {
            nodes: self
                .nodes
                .iter()
                .map(|n| (n.overlap, n.count, n.kids))
                .collect(),
            kids: self.kids.clone(),
            pending: self.pending.clone(),
            synced_p: self.synced_p as u64,
            reflected: self.reflected.iter().collect(),
            universe: universe as u32,
            stats: self.stats,
        }
    }

    /// Rebuild a pool from an exported image, validating internal
    /// consistency (arena offsets in bounds, overlaps within coverage) so
    /// a corrupt image is refused instead of panicking later. Statistics
    /// the image does not carry (`memoized`, `total_cov`) are recomputed;
    /// the walk generation restarts at zero, which is invisible to
    /// regeneration output.
    pub fn import(img: &FrontierImage) -> Result<FrontierPool, String> {
        if img.nodes.is_empty() && img.kids.len() > 1 {
            return Err("frontier image has an arena but no memo table".into());
        }
        let mut memoized = 0usize;
        let mut total_cov = 0u64;
        for (i, &(overlap, count, kids)) in img.nodes.iter().enumerate() {
            if count != ABSENT {
                if overlap > count {
                    return Err(format!(
                        "frontier slot {i}: overlap {overlap} > count {count}"
                    ));
                }
                memoized += 1;
                total_cov += count as u64;
            }
            if kids != 0 {
                let off = kids as usize;
                let len =
                    *img.kids.get(off).ok_or_else(|| {
                        format!("frontier slot {i}: arena offset {off} out of bounds")
                    })? as usize;
                let run = img
                    .kids
                    .get(off + 1..off + 1 + len)
                    .ok_or_else(|| format!("frontier slot {i}: arena run escapes the arena"))?;
                if run.iter().any(|&d| d as usize >= img.nodes.len()) {
                    return Err(format!("frontier slot {i}: child beyond the memo table"));
                }
            }
        }
        Ok(FrontierPool {
            nodes: img
                .nodes
                .iter()
                .map(|&(overlap, count, kids)| NodeStat {
                    overlap,
                    count,
                    seen_gen: 0,
                    kids,
                })
                .collect(),
            kids: img.kids.clone(),
            memoized,
            pending: img.pending.clone(),
            synced_p: img.synced_p as usize,
            reflected: IdSet::from_ids(&img.reflected, img.universe as usize),
            walk_gen: 0,
            total_cov,
            stats: img.stats,
        })
    }
}

/// The pool-backed [`WalkSource`]: visits are one probe of the memo slot
/// (seen-set stamp + statistics in a single cache line), expansions read
/// the adjacency arena, and only first-ever visits touch the index's
/// postings.
struct PoolSource<'a> {
    index: &'a IndexSet,
    p: &'a IdSet,
    gen: u32,
    nodes: &'a mut Vec<NodeStat>,
    kids: &'a mut Vec<u32>,
    memoized: &'a mut usize,
    total_cov: &'a mut u64,
    fresh: &'a mut u64,
}

impl WalkSource for PoolSource<'_> {
    fn visit(&mut self, r: RuleRef) -> Option<(usize, usize, u32)> {
        let dense = self.index.dense_id(r);
        let slot = &mut self.nodes[dense as usize];
        if slot.seen_gen == self.gen {
            return None; // already reached in this walk
        }
        slot.seen_gen = self.gen;
        if !slot.absent() {
            Some((slot.overlap as usize, slot.count as usize, dense))
        } else {
            let postings = self.index.coverage(r);
            let (overlap, count) = (self.p.count_in(postings), postings.len());
            slot.overlap = overlap as u32;
            slot.count = count as u32;
            *self.memoized += 1;
            *self.total_cov += count as u64;
            *self.fresh += 1;
            Some((overlap, count, dense))
        }
    }

    fn expand(&mut self, rule: RuleRef, buf: &mut Vec<RuleRef>) {
        let dense = self.index.dense_id(rule) as usize;
        let off = self.nodes[dense].kids as usize;
        if off != 0 {
            let len = self.kids[off] as usize;
            for &d in &self.kids[off + 1..off + 1 + len] {
                buf.push(self.index.rule_of_dense(d));
            }
        } else {
            let start = self.kids.len();
            self.kids.push(0);
            let (index, kids) = (self.index, &mut *self.kids);
            index.for_each_child(rule, |c| {
                kids.push(index.dense_id(c));
                buf.push(c);
            });
            self.kids[start] = (self.kids.len() - start - 1) as u32;
            self.nodes[dense].kids = start as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_scored;
    use darwin_index::IndexConfig;
    use darwin_text::Corpus;

    fn setup() -> (Corpus, IndexSet) {
        let c = Corpus::from_texts([
            "the shuttle to the airport leaves hourly",
            "is there a shuttle to the airport tonight",
            "a bus to the airport runs daily",
            "order pizza to the room please",
            "the pool opens at nine daily",
            "is there a bus downtown tonight",
            "the shuttle downtown is free",
            "the airport lounge opens at nine",
        ]);
        let idx = IndexSet::build(&c, &IndexConfig::small());
        (c, idx)
    }

    /// Drive a pool and a from-scratch reference through the same growth
    /// sequence; every regeneration must match byte for byte.
    #[test]
    fn pooled_walk_replays_scratch_walk_through_growth() {
        let (c, idx) = setup();
        let n = c.len();
        for k in [3usize, 10, 10_000] {
            let mut pool = FrontierPool::new();
            let mut p = IdSet::from_ids(&[0], n);
            let growth: [&[u32]; 3] = [&[1], &[2, 5], &[6, 7]];
            let first = pool.generate_scored(&idx, &p, k, usize::MAX);
            assert_eq!(
                as_tuples(&first),
                as_tuples(&generate_scored(&idx, &p, k, usize::MAX))
            );
            for batch in growth {
                pool.note_positives(batch);
                p.extend_from_slice(batch);
                let pooled = pool.generate_scored(&idx, &p, k, usize::MAX);
                let scratch = generate_scored(&idx, &p, k, usize::MAX);
                assert_eq!(
                    as_tuples(&pooled),
                    as_tuples(&scratch),
                    "k={k} after {batch:?}"
                );
            }
            assert_eq!(pool.stats().full_rebuilds, 0, "no rebuild was warranted");
            assert!(pool.stats().delta_batches >= 3);
        }
    }

    /// `max_count` filtering happens at pop time, so it must behave
    /// identically over memoized statistics.
    #[test]
    fn max_count_filter_matches_scratch() {
        let (c, idx) = setup();
        let mut pool = FrontierPool::new();
        let mut p = IdSet::from_ids(&[0, 1], c.len());
        for max_count in [2usize, 4] {
            let a = pool.generate_scored(&idx, &p, 100, max_count);
            let b = generate_scored(&idx, &p, 100, max_count);
            assert_eq!(as_tuples(&a), as_tuples(&b), "max_count={max_count}");
        }
        pool.note_positives(&[3]);
        p.insert(3);
        let a = pool.generate_scored(&idx, &p, 100, 3);
        let b = generate_scored(&idx, &p, 100, 3);
        assert_eq!(as_tuples(&a), as_tuples(&b));
    }

    /// A subtree pruned at overlap 0 must revive when a dirty id lands in
    /// its postings — fresh walks would push it, so the replay must too.
    #[test]
    fn pruned_subtrees_revive_on_dirty_overlap() {
        let (c, idx) = setup();
        let mut pool = FrontierPool::new();
        // Only the pizza sentence: the airport/shuttle subtrees prune.
        let mut p = IdSet::from_ids(&[3], c.len());
        let before = pool.generate_scored(&idx, &p, 10_000, usize::MAX);
        // A shuttle sentence turns positive: its whole rule family revives.
        pool.note_positives(&[0]);
        p.insert(0);
        let after = pool.generate_scored(&idx, &p, 10_000, usize::MAX);
        assert!(after.len() > before.len(), "revived rules must appear");
        assert_eq!(
            as_tuples(&after),
            as_tuples(&generate_scored(&idx, &p, 10_000, usize::MAX))
        );
        assert_eq!(pool.stats().full_rebuilds, 0);
    }

    /// The large-batch intersection path computes the same deltas as the
    /// inverted-postings path.
    #[test]
    fn intersection_delta_path_is_exact() {
        let (c, idx) = setup();
        let n = c.len();
        let mut by_postings = FrontierPool::new();
        let mut by_intersection = FrontierPool::new();
        let p0 = IdSet::from_ids(&[0], n);
        by_postings.generate_scored(&idx, &p0, 10_000, usize::MAX);
        by_intersection.generate_scored(&idx, &p0, 10_000, usize::MAX);

        let dirty = [5u32, 1, 7]; // deliberately unsorted
        let mut p = p0.clone();
        p.extend_from_slice(&dirty);
        by_postings.note_positives(&dirty);
        by_postings.sync(&idx, &p); // small batch → inverted postings
        assert_eq!(by_postings.stats().deltas_by_postings, 1);
        by_intersection.apply_by_intersection(&dirty, &idx); // forced
        by_intersection.synced_p = p.len();
        assert_eq!(by_intersection.stats().deltas_by_intersection, 1);

        for (dense, slot) in by_postings.nodes.iter().enumerate() {
            let other = by_intersection.nodes[dense];
            assert_eq!(
                (slot.overlap, slot.count),
                (other.overlap, other.count),
                "{:?} diverged between delta paths",
                idx.rule_of_dense(dense as u32)
            );
        }
        let a = by_postings.generate_scored(&idx, &p, 10_000, usize::MAX);
        let b = by_intersection.generate_scored(&idx, &p, 10_000, usize::MAX);
        assert_eq!(as_tuples(&a), as_tuples(&b));
    }

    /// An exported-then-imported pool must regenerate exactly what the
    /// original would have, including across further growth, and its
    /// re-export must be byte-identical (canonical image).
    #[test]
    fn export_import_roundtrip_preserves_regeneration() {
        let (c, idx) = setup();
        let n = c.len();
        let mut pool = FrontierPool::new();
        let mut p = IdSet::from_ids(&[0, 1], n);
        pool.generate_scored(&idx, &p, 10_000, usize::MAX);
        pool.note_positives(&[2]);
        p.insert(2);

        let img = pool.export(n);
        let mut copy = FrontierPool::import(&img).expect("valid image");
        assert_eq!(copy.export(n), img, "re-export must be canonical");

        for batch in [&[5u32][..], &[6, 7][..]] {
            pool.note_positives(batch);
            copy.note_positives(batch);
            p.extend_from_slice(batch);
            let a = pool.generate_scored(&idx, &p, 10_000, usize::MAX);
            let b = copy.generate_scored(&idx, &p, 10_000, usize::MAX);
            assert_eq!(as_tuples(&a), as_tuples(&b));
        }
        assert_eq!(copy.stats().full_rebuilds, 0, "import must not rebuild");
    }

    /// The frontier leg of append equivalence: fold appended ids into a
    /// warm pool, and every later regeneration must match a scratch walk
    /// on the grown index — including after further positive growth.
    #[test]
    fn append_fold_matches_scratch_walk_on_grown_index() {
        let first: Vec<String> = (0..10)
            .map(|i| format!("sentence {i} takes the shuttle to the airport"))
            .collect();
        let extra = [
            "a new arrival orders pizza with extra cheese".to_string(),
            "the shuttle to the airport waits for the arrival".to_string(),
        ];
        let mut c = Corpus::from_texts(first.iter());
        let mut idx = IndexSet::build(&c, &IndexConfig::small());
        let mut pool = FrontierPool::new();
        let mut p = IdSet::from_ids(&[0, 3], c.len());
        pool.generate_scored(&idx, &p, 10_000, usize::MAX);

        let old_n = c.len();
        c.append_texts(extra.iter(), 1);
        let delta = idx.append(&c).unwrap();
        let new_ids: Vec<u32> = (old_n as u32..c.len() as u32).collect();
        pool.append_ids(&idx, &new_ids, &delta);

        let pooled = pool.generate_scored(&idx, &p, 10_000, usize::MAX);
        let scratch = generate_scored(&idx, &p, 10_000, usize::MAX);
        assert_eq!(as_tuples(&pooled), as_tuples(&scratch), "post-append walk");
        assert_eq!(pool.stats().full_rebuilds, 0, "fold must avoid a rebuild");

        // Growth continues across the barrier: a newly appended sentence
        // turns positive and flows through the ordinary dirty journal.
        let appended_id = old_n as u32 + 1;
        pool.note_positives(&[appended_id]);
        p.insert(appended_id);
        let pooled = pool.generate_scored(&idx, &p, 10_000, usize::MAX);
        let scratch = generate_scored(&idx, &p, 10_000, usize::MAX);
        assert_eq!(as_tuples(&pooled), as_tuples(&scratch), "post-YES walk");
        assert_eq!(pool.stats().full_rebuilds, 0);
    }

    /// Corrupt images are refused, never imported.
    #[test]
    fn corrupt_images_are_refused() {
        let (c, idx) = setup();
        let mut pool = FrontierPool::new();
        let p = IdSet::from_ids(&[0], c.len());
        pool.generate_scored(&idx, &p, 10_000, usize::MAX);
        let img = pool.export(c.len());

        let mut bad = img.clone();
        if let Some(slot) = bad.nodes.iter_mut().find(|s| s.1 != ABSENT) {
            slot.0 = slot.1 + 1; // overlap beyond coverage
        }
        assert!(FrontierPool::import(&bad).is_err());

        let mut bad = img.clone();
        for slot in &mut bad.nodes {
            if slot.2 != 0 {
                slot.2 = bad.kids.len() as u32 + 40; // arena offset out of bounds
                break;
            }
        }
        assert!(FrontierPool::import(&bad).is_err());

        let mut bad = img;
        bad.kids.truncate(bad.kids.len().saturating_sub(1));
        assert!(FrontierPool::import(&bad).is_err());
    }

    fn as_tuples(cands: &[Candidate]) -> Vec<(RuleRef, usize, usize)> {
        cands.iter().map(|c| (c.rule, c.overlap, c.count)).collect()
    }
}

//! Oracle abstractions (paper Definition 4, §4.5 "Performance of human
//! annotators").
//!
//! An oracle answers YES/NO: "is this heuristic adequately precise at
//! capturing positive instances?". Experiments synthesize answers from
//! ground truth; the sampled-annotator oracle reproduces the error pattern
//! observed with Figure-eight crowd workers (judging from 5 sampled
//! matches, occasionally fooled when the sample looks cleaner than the
//! full coverage set).
//!
//! Two calling conventions share the same answer semantics:
//!
//! * [`Oracle`] is the synchronous form — `ask` blocks until the verdict
//!   is known. Every step-driven loop ([`crate::pipeline`],
//!   [`crate::parallel`]) uses it.
//! * [`AsyncOracle`] is the submit/poll split the batched loop
//!   ([`crate::batch`]) drives: questions go out tagged with a
//!   [`QuestionId`], answers come back later — possibly out of order —
//!   from `poll`. [`Immediate`] adapts any synchronous oracle to the
//!   async surface (answers available at the next poll), which is also
//!   the reference configuration for the batch layer's equivalence
//!   guarantee.

use darwin_grammar::Heuristic;
use darwin_text::Corpus;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Duration;

/// The YES/NO feedback source Darwin queries.
pub trait Oracle {
    /// Is `rule` adequately precise? `coverage` is `C_r` over the corpus.
    fn ask(&mut self, corpus: &Corpus, rule: &Heuristic, coverage: &[u32]) -> bool;

    /// Number of questions asked so far.
    fn queries(&self) -> usize;
}

impl<O: Oracle + ?Sized> Oracle for &mut O {
    fn ask(&mut self, corpus: &Corpus, rule: &Heuristic, coverage: &[u32]) -> bool {
        (**self).ask(corpus, rule, coverage)
    }

    fn queries(&self) -> usize {
        (**self).queries()
    }
}

impl<O: Oracle + ?Sized> Oracle for Box<O> {
    fn ask(&mut self, corpus: &Corpus, rule: &Heuristic, coverage: &[u32]) -> bool {
        (**self).ask(corpus, rule, coverage)
    }

    fn queries(&self) -> usize {
        (**self).queries()
    }
}

/// Identifies one submitted question for the lifetime of an async run.
/// Ids are assigned by the driver in submission order, so sorting arrived
/// answers by id recovers the canonical (submission) order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QuestionId(pub u64);

/// The asynchronous feedback source the batched loop drives: questions are
/// *submitted* and answers *polled*, decoupling selection from answering so
/// several questions can be in flight at once (paper §4.3's crowd setting,
/// where annotator latency dwarfs engine compute).
///
/// Contract:
///
/// * every submitted [`QuestionId`] is eventually delivered by exactly one
///   `poll` call, in any order;
/// * `poll` may block briefly while answers are outstanding (a simulated
///   or remote oracle waiting on its next arrival), but must not block
///   when nothing is in flight;
/// * answers depend only on the submitted `(rule, coverage)`, exactly as
///   [`Oracle::ask`] (Definition 4: the verdict is a function of `C_r`).
pub trait AsyncOracle {
    /// Dispatch a question. The answer arrives from a later [`poll`].
    ///
    /// [`poll`]: AsyncOracle::poll
    fn submit(&mut self, qid: QuestionId, corpus: &Corpus, rule: &Heuristic, coverage: &[u32]);

    /// Answers that have arrived since the last poll (possibly empty,
    /// possibly out of submission order).
    fn poll(&mut self) -> Vec<(QuestionId, bool)>;

    /// [`poll`], but the oracle may *block* up to `timeout` waiting for
    /// the first answer when questions are in flight — what the wave
    /// driver calls, so oracles that can wait efficiently (a channel, a
    /// socket, a remote worker) do so instead of being spin-polled. The
    /// default simply polls: correct for every oracle, efficient for the
    /// ones whose answers are ready at submit ([`Immediate`]) or scripted
    /// in poll cycles ([`crate::ScriptedArrival`]).
    ///
    /// Like [`poll`], must not block when nothing is in flight.
    ///
    /// [`poll`]: AsyncOracle::poll
    fn poll_deadline(&mut self, timeout: Duration) -> Vec<(QuestionId, bool)> {
        let _ = timeout;
        self.poll()
    }

    /// Whether this oracle can still deliver answers. A wire-backed
    /// oracle whose worker died reports `false`; the wave driver then
    /// abandons the in-flight questions immediately instead of waiting
    /// out the idle limit. Defaults to `true` (local oracles never die).
    fn healthy(&self) -> bool {
        true
    }

    /// Questions submitted so far.
    fn queries(&self) -> usize;
}

/// Blanket adapter: any synchronous [`Oracle`] as an [`AsyncOracle`] whose
/// answers are available at the next poll — zero latency, nothing ever in
/// flight across a poll boundary. Driving the batch loop with batch size 1
/// through this adapter replays the synchronous loop byte for byte (the
/// batch layer's equivalence tests pin this).
pub struct Immediate<O> {
    inner: O,
    ready: Vec<(QuestionId, bool)>,
}

impl<O: Oracle> Immediate<O> {
    /// Wrap a synchronous oracle.
    pub fn new(inner: O) -> Immediate<O> {
        Immediate {
            inner,
            ready: Vec::new(),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwrap, discarding any undelivered answers.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> AsyncOracle for Immediate<O> {
    fn submit(&mut self, qid: QuestionId, corpus: &Corpus, rule: &Heuristic, coverage: &[u32]) {
        let answer = self.inner.ask(corpus, rule, coverage);
        self.ready.push((qid, answer));
    }

    fn poll(&mut self) -> Vec<(QuestionId, bool)> {
        std::mem::take(&mut self.ready)
    }

    fn poll_deadline(&mut self, _timeout: Duration) -> Vec<(QuestionId, bool)> {
        // Answers are ready the moment they are submitted — never wait.
        self.poll()
    }

    fn queries(&self) -> usize {
        self.inner.queries()
    }
}

/// A perfect annotator: YES iff the precision of the full coverage set
/// meets the threshold. The paper observes users label a heuristic precise
/// only when precision ≥ 0.8, and simulates oracles the same way (§4.1
/// "we respond YES to heuristic h if at least 80% of its coverage set
/// consist of positive instances").
pub struct GroundTruthOracle<'a> {
    labels: &'a [bool],
    threshold: f64,
    queries: usize,
}

impl<'a> GroundTruthOracle<'a> {
    /// An oracle that accepts rules whose coverage precision over
    /// `labels` is at least `threshold` (the paper uses 0.8).
    pub fn new(labels: &'a [bool], threshold: f64) -> Self {
        GroundTruthOracle {
            labels,
            threshold,
            queries: 0,
        }
    }

    /// Precision of an id set under the ground truth.
    pub fn precision(&self, coverage: &[u32]) -> f64 {
        if coverage.is_empty() {
            return 0.0;
        }
        let pos = coverage
            .iter()
            .filter(|&&i| self.labels[i as usize])
            .count();
        pos as f64 / coverage.len() as f64
    }
}

impl Oracle for GroundTruthOracle<'_> {
    fn ask(&mut self, _corpus: &Corpus, _rule: &Heuristic, coverage: &[u32]) -> bool {
        self.queries += 1;
        !coverage.is_empty() && self.precision(coverage) >= self.threshold
    }

    fn queries(&self) -> usize {
        self.queries
    }
}

/// A human-like annotator: inspects `k` randomly sampled matching
/// sentences (the paper's query UI shows 5, Figure 2) and answers YES iff
/// at least `ceil(accept_ratio·k)` of them are positive. Errors concentrate
/// on rules whose small sample happens to look better (or worse) than the
/// full coverage set; presenting more samples lowers the error rate
/// (paper §4.5).
pub struct SampledAnnotatorOracle<'a> {
    labels: &'a [bool],
    k: usize,
    accept_ratio: f64,
    rng: StdRng,
    queries: usize,
}

impl<'a> SampledAnnotatorOracle<'a> {
    /// An annotator that inspects `k` sampled covered sentences per
    /// question (deterministic per `seed`).
    pub fn new(labels: &'a [bool], k: usize, seed: u64) -> Self {
        SampledAnnotatorOracle {
            labels,
            k,
            accept_ratio: 0.8,
            rng: StdRng::seed_from_u64(seed),
            queries: 0,
        }
    }

    /// Override the acceptance ratio (default 0.8, matching the empirical
    /// precision bar users apply).
    pub fn with_accept_ratio(mut self, r: f64) -> Self {
        self.accept_ratio = r;
        self
    }
}

impl Oracle for SampledAnnotatorOracle<'_> {
    fn ask(&mut self, _corpus: &Corpus, _rule: &Heuristic, coverage: &[u32]) -> bool {
        self.queries += 1;
        if coverage.is_empty() {
            return false;
        }
        let k = self.k.min(coverage.len());
        let sample: Vec<u32> = coverage
            .choose_multiple(&mut self.rng, k)
            .copied()
            .collect();
        let pos = sample.iter().filter(|&&i| self.labels[i as usize]).count();
        let needed = (self.accept_ratio * k as f64).ceil() as usize;
        pos >= needed.max(1)
    }

    fn queries(&self) -> usize {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::from_texts(["a b", "c d", "e f", "g h", "i j"])
    }

    fn dummy_rule(c: &Corpus) -> Heuristic {
        Heuristic::phrase(c, "a").unwrap()
    }

    #[test]
    fn ground_truth_applies_threshold() {
        let c = corpus();
        let labels = vec![true, true, true, true, false];
        let mut o = GroundTruthOracle::new(&labels, 0.8);
        let r = dummy_rule(&c);
        assert!(o.ask(&c, &r, &[0, 1, 2, 3, 4])); // 4/5 = 0.8
        assert!(!o.ask(&c, &r, &[2, 3, 4])); // 2/3 < 0.8
        assert!(!o.ask(&c, &r, &[])); // empty coverage is never precise
        assert_eq!(o.queries(), 3);
    }

    #[test]
    fn annotator_is_perfect_on_clean_rules() {
        let c = corpus();
        let labels = vec![true, true, true, false, false];
        let mut o = SampledAnnotatorOracle::new(&labels, 5, 1);
        let r = dummy_rule(&c);
        assert!(o.ask(&c, &r, &[0, 1, 2])); // all positive
        assert!(!o.ask(&c, &r, &[3, 4])); // all negative
    }

    #[test]
    fn annotator_errs_sometimes_on_borderline_rules() {
        // Precision 0.6 coverage: with k=5 and 0.8 bar, the annotator
        // sometimes says YES (sample of 4+/5 positives) and often NO.
        let labels: Vec<bool> = (0..100).map(|i| i % 5 < 3).collect();
        let coverage: Vec<u32> = (0..100).collect();
        let c = corpus();
        let r = dummy_rule(&c);
        let mut yes = 0;
        for seed in 0..200 {
            let mut o = SampledAnnotatorOracle::new(&labels, 5, seed);
            if o.ask(&c, &r, &coverage) {
                yes += 1;
            }
        }
        assert!(yes > 5, "some false YES expected, got {yes}");
        assert!(yes < 150, "mostly NO expected, got {yes}");
    }

    #[test]
    fn immediate_adapter_preserves_answers_and_count() {
        let c = corpus();
        let labels = vec![true, true, true, true, false];
        let r = dummy_rule(&c);
        let mut sync = GroundTruthOracle::new(&labels, 0.8);
        let expect = [
            sync.ask(&c, &r, &[0, 1, 2, 3, 4]),
            sync.ask(&c, &r, &[2, 3, 4]),
        ];

        let mut a = Immediate::new(GroundTruthOracle::new(&labels, 0.8));
        a.submit(QuestionId(0), &c, &r, &[0, 1, 2, 3, 4]);
        a.submit(QuestionId(1), &c, &r, &[2, 3, 4]);
        let got = a.poll();
        assert_eq!(
            got,
            vec![(QuestionId(0), expect[0]), (QuestionId(1), expect[1])]
        );
        assert!(a.poll().is_empty(), "answers deliver exactly once");
        assert_eq!(a.queries(), 2);
    }

    #[test]
    fn oracle_impls_for_references_and_boxes() {
        let c = corpus();
        let labels = vec![true, true, true, true, false];
        let r = dummy_rule(&c);
        let mut gt = GroundTruthOracle::new(&labels, 0.8);
        let by_ref: &mut dyn Oracle = &mut gt;
        let mut wrapped = Immediate::new(by_ref);
        wrapped.submit(QuestionId(7), &c, &r, &[0, 1, 2, 3]);
        assert_eq!(wrapped.poll(), vec![(QuestionId(7), true)]);

        let mut boxed: Box<dyn Oracle> = Box::new(GroundTruthOracle::new(&labels, 0.8));
        assert!(boxed.ask(&c, &r, &[0, 1, 2, 3]));
        assert_eq!(boxed.queries(), 1);
    }

    #[test]
    fn more_samples_lower_error_rate() {
        let labels: Vec<bool> = (0..1000).map(|i| i % 5 < 3).collect(); // precision 0.6
        let coverage: Vec<u32> = (0..1000).collect();
        let c = corpus();
        let r = dummy_rule(&c);
        let err_rate = |k: usize| {
            let mut yes = 0;
            for seed in 0..300 {
                let mut o = SampledAnnotatorOracle::new(&labels, k, seed);
                if o.ask(&c, &r, &coverage) {
                    yes += 1;
                }
            }
            yes as f64 / 300.0
        };
        assert!(
            err_rate(25) < err_rate(5),
            "k=25 {} vs k=5 {}",
            err_rate(25),
            err_rate(5)
        );
    }
}

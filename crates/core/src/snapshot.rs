//! Durable session snapshots: suspend a live run at a wave barrier,
//! resume it later — same or different process, transport, shard count,
//! thread count — and replay the uninterrupted trace byte for byte.
//!
//! # The barrier-only rule
//!
//! A [`Snapshot`] is taken only at a *wave barrier* of the async driver
//! ([`crate::batch`]): every submitted question has been answered and
//! recorded, the strategy has observed the wave, and the classifier has
//! retrained if `P` grew. At that point the run's future depends only on
//! state this module captures:
//!
//! | constituent            | captured as                               | restored by                        |
//! |------------------------|-------------------------------------------|------------------------------------|
//! | positive set `P`       | sorted ids                                | `IdSet::from_ids`                  |
//! | queried / asked sets   | sorted handles / canonical heuristics     | rebuilt hash sets                  |
//! | accepted / rejected    | heuristics in acceptance order            | cloned                             |
//! | trace                  | [`TraceStep`]s in question order          | cloned (qid numbering continues)   |
//! | classifier scores      | [`ScoreImage`] (scores, round, journal)   | `ScoreCache::import` + re-shard    |
//! | frontier memo          | [`FrontierImage`] (memo, arena, journal)  | `FrontierPool::import` (validated) |
//! | engine RNG             | raw xoshiro256++ words                    | `StdRng::from_state`               |
//! | strategy state         | [`StrategyState`]                         | `Strategy::import_state`           |
//! | in-flight questions    | `(qid, rule)` pairs (empty at barriers)   | re-queued pending set              |
//! | driver counters        | [`SessionCounters`]                       | wave/submit/retrain counts resume  |
//! | config / corpus        | 64-bit FNV fingerprints                   | validated, never trusted blindly   |
//!
//! What is deliberately *not* captured: classifier weights (`fit` is a
//! pure function of `(P, RNG draws, seed)` — the next retrain reproduces
//! them bit for bit), the candidate hierarchy and benefit aggregates
//! (deterministically re-derived from the restored `(P, scores)`), the
//! adaptive batcher's latency EWMAs (wall-clock measurements; only the
//! deterministic policies replay exactly anyway), and anything owned by
//! the deployment rather than the run — transports, worker processes,
//! `shards`/`threads`/`fanout`. Resume re-attaches workers by replaying
//! `ShardInit`/`Track` through the *resuming* `Darwin`'s connectors, which
//! is exactly the reconnect-and-replay machinery a mid-run worker death
//! already exercises.
//!
//! # Wire format
//!
//! The encoded snapshot travels inside a checksummed snapshot frame
//! ([`darwin_wire::snapshot_frame`]) with its own magic and version
//! window, distinct from protocol frames: snapshots rest on disk and
//! outlive processes, so their format evolves on its own schedule. A
//! truncated, bit-flipped, length-inflated or alien snapshot is a clean
//! [`SnapshotError`] — never a panic, never an unbounded allocation.

use crate::config::{DarwinConfig, TraversalKind};
use crate::engine::Engine;
use crate::frontier::{FrontierImage, FrontierStats};
use crate::pipeline::{Darwin, TraceStep};
use crate::traversal::{Strategy, StrategyState};
use darwin_classifier::ScoreImage;
use darwin_grammar::Heuristic;
use darwin_index::{IndexSet, RuleRef};
use darwin_text::Corpus;
use darwin_wire::{Decode, Encode, Reader, WireError};

/// Why a snapshot could not be written, decoded or resumed.
#[derive(Debug, PartialEq)]
pub enum SnapshotError {
    /// The byte container is invalid: bad magic, version outside the
    /// supported window, length over the cap, checksum mismatch, or a
    /// payload the codec refuses.
    Wire(WireError),
    /// The snapshot decodes but does not belong to this deployment:
    /// config or corpus fingerprint disagrees, or dimensions do not line
    /// up with the live corpus/index.
    Mismatch(String),
    /// The snapshot decodes but is internally inconsistent (e.g. a
    /// frontier memo whose arena offsets point out of bounds).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Wire(e) => write!(f, "snapshot container: {e}"),
            SnapshotError::Mismatch(m) => write!(f, "snapshot mismatch: {m}"),
            SnapshotError::Corrupt(m) => write!(f, "snapshot corrupt: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> SnapshotError {
        SnapshotError::Wire(e)
    }
}

/// The async driver's cumulative counters, carried across a suspend so a
/// resumed run's [`crate::batch::AsyncReport`] (and its question-id
/// numbering — qids are the `submitted` sequence) continues exactly where
/// the suspended run stopped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Questions submitted so far (the next qid).
    pub submitted: u64,
    /// Waves driven so far.
    pub waves: u64,
    /// Retrain barriers so far.
    pub retrains: u64,
    /// Peak in-flight questions so far.
    pub peak: u64,
}

/// A complete, self-validating image of a suspended run — see the
/// [module docs](self) for what is captured and what is re-derived.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// FNV-1a fingerprint of the semantic run configuration (excludes
    /// `shards`/`threads`/`fanout`/`warm_start` — pure perf knobs that
    /// may legally differ at resume).
    pub config_fp: u64,
    /// FNV-1a fingerprint of the corpus texts and the index recipe.
    pub corpus_fp: u64,
    /// Corpus size the snapshot is dimensioned for.
    pub n: u32,
    /// The positive set `P`, sorted.
    pub p: Vec<u32>,
    /// Rules already submitted or consumed as duplicates, sorted.
    pub queried: Vec<RuleRef>,
    /// Accepted heuristics, in acceptance order.
    pub accepted: Vec<Heuristic>,
    /// Rejected heuristics, in rejection order.
    pub rejected: Vec<Heuristic>,
    /// Per-question history, in question order.
    pub trace: Vec<TraceStep>,
    /// Canonical heuristics already asked (alias dedup), sorted by
    /// encoding for a canonical byte image.
    pub asked: Vec<Heuristic>,
    /// Coverage hashes already asked (duplicate dedup), sorted.
    pub asked_coverages: Vec<u64>,
    /// The seed heuristics' rule handles.
    pub seed_refs: Vec<RuleRef>,
    /// In-flight questions at capture, in submission order. Empty at a
    /// wave barrier — the only place the driver snapshots.
    pub pending: Vec<(u64, RuleRef)>,
    /// The engine RNG's raw xoshiro256++ state.
    pub rng: [u64; 4],
    /// The score cache: per-sentence scores, refresh cadence, journal.
    pub cache: ScoreImage,
    /// The persistent candidate frontier, when the run maintains one.
    pub frontier: Option<FrontierImage>,
    /// The traversal strategy's explicit state.
    pub strategy: StrategyState,
    /// The async driver's cumulative counters.
    pub counters: SessionCounters,
}

// ---- fingerprints -------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of the *semantic* run configuration — every knob that can
/// change the trace. Execution-layer knobs (`shards`, `threads`,
/// `fanout`) and `warm_start` are excluded: they are bit-equivalent by
/// the engine contract, and resuming under a different deployment is the
/// point of a durable session.
pub fn config_fingerprint(cfg: &DarwinConfig) -> u64 {
    let mut buf = Vec::new();
    (cfg.budget as u64).encode(&mut buf);
    (cfg.n_candidates as u64).encode(&mut buf);
    let traversal: u8 = match cfg.traversal {
        TraversalKind::Local => 0,
        TraversalKind::Universal => 1,
        TraversalKind::Hybrid => 2,
    };
    traversal.encode(&mut buf);
    (cfg.tau as u64).encode(&mut buf);
    // Normalize the warm-start knob away: it never changes weights.
    format!("{:?}", cfg.classifier.clone().with_warm_start(false)).encode(&mut buf);
    cfg.benefit_threshold.to_bits().encode(&mut buf);
    (cfg.neg_per_pos as u64).encode(&mut buf);
    (cfg.min_negatives as u64).encode(&mut buf);
    cfg.incremental_scoring.encode(&mut buf);
    cfg.incremental_benefit.encode(&mut buf);
    cfg.incremental_frontier.encode(&mut buf);
    match &cfg.batch {
        crate::batch::BatchPolicy::Fixed(k) => {
            0u8.encode(&mut buf);
            (*k as u64).encode(&mut buf);
        }
        crate::batch::BatchPolicy::LatencyTargeted { max } => {
            1u8.encode(&mut buf);
            (*max as u64).encode(&mut buf);
        }
        crate::batch::BatchPolicy::BenefitDecay { max, cutoff } => {
            2u8.encode(&mut buf);
            (*max as u64).encode(&mut buf);
            cutoff.to_bits().encode(&mut buf);
        }
    }
    cfg.max_coverage_frac.to_bits().encode(&mut buf);
    cfg.seed.encode(&mut buf);
    fnv64(&buf)
}

/// Fingerprint of the corpus texts plus the index build recipe — the pair
/// that fixes every `RuleRef` handle. Two deployments agreeing on this
/// fingerprint number their rules identically by construction.
pub fn corpus_fingerprint(corpus: &Corpus, index: &IndexSet) -> u64 {
    let mut buf = Vec::new();
    (corpus.len() as u64).encode(&mut buf);
    for id in 0..corpus.len() as u32 {
        corpus.text(id).encode(&mut buf);
    }
    index.config().encode(&mut buf);
    fnv64(&buf)
}

// ---- capture ------------------------------------------------------------

impl Snapshot {
    /// Capture the complete run state at a wave barrier. `strategy` must
    /// be the live traversal strategy; strategies that do not support
    /// snapshotting ([`Strategy::export_state`] returns `None`) capture a
    /// default state — the three shipped strategies all support it.
    pub fn capture(
        darwin: &Darwin<'_>,
        engine: &Engine<'_>,
        strategy: &dyn Strategy,
        counters: SessionCounters,
    ) -> Snapshot {
        let n = darwin.corpus().len();
        let mut queried: Vec<RuleRef> = engine.state.queried.iter().copied().collect();
        queried.sort_unstable();
        let mut asked: Vec<Heuristic> = engine.state.asked().iter().cloned().collect();
        asked.sort_by_cached_key(|h| h.to_bytes());
        let mut asked_coverages: Vec<u64> =
            engine.state.asked_coverages().iter().copied().collect();
        asked_coverages.sort_unstable();
        Snapshot {
            config_fp: config_fingerprint(darwin.config()),
            corpus_fp: corpus_fingerprint(darwin.corpus(), darwin.index()),
            n: n as u32,
            p: engine.state.p.iter().collect(),
            queried,
            accepted: engine.state.accepted.clone(),
            rejected: engine.state.rejected.clone(),
            trace: engine.state.trace.clone(),
            asked,
            asked_coverages,
            seed_refs: engine.seed_refs().to_vec(),
            pending: engine.pending().map(|(q, r)| (q.0, r)).collect(),
            rng: engine.rng_state(),
            cache: engine.cache().export(),
            frontier: engine.frontier().map(|f| f.export(n)),
            strategy: strategy.export_state().unwrap_or_default(),
            counters,
        }
    }

    /// Validate the snapshot against a live deployment: fingerprints must
    /// agree and every rule handle must exist in the live index. Called
    /// by [`Darwin::resume`] before any state is rebuilt.
    pub fn validate_against(&self, darwin: &Darwin<'_>) -> Result<(), SnapshotError> {
        let cfg_fp = config_fingerprint(darwin.config());
        if self.config_fp != cfg_fp {
            return Err(SnapshotError::Mismatch(format!(
                "config fingerprint {:#018x} vs live {:#018x} — the semantic run \
                 configuration must not change across a suspend",
                self.config_fp, cfg_fp
            )));
        }
        let corpus_fp = corpus_fingerprint(darwin.corpus(), darwin.index());
        if self.corpus_fp != corpus_fp {
            return Err(SnapshotError::Mismatch(format!(
                "corpus fingerprint {:#018x} vs live {:#018x} — resume needs the \
                 identical corpus and index recipe",
                self.corpus_fp, corpus_fp
            )));
        }
        let n = darwin.corpus().len() as u32;
        if self.n != n {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot sized for {} sentences, live corpus has {n}",
                self.n
            )));
        }
        if let Some(&id) = self.p.iter().find(|&&id| id >= n) {
            return Err(SnapshotError::Corrupt(format!(
                "positive id {id} outside corpus of {n}"
            )));
        }
        let index = darwin.index();
        let refs = self
            .queried
            .iter()
            .chain(&self.seed_refs)
            .chain(&self.strategy.local)
            .chain(self.pending.iter().map(|(_, r)| r));
        for &r in refs {
            if !valid_ref(index, r) {
                return Err(SnapshotError::Corrupt(format!(
                    "rule handle {r:?} does not exist in the live index"
                )));
            }
        }
        Ok(())
    }

    /// Serialize into a checksummed, versioned snapshot frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        darwin_wire::snapshot_frame(&Encode::to_bytes(self))
    }

    /// Decode a snapshot frame. Every failure — truncation, bit rot,
    /// inflated length prefixes, alien magic, unsupported version — is a
    /// clean [`SnapshotError`]; decoding never panics and never allocates
    /// beyond the validated payload length.
    pub fn from_bytes(buf: &[u8]) -> Result<Snapshot, SnapshotError> {
        let payload = darwin_wire::parse_snapshot_frame(buf)?;
        Ok(<Snapshot as Decode>::from_bytes(&payload)?)
    }
}

/// Whether `r` names a rule of the live index: its dense id must be in
/// range *and* map back to the same handle (a phrase handle past the trie
/// would alias into the tree range otherwise). All arithmetic is done in
/// `u64` so corrupt handles cannot overflow.
fn valid_ref(index: &IndexSet, r: RuleRef) -> bool {
    let phrase_len = index.dense_id(RuleRef::Tree(0)) as u64;
    let total = index.dense_rules() as u64;
    match r {
        RuleRef::Root => true,
        RuleRef::Phrase(p) => (p as u64) < phrase_len,
        RuleRef::Tree(t) => phrase_len + (t as u64) < total,
    }
}

// ---- codec --------------------------------------------------------------

impl Encode for TraceStep {
    fn encode(&self, out: &mut Vec<u8>) {
        self.question.encode(out);
        self.rule.encode(out);
        self.answer.encode(out);
        self.new_positive_ids.encode(out);
        self.p_size.encode(out);
    }
}
impl Decode for TraceStep {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TraceStep {
            question: usize::decode(r)?,
            rule: Heuristic::decode(r)?,
            answer: bool::decode(r)?,
            new_positive_ids: Vec::decode(r)?,
            p_size: usize::decode(r)?,
        })
    }
}

impl Encode for StrategyState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.local.encode(out);
        self.universal_mode.encode(out);
        self.attempts.encode(out);
    }
}
impl Decode for StrategyState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StrategyState {
            local: Vec::decode(r)?,
            universal_mode: bool::decode(r)?,
            attempts: u64::decode(r)?,
        })
    }
}

impl Encode for FrontierStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.generations.encode(out);
        self.full_rebuilds.encode(out);
        self.delta_batches.encode(out);
        self.rules_rescored.encode(out);
        self.deltas_by_postings.encode(out);
        self.deltas_by_intersection.encode(out);
        self.fresh_nodes.encode(out);
    }
}
impl Decode for FrontierStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FrontierStats {
            generations: u64::decode(r)?,
            full_rebuilds: u64::decode(r)?,
            delta_batches: u64::decode(r)?,
            rules_rescored: u64::decode(r)?,
            deltas_by_postings: u64::decode(r)?,
            deltas_by_intersection: u64::decode(r)?,
            fresh_nodes: u64::decode(r)?,
        })
    }
}

impl Encode for FrontierImage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nodes.encode(out);
        self.kids.encode(out);
        self.pending.encode(out);
        self.synced_p.encode(out);
        self.reflected.encode(out);
        self.universe.encode(out);
        self.stats.encode(out);
    }
}
impl Decode for FrontierImage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FrontierImage {
            nodes: Vec::decode(r)?,
            kids: Vec::decode(r)?,
            pending: Vec::decode(r)?,
            synced_p: u64::decode(r)?,
            reflected: Vec::decode(r)?,
            universe: u32::decode(r)?,
            stats: FrontierStats::decode(r)?,
        })
    }
}

impl Encode for SessionCounters {
    fn encode(&self, out: &mut Vec<u8>) {
        self.submitted.encode(out);
        self.waves.encode(out);
        self.retrains.encode(out);
        self.peak.encode(out);
    }
}
impl Decode for SessionCounters {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SessionCounters {
            submitted: u64::decode(r)?,
            waves: u64::decode(r)?,
            retrains: u64::decode(r)?,
            peak: u64::decode(r)?,
        })
    }
}

// `ScoreImage` lives in `darwin-classifier`, which does not depend on the
// wire crate (and the orphan rule forbids implementing the foreign trait
// for the foreign type here), so its codec is a pair of free functions.
fn encode_score_image(img: &ScoreImage, out: &mut Vec<u8>) {
    img.scores.encode(out);
    img.round.encode(out);
    img.threshold.encode(out);
    img.full_every.encode(out);
    img.incremental.encode(out);
    img.refreshed_last_round.encode(out);
    img.epoch.encode(out);
    img.last_was_full.encode(out);
    img.changes.encode(out);
}

fn decode_score_image(r: &mut Reader<'_>) -> Result<ScoreImage, WireError> {
    Ok(ScoreImage {
        scores: Vec::decode(r)?,
        round: u32::decode(r)?,
        threshold: f32::decode(r)?,
        full_every: u32::decode(r)?,
        incremental: bool::decode(r)?,
        refreshed_last_round: u64::decode(r)?,
        epoch: u64::decode(r)?,
        last_was_full: bool::decode(r)?,
        changes: Vec::decode(r)?,
    })
}

impl Encode for Snapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.config_fp.encode(out);
        self.corpus_fp.encode(out);
        self.n.encode(out);
        self.p.encode(out);
        self.queried.encode(out);
        self.accepted.encode(out);
        self.rejected.encode(out);
        self.trace.encode(out);
        self.asked.encode(out);
        self.asked_coverages.encode(out);
        self.seed_refs.encode(out);
        self.pending.encode(out);
        for w in self.rng {
            w.encode(out);
        }
        encode_score_image(&self.cache, out);
        self.frontier.encode(out);
        self.strategy.encode(out);
        self.counters.encode(out);
    }
}
impl Decode for Snapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Snapshot {
            config_fp: u64::decode(r)?,
            corpus_fp: u64::decode(r)?,
            n: u32::decode(r)?,
            p: Vec::decode(r)?,
            queried: Vec::decode(r)?,
            accepted: Vec::decode(r)?,
            rejected: Vec::decode(r)?,
            trace: Vec::decode(r)?,
            asked: Vec::decode(r)?,
            asked_coverages: Vec::decode(r)?,
            seed_refs: Vec::decode(r)?,
            pending: Vec::decode(r)?,
            rng: [
                u64::decode(r)?,
                u64::decode(r)?,
                u64::decode(r)?,
                u64::decode(r)?,
            ],
            cache: decode_score_image(r)?,
            frontier: Option::decode(r)?,
            strategy: StrategyState::decode(r)?,
            counters: SessionCounters::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            config_fp: 0xDEAD_BEEF,
            corpus_fp: 0xFEED_FACE,
            n: 5,
            p: vec![0, 2, 4],
            queried: vec![RuleRef::Phrase(3), RuleRef::Tree(1)],
            accepted: Vec::new(),
            rejected: Vec::new(),
            trace: vec![TraceStep {
                question: 1,
                rule: Heuristic::Phrase(darwin_grammar::PhrasePattern::from_tokens([
                    darwin_text::Sym(7),
                ])),
                answer: true,
                new_positive_ids: vec![2, 4],
                p_size: 3,
            }],
            asked: Vec::new(),
            asked_coverages: vec![1, 99],
            seed_refs: vec![RuleRef::Phrase(3)],
            pending: vec![(6, RuleRef::Tree(1))],
            rng: [1, 2, 3, u64::MAX],
            cache: ScoreImage {
                scores: vec![0.5, f32::from_bits(0x7fc0_0001), 0.25, 0.0, 1.0],
                round: 3,
                threshold: 0.3,
                full_every: 3,
                incremental: true,
                refreshed_last_round: 5,
                epoch: 2,
                last_was_full: false,
                changes: vec![(1, 0.5, 0.75)],
            },
            frontier: Some(FrontierImage {
                nodes: vec![(0, u32::MAX, 0), (1, 2, 1)],
                kids: vec![0, 1, 1],
                pending: vec![4],
                synced_p: 3,
                reflected: vec![0, 2],
                universe: 5,
                stats: FrontierStats {
                    generations: 2,
                    ..Default::default()
                },
            }),
            strategy: StrategyState {
                local: vec![RuleRef::Phrase(3)],
                universal_mode: true,
                attempts: 4,
            },
            counters: SessionCounters {
                submitted: 7,
                waves: 3,
                retrains: 2,
                peak: 3,
            },
        }
    }

    #[test]
    fn snapshot_roundtrips_through_the_frame() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        // Struct equality would trip over NaN != NaN; the byte image is
        // the ground truth — re-encoding the decoded snapshot must be
        // canonical (byte-identical).
        assert_eq!(back.to_bytes(), bytes);
        // NaN-payload scores survive bit for bit.
        assert_eq!(back.cache.scores[1].to_bits(), 0x7fc0_0001);
        // And a NaN-free snapshot compares equal structurally too.
        let mut plain = snap;
        plain.cache.scores[1] = 0.125;
        let plain_back = Snapshot::from_bytes(&plain.to_bytes()).unwrap();
        assert_eq!(plain_back, plain);
    }

    #[test]
    fn truncated_and_flipped_snapshots_are_refused() {
        let bytes = sample().to_bytes();
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Snapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} must be refused"
            );
        }
        for at in [0, 2, 9, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(
                Snapshot::from_bytes(&bad).is_err(),
                "bit flip at {at} must be refused"
            );
        }
    }

    #[test]
    fn fingerprints_track_semantic_knobs_only() {
        let base = DarwinConfig::fast();
        let fp = config_fingerprint(&base);
        // Perf knobs do not move the fingerprint...
        assert_eq!(fp, config_fingerprint(&base.clone().with_shards(4)));
        assert_eq!(fp, config_fingerprint(&base.clone().with_threads(8)));
        assert_eq!(fp, config_fingerprint(&base.clone().with_warm_start(false)));
        assert_eq!(
            fp,
            config_fingerprint(&base.clone().with_fanout(crate::config::Fanout::Sequential))
        );
        // ...semantic knobs do.
        assert_ne!(fp, config_fingerprint(&base.clone().with_seed(43)));
        assert_ne!(fp, config_fingerprint(&base.clone().with_budget(99)));
        assert_ne!(
            fp,
            config_fingerprint(&base.clone().with_batch(crate::batch::BatchPolicy::Fixed(2)))
        );
        assert_ne!(
            fp,
            config_fingerprint(&base.with_traversal(TraversalKind::Local))
        );
    }
}

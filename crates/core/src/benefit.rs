//! Benefit scoring (paper §3.3).
//!
//! The benefit of heuristic `r` is the expected gain in the positive set:
//! `Σ_{s ∈ C_r \ P} p_s`, with `p_s` the classifier's positive probability.
//! The benefit *per new instance* gates UniversalSearch (rules whose
//! average is below 0.5 are expected to be mostly negative).

use darwin_index::IdSet;

/// Benefit of a rule given its postings, the current positive set and the
/// per-sentence scores.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Benefit {
    /// `Σ p_s` over the new (not-yet-positive) covered sentences.
    pub total: f64,
    /// Number of new sentences the rule would add.
    pub new_instances: usize,
}

impl Benefit {
    /// Benefit per new instance (0 when the rule adds nothing).
    pub fn average(&self) -> f64 {
        if self.new_instances == 0 {
            0.0
        } else {
            self.total / self.new_instances as f64
        }
    }
}

/// Compute the benefit of a rule with coverage `postings`.
pub fn benefit(postings: &[u32], p: &IdSet, scores: &[f32]) -> Benefit {
    let mut total = 0.0f64;
    let mut new_instances = 0usize;
    for &s in postings {
        if !p.contains(s) {
            total += scores[s as usize] as f64;
            new_instances += 1;
        }
    }
    Benefit { total, new_instances }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_new_instances() {
        let p = IdSet::from_ids(&[0, 1], 10);
        let scores = vec![0.9, 0.8, 0.7, 0.6, 0.5];
        let b = benefit(&[0, 1, 2, 3], &p, &scores);
        assert_eq!(b.new_instances, 2);
        assert!((b.total - (0.7 + 0.6)).abs() < 1e-6);
        assert!((b.average() - 0.65).abs() < 1e-6);
    }

    #[test]
    fn fully_covered_rule_has_zero_benefit() {
        let p = IdSet::from_ids(&[0, 1, 2], 10);
        let scores = vec![1.0; 3];
        let b = benefit(&[0, 1, 2], &p, &scores);
        assert_eq!(b.new_instances, 0);
        assert_eq!(b.total, 0.0);
        assert_eq!(b.average(), 0.0);
    }

    #[test]
    fn empty_postings() {
        let p = IdSet::with_universe(4);
        let b = benefit(&[], &p, &[0.5; 4]);
        assert_eq!(b.new_instances, 0);
        assert_eq!(b.average(), 0.0);
    }
}

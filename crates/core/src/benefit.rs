//! Benefit scoring (paper §3.3).
//!
//! The benefit of heuristic `r` is the expected gain in the positive set:
//! `Σ_{s ∈ C_r \ P} p_s`, with `p_s` the classifier's positive probability.
//! The benefit *per new instance* gates UniversalSearch (rules whose
//! average is below 0.5 are expected to be mostly negative).
//!
//! ## Exact, order-independent sums
//!
//! The incremental engine maintains per-rule benefit sums by delta —
//! subtracting a sentence's contribution when `P` absorbs it, adding
//! `new − old` when the classifier re-scores it. Floating-point addition is
//! not associative, so f64 sums patched in delta order would drift from a
//! from-scratch recomputation by ULPs — enough to flip an argmax tie and
//! de-synchronize the incremental and rescan paths. Scores are therefore
//! [quantized](quantize) to integer units of 2⁻³⁰ before summing: integer
//! addition is associative, so any update order produces bit-identical
//! sums, and a sum converts back to `f64` exactly (`i64 → f64` is exact
//! below 2⁵³, i.e. corpora up to ~8M sentences).

use darwin_index::IdSet;

/// Fixed-point scale for score sums: 2³⁰ units per probability point.
pub const SCORE_SCALE: f64 = (1u64 << 30) as f64;

/// Quantize one classifier score to fixed-point units.
#[inline]
pub fn quantize(score: f32) -> i64 {
    (score as f64 * SCORE_SCALE) as i64
}

/// Benefit of a rule given its postings, the current positive set and the
/// per-sentence scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Benefit {
    /// `Σ quantize(p_s)` over the new (not-yet-positive) covered sentences.
    pub sum_q: i64,
    /// Number of new sentences the rule would add.
    pub new_instances: usize,
}

impl Benefit {
    /// Total benefit `Σ p_s` in probability units.
    pub fn total(&self) -> f64 {
        self.sum_q as f64 / SCORE_SCALE
    }

    /// Benefit per new instance (0 when the rule adds nothing).
    pub fn average(&self) -> f64 {
        if self.new_instances == 0 {
            0.0
        } else {
            self.total() / self.new_instances as f64
        }
    }
}

/// Compute the benefit of a rule with coverage `postings` from scratch.
pub fn benefit(postings: &[u32], p: &IdSet, scores: &[f32]) -> Benefit {
    let mut sum_q = 0i64;
    let mut new_instances = 0usize;
    for &s in postings {
        if !p.contains(s) {
            sum_q += quantize(scores[s as usize]);
            new_instances += 1;
        }
    }
    Benefit {
        sum_q,
        new_instances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_new_instances() {
        let p = IdSet::from_ids(&[0, 1], 10);
        let scores = vec![0.9, 0.8, 0.7, 0.6, 0.5];
        let b = benefit(&[0, 1, 2, 3], &p, &scores);
        assert_eq!(b.new_instances, 2);
        assert!((b.total() - (0.7 + 0.6)).abs() < 1e-6);
        assert!((b.average() - 0.65).abs() < 1e-6);
    }

    #[test]
    fn fully_covered_rule_has_zero_benefit() {
        let p = IdSet::from_ids(&[0, 1, 2], 10);
        let scores = vec![1.0; 3];
        let b = benefit(&[0, 1, 2], &p, &scores);
        assert_eq!(b.new_instances, 0);
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.average(), 0.0);
    }

    #[test]
    fn empty_postings() {
        let p = IdSet::with_universe(4);
        let b = benefit(&[], &p, &[0.5; 4]);
        assert_eq!(b.new_instances, 0);
        assert_eq!(b.average(), 0.0);
    }

    #[test]
    fn quantized_sums_are_order_independent() {
        // The guarantee delta maintenance relies on: any order of adding
        // and removing contributions lands on the same integer.
        let scores: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).fract()).collect();
        let forward: i64 = scores.iter().map(|&s| quantize(s)).sum();
        let mut patched = forward;
        for &s in scores.iter().rev() {
            patched -= quantize(s);
        }
        for &s in &scores {
            patched += quantize(s);
        }
        assert_eq!(patched, forward);
    }
}

//! Hierarchy traversal strategies (paper §3.3–3.6, Algorithms 3–5).
//!
//! A [`Strategy`] picks the next heuristic to submit to the oracle given
//! the current hierarchy, positive set and classifier scores, and receives
//! the oracle's answer as feedback:
//!
//! * [`LocalSearch`] keeps a frontier around accepted rules — YES moves to
//!   the rule's parents (generalize), NO to its children (specialize).
//! * [`UniversalSearch`] scans the whole hierarchy for the maximum-benefit
//!   rule, skipping rules whose benefit-per-instance is ≤ 0.5 (mostly
//!   expected negatives). Where Algorithm 4 as printed burns a query on a
//!   skipped rule, we filter before selecting — the published text's
//!   intent ("omits any heuristic for which the benefit per instance is
//!   smaller than 0.5") without the wasted budget.
//! * [`HybridSearch`] runs one of the two and toggles after `τ`
//!   consecutive failures (a NO answer, or nothing qualifying to ask).

use crate::benefit::{benefit, Benefit};
use crate::hierarchy::Hierarchy;
use crate::shard::ShardedBenefitStore;
use darwin_index::fx::FxHashSet;
use darwin_index::{IdSet, IndexSet, RuleRef};

/// Read-only view of the pipeline state a strategy selects from.
pub struct Ctx<'a> {
    /// The heuristic index the candidates live in.
    pub index: &'a IndexSet,
    /// The current candidate pool.
    pub hierarchy: &'a Hierarchy,
    /// The discovered positive set `P`.
    pub p: &'a IdSet,
    /// Current classifier scores, one per sentence.
    pub scores: &'a [f32],
    /// Rules already asked (or skipped as duplicates) — never re-offered.
    pub queried: &'a FxHashSet<RuleRef>,
    /// UniversalSearch's benefit-per-instance pruning bar (Algorithm 4).
    pub benefit_threshold: f64,
    /// Delta-maintained benefit aggregates, partitioned by shard. When
    /// present, [`Ctx::benefit`] is an O(shards) fragment merge for
    /// tracked rules; when absent (rescan mode), it recomputes from raw
    /// coverage. Both paths return bit-identical values — see
    /// [`crate::benefit`] and [`crate::shard`].
    pub store: Option<&'a ShardedBenefitStore>,
}

impl Ctx<'_> {
    /// Benefit of a rule under the current state: cached aggregate when
    /// tracked, from-scratch coverage scan otherwise (off-pool rules
    /// LocalSearch walks to are the untracked case).
    pub fn benefit(&self, r: RuleRef) -> Benefit {
        if let Some(b) = self.store.and_then(|s| s.benefit_of(r)) {
            return b;
        }
        benefit(self.index.coverage(r), self.p, self.scores)
    }

    fn selectable(&self, r: RuleRef) -> bool {
        r != RuleRef::Root && !self.queried.contains(&r)
    }

    /// Max-total-benefit rule among `rules` (filtered to selectable ones
    /// that add at least one new instance).
    pub fn most_beneficial<I: IntoIterator<Item = RuleRef>>(&self, rules: I) -> Option<RuleRef> {
        rules
            .into_iter()
            .filter(|&r| self.selectable(r))
            .map(|r| (r, self.benefit(r)))
            .filter(|(_, b)| b.new_instances > 0)
            .max_by(|(ra, a), (rb, b)| a.sum_q.cmp(&b.sum_q).then_with(|| rb.cmp(ra)))
            .map(|(r, _)| r)
    }

    /// Max-*average*-benefit rule (highest expected precision on its new
    /// instances), tie-broken by total benefit. The pipeline's fallback
    /// when the active strategy has nothing to propose — asking the most
    /// *promising* rule rather than the broadest one.
    pub fn most_promising<I: IntoIterator<Item = RuleRef>>(&self, rules: I) -> Option<RuleRef> {
        rules
            .into_iter()
            .filter(|&r| self.selectable(r))
            .map(|r| (r, self.benefit(r)))
            .filter(|(_, b)| b.new_instances > 0)
            .max_by(|(ra, a), (rb, b)| {
                a.average()
                    .total_cmp(&b.average())
                    .then(a.sum_q.cmp(&b.sum_q))
                    .then_with(|| rb.cmp(ra))
            })
            .map(|(r, _)| r)
    }
}

/// Serializable traversal state, captured at a wave barrier for session
/// snapshots. Replaying `feedback` at resume time would *not* reproduce
/// this — feedback walks the hierarchy as it stood when the answer
/// arrived, and the hierarchy changes after every retrain — so the state
/// is exported explicitly instead.
///
/// The image is canonical: the frontier is sorted (the underlying set is
/// unordered and selection is order-independent), so equal states export
/// equal bytes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StrategyState {
    /// LocalSearch's frontier, in increasing rule order.
    pub local: Vec<RuleRef>,
    /// HybridSearch: whether universal mode is active.
    pub universal_mode: bool,
    /// HybridSearch: consecutive failed attempts of the active mode.
    pub attempts: u64,
}

/// A hierarchy-traversal policy.
pub trait Strategy: Send {
    /// Display name (experiment reports key on it).
    fn name(&self) -> &'static str;

    /// Choose the next rule to ask about, or `None` when out of ideas
    /// (the pipeline then falls back to the best remaining candidate).
    fn select(&mut self, ctx: &Ctx) -> Option<RuleRef>;

    /// Observe the oracle's answer for a rule this or any other policy
    /// queried. Called *after* the answer has been applied: `ctx` already
    /// reflects the grown `P` and patched benefit aggregates (the
    /// classifier retrain comes later still). The synchronous and async
    /// loops share this order, so strategies behave identically under
    /// both.
    fn feedback(&mut self, rule: RuleRef, answer: bool, ctx: &Ctx);

    /// Capture the strategy's mutable state for a session snapshot, or
    /// `None` when the implementation does not support snapshotting
    /// (custom strategies may opt out; the built-in three all opt in).
    fn export_state(&self) -> Option<StrategyState> {
        None
    }

    /// Restore state captured by [`Strategy::export_state`]. Returns
    /// `false` when the implementation does not support snapshotting.
    fn import_state(&mut self, _state: &StrategyState) -> bool {
        false
    }
}

/// Algorithm 3 — LocalSearch.
pub struct LocalSearch {
    local: FxHashSet<RuleRef>,
}

impl LocalSearch {
    /// `seeds` are the rule handles of the seed heuristics (may be empty —
    /// the frontier then bootstraps from the hierarchy's best candidate).
    pub fn new(seeds: Vec<RuleRef>) -> LocalSearch {
        LocalSearch {
            local: seeds.into_iter().collect(),
        }
    }

    fn bootstrap(&mut self, ctx: &Ctx) {
        if let Some(best) = ctx.most_beneficial(ctx.hierarchy.rules().iter().copied()) {
            self.local.insert(best);
        }
    }
}

impl Strategy for LocalSearch {
    fn name(&self) -> &'static str {
        "LocalSearch"
    }

    fn select(&mut self, ctx: &Ctx) -> Option<RuleRef> {
        // Seeds may start queried-out (the seed rule itself); expand them
        // so the frontier is never silently empty.
        if self.local.iter().all(|r| !ctx.selectable(*r)) {
            let stale: Vec<RuleRef> = self
                .local
                .iter()
                .copied()
                .filter(|&r| ctx.queried.contains(&r))
                .collect();
            for r in stale {
                for p in ctx.hierarchy.parents(ctx.index, r) {
                    self.local.insert(p);
                }
            }
        }
        // Prefer frontier rules that clear the benefit-per-instance bar
        // (they are expected to be mostly positive); among those take the
        // maximum total benefit. Without any qualifying rule, fall back to
        // the most promising frontier member — asking the broadest one
        // would burn budget on rules the oracle is certain to reject.
        let qualified = self
            .local
            .iter()
            .copied()
            .filter(|&r| ctx.benefit(r).average() > ctx.benefit_threshold);
        let pick = ctx
            .most_beneficial(qualified)
            .or_else(|| ctx.most_promising(self.local.iter().copied()));
        if pick.is_none() && self.local.len() < 2 {
            self.bootstrap(ctx);
            return ctx.most_promising(self.local.iter().copied());
        }
        pick
    }

    fn feedback(&mut self, rule: RuleRef, answer: bool, ctx: &Ctx) {
        self.local.remove(&rule);
        if answer {
            // Generalize (Algorithm 3 line 9) — and also expose the rule's
            // local structural variants: §3 describes LocalSearch as
            // "dropping and adding tokens (derivation rules in general)",
            // which is how `best way to the hotel` leads to sibling rules
            // like `shuttle to the hotel` via their shared parent.
            for r in ctx.hierarchy.parents(ctx.index, rule) {
                if r != RuleRef::Root {
                    self.local.insert(r);
                }
            }
            for r in ctx.hierarchy.children(ctx.index, rule) {
                self.local.insert(r);
            }
        } else {
            // Specialize: a noisy rule may have precise children.
            for r in ctx.hierarchy.children(ctx.index, rule) {
                self.local.insert(r);
            }
        }
    }

    fn export_state(&self) -> Option<StrategyState> {
        let mut local: Vec<RuleRef> = self.local.iter().copied().collect();
        local.sort_unstable();
        Some(StrategyState {
            local,
            ..StrategyState::default()
        })
    }

    fn import_state(&mut self, state: &StrategyState) -> bool {
        self.local = state.local.iter().copied().collect();
        true
    }
}

/// Algorithm 4 — UniversalSearch.
pub struct UniversalSearch;

impl UniversalSearch {
    /// A fresh (stateless) UniversalSearch.
    pub fn new() -> UniversalSearch {
        UniversalSearch
    }
}

impl Default for UniversalSearch {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for UniversalSearch {
    fn name(&self) -> &'static str {
        "UniversalSearch"
    }

    fn select(&mut self, ctx: &Ctx) -> Option<RuleRef> {
        // Rules expected to be mostly negative (avg benefit ≤ threshold)
        // are omitted; among the rest pick the maximum total benefit.
        let qualified = ctx
            .hierarchy
            .rules()
            .iter()
            .copied()
            .filter(|&r| ctx.benefit(r).average() > ctx.benefit_threshold);
        ctx.most_beneficial(qualified)
    }

    fn feedback(&mut self, _rule: RuleRef, _answer: bool, _ctx: &Ctx) {
        // Stateless: the shared `queried` set already excludes asked rules.
    }

    fn export_state(&self) -> Option<StrategyState> {
        Some(StrategyState::default()) // stateless, trivially snapshotted
    }

    fn import_state(&mut self, _state: &StrategyState) -> bool {
        true
    }
}

/// Algorithm 5 — HybridSearch.
pub struct HybridSearch {
    local: LocalSearch,
    universal: UniversalSearch,
    universal_mode: bool,
    attempts: usize,
    tau: usize,
}

impl HybridSearch {
    /// HybridSearch seeded like [`LocalSearch`], switching strategy after
    /// `tau` consecutive failed attempts (paper default: 5).
    pub fn new(seeds: Vec<RuleRef>, tau: usize) -> HybridSearch {
        HybridSearch {
            local: LocalSearch::new(seeds),
            universal: UniversalSearch::new(),
            universal_mode: true,
            attempts: 0,
            tau: tau.max(1),
        }
    }

    /// Which mode is active (diagnostics).
    pub fn in_universal_mode(&self) -> bool {
        self.universal_mode
    }

    fn toggle(&mut self) {
        self.universal_mode = !self.universal_mode;
        self.attempts = 0;
    }
}

impl Strategy for HybridSearch {
    fn name(&self) -> &'static str {
        "HybridSearch"
    }

    fn select(&mut self, ctx: &Ctx) -> Option<RuleRef> {
        if self.attempts >= self.tau {
            self.toggle();
        }
        let first = if self.universal_mode {
            self.universal.select(ctx)
        } else {
            self.local.select(ctx)
        };
        if first.is_some() {
            return first;
        }
        // Active mode has nothing to ask: that counts as a failed attempt
        // of the mode; try the other one immediately.
        self.toggle();
        if self.universal_mode {
            self.universal.select(ctx)
        } else {
            self.local.select(ctx)
        }
    }

    fn feedback(&mut self, rule: RuleRef, answer: bool, ctx: &Ctx) {
        // Both component strategies observe every answer (Algorithm 5
        // updates localCands and universalCands in either mode).
        self.local.feedback(rule, answer, ctx);
        self.universal.feedback(rule, answer, ctx);
        if answer {
            self.attempts = 0;
        } else {
            self.attempts += 1;
        }
    }

    fn export_state(&self) -> Option<StrategyState> {
        let mut state = self.local.export_state()?;
        state.universal_mode = self.universal_mode;
        state.attempts = self.attempts as u64;
        Some(state)
    }

    fn import_state(&mut self, state: &StrategyState) -> bool {
        self.local.import_state(state);
        self.universal_mode = state.universal_mode;
        self.attempts = state.attempts as usize;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_hierarchy;
    use darwin_grammar::Heuristic;
    use darwin_index::IndexConfig;
    use darwin_text::Corpus;

    struct Fixture {
        corpus: Corpus,
        index: IndexSet,
        p: IdSet,
        scores: Vec<f32>,
        queried: FxHashSet<RuleRef>,
    }

    fn fixture() -> Fixture {
        let corpus = Corpus::from_texts([
            "the shuttle to the airport leaves hourly",  // 0 pos
            "is there a shuttle to the airport tonight", // 1 pos
            "a bus to the airport runs daily",           // 2 pos (undiscovered)
            "order pizza to the room please",            // 3 neg
            "the pool opens at nine daily",              // 4 neg
        ]);
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let p = IdSet::from_ids(&[0, 1], corpus.len());
        // Classifier thinks sentence 2 is promising, 3–4 are not.
        let scores = vec![0.9, 0.9, 0.8, 0.1, 0.1];
        Fixture {
            corpus,
            index,
            p,
            scores,
            queried: FxHashSet::default(),
        }
    }

    fn ctx<'a>(f: &'a Fixture, h: &'a Hierarchy) -> Ctx<'a> {
        Ctx {
            index: &f.index,
            hierarchy: h,
            p: &f.p,
            scores: &f.scores,
            queried: &f.queried,
            benefit_threshold: 0.5,
            store: None,
        }
    }

    #[test]
    fn universal_picks_high_benefit_rule() {
        let f = fixture();
        let h = generate_hierarchy(&f.index, &f.p, 500, usize::MAX);
        let mut us = UniversalSearch::new();
        let pick = us.select(&ctx(&f, &h)).expect("something to ask");
        // The picked rule must cover sentence 2 (the only promising new one).
        assert!(
            f.index.coverage(pick).contains(&2),
            "{:?}",
            f.index.heuristic(pick)
        );
        let b = ctx(&f, &h).benefit(pick);
        assert!(b.average() > 0.5);
    }

    #[test]
    fn universal_respects_threshold() {
        let mut f = fixture();
        // Make everything look negative: no rule qualifies.
        f.scores = vec![0.1; 5];
        let h = generate_hierarchy(&f.index, &f.p, 500, usize::MAX);
        let mut us = UniversalSearch::new();
        assert!(us.select(&ctx(&f, &h)).is_none());
    }

    #[test]
    fn local_generalizes_on_yes_and_specializes_on_no() {
        let f = fixture();
        let h = generate_hierarchy(&f.index, &f.p, 500, usize::MAX);
        let shuttle_to = f
            .index
            .resolve(&Heuristic::phrase(&f.corpus, "shuttle to the").unwrap())
            .expect("indexed");
        let mut ls = LocalSearch::new(vec![shuttle_to]);
        let c = ctx(&f, &h);
        // YES -> parents enter the frontier.
        ls.feedback(shuttle_to, true, &c);
        let parent = f
            .index
            .resolve(&Heuristic::phrase(&f.corpus, "shuttle to").unwrap())
            .unwrap();
        assert!(ls.local.contains(&parent));
        assert!(!ls.local.contains(&shuttle_to));
        // NO on the parent -> children re-enter.
        ls.feedback(parent, false, &c);
        assert!(ls.local.contains(&shuttle_to));
    }

    #[test]
    fn local_bootstraps_from_hierarchy_when_unseeded() {
        let f = fixture();
        let h = generate_hierarchy(&f.index, &f.p, 500, usize::MAX);
        let mut ls = LocalSearch::new(vec![]);
        assert!(ls.select(&ctx(&f, &h)).is_some());
    }

    #[test]
    fn hybrid_toggles_after_tau_failures() {
        let f = fixture();
        let h = generate_hierarchy(&f.index, &f.p, 500, usize::MAX);
        let mut hs = HybridSearch::new(vec![], 2);
        assert!(hs.in_universal_mode());
        let c = ctx(&f, &h);
        let r1 = hs.select(&c).unwrap();
        hs.feedback(r1, false, &c);
        let r2 = hs.select(&c).unwrap();
        hs.feedback(r2, false, &c);
        // Two failures with tau=2: next select toggles to local mode.
        let _ = hs.select(&c);
        assert!(!hs.in_universal_mode());
    }

    #[test]
    fn hybrid_success_resets_failure_count() {
        let f = fixture();
        let h = generate_hierarchy(&f.index, &f.p, 500, usize::MAX);
        let mut hs = HybridSearch::new(vec![], 2);
        let c = ctx(&f, &h);
        let r1 = hs.select(&c).unwrap();
        hs.feedback(r1, false, &c);
        let r2 = hs.select(&c).unwrap();
        hs.feedback(r2, true, &c); // success resets
        let _ = hs.select(&c);
        assert!(hs.in_universal_mode(), "no toggle after a success");
    }

    #[test]
    fn queried_rules_are_never_reselected() {
        let f = fixture();
        let hier = generate_hierarchy(&f.index, &f.p, 500, usize::MAX);
        let mut queried = FxHashSet::default();
        let mut us = UniversalSearch::new();
        for _ in 0..50 {
            let c = Ctx {
                index: &f.index,
                hierarchy: &hier,
                p: &f.p,
                scores: &f.scores,
                queried: &queried,
                benefit_threshold: 0.5,
                store: None,
            };
            match us.select(&c) {
                Some(r) => assert!(queried.insert(r), "rule {r:?} re-asked"),
                None => break,
            }
        }
    }
}

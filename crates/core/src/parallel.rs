//! Parallel rule discovery (paper §1: Darwin "supports parallel discovery
//! of rules by asking different annotators to evaluate different rules")
//! and crowd-style answer aggregation (§4.3's cost model: "the oracle
//! considers a majority vote by querying three crowd members").
//!
//! [`Darwin::run_parallel`] proceeds in rounds: each round selects a batch
//! of *diverse* candidate rules (maximum benefit, penalizing coverage
//! overlap within the batch, so annotators never review near-duplicate
//! rules), sends one rule to each annotator, applies all answers at once,
//! and then retrains — one classifier update per round instead of per
//! question, which is what makes the wall-clock win of parallel annotation
//! real.

use crate::batch::{CostModel, CrowdCost};
use crate::engine::{Engine, EngineFlavor};
use crate::oracle::Oracle;
use crate::pipeline::{Darwin, RunResult, Seed};
use crate::traversal::Ctx;
use darwin_grammar::Heuristic;
use darwin_index::{IdSet, RuleRef};
use darwin_text::Corpus;

/// Majority vote over several independent annotators. One [`Oracle::ask`]
/// call fans the same question out to every member and counts one logical
/// query (the paper prices it as `members × 2¢`).
pub struct MajorityOracle<'a> {
    members: Vec<Box<dyn Oracle + 'a>>,
    queries: usize,
}

impl<'a> MajorityOracle<'a> {
    /// Combine `members` (at least one) by majority vote.
    pub fn new(members: Vec<Box<dyn Oracle + 'a>>) -> Self {
        assert!(
            !members.is_empty(),
            "majority oracle needs at least one member"
        );
        MajorityOracle {
            members,
            queries: 0,
        }
    }

    /// Cost in cents under the paper's crowdsourcing model (2¢ per member
    /// evaluation).
    pub fn cost_cents(&self) -> usize {
        self.queries * self.members.len() * 2
    }
}

impl Oracle for MajorityOracle<'_> {
    fn ask(&mut self, corpus: &Corpus, rule: &Heuristic, coverage: &[u32]) -> bool {
        self.queries += 1;
        let mut yes = 0;
        for m in self.members.iter_mut() {
            if m.ask(corpus, rule, coverage) {
                yes += 1;
            }
        }
        2 * yes > self.members.len()
    }

    fn queries(&self) -> usize {
        self.queries
    }
}

impl Darwin<'_> {
    /// Interactive discovery with `annotators.len()` annotators working in
    /// parallel for `rounds` rounds. Returns the same [`RunResult`] shape
    /// as [`Darwin::run`]; `trace` records one step per question in
    /// round-major order.
    pub fn run_parallel(
        &self,
        seed: Seed,
        annotators: &mut [&mut dyn Oracle],
        rounds: usize,
    ) -> RunResult {
        assert!(!annotators.is_empty(), "need at least one annotator");
        let corpus = self.corpus();
        let index = self.index();
        let mut engine = Engine::new(self, seed, EngineFlavor::Parallel);

        for round in 0..rounds {
            // Re-center the candidate pool on the grown positive set at
            // each round boundary (the engine already built the pool for
            // round 0).
            if round > 0 {
                engine.regen_hierarchy();
            }
            let batch = {
                let ctx = engine.ctx();
                select_diverse_batch(&ctx, annotators.len())
            };
            if batch.is_empty() {
                break;
            }
            let mut grew = false;
            for (rule, annotator) in batch.iter().zip(annotators.iter_mut()) {
                engine.state.queried.insert(*rule);
                let h = index.heuristic(*rule);
                let cov = index.coverage(*rule);
                let answer = annotator.ask(corpus, &h, cov);
                grew |= engine.record(*rule, answer);
            }
            if grew {
                // One classifier update per round instead of per question —
                // the wall-clock win of parallel annotation.
                engine.retrain_and_sync();
            }
        }
        engine.finish()
    }

    /// [`Darwin::run_parallel`] plus the paper's §4.3 crowd-cost
    /// accounting: the run result comes back with a [`CrowdCost`] report
    /// pricing every asked question under `model` (each question fans out
    /// to `model.members` paid judgments).
    pub fn run_parallel_costed(
        &self,
        seed: Seed,
        annotators: &mut [&mut dyn Oracle],
        rounds: usize,
        model: &CostModel,
    ) -> (RunResult, CrowdCost) {
        let run = self.run_parallel(seed, annotators, rounds);
        let cost = model.report(run.questions());
        (run, cost)
    }
}

/// Rank unqueried pool candidates for batched annotation, with the same
/// gating as the sequential traversals: rules whose benefit per new
/// instance clears the threshold rank first (by total benefit); everything
/// else ranks by expected precision. Without this, batches fill with broad
/// rules the oracle is certain to reject. Benefits come from the engine's
/// delta-maintained aggregates via `ctx`. Returns
/// `(rule, qualified, sum_q, average)` tuples in rank order — consumed by
/// [`select_diverse_batch`] and by the async loop's refill selection
/// ([`crate::engine::Engine::select_refill`]).
pub(crate) fn rank_gated(ctx: &Ctx<'_>) -> Vec<(RuleRef, bool, i64, f64)> {
    let mut scored: Vec<(RuleRef, bool, i64, f64)> = ctx
        .hierarchy
        .rules()
        .iter()
        .copied()
        .filter(|r| !ctx.queried.contains(r))
        .map(|r| {
            let b = ctx.benefit(r);
            (r, b.average() > ctx.benefit_threshold, b.sum_q, b.average())
        })
        .filter(|(_, _, sum_q, _)| *sum_q > 0)
        .collect();
    scored.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| {
                if a.1 {
                    b.2.cmp(&a.2)
                } else {
                    b.3.total_cmp(&a.3)
                }
            })
            .then_with(|| a.0.cmp(&b.0))
    });
    scored
}

/// Greedy diverse batch: repeatedly take the most beneficial rule whose
/// *new* coverage overlaps every already-picked rule's new coverage by at
/// most half — annotators should not be shown near-duplicates. Benefits
/// arrive through [`Ctx::benefit`], i.e. merged across the engine's shard
/// partitions when `DarwinConfig::shards` > 1 — the merge is exact, so
/// batch composition is identical at every shard count (the
/// `engine_equivalence` suite pins this for parallel rounds too).
pub fn select_diverse_batch(ctx: &Ctx<'_>, k: usize) -> Vec<RuleRef> {
    let scored = rank_gated(ctx);
    let mut batch: Vec<RuleRef> = Vec::with_capacity(k);
    let mut covered = IdSet::with_universe(ctx.scores.len());
    for (rule, ..) in scored {
        if batch.len() == k {
            break;
        }
        let new: Vec<u32> = ctx
            .index
            .coverage(rule)
            .iter()
            .copied()
            .filter(|&s| !ctx.p.contains(s))
            .collect();
        if new.is_empty() {
            continue;
        }
        let overlap = covered.count_in(&new);
        if overlap * 2 > new.len() {
            continue; // mostly duplicates what a teammate is already reviewing
        }
        covered.extend_from_slice(&new);
        batch.push(rule);
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DarwinConfig;
    use crate::hierarchy::Hierarchy;
    use crate::oracle::{GroundTruthOracle, SampledAnnotatorOracle};
    use darwin_index::fx::FxHashSet;
    use darwin_index::{IndexConfig, IndexSet};

    /// Direct harness for [`select_diverse_batch`]: a hand-built [`Ctx`]
    /// over an explicit rule pool, no engine in the loop.
    struct BatchFixture {
        corpus: Corpus,
        index: IndexSet,
        p: IdSet,
        scores: Vec<f32>,
        queried: FxHashSet<RuleRef>,
    }

    impl BatchFixture {
        fn new() -> BatchFixture {
            let corpus = Corpus::from_texts([
                "the shuttle to the airport leaves hourly",
                "is there a shuttle to the airport tonight",
                "a bus to the airport runs daily",
                "is there a bus downtown tonight",
                "order pizza to the room please",
                "the pool opens at nine daily",
            ]);
            let index = IndexSet::build(&corpus, &IndexConfig::small());
            let p = IdSet::with_universe(corpus.len());
            // Everything looks promising, so gating never empties the pool.
            let scores = vec![0.9; corpus.len()];
            BatchFixture {
                corpus,
                index,
                p,
                scores,
                queried: FxHashSet::default(),
            }
        }

        fn ctx<'a>(&'a self, h: &'a Hierarchy) -> Ctx<'a> {
            Ctx {
                index: &self.index,
                hierarchy: h,
                p: &self.p,
                scores: &self.scores,
                queried: &self.queried,
                benefit_threshold: 0.5,
                store: None,
            }
        }

        fn pool(&self, rules: Vec<RuleRef>) -> Hierarchy {
            Hierarchy::new(&self.index, rules)
        }
    }

    #[test]
    fn diverse_batch_with_k_beyond_candidate_count_returns_everything_diverse() {
        let f = BatchFixture::new();
        let all: Vec<RuleRef> = f.index.all_rules().collect();
        let h = f.pool(all.clone());
        let batch = select_diverse_batch(&f.ctx(&h), all.len() + 50);
        assert!(!batch.is_empty());
        assert!(
            batch.len() < all.len(),
            "overlap pruning must reject near-duplicates, not return the pool"
        );
        let distinct: std::collections::HashSet<_> = batch.iter().collect();
        assert_eq!(distinct.len(), batch.len(), "no rule proposed twice");
        // Asking for exactly what was returned changes nothing.
        assert_eq!(select_diverse_batch(&f.ctx(&h), batch.len()), batch);
    }

    #[test]
    fn diverse_batch_takes_one_of_identical_coverage_candidates() {
        let f = BatchFixture::new();
        // Find two indexed rules with identical coverage (alias pair).
        let all: Vec<RuleRef> = f.index.all_rules().collect();
        let pair = all
            .iter()
            .enumerate()
            .find_map(|(i, &a)| {
                all[i + 1..]
                    .iter()
                    .find(|&&b| f.index.coverage(a) == f.index.coverage(b))
                    .map(|&b| (a, b))
            })
            .expect("tiny corpus has coverage-duplicate rules");
        let h = f.pool(vec![pair.0, pair.1]);
        let batch = select_diverse_batch(&f.ctx(&h), 2);
        assert_eq!(
            batch.len(),
            1,
            "identical coverage = 100% overlap: exactly one survives"
        );
        assert!(batch[0] == pair.0 || batch[0] == pair.1);
    }

    #[test]
    fn diverse_batch_on_empty_frontier_is_empty() {
        let f = BatchFixture::new();
        let empty = f.pool(Vec::new());
        assert!(select_diverse_batch(&f.ctx(&empty), 3).is_empty());

        // A fully queried pool is as empty as an empty one.
        let mut f = BatchFixture::new();
        let all: Vec<RuleRef> = f.index.all_rules().collect();
        f.queried.extend(all.iter().copied());
        let h = f.pool(all);
        assert!(select_diverse_batch(&f.ctx(&h), 3).is_empty());
    }

    #[test]
    fn diverse_batch_skips_rules_with_no_new_coverage() {
        let mut f = BatchFixture::new();
        // Everything already positive: no rule adds anything.
        for id in 0..f.corpus.len() as u32 {
            f.p.insert(id);
        }
        let all: Vec<RuleRef> = f.index.all_rules().collect();
        let h = f.pool(all);
        assert!(select_diverse_batch(&f.ctx(&h), 4).is_empty());
    }

    fn fixture() -> (Corpus, Vec<bool>) {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..12 {
            texts.push(format!("is there a shuttle to the airport at {i}"));
            labels.push(true);
            texts.push(format!("is there a bus to the airport at {i}"));
            labels.push(true);
        }
        for i in 0..40 {
            texts.push(format!("order a pizza with {i} toppings to the room"));
            labels.push(false);
            texts.push(format!("the pool opens at {i} for guests"));
            labels.push(false);
        }
        (Corpus::from_texts(texts.iter()), labels)
    }

    #[test]
    fn parallel_run_discovers_positives() {
        let (corpus, labels) = fixture();
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let darwin = Darwin::new(&corpus, &index, DarwinConfig::fast());
        let seed = Seed::Rule(Heuristic::phrase(&corpus, "shuttle to the airport").unwrap());
        let mut a = GroundTruthOracle::new(&labels, 0.8);
        let mut b = GroundTruthOracle::new(&labels, 0.8);
        let mut c = GroundTruthOracle::new(&labels, 0.8);
        let mut annotators: Vec<&mut dyn Oracle> = vec![&mut a, &mut b, &mut c];
        let run = darwin.run_parallel(seed, &mut annotators, 4);
        assert!(run.questions() <= 12, "3 annotators × 4 rounds");
        assert!(run.positives.len() > 12, "grew beyond the seed family");
        // The per-round batches contain distinct rules.
        let mut seen = std::collections::HashSet::new();
        for t in &run.trace {
            assert!(
                seen.insert(t.rule.clone()),
                "duplicate question {:?}",
                t.rule
            );
        }
    }

    #[test]
    fn diverse_batch_avoids_near_duplicates() {
        let (corpus, labels) = fixture();
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let darwin = Darwin::new(&corpus, &index, DarwinConfig::fast());
        let seed = Seed::Rule(Heuristic::phrase(&corpus, "shuttle to the airport").unwrap());
        let mut a = GroundTruthOracle::new(&labels, 0.8);
        let mut b = GroundTruthOracle::new(&labels, 0.8);
        let mut annotators: Vec<&mut dyn Oracle> = vec![&mut a, &mut b];
        let run = darwin.run_parallel(seed, &mut annotators, 1);
        // Within the single round, the two questions must cover
        // substantially different new sentences.
        if run.trace.len() == 2 {
            let c0 = run.trace[0].rule.coverage(&corpus);
            let c1 = run.trace[1].rule.coverage(&corpus);
            let shared = c0.iter().filter(|x| c1.contains(x)).count();
            assert!(shared * 2 <= c0.len().max(c1.len()), "near-duplicate batch");
        }
    }

    #[test]
    fn majority_oracle_outvotes_one_bad_member() {
        let (corpus, labels) = fixture();
        // Two reliable members and one error-prone k=2 annotator.
        let m1 = Box::new(GroundTruthOracle::new(&labels, 0.8));
        let m2 = Box::new(GroundTruthOracle::new(&labels, 0.8));
        let m3 = Box::new(SampledAnnotatorOracle::new(&labels, 2, 5));
        let mut crowd = MajorityOracle::new(vec![m1, m2, m3]);
        let rule = Heuristic::phrase(&corpus, "shuttle").unwrap();
        let cov = rule.coverage(&corpus);
        assert!(
            crowd.ask(&corpus, &rule, &cov),
            "precise rule accepted by majority"
        );
        let junk = Heuristic::phrase(&corpus, "the").unwrap();
        let jcov = junk.coverage(&corpus);
        assert!(!crowd.ask(&corpus, &junk, &jcov));
        assert_eq!(crowd.queries(), 2);
        assert_eq!(
            crowd.cost_cents(),
            2 * 3 * 2,
            "paper cost model: 2¢ × 3 members"
        );
    }
}

//! The heuristic hierarchy (paper §3.2).
//!
//! Candidates are organized by the subset/superset relation the index
//! already captures (a child is one derivation step stricter than its
//! parent, hence covers a subset). The hierarchy is the unit the traversal
//! strategies operate over; it is regenerated whenever the positive set
//! grows (Algorithm 1 line 6).

use darwin_index::fx::FxHashSet;
use darwin_index::{IndexSet, RuleRef};

/// A candidate pool with membership tests and edge queries restricted to
/// the pool.
pub struct Hierarchy {
    rules: Vec<RuleRef>,
    set: FxHashSet<RuleRef>,
}

impl Hierarchy {
    /// A pool over `rules` (edges are resolved through the index on
    /// demand, so construction is just the membership set).
    pub fn new(_index: &IndexSet, rules: Vec<RuleRef>) -> Hierarchy {
        let set = rules.iter().copied().collect();
        Hierarchy { rules, set }
    }

    /// Number of candidate rules in the pool.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The pool, in generation (pop) order.
    pub fn rules(&self) -> &[RuleRef] {
        &self.rules
    }

    /// Whether `r` made the pool.
    pub fn contains(&self, r: RuleRef) -> bool {
        self.set.contains(&r)
    }

    /// Parents of `r` *within the hierarchy* (falling back to all index
    /// parents if none made the pool — LocalSearch may walk off-pool,
    /// expanding the hierarchy on the fly as §3.4 describes).
    pub fn parents(&self, index: &IndexSet, r: RuleRef) -> Vec<RuleRef> {
        let all = index.parents(r);
        let inside: Vec<RuleRef> = all
            .iter()
            .copied()
            .filter(|p| self.set.contains(p))
            .collect();
        if inside.is_empty() {
            all
        } else {
            inside
        }
    }

    /// Children of `r`, same fallback policy as [`Hierarchy::parents`].
    ///
    /// Streams over [`IndexSet::for_each_child`] rather than materializing
    /// the full child list: only the single result `Vec` is allocated, and
    /// the (rare) off-pool fallback re-walks the adjacency instead of
    /// holding a second list.
    pub fn children(&self, index: &IndexSet, r: RuleRef) -> Vec<RuleRef> {
        let mut out = Vec::new();
        index.for_each_child(r, |c| {
            if self.set.contains(&c) {
                out.push(c);
            }
        });
        if out.is_empty() {
            index.for_each_child(r, |c| out.push(c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_grammar::Heuristic;
    use darwin_index::{IdSet, IndexConfig};
    use darwin_text::Corpus;

    fn setup() -> (Corpus, IndexSet) {
        let c = Corpus::from_texts([
            "the shuttle to the airport leaves hourly",
            "is there a shuttle to the airport tonight",
            "a shuttle to downtown runs daily",
            "order pizza to the room",
        ]);
        let idx = IndexSet::build(&c, &IndexConfig::small());
        (c, idx)
    }

    #[test]
    fn membership_and_edges() {
        let (c, idx) = setup();
        let p = IdSet::from_ids(&[0, 1, 2], c.len());
        let h = crate::candidates::generate_hierarchy(&idx, &p, 1000, usize::MAX);
        assert!(!h.is_empty());
        let shuttle_to = idx
            .resolve(&Heuristic::phrase(&c, "shuttle to").unwrap())
            .unwrap();
        if h.contains(shuttle_to) {
            // Its parent "shuttle" covers a superset.
            let parents = h.parents(&idx, shuttle_to);
            assert!(!parents.is_empty());
            for par in parents {
                let pc = idx.coverage(par);
                for s in idx.coverage(shuttle_to) {
                    assert!(par == RuleRef::Root || pc.contains(s));
                }
            }
        }
    }

    #[test]
    fn off_pool_fallback_returns_index_edges() {
        let (c, idx) = setup();
        let h = Hierarchy::new(&idx, vec![]);
        let shuttle = idx
            .resolve(&Heuristic::phrase(&c, "shuttle").unwrap())
            .unwrap();
        // Pool is empty, so edges fall back to the index.
        assert!(!h.children(&idx, RuleRef::Root).is_empty());
        assert_eq!(h.parents(&idx, shuttle), vec![RuleRef::Root]);
    }
}

//! The end-to-end Darwin pipeline (paper Algorithm 1).
//!
//! The question loop itself lives in [`crate::engine`]; this module owns
//! the run-level API ([`Darwin`], [`Seed`], [`RunResult`]) and maps the
//! configured traversal strategy onto the engine. Execution-layer knobs
//! ([`DarwinConfig::shards`], [`DarwinConfig::threads`]) never change a
//! run's output — any configuration replays the same trace, so results
//! are comparable across machines and deployments.

use crate::batch::{AsyncRunResult, CostModel, SessionOutcome};
use crate::config::{DarwinConfig, TraversalKind};
use crate::engine::{Engine, EngineFlavor};
use crate::oracle::{AsyncOracle, Oracle};
use crate::shard::ShardConnector;
use crate::snapshot::{SessionCounters, Snapshot, SnapshotError};
use crate::traversal::{HybridSearch, LocalSearch, Strategy, UniversalSearch};
use darwin_grammar::Heuristic;
use darwin_index::fx::FxHashSet;
use darwin_index::{IndexSet, RuleRef};
use darwin_text::embed::EmbedConfig;
use darwin_text::{Corpus, Embeddings};

/// How a run is initialized (Algorithm 1 accepts either).
#[derive(Clone, Debug)]
pub enum Seed {
    /// A seed labeling rule (assumed to capture ≥ 2 positives).
    Rule(Heuristic),
    /// A couple of known-positive sentence ids.
    Positives(Vec<u32>),
}

/// One oracle interaction.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStep {
    /// 1-based question number.
    pub question: usize,
    /// The rule asked about.
    pub rule: Heuristic,
    /// The oracle's verdict.
    pub answer: bool,
    /// Sentence ids newly added to `P` by this step (empty on NO).
    pub new_positive_ids: Vec<u32>,
    /// `|P|` after this step.
    pub p_size: usize,
}

/// Output of a pipeline run.
pub struct RunResult {
    /// Rules the oracle confirmed (includes the seed rule when given).
    pub accepted: Vec<Heuristic>,
    /// Rules the oracle rejected.
    pub rejected: Vec<Heuristic>,
    /// The discovered positive set `P`, sorted.
    pub positives: Vec<u32>,
    /// Per-question history (for coverage / F-score curves).
    pub trace: Vec<TraceStep>,
    /// Final classifier scores per sentence.
    pub scores: Vec<f32>,
    /// `Some` when a distributed run aborted early on a wire failure (a
    /// shard worker died mid-run): everything above reflects the cleanly
    /// applied prefix of the run — no partial merge, no panic. `None` on
    /// every healthy (or purely local) run.
    pub wire_error: Option<String>,
}

impl RunResult {
    /// Reconstruct `|P|` after `q` questions (0 = just the seed).
    pub fn p_size_after(&self, q: usize) -> usize {
        let seed_size = self
            .trace
            .first()
            .map(|t| t.p_size - t.new_positive_ids.len())
            .unwrap_or(self.positives.len());
        if q == 0 {
            seed_size
        } else {
            self.trace
                .get(q.min(self.trace.len()) - 1)
                .map(|t| t.p_size)
                .unwrap_or(seed_size)
        }
    }

    /// Reconstruct the positive id set after `q` questions.
    pub fn positives_after(&self, q: usize) -> Vec<u32> {
        let gained: FxHashSet<u32> = self
            .trace
            .iter()
            .skip(q)
            .flat_map(|t| t.new_positive_ids.iter().copied())
            .collect();
        self.positives
            .iter()
            .copied()
            .filter(|id| !gained.contains(id))
            .collect()
    }

    /// Number of oracle questions asked.
    pub fn questions(&self) -> usize {
        self.trace.len()
    }
}

/// How a run's shard partitions are distributed to workers: the
/// connector producing one transport per shard. Workers rebuild the
/// coordinator's own index recipe ([`IndexSet::config`]), so rule
/// handles agree by construction. Shared (`Arc`) because the engine
/// keeps it alive for reconnect-and-replay after a worker dies.
pub struct RemoteShards {
    /// Builds the transport to each shard's worker.
    pub connect: std::sync::Arc<ShardConnector>,
}

/// Builds the transport to a classifier worker (a spawned process, a
/// worker thread, a socket) — the classifier-side twin of
/// [`ShardConnector`].
pub type ClassifierConnector =
    dyn Fn() -> Result<Box<dyn darwin_wire::Transport>, darwin_wire::WireError> + Send + Sync;

/// A remote classifier deployment: training and scoring run in a
/// [`crate::remote::serve_classifier`] worker behind the connector's
/// transport.
pub struct RemoteClassifier {
    /// Builds the transport to the classifier worker.
    pub connect: Box<ClassifierConnector>,
}

/// The Darwin system, bound to a corpus and its index.
pub struct Darwin<'a> {
    corpus: &'a Corpus,
    index: &'a IndexSet,
    emb: Embeddings,
    cfg: DarwinConfig,
    remote: Option<RemoteShards>,
    remote_clf: Option<RemoteClassifier>,
}

impl<'a> Darwin<'a> {
    /// Create the system, training word embeddings over the corpus.
    pub fn new(corpus: &'a Corpus, index: &'a IndexSet, cfg: DarwinConfig) -> Darwin<'a> {
        let emb = Embeddings::train(
            corpus,
            &EmbedConfig {
                seed: cfg.seed,
                ..Default::default()
            },
        );
        Darwin {
            corpus,
            index,
            emb,
            cfg,
            remote: None,
            remote_clf: None,
        }
    }

    /// Create with pre-trained embeddings (reuse across runs of the same
    /// corpus — experiment sweeps do this).
    pub fn with_embeddings(
        corpus: &'a Corpus,
        index: &'a IndexSet,
        cfg: DarwinConfig,
        emb: Embeddings,
    ) -> Darwin<'a> {
        Darwin {
            corpus,
            index,
            emb,
            cfg,
            remote: None,
            remote_clf: None,
        }
    }

    /// Distribute the run's shard partitions to *workers*: `connect`
    /// builds one [`darwin_wire::Transport`] per shard (a spawned process,
    /// a worker thread, a socket). Every worker rebuilds this `Darwin`'s
    /// own index recipe ([`IndexSet::config`]) from the shipped corpus
    /// texts — rule handles are positions in the deterministic build, so
    /// both sides agree by construction.
    ///
    /// Execution-layer invariance extends across the boundary: a
    /// remote-sharded run replays the local trace byte for byte. A wire
    /// failure mid-run aborts cleanly — see [`RunResult::wire_error`].
    /// Remote shards require the incremental benefit engine
    /// (`DarwinConfig::incremental_benefit`, the default) — there is no
    /// distributed rescan path, and a run configured without it aborts
    /// with a [`RunResult::wire_error`] instead of silently running
    /// locally.
    pub fn with_remote_shards(mut self, connect: Box<ShardConnector>) -> Darwin<'a> {
        self.remote = Some(RemoteShards {
            connect: std::sync::Arc::from(connect),
        });
        self
    }

    /// The remote-shard deployment, if configured.
    pub(crate) fn remote_shards(&self) -> Option<&RemoteShards> {
        self.remote.as_ref()
    }

    /// Run the benefit classifier in a *worker*: `connect` builds the
    /// [`darwin_wire::Transport`] to a [`crate::remote::serve_classifier`]
    /// loop (a spawned process, a worker thread, a socket). The worker
    /// rebuilds this `Darwin`'s corpus and re-derives its embeddings from
    /// the run seed, so it assumes the default embedding recipe of
    /// [`Darwin::new`] — construct the system through `Darwin::new` (not
    /// [`Darwin::with_embeddings`] with a custom [`EmbedConfig`]) when
    /// using a remote classifier.
    ///
    /// Execution-layer invariance extends across the boundary: a run with
    /// a remote classifier replays the local trace byte for byte (the
    /// worker trains the identical model from the identical seed). A
    /// connect failure aborts the run cleanly before the first question —
    /// see [`RunResult::wire_error`].
    pub fn with_remote_classifier(mut self, connect: Box<ClassifierConnector>) -> Darwin<'a> {
        self.remote_clf = Some(RemoteClassifier { connect });
        self
    }

    /// The remote-classifier deployment, if configured.
    pub(crate) fn remote_classifier(&self) -> Option<&RemoteClassifier> {
        self.remote_clf.as_ref()
    }

    /// The run configuration.
    pub fn config(&self) -> &DarwinConfig {
        &self.cfg
    }

    /// The word embeddings classifiers featurize with.
    pub fn embeddings(&self) -> &Embeddings {
        &self.emb
    }

    /// Consume the system and reclaim its embeddings. The streaming
    /// session ([`crate::stream::StreamSession`]) rebuilds a `Darwin` view
    /// per segment against its growing corpus; the embeddings move in and
    /// out because appends grow them in place ([`Embeddings::grow_to`])
    /// instead of retraining.
    pub fn into_embeddings(self) -> Embeddings {
        self.emb
    }

    /// The corpus under labeling.
    pub fn corpus(&self) -> &'a Corpus {
        self.corpus
    }

    /// The heuristic index candidates are drawn from.
    pub fn index(&self) -> &'a IndexSet {
        self.index
    }

    /// A step-driven engine over this system — for callers that want to
    /// drive the question loop themselves (inspect state between
    /// questions, interleave with other work).
    pub fn engine(&self, seed: Seed) -> Engine<'_> {
        Engine::new(self, seed, EngineFlavor::Sequential)
    }

    /// Run with the configured traversal strategy.
    pub fn run(&self, seed: Seed, oracle: &mut dyn Oracle) -> RunResult {
        let cfg = &self.cfg;
        self.run_with(seed, oracle, |seeds| default_strategy(cfg, seeds))
    }

    /// Run against an asynchronous oracle ([`crate::batch`]): selection
    /// keeps up to [`DarwinConfig::batch`] questions in flight, answers
    /// apply out of order as they arrive, and the classifier retrains
    /// once per drained wave. With `BatchPolicy::Fixed(1)` and an
    /// [`crate::Immediate`] adapter this replays [`Darwin::run`] byte for
    /// byte; larger batches trade selection freshness for latency hiding.
    /// Costs are accounted under the paper's §4.3 crowd model
    /// ([`CostModel::paper`]); use [`Darwin::run_async_costed`] for a
    /// different pricing.
    pub fn run_async(&self, seed: Seed, oracle: &mut dyn AsyncOracle) -> AsyncRunResult {
        crate::batch::drive(self, seed, oracle, &CostModel::paper())
    }

    /// [`Darwin::run_async`] with explicit §4.3 cost accounting.
    pub fn run_async_costed(
        &self,
        seed: Seed,
        oracle: &mut dyn AsyncOracle,
        model: &CostModel,
    ) -> AsyncRunResult {
        crate::batch::drive(self, seed, oracle, model)
    }

    /// Drive an async run and suspend it at a wave barrier: the first
    /// barrier where the cumulative wave count reaches `after_waves`.
    /// Barriers are the *only* snapshot points — the wave's questions are
    /// all answered and applied, the strategy has observed them, the
    /// classifier has retrained if `P` grew — so the returned
    /// [`Snapshot`] (see [`SessionOutcome::Suspended`]) plus the seedless
    /// re-derivations at resume determine the rest of the run exactly.
    /// Runs that finish before the requested barrier return
    /// [`SessionOutcome::Finished`].
    pub fn snapshot(
        &self,
        seed: Seed,
        oracle: &mut dyn AsyncOracle,
        after_waves: u64,
    ) -> SessionOutcome {
        let engine = Engine::new(self, seed, EngineFlavor::Sequential);
        let strategy = default_strategy(&self.cfg, engine.seed_refs());
        crate::batch::drive_session(
            self,
            engine,
            strategy,
            SessionCounters::default(),
            oracle,
            &CostModel::paper(),
            Some(after_waves),
        )
    }

    /// Resume a suspended run from serialized snapshot bytes and drive it
    /// to completion. The snapshot is validated (frame checksum, version
    /// window, config/corpus fingerprints, rule-handle bounds) before any
    /// state is rebuilt. Remote workers are re-attached through *this*
    /// `Darwin`'s connectors ([`Darwin::with_remote_shards`] and friends)
    /// by replaying `ShardInit`/`Track` from the restored `(P, scores)` —
    /// the deployment may differ freely from the suspended one (transport,
    /// shard count, thread count, fanout): those are perf knobs, and the
    /// completed trace is byte-identical to the uninterrupted run.
    pub fn resume(
        &self,
        bytes: &[u8],
        oracle: &mut dyn AsyncOracle,
    ) -> Result<AsyncRunResult, SnapshotError> {
        match self.resume_suspendable(bytes, oracle, None)? {
            SessionOutcome::Finished(result) => Ok(result),
            SessionOutcome::Suspended(_) => unreachable!("resume() never requests suspension"),
        }
    }

    /// [`Darwin::resume`], optionally suspending again at a later barrier
    /// (`suspend_after` counts *cumulative* waves, like
    /// [`Darwin::snapshot`]) — a run can hop process to process barrier
    /// by barrier, snapshotting at each.
    pub fn resume_suspendable(
        &self,
        bytes: &[u8],
        oracle: &mut dyn AsyncOracle,
        suspend_after: Option<u64>,
    ) -> Result<SessionOutcome, SnapshotError> {
        let snap = Snapshot::from_bytes(bytes)?;
        snap.validate_against(self)?;
        let engine = Engine::resume(self, &snap)?;
        let mut strategy = default_strategy(&self.cfg, engine.seed_refs());
        strategy.import_state(&snap.strategy);
        Ok(crate::batch::drive_session(
            self,
            engine,
            strategy,
            snap.counters,
            oracle,
            &CostModel::paper(),
            suspend_after,
        ))
    }

    /// Run with a custom selection strategy (how the HighP/HighC baselines
    /// plug in). The loop itself is [`Engine::step`].
    pub fn run_with(
        &self,
        seed: Seed,
        oracle: &mut dyn Oracle,
        make_strategy: impl FnOnce(&[RuleRef]) -> Box<dyn Strategy>,
    ) -> RunResult {
        let mut engine = self.engine(seed);
        let mut strategy = make_strategy(engine.seed_refs());
        for _ in 0..self.cfg.budget {
            if !engine.step(&mut *strategy, oracle) {
                break;
            }
        }
        engine.finish()
    }
}

/// The traversal strategy `cfg` configures, seeded with `seeds` — what
/// [`Darwin::run`] and the async driver ([`crate::batch`]) both select
/// with, so batch size 1 replays the synchronous choice exactly.
pub(crate) fn default_strategy(cfg: &DarwinConfig, seeds: &[RuleRef]) -> Box<dyn Strategy> {
    match cfg.traversal {
        TraversalKind::Local => Box::new(LocalSearch::new(seeds.to_vec())),
        TraversalKind::Universal => Box::new(UniversalSearch::new()),
        TraversalKind::Hybrid => Box::new(HybridSearch::new(seeds.to_vec(), cfg.tau)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use darwin_index::IndexConfig;

    /// A small transport-intent corpus: three positive families sharing the
    /// "to the airport" context (so the classifier can generalize from the
    /// seed family to the others) against a majority of negatives — the
    /// class imbalance mirrors the paper's datasets and keeps randomly
    /// sampled "presumed negatives" mostly correct.
    fn fixture() -> (Corpus, Vec<bool>) {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..12 {
            texts.push(format!("is there a shuttle to the airport at {i}"));
            labels.push(true);
            texts.push(format!("is there a bus to the airport at {i}"));
            labels.push(true);
        }
        for i in 0..6 {
            texts.push(format!("does the bart go to the airport after {i}"));
            labels.push(true);
        }
        for i in 0..20 {
            texts.push(format!("order a pizza with {i} toppings to the room"));
            labels.push(false);
            texts.push(format!("the pool opens at {i} for guests"));
            labels.push(false);
            texts.push(format!("can i get a wake up call at {i}"));
            labels.push(false);
            texts.push(format!("the wifi code for room {i} is posted"));
            labels.push(false);
        }
        (Corpus::from_texts(texts.iter()), labels)
    }

    fn run_kind(kind: TraversalKind) -> (RunResult, Vec<bool>) {
        let (corpus, labels) = fixture();
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let cfg = DarwinConfig::fast().with_traversal(kind).with_budget(15);
        let darwin = Darwin::new(&corpus, &index, cfg);
        let seed = Seed::Rule(Heuristic::phrase(&corpus, "shuttle to the airport").unwrap());
        let mut oracle = GroundTruthOracle::new(&labels, 0.8);
        (darwin.run(seed, &mut oracle), labels)
    }

    fn recall(run: &RunResult, labels: &[bool]) -> f64 {
        let total = labels.iter().filter(|&&l| l).count();
        let found = run
            .positives
            .iter()
            .filter(|&&i| labels[i as usize])
            .count();
        found as f64 / total as f64
    }

    #[test]
    fn hybrid_discovers_most_positives() {
        let (run, labels) = run_kind(TraversalKind::Hybrid);
        assert!(
            recall(&run, &labels) > 0.8,
            "recall {}",
            recall(&run, &labels)
        );
        assert!(run.accepted.len() >= 2, "accepted {:?}", run.accepted.len());
    }

    #[test]
    fn all_strategies_make_progress() {
        for kind in [
            TraversalKind::Local,
            TraversalKind::Universal,
            TraversalKind::Hybrid,
        ] {
            let (run, labels) = run_kind(kind);
            let seed_only = 12; // the seed rule's coverage (shuttle family)
            assert!(
                run.positives.len() > seed_only,
                "{kind:?} never grew P beyond the seed"
            );
            assert!(
                recall(&run, &labels) > 0.4,
                "{kind:?} recall {}",
                recall(&run, &labels)
            );
        }
    }

    #[test]
    fn p_only_grows_and_trace_is_consistent() {
        let (run, _) = run_kind(TraversalKind::Hybrid);
        let mut prev = 0;
        for (i, step) in run.trace.iter().enumerate() {
            assert_eq!(step.question, i + 1);
            assert!(step.p_size >= prev, "P must be monotone");
            if !step.answer {
                assert!(step.new_positive_ids.is_empty());
            }
            prev = step.p_size;
        }
        assert_eq!(run.positives.len(), prev.max(run.p_size_after(0)));
    }

    #[test]
    fn respects_budget() {
        let (run, _) = run_kind(TraversalKind::Hybrid);
        assert!(run.questions() <= 15);
    }

    #[test]
    fn positives_after_reconstructs_history() {
        let (run, _) = run_kind(TraversalKind::Hybrid);
        // After all questions: the full positive set.
        let full = run.positives_after(run.questions());
        assert_eq!(full.len(), run.positives.len());
        // After 0 questions: the seed coverage only.
        let seed = run.positives_after(0);
        assert_eq!(seed.len(), run.p_size_after(0));
        // Monotone in q.
        for q in 0..=run.questions() {
            assert_eq!(run.positives_after(q).len(), run.p_size_after(q));
        }
    }

    #[test]
    fn accepted_rules_union_equals_p() {
        let (corpus, labels) = fixture();
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let cfg = DarwinConfig::fast().with_budget(10);
        let darwin = Darwin::new(&corpus, &index, cfg);
        let seed_rule = Heuristic::phrase(&corpus, "shuttle to the airport").unwrap();
        let mut oracle = GroundTruthOracle::new(&labels, 0.8);
        let run = darwin.run(Seed::Rule(seed_rule), &mut oracle);
        let mut union: Vec<u32> = run
            .accepted
            .iter()
            .flat_map(|h| h.coverage(&corpus))
            .collect();
        union.sort_unstable();
        union.dedup();
        assert_eq!(union, run.positives, "P == ∪ accepted coverage");
    }

    #[test]
    fn positives_seed_works() {
        let (corpus, labels) = fixture();
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let cfg = DarwinConfig::fast().with_budget(12);
        let darwin = Darwin::new(&corpus, &index, cfg);
        let mut oracle = GroundTruthOracle::new(&labels, 0.8);
        // Two positive sentences instead of a rule.
        let run = darwin.run(Seed::Positives(vec![0, 4]), &mut oracle);
        assert!(run.positives.len() > 2, "grew beyond the seed pair");
        let precision = run
            .positives
            .iter()
            .filter(|&&i| labels[i as usize])
            .count() as f64
            / run.positives.len() as f64;
        assert!(precision > 0.7, "precision {precision}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = run_kind(TraversalKind::Hybrid);
        let (b, _) = run_kind(TraversalKind::Hybrid);
        assert_eq!(a.positives, b.positives);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(&b.trace) {
            assert_eq!(x.answer, y.answer);
            assert_eq!(x.rule, y.rule);
        }
    }
}

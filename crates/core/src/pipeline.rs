//! The end-to-end Darwin pipeline (paper Algorithm 1).

use crate::candidates::generate_hierarchy;
use crate::config::{DarwinConfig, TraversalKind};
use crate::hierarchy::Hierarchy;
use crate::oracle::Oracle;
use crate::traversal::{Ctx, HybridSearch, LocalSearch, Strategy, UniversalSearch};
use darwin_classifier::{ScoreCache, TextClassifier};
use darwin_grammar::Heuristic;
use darwin_index::fx::FxHashSet;
use darwin_index::{IdSet, IndexSet, RuleRef};
use darwin_text::embed::EmbedConfig;
use darwin_text::{Corpus, Embeddings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a run is initialized (Algorithm 1 accepts either).
#[derive(Clone, Debug)]
pub enum Seed {
    /// A seed labeling rule (assumed to capture ≥ 2 positives).
    Rule(Heuristic),
    /// A couple of known-positive sentence ids.
    Positives(Vec<u32>),
}

/// One oracle interaction.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// 1-based question number.
    pub question: usize,
    pub rule: Heuristic,
    pub answer: bool,
    /// Sentence ids newly added to `P` by this step (empty on NO).
    pub new_positive_ids: Vec<u32>,
    /// `|P|` after this step.
    pub p_size: usize,
}

/// Output of a pipeline run.
pub struct RunResult {
    /// Rules the oracle confirmed (includes the seed rule when given).
    pub accepted: Vec<Heuristic>,
    /// Rules the oracle rejected.
    pub rejected: Vec<Heuristic>,
    /// The discovered positive set `P`, sorted.
    pub positives: Vec<u32>,
    /// Per-question history (for coverage / F-score curves).
    pub trace: Vec<TraceStep>,
    /// Final classifier scores per sentence.
    pub scores: Vec<f32>,
}

impl RunResult {
    /// Reconstruct `|P|` after `q` questions (0 = just the seed).
    pub fn p_size_after(&self, q: usize) -> usize {
        let seed_size = self
            .trace
            .first()
            .map(|t| t.p_size - t.new_positive_ids.len())
            .unwrap_or(self.positives.len());
        if q == 0 {
            seed_size
        } else {
            self.trace.get(q.min(self.trace.len()) - 1).map(|t| t.p_size).unwrap_or(seed_size)
        }
    }

    /// Reconstruct the positive id set after `q` questions.
    pub fn positives_after(&self, q: usize) -> Vec<u32> {
        let gained: FxHashSet<u32> =
            self.trace.iter().skip(q).flat_map(|t| t.new_positive_ids.iter().copied()).collect();
        self.positives.iter().copied().filter(|id| !gained.contains(id)).collect()
    }

    /// Number of oracle questions asked.
    pub fn questions(&self) -> usize {
        self.trace.len()
    }
}

/// Order-sensitive hash of a sorted coverage set.
fn coverage_hash(cov: &[u32]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = darwin_index::fx::FxHasher::default();
    cov.hash(&mut h);
    h.finish()
}

/// Canonical form for alias detection across grammars: a TreeMatch bare
/// token terminal matches exactly the sentences containing that token, the
/// same set as the one-token phrase.
fn canonical(h: Heuristic) -> Heuristic {
    use darwin_grammar::{PhrasePattern, TreePattern, TreeTerm};
    match &h {
        Heuristic::Tree(TreePattern::Term(TreeTerm::Tok(t))) => {
            Heuristic::Phrase(PhrasePattern::from_tokens([*t]))
        }
        _ => h,
    }
}

/// The Darwin system, bound to a corpus and its index.
pub struct Darwin<'a> {
    corpus: &'a Corpus,
    index: &'a IndexSet,
    emb: Embeddings,
    cfg: DarwinConfig,
}

impl<'a> Darwin<'a> {
    /// Create the system, training word embeddings over the corpus.
    pub fn new(corpus: &'a Corpus, index: &'a IndexSet, cfg: DarwinConfig) -> Darwin<'a> {
        let emb = Embeddings::train(corpus, &EmbedConfig { seed: cfg.seed, ..Default::default() });
        Darwin { corpus, index, emb, cfg }
    }

    /// Create with pre-trained embeddings (reuse across runs of the same
    /// corpus — experiment sweeps do this).
    pub fn with_embeddings(
        corpus: &'a Corpus,
        index: &'a IndexSet,
        cfg: DarwinConfig,
        emb: Embeddings,
    ) -> Darwin<'a> {
        Darwin { corpus, index, emb, cfg }
    }

    pub fn config(&self) -> &DarwinConfig {
        &self.cfg
    }

    pub fn embeddings(&self) -> &Embeddings {
        &self.emb
    }

    pub fn corpus(&self) -> &Corpus {
        self.corpus
    }

    pub fn index(&self) -> &IndexSet {
        self.index
    }

    /// Shared retraining path for the parallel-discovery mode.
    pub(crate) fn retrain_for_parallel(
        &self,
        clf: &mut dyn TextClassifier,
        cache: &mut ScoreCache,
        p: &IdSet,
        rng: &mut StdRng,
    ) {
        self.retrain(clf, cache, p, rng);
    }

    /// Run with the configured traversal strategy.
    pub fn run(&self, seed: Seed, oracle: &mut dyn Oracle) -> RunResult {
        let traversal = self.cfg.traversal;
        let tau = self.cfg.tau;
        self.run_with(seed, oracle, |seeds| match traversal {
            TraversalKind::Local => Box::new(LocalSearch::new(seeds.to_vec())),
            TraversalKind::Universal => Box::new(UniversalSearch::new()),
            TraversalKind::Hybrid => Box::new(HybridSearch::new(seeds.to_vec(), tau)),
        })
    }

    /// Run with a custom selection strategy (how the HighP/HighC baselines
    /// plug in).
    pub fn run_with(
        &self,
        seed: Seed,
        oracle: &mut dyn Oracle,
        make_strategy: impl FnOnce(&[RuleRef]) -> Box<dyn Strategy>,
    ) -> RunResult {
        let n = self.corpus.len();
        let mut p = IdSet::with_universe(n);
        let mut accepted: Vec<Heuristic> = Vec::new();
        let mut queried: FxHashSet<RuleRef> = FxHashSet::default();
        let mut seed_refs: Vec<RuleRef> = Vec::new();

        match &seed {
            Seed::Rule(h) => {
                let cov: Vec<u32> = match self.index.resolve(h) {
                    Some(r) => {
                        seed_refs.push(r);
                        queried.insert(r);
                        self.index.coverage(r).to_vec()
                    }
                    None => h.coverage(self.corpus),
                };
                p.extend_from_slice(&cov);
                accepted.push(h.clone());
            }
            Seed::Positives(ids) => {
                p.extend_from_slice(ids);
            }
        }

        // Algorithm 1 line 4: initial classifier over the seed positives.
        let mut clf = self.cfg.classifier.build(&self.emb, self.cfg.seed);
        let mut cache = if self.cfg.incremental_scoring {
            ScoreCache::new(n)
        } else {
            ScoreCache::full_only(n)
        };
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xDA);
        self.retrain(&mut *clf, &mut cache, &p, &mut rng);

        let max_count = (self.cfg.max_coverage_frac * n as f64).ceil() as usize;
        let mut hierarchy = generate_hierarchy(self.index, &p, self.cfg.n_candidates, max_count);
        let mut strategy = make_strategy(&seed_refs);
        let mut rejected: Vec<Heuristic> = Vec::new();
        let mut trace: Vec<TraceStep> = Vec::new();

        // Cross-grammar dedup: the same heuristic can be reachable as a
        // phrase-trie node and a TreeMatch terminal (e.g. a bare token);
        // never ask the oracle about both. Coverage dedup: two rules with
        // identical coverage sets get identical oracle answers (Definition
        // 4 — the answer depends only on C_r), so asking both wastes
        // budget.
        let mut asked: FxHashSet<Heuristic> = FxHashSet::default();
        let mut asked_coverages: FxHashSet<u64> = FxHashSet::default();
        if let Seed::Rule(h) = &seed {
            asked.insert(canonical(h.clone()));
            if let Some(r) = seed_refs.first() {
                asked_coverages.insert(coverage_hash(self.index.coverage(*r)));
            }
        }

        for question in 1..=self.cfg.budget {
            // Select, skipping alias/coverage duplicates without consuming
            // budget.
            let mut rule = None;
            for _ in 0..256 {
                let pick = {
                    let ctx = self.ctx(&hierarchy, &p, &cache, &queried);
                    strategy.select(&ctx).or_else(|| {
                        // Fallback: the most promising remaining candidate.
                        ctx.most_promising(hierarchy.rules().iter().copied())
                    })
                };
                let Some(r) = pick else { break };
                queried.insert(r);
                if !asked.insert(canonical(self.index.heuristic(r))) {
                    continue;
                }
                if !asked_coverages.insert(coverage_hash(self.index.coverage(r))) {
                    continue;
                }
                rule = Some(r);
                break;
            }
            let Some(rule) = rule else { break };

            let h = self.index.heuristic(rule);
            let cov = self.index.coverage(rule);
            let answer = oracle.ask(self.corpus, &h, cov);

            {
                let ctx = self.ctx(&hierarchy, &p, &cache, &queried);
                strategy.feedback(rule, answer, &ctx);
            }

            let mut new_ids: Vec<u32> = Vec::new();
            if answer {
                new_ids = cov.iter().copied().filter(|&s| !p.contains(s)).collect();
                p.extend_from_slice(cov);
                accepted.push(h.clone());
                // Score update (§3.7): retrain, refresh scores, regenerate
                // the hierarchy around the grown positive set.
                self.retrain(&mut *clf, &mut cache, &p, &mut rng);
                hierarchy = generate_hierarchy(self.index, &p, self.cfg.n_candidates, max_count);
            } else {
                rejected.push(h.clone());
            }
            trace.push(TraceStep { question, rule: h, answer, new_positive_ids: new_ids, p_size: p.len() });
        }

        RunResult {
            accepted,
            rejected,
            positives: p.iter().collect(),
            trace,
            scores: cache.scores().to_vec(),
        }
    }

    fn ctx<'b>(
        &'b self,
        hierarchy: &'b Hierarchy,
        p: &'b IdSet,
        cache: &'b ScoreCache,
        queried: &'b FxHashSet<RuleRef>,
    ) -> Ctx<'b> {
        Ctx {
            index: self.index,
            hierarchy,
            p,
            scores: cache.scores(),
            queried,
            benefit_threshold: self.cfg.benefit_threshold,
        }
    }

    /// Train on P vs. randomly sampled presumed negatives and refresh the
    /// score cache.
    fn retrain(
        &self,
        clf: &mut dyn TextClassifier,
        cache: &mut ScoreCache,
        p: &IdSet,
        rng: &mut StdRng,
    ) {
        let pos: Vec<u32> = p.iter().collect();
        if pos.is_empty() {
            return;
        }
        let n = self.corpus.len() as u32;
        // Cap the sample at a third of the corpus: sampling presumed
        // negatives too densely would sweep in most undiscovered positives
        // and teach the classifier to reject exactly the sentences Darwin
        // still needs to find.
        let want = (pos.len() * self.cfg.neg_per_pos)
            .max(self.cfg.min_negatives)
            .min(self.corpus.len() / 3)
            .min(self.corpus.len().saturating_sub(pos.len()));
        let mut neg: Vec<u32> = Vec::with_capacity(want);
        let mut guard = 0;
        while neg.len() < want && guard < want * 20 {
            let id = rng.gen_range(0..n);
            if !p.contains(id) {
                neg.push(id);
            }
            guard += 1;
        }
        clf.fit(self.corpus, &self.emb, &pos, &neg);
        cache.refresh(&*clf, self.corpus, &self.emb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use darwin_index::IndexConfig;

    /// A small transport-intent corpus: three positive families sharing the
    /// "to the airport" context (so the classifier can generalize from the
    /// seed family to the others) against a majority of negatives — the
    /// class imbalance mirrors the paper's datasets and keeps randomly
    /// sampled "presumed negatives" mostly correct.
    fn fixture() -> (Corpus, Vec<bool>) {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..12 {
            texts.push(format!("is there a shuttle to the airport at {i}"));
            labels.push(true);
            texts.push(format!("is there a bus to the airport at {i}"));
            labels.push(true);
        }
        for i in 0..6 {
            texts.push(format!("does the bart go to the airport after {i}"));
            labels.push(true);
        }
        for i in 0..20 {
            texts.push(format!("order a pizza with {i} toppings to the room"));
            labels.push(false);
            texts.push(format!("the pool opens at {i} for guests"));
            labels.push(false);
            texts.push(format!("can i get a wake up call at {i}"));
            labels.push(false);
            texts.push(format!("the wifi code for room {i} is posted"));
            labels.push(false);
        }
        (Corpus::from_texts(texts.iter()), labels)
    }

    fn run_kind(kind: TraversalKind) -> (RunResult, Vec<bool>) {
        let (corpus, labels) = fixture();
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let cfg = DarwinConfig::fast().with_traversal(kind).with_budget(15);
        let darwin = Darwin::new(&corpus, &index, cfg);
        let seed = Seed::Rule(Heuristic::phrase(&corpus, "shuttle to the airport").unwrap());
        let mut oracle = GroundTruthOracle::new(&labels, 0.8);
        (darwin.run(seed, &mut oracle), labels)
    }

    fn recall(run: &RunResult, labels: &[bool]) -> f64 {
        let total = labels.iter().filter(|&&l| l).count();
        let found = run.positives.iter().filter(|&&i| labels[i as usize]).count();
        found as f64 / total as f64
    }

    #[test]
    fn hybrid_discovers_most_positives() {
        let (run, labels) = run_kind(TraversalKind::Hybrid);
        assert!(recall(&run, &labels) > 0.8, "recall {}", recall(&run, &labels));
        assert!(run.accepted.len() >= 2, "accepted {:?}", run.accepted.len());
    }

    #[test]
    fn all_strategies_make_progress() {
        for kind in [TraversalKind::Local, TraversalKind::Universal, TraversalKind::Hybrid] {
            let (run, labels) = run_kind(kind);
            let seed_only = 12; // the seed rule's coverage (shuttle family)
            assert!(
                run.positives.len() > seed_only,
                "{kind:?} never grew P beyond the seed"
            );
            assert!(recall(&run, &labels) > 0.4, "{kind:?} recall {}", recall(&run, &labels));
        }
    }

    #[test]
    fn p_only_grows_and_trace_is_consistent() {
        let (run, _) = run_kind(TraversalKind::Hybrid);
        let mut prev = 0;
        for (i, step) in run.trace.iter().enumerate() {
            assert_eq!(step.question, i + 1);
            assert!(step.p_size >= prev, "P must be monotone");
            if !step.answer {
                assert!(step.new_positive_ids.is_empty());
            }
            prev = step.p_size;
        }
        assert_eq!(run.positives.len(), prev.max(run.p_size_after(0)));
    }

    #[test]
    fn respects_budget() {
        let (run, _) = run_kind(TraversalKind::Hybrid);
        assert!(run.questions() <= 15);
    }

    #[test]
    fn positives_after_reconstructs_history() {
        let (run, _) = run_kind(TraversalKind::Hybrid);
        // After all questions: the full positive set.
        let full = run.positives_after(run.questions());
        assert_eq!(full.len(), run.positives.len());
        // After 0 questions: the seed coverage only.
        let seed = run.positives_after(0);
        assert_eq!(seed.len(), run.p_size_after(0));
        // Monotone in q.
        for q in 0..=run.questions() {
            assert_eq!(run.positives_after(q).len(), run.p_size_after(q));
        }
    }

    #[test]
    fn accepted_rules_union_equals_p() {
        let (corpus, labels) = fixture();
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let cfg = DarwinConfig::fast().with_budget(10);
        let darwin = Darwin::new(&corpus, &index, cfg);
        let seed_rule = Heuristic::phrase(&corpus, "shuttle to the airport").unwrap();
        let mut oracle = GroundTruthOracle::new(&labels, 0.8);
        let run = darwin.run(Seed::Rule(seed_rule), &mut oracle);
        let mut union: Vec<u32> = run
            .accepted
            .iter()
            .flat_map(|h| h.coverage(&corpus))
            .collect();
        union.sort_unstable();
        union.dedup();
        assert_eq!(union, run.positives, "P == ∪ accepted coverage");
    }

    #[test]
    fn positives_seed_works() {
        let (corpus, labels) = fixture();
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let cfg = DarwinConfig::fast().with_budget(12);
        let darwin = Darwin::new(&corpus, &index, cfg);
        let mut oracle = GroundTruthOracle::new(&labels, 0.8);
        // Two positive sentences instead of a rule.
        let run = darwin.run(Seed::Positives(vec![0, 4]), &mut oracle);
        assert!(run.positives.len() > 2, "grew beyond the seed pair");
        let precision = run.positives.iter().filter(|&&i| labels[i as usize]).count() as f64
            / run.positives.len() as f64;
        assert!(precision > 0.7, "precision {precision}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = run_kind(TraversalKind::Hybrid);
        let (b, _) = run_kind(TraversalKind::Hybrid);
        assert_eq!(a.positives, b.positives);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(&b.trace) {
            assert_eq!(x.answer, y.answer);
            assert_eq!(x.rule, y.rule);
        }
    }

}

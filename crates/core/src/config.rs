//! Pipeline configuration.

use crate::batch::BatchPolicy;
use darwin_classifier::ClassifierKind;

/// Which hierarchy-traversal strategy selects the next question
/// (paper §3.3–3.6).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraversalKind {
    /// Algorithm 3 — explore the neighborhood of accepted rules.
    Local,
    /// Algorithm 4 — pick the globally most beneficial candidate.
    Universal,
    /// Algorithm 5 — toggle between the two after `tau` failures.
    Hybrid,
}

impl TraversalKind {
    /// Display name used in experiment reports and figures.
    pub fn name(self) -> &'static str {
        match self {
            TraversalKind::Local => "Darwin(LS)",
            TraversalKind::Universal => "Darwin(US)",
            TraversalKind::Hybrid => "Darwin(HS)",
        }
    }
}

/// How multi-shard *remote* operations are driven (local partitions
/// shard-parallel through [`DarwinConfig::threads`] instead). Replies
/// fold in fixed shard order under both settings, so the knob never
/// changes a run's output — only how many round-trip latencies a
/// broadcast costs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Fanout {
    /// One blocking round trip per shard, in shard order: `S` shards
    /// cost `S` round trips. The reference wire trace.
    Sequential,
    /// Issue every shard's request first, then join the replies in the
    /// same fixed shard order: the `S` round trips overlap into roughly
    /// one. Byte-identical traces to `Sequential` — the requests, the
    /// replies and the fold order are all unchanged.
    #[default]
    Concurrent,
}

/// All knobs of the Darwin pipeline, with paper defaults.
#[derive(Clone, Debug)]
pub struct DarwinConfig {
    /// Oracle query budget `b`.
    pub budget: usize,
    /// Candidate pool size `k` per hierarchy generation (paper: 10K,
    /// Figure 13 sweeps {5K, 10K, 20K}).
    pub n_candidates: usize,
    /// Traversal strategy (paper recommendation: Hybrid).
    pub traversal: TraversalKind,
    /// HybridSearch switch parameter τ (paper default: 5; Figure 12a
    /// sweeps {3,5,7,9}).
    pub tau: usize,
    /// Benefit classifier. The paper trains the Kim CNN; logistic
    /// regression is the fast ablation and the default here so that broad
    /// experiment sweeps stay cheap — pass `ClassifierKind::cnn()` for the
    /// paper configuration.
    pub classifier: ClassifierKind,
    /// UniversalSearch prunes candidates whose benefit-per-instance is
    /// below this (Algorithm 4 line 8; paper: 0.5).
    pub benefit_threshold: f64,
    /// How many presumed negatives to sample per positive when training.
    pub neg_per_pos: usize,
    /// Floor on the sampled negative count.
    pub min_negatives: usize,
    /// Use the §4.5 incremental re-scoring optimization.
    pub incremental_scoring: bool,
    /// Maintain per-rule benefit aggregates by delta (the incremental
    /// engine) instead of recomputing `benefit()` over every candidate's
    /// coverage on every question. Both paths select identical rule
    /// sequences (the engine's sums are exact); `false` keeps the
    /// full-rescan path as an ablation/reference.
    pub incremental_benefit: bool,
    /// Keep the best-first expansion state of hierarchy regeneration alive
    /// across YES answers (a persistent [`crate::FrontierPool`]): each
    /// regeneration re-scores only the frontier entries whose postings
    /// intersect the newly-labeled ids and replays the walk from memoized
    /// statistics, instead of re-scanning every visited rule's postings
    /// from the index root. Trace-equivalent to the full rescan — `false`
    /// keeps the from-scratch walk as the ablation/reference path.
    pub incremental_frontier: bool,
    /// Warm-start classifier retraining: keep the per-sentence feature
    /// arenas and optimizer allocations alive across the pipeline's
    /// retrain epochs, and skip refits whose training set is unchanged.
    /// Pure buffer reuse — trained weights (and therefore traces) are
    /// bit-identical to cold starts; `false` keeps the from-scratch
    /// reference path alive for the equivalence proof.
    pub warm_start: bool,
    /// Worker threads for the engine's aggregate rebuild after a full
    /// re-score epoch and for shard-parallel score refreshes
    /// (1 = sequential).
    pub threads: usize,
    /// Corpus shards: sentence ids are partitioned into this many
    /// contiguous ranges, each with its own score-refresh batches and
    /// benefit-aggregate partition; selection merges the per-shard
    /// fragments exactly (fixed-point sums), so every shard count selects
    /// the identical question sequence. 1 = the unsharded reference path.
    pub shards: usize,
    /// How the asynchronous loop ([`crate::Darwin::run_async`]) sizes its
    /// waves of in-flight oracle questions: a fixed count, a
    /// latency-targeted adaptive size, or a benefit-decay cutoff (see
    /// [`BatchPolicy`]). `Fixed(1)` — the default — replays the
    /// synchronous loop byte for byte under an immediate-answer oracle;
    /// the step-driven entry points (`run`, `run_parallel`) ignore this
    /// knob.
    pub batch: BatchPolicy,
    /// How remote-shard broadcasts are driven (see [`Fanout`]); ignored
    /// by purely local runs.
    pub fanout: Fanout,
    /// Candidates covering more than this fraction of the corpus are never
    /// generated: on the paper's imbalanced tasks (1–12% positive) such
    /// rules cannot clear the 0.8-precision bar, and asking them wastes
    /// oracle budget (part of the §3.2.1 diversity constraints).
    pub max_coverage_frac: f64,
    /// RNG seed (negative sampling, tie-breaking).
    pub seed: u64,
}

impl Default for DarwinConfig {
    fn default() -> Self {
        DarwinConfig {
            budget: 100,
            n_candidates: 10_000,
            traversal: TraversalKind::Hybrid,
            tau: 5,
            classifier: ClassifierKind::logreg(),
            benefit_threshold: 0.5,
            neg_per_pos: 3,
            min_negatives: 50,
            incremental_scoring: true,
            incremental_benefit: true,
            incremental_frontier: true,
            warm_start: true,
            threads: 1,
            shards: 1,
            batch: BatchPolicy::Fixed(1),
            fanout: Fanout::default(),
            max_coverage_frac: 0.4,
            seed: 42,
        }
    }
}

impl DarwinConfig {
    /// Small-scale configuration for tests and doc examples.
    pub fn fast() -> DarwinConfig {
        DarwinConfig {
            budget: 20,
            n_candidates: 500,
            ..Default::default()
        }
    }

    /// The paper's configuration: Kim CNN benefit classifier, 10K
    /// candidates, HybridSearch.
    pub fn paper() -> DarwinConfig {
        DarwinConfig {
            classifier: ClassifierKind::cnn(),
            ..Default::default()
        }
    }

    /// Replace the traversal strategy.
    pub fn with_traversal(mut self, t: TraversalKind) -> Self {
        self.traversal = t;
        self
    }

    /// Replace the oracle query budget.
    pub fn with_budget(mut self, b: usize) -> Self {
        self.budget = b;
        self
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Replace the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Replace the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Toggle the incremental candidate frontier.
    pub fn with_incremental_frontier(mut self, on: bool) -> Self {
        self.incremental_frontier = on;
        self
    }

    /// Toggle warm-start classifier retraining.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Replace the async wave-sizing policy.
    pub fn with_batch(mut self, policy: BatchPolicy) -> Self {
        self.batch = policy;
        self
    }

    /// Replace the remote-shard fan-out discipline.
    pub fn with_fanout(mut self, fanout: Fanout) -> Self {
        self.fanout = fanout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DarwinConfig::default();
        assert_eq!(c.n_candidates, 10_000);
        assert_eq!(c.tau, 5);
        assert_eq!(c.benefit_threshold, 0.5);
        assert_eq!(c.traversal, TraversalKind::Hybrid);
    }

    #[test]
    fn builder_helpers() {
        let c = DarwinConfig::fast()
            .with_traversal(TraversalKind::Local)
            .with_budget(7)
            .with_seed(9);
        assert_eq!(c.traversal, TraversalKind::Local);
        assert_eq!(c.budget, 7);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn batch_default_is_sequential() {
        assert_eq!(DarwinConfig::default().batch, BatchPolicy::Fixed(1));
        let c = DarwinConfig::fast().with_batch(BatchPolicy::LatencyTargeted { max: 16 });
        assert_eq!(c.batch.max_in_flight(), 16);
    }

    #[test]
    fn traversal_names() {
        assert_eq!(TraversalKind::Hybrid.name(), "Darwin(HS)");
        assert_eq!(TraversalKind::Local.name(), "Darwin(LS)");
        assert_eq!(TraversalKind::Universal.name(), "Darwin(US)");
    }
}

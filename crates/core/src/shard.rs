//! The sharded benefit coordinator, generic over local and remote shards.
//!
//! [`ShardedBenefitStore`] partitions the corpus across `S` shard
//! partitions, one per contiguous id range of a [`darwin_index::ShardMap`].
//! Each partition maintains, for every tracked rule, the *fragment* of its
//! benefit aggregate contributed by the shard's slice of the rule's
//! coverage. A partition is one of two backends:
//!
//! * **local** — an in-memory [`BenefitStore`] (the pre-wire path, and the
//!   `S = 1` full-span reference);
//! * **remote** — a [`RemoteShard`]: the partition lives in a *worker*
//!   (another thread or another process) behind a
//!   [`darwin_wire::Transport`]. The coordinator ships deltas — new
//!   positives, score-journal runs, rule-tracking requests — as wire
//!   messages, and every mutating reply carries the fragments that
//!   changed, which the coordinator applies to a local *mirror*. Selection
//!   reads the mirror, so the read path costs no round-trips and the
//!   merged benefit is computed exactly as in the local case.
//!
//! The coordinator:
//!
//! * **routes deltas to owners** — a YES answer's new positive ids go to
//!   the shard that owns them ([`ShardedBenefitStore::on_positives_added`]),
//!   and an incremental re-score journal (sorted by id, the
//!   `ScoreCache::last_changes` invariant) is sliced into per-shard runs
//!   with two binary searches per shard
//!   ([`ShardedBenefitStore::on_scores_changed`]);
//! * **fans bulk work out across shards** — local partitions shard-parallel
//!   when `threads > 1`; remote partitions are driven per the configured
//!   [`Fanout`]: one blocking round trip per shard (`Sequential`, the
//!   reference trace) or all requests issued first and the replies joined
//!   in fixed shard order (`Concurrent`, so `S` network round trips
//!   overlap into roughly one). Shard-invariant request bodies (tracking
//!   lists, retain lists, audits) are encoded *once* and broadcast;
//!   per-shard bodies (journal runs) are sliced out of one encoded
//!   buffer. The fold order is the fixed shard order under both
//!   settings, so the knob never changes any state;
//! * **merges fragments exactly at read time** —
//!   [`ShardedBenefitStore::benefit_of`] sums the per-shard fragments in
//!   the fixed-point domain of [`crate::benefit::quantize`], where integer
//!   addition is associative, so the merged benefit is bit-identical to
//!   the single-store value for any shard count, any delta interleaving
//!   *and any backend* — fragments are integers on the wire, so transport
//!   changes nothing.
//!
//! **Failure discipline:** a wire failure during any fan-out operation
//! first attempts *reconnect-and-replay* when the store holds a
//! re-dial hook: every [`RemoteShard`] keeps, besides the fragment
//! mirror, the span's positives and scores as last *confirmed* by the
//! worker (mirrors advance only after a successful reply), so a fresh
//! worker can be stood up from the shipped `ShardInit` recipe, re-track
//! the mirrored rules, and replay the interrupted request exactly once.
//! If recovery is unavailable or fails, the coordinator is *poisoned*:
//! the surviving shards' in-flight replies are still drained (no reply
//! is left in a pipe to be misattributed), the error is returned (and
//! kept — see [`ShardedBenefitStore::wire_error`]), and every subsequent
//! read answers `None`, so selection can never act on a partially-merged
//! state. The engine aborts the run cleanly when it sees the poison;
//! nothing panics.
//!
//! `S = 1` with local backing constructs one full-span [`BenefitStore`] —
//! the pre-shard reference path, byte for byte.

use crate::benefit::Benefit;
use crate::candidates::Candidate;
use crate::config::Fanout;
use crate::engine::{BenefitAgg, BenefitStore};
use darwin_index::fx::FxHashMap;
use darwin_index::{IdSet, IndexConfig, IndexSet, RuleRef, ShardMap};
use darwin_text::Corpus;
use darwin_wire::msg::{CorpusSlice, Response, ScoredRule, Session, WireAgg};
use darwin_wire::{Encode, Transport, WireError};
use std::sync::Arc;

/// Builds the transport to one shard worker: called once per shard with
/// the shard index and its id range (and again on reconnect after a wire
/// failure, when the deployment supports re-dialing).
pub type ShardConnector =
    dyn Fn(usize, std::ops::Range<u32>) -> Result<Box<dyn Transport>, WireError> + Send + Sync;

pub(crate) fn agg_from_wire(w: WireAgg) -> BenefitAgg {
    BenefitAgg {
        covered_pos: w.covered_pos as usize,
        new_instances: w.new_instances as usize,
        sum_q: w.sum_q,
    }
}

pub(crate) fn agg_to_wire(a: &BenefitAgg) -> WireAgg {
    WireAgg {
        covered_pos: a.covered_pos as u64,
        new_instances: a.new_instances as u64,
        sum_q: a.sum_q,
    }
}

// Request tag bytes, as written by `darwin_wire::msg::Request::encode`.
// The coordinator hand-assembles request bodies around these so a
// shard-invariant payload is encoded once and broadcast, instead of
// re-encoded per shard; `bodies_match_request_encoding` pins the
// equivalence.
const TAG_SHARD_INIT: u8 = 1;
const TAG_TRACK: u8 = 2;
const TAG_TRACK_SCORED: u8 = 3;
const TAG_REBUILD: u8 = 4;
const TAG_RETAIN: u8 = 5;
const TAG_POSITIVES_ADDED: u8 = 6;
const TAG_SCORES_CHANGED: u8 = 7;
const TAG_FRAGMENTS: u8 = 8;
const TAG_SHUTDOWN: u8 = 14;
const TAG_CORPUS_APPEND: u8 = 15;

/// `tag` + the `Vec<T>` wire encoding of `items` — byte-identical to
/// encoding the corresponding single-field [`Request`] variant, without
/// cloning `items` into one.
fn body_of<T: Encode>(tag: u8, items: &[T]) -> Vec<u8> {
    let mut out = vec![tag];
    (items.len() as u32).encode(&mut out);
    for item in items {
        item.encode(&mut out);
    }
    out
}

/// The encoded shard-invariant prefix of `ShardInit` (corpus + index
/// recipe): encoded once, shared by every shard's init and kept for
/// reconnects — the corpus shipment dominates init cost, and `S` shards
/// need not pay the encode `S` times.
fn init_prefix(corpus: &Corpus, index_cfg: &IndexConfig) -> Vec<u8> {
    let mut out = Vec::new();
    CorpusSlice::full(corpus).encode(&mut out);
    index_cfg.encode(&mut out);
    out
}

fn expect_ack(resp: Response, what: &str) -> Result<(), WireError> {
    match resp {
        Response::Ack => Ok(()),
        other => Err(WireError::Protocol(format!(
            "{what} expected Ack, got {other:?}"
        ))),
    }
}

/// Span-state updates to fold into a [`RemoteShard`]'s mirrors once the
/// worker's reply confirms the request was applied — never before: a
/// failed request must leave the mirrors at the worker's last confirmed
/// state, so a reconnect can rebuild the worker from them and replay.
enum Post {
    None,
    /// New positive ids (merged into the sorted span-positives mirror).
    Positives(Vec<u32>),
    /// `(id, new)` score writes for the span-scores mirror.
    Scores(Vec<(u32, f32)>),
    /// Replacement span scores after a full re-score epoch.
    Rebuild(Vec<f32>),
    /// Sorted keep-list: prune the fragment mirror to it.
    Retain(Arc<Vec<RuleRef>>),
    /// The corpus grew: the shard's confirmed span extends to `new_hi`
    /// (unchanged for every shard but the last — the epoch growth rule)
    /// and the span-scores mirror gains the newly owned tail.
    Append {
        /// The span's new exclusive upper bound.
        new_hi: u32,
        /// Scores for the newly owned ids (empty off the last shard).
        scores: Vec<f32>,
    },
}

/// One sent-but-not-yet-joined request: the encoded body (kept so a
/// reconnect can replay it) and the mirror updates its success implies.
struct Pending {
    body: Vec<u8>,
    post: Post,
}

/// Coordinator-side handle to a shard partition living in a worker behind
/// a [`Transport`]. Mutations are wire calls; reads hit the fragment
/// mirror the mutation replies keep up to date. Each mutation is split
/// into a *begin* (send) and *finish* (join) phase so the store can
/// drive many shards' round trips concurrently — one request in flight
/// per session at most, preserving the strict request/response
/// discipline.
pub struct RemoteShard {
    session: Session,
    /// This shard's index in the deployment (what the re-dial hook is
    /// called with).
    shard: usize,
    lo: u32,
    hi: u32,
    mirror: FxHashMap<RuleRef, BenefitAgg>,
    /// Positive ids within `[lo, hi)`, sorted — the worker's `P` as last
    /// confirmed.
    positives: Vec<u32>,
    /// Scores for `[lo, hi)` as last confirmed by the worker.
    scores: Vec<f32>,
    /// Encoded corpus + index recipe (see [`init_prefix`]), shared
    /// across shards and kept for reconnects.
    prefix: Arc<Vec<u8>>,
    /// Re-dial hook for reconnect-and-replay; `None` disables recovery
    /// (a wire failure then poisons the store immediately).
    redial: Option<Arc<ShardConnector>>,
    pending: Option<Pending>,
}

impl RemoteShard {
    /// Handshake with the worker and stand up its partition: ships the
    /// full corpus (workers index it themselves — the heuristic index
    /// needs global postings), the index recipe, the owned span, and the
    /// current positives/scores of that span.
    pub fn connect(
        transport: Box<dyn Transport>,
        corpus: &Corpus,
        index_cfg: &IndexConfig,
        lo: u32,
        hi: u32,
        p: &IdSet,
        scores: &[f32],
    ) -> Result<RemoteShard, WireError> {
        let positives: Vec<u32> = p.iter().filter(|&id| lo <= id && id < hi).collect();
        RemoteShard::connect_with(
            transport,
            0,
            Arc::new(init_prefix(corpus, index_cfg)),
            lo,
            hi,
            positives,
            scores[lo as usize..hi as usize].to_vec(),
            None,
        )
    }

    /// [`RemoteShard::connect`] from pre-encoded parts — what
    /// [`ShardedBenefitStore::connect_remote`] uses so `S` shards share
    /// one corpus encode, and what a reconnect replays from.
    #[allow(clippy::too_many_arguments)]
    fn connect_with(
        transport: Box<dyn Transport>,
        shard: usize,
        prefix: Arc<Vec<u8>>,
        lo: u32,
        hi: u32,
        positives: Vec<u32>,
        scores: Vec<f32>,
        redial: Option<Arc<ShardConnector>>,
    ) -> Result<RemoteShard, WireError> {
        let mut session = Session::new(transport);
        session.hello()?;
        let mut shard = RemoteShard {
            session,
            shard,
            lo,
            hi,
            mirror: FxHashMap::default(),
            positives,
            scores,
            prefix,
            redial,
            pending: None,
        };
        let body = shard.init_body();
        let resp = shard.call_encoded(&body)?;
        expect_ack(resp, "shard init")?;
        Ok(shard)
    }

    /// The `ShardInit` request body for this shard's current confirmed
    /// state: shared prefix + span + positives + scores. Byte-identical
    /// to encoding [`Request::ShardInit`] with the same fields.
    fn init_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.prefix.len() + 16 + 4 * self.scores.len());
        out.push(TAG_SHARD_INIT);
        out.extend_from_slice(&self.prefix);
        self.lo.encode(&mut out);
        self.hi.encode(&mut out);
        self.positives.encode(&mut out);
        self.scores.encode(&mut out);
        out
    }

    fn call_encoded(&mut self, body: &[u8]) -> Result<Response, WireError> {
        self.session.send_encoded(body)?;
        self.session.recv_reply()
    }

    /// The owned id span `[lo, hi)`.
    pub fn span(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    /// Number of tracked (mirrored) rules.
    pub fn len(&self) -> usize {
        self.mirror.len()
    }

    /// Whether no rule is tracked.
    pub fn is_empty(&self) -> bool {
        self.mirror.is_empty()
    }

    /// Whether `r` has a mirrored fragment.
    pub fn contains(&self, r: RuleRef) -> bool {
        self.mirror.contains_key(&r)
    }

    /// The mirrored fragment for `r`, if tracked.
    pub fn agg(&self, r: RuleRef) -> Option<BenefitAgg> {
        self.mirror.get(&r).copied()
    }

    /// Send phase of one mutating request. On a send failure the
    /// reconnect path runs immediately (completing the whole exchange),
    /// so `Ok` means the request is either in flight or already applied.
    fn begin(&mut self, body: Vec<u8>, post: Post) -> Result<(), WireError> {
        debug_assert!(
            self.pending.is_none(),
            "one request in flight per session at most"
        );
        match self.session.send_encoded(&body) {
            Ok(()) => {
                self.pending = Some(Pending { body, post });
                Ok(())
            }
            Err(e) => {
                self.pending = Some(Pending { body, post });
                self.recover(e)
            }
        }
    }

    /// Join phase: receive the reply and fold it (fragments first, then
    /// the span-state post) into the mirrors. No-op when `begin` already
    /// completed the exchange through recovery.
    fn finish(&mut self) -> Result<(), WireError> {
        let Some(pending) = self.pending.take() else {
            return Ok(());
        };
        match self.session.recv_reply() {
            Ok(resp) => self.apply(resp, pending.post),
            // The worker is alive and answered: an application-level
            // refusal, not a transport failure — replaying it would only
            // repeat the refusal.
            Err(e @ WireError::Remote(_)) => Err(e),
            Err(e) => {
                self.pending = Some(pending);
                self.recover(e)
            }
        }
    }

    /// A mutating exchange, whole: begin + finish.
    fn mutate(&mut self, body: Vec<u8>, post: Post) -> Result<(), WireError> {
        self.begin(body, post)?;
        self.finish()
    }

    /// Fold a mutation reply's fragment deltas into the mirror.
    fn fold(&mut self, resp: Response) -> Result<(), WireError> {
        match resp {
            Response::FragmentDeltas { changed } => {
                for (r, agg) in changed {
                    self.mirror.insert(r, agg_from_wire(agg));
                }
                Ok(())
            }
            Response::Ack => Ok(()),
            other => Err(WireError::Protocol(format!(
                "mutation expected FragmentDeltas/Ack, got {other:?}"
            ))),
        }
    }

    fn apply(&mut self, resp: Response, post: Post) -> Result<(), WireError> {
        self.fold(resp)?;
        match post {
            Post::None => {}
            Post::Positives(ids) => {
                self.positives.extend_from_slice(&ids);
                self.positives.sort_unstable();
            }
            Post::Scores(writes) => {
                for (id, new) in writes {
                    self.scores[(id - self.lo) as usize] = new;
                }
            }
            Post::Rebuild(scores) => self.scores = scores,
            Post::Retain(keep) => {
                self.mirror.retain(|r, _| keep.binary_search(r).is_ok());
            }
            Post::Append { new_hi, scores } => {
                self.hi = new_hi;
                self.scores.extend_from_slice(&scores);
            }
        }
        Ok(())
    }

    /// Reconnect-and-replay after a wire failure: re-dial the worker,
    /// rebuild it from the shipped `ShardInit` recipe and the confirmed
    /// mirrors, re-track the mirrored rules, and re-send the interrupted
    /// request. Exactly-once semantics fall out of the mirror
    /// discipline: mirrors reflect only confirmed requests, so the fresh
    /// worker re-derives the exact pre-failure state and the replayed
    /// request applies once. Unrecoverable failures surface the
    /// *original* error (the root cause) for the store to poison on.
    fn recover(&mut self, err: WireError) -> Result<(), WireError> {
        let Some(redial) = self.redial.clone() else {
            self.pending = None;
            return Err(err);
        };
        match self.replay(&redial) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.pending = None;
                Err(err)
            }
        }
    }

    fn replay(&mut self, redial: &Arc<ShardConnector>) -> Result<(), WireError> {
        let transport = redial(self.shard, self.lo..self.hi)?;
        self.session = Session::new(transport);
        self.session.hello()?;
        let body = self.init_body();
        let resp = self.call_encoded(&body)?;
        expect_ack(resp, "shard re-init")?;
        // Re-track every mirrored rule. The worker recomputes their
        // fragments from (index, P, scores); mirror exactness means the
        // returned values equal what we already hold, so folding them
        // back is idempotent.
        let mut rules: Vec<RuleRef> = self.mirror.keys().copied().collect();
        rules.sort_unstable();
        if !rules.is_empty() {
            let resp = self.call_encoded(&body_of(TAG_TRACK, &rules))?;
            self.fold(resp)?;
        }
        if let Some(p) = self.pending.take() {
            let resp = self.call_encoded(&p.body)?;
            self.apply(resp, p.post)?;
        }
        Ok(())
    }

    /// Track `rules` (the worker computes fragments for the missing ones).
    pub fn track(&mut self, rules: &[RuleRef]) -> Result<(), WireError> {
        self.mutate(body_of(TAG_TRACK, rules), Post::None)
    }

    /// Track freshly generated candidates, statistics attached.
    pub fn track_scored(&mut self, cands: &[Candidate]) -> Result<(), WireError> {
        let cands: Vec<ScoredRule> = cands.iter().map(scored_rule).collect();
        self.mutate(body_of(TAG_TRACK_SCORED, &cands), Post::None)
    }

    /// Full re-score epoch: ship the span's new scores, the worker
    /// rebuilds every fragment and replies with all of them.
    pub fn rebuild(&mut self, full_scores: &[f32]) -> Result<(), WireError> {
        let span = &full_scores[self.lo as usize..self.hi as usize];
        self.mutate(body_of(TAG_REBUILD, span), Post::Rebuild(span.to_vec()))
    }

    /// Drop fragments for rules not satisfying `keep`, on both sides.
    pub fn retain(&mut self, keep: impl Fn(RuleRef) -> bool) -> Result<(), WireError> {
        let mut kept: Vec<RuleRef> = self.mirror.keys().copied().filter(|&r| keep(r)).collect();
        kept.sort_unstable();
        let body = body_of(TAG_RETAIN, &kept);
        self.mutate(body, Post::Retain(Arc::new(kept)))
    }

    /// `P` grew by `ids` (all owned by this shard, pre-retrain scores
    /// still current on the worker).
    pub fn on_positives_added(&mut self, ids: &[u32]) -> Result<(), WireError> {
        debug_assert!(ids.iter().all(|&id| self.lo <= id && id < self.hi));
        self.mutate(
            body_of(TAG_POSITIVES_ADDED, ids),
            Post::Positives(ids.to_vec()),
        )
    }

    /// Ship this shard's slice of an incremental score journal.
    pub fn on_scores_changed(&mut self, changes: &[(u32, f32, f32)]) -> Result<(), WireError> {
        let writes = changes.iter().map(|&(id, _, new)| (id, new)).collect();
        self.mutate(body_of(TAG_SCORES_CHANGED, changes), Post::Scores(writes))
    }

    /// Send phase of an audit: request every mirrored rule's fragment,
    /// returning the (sorted) rule list the reply must be compared
    /// against.
    fn audit_begin(&mut self) -> Result<Vec<RuleRef>, WireError> {
        let mut rules: Vec<RuleRef> = self.mirror.keys().copied().collect();
        rules.sort_unstable();
        self.session.send_encoded(&body_of(TAG_FRAGMENTS, &rules))?;
        Ok(rules)
    }

    /// Join phase of an audit: `Ok(true)` means the mirror is exact.
    fn audit_finish(&mut self, rules: &[RuleRef]) -> Result<bool, WireError> {
        match self.session.recv_reply()? {
            Response::Fragments { aggs } => {
                if aggs.len() != rules.len() {
                    return Ok(false);
                }
                Ok(rules
                    .iter()
                    .zip(aggs)
                    .all(|(r, a)| a.map(agg_from_wire) == self.mirror.get(r).copied()))
            }
            other => Err(WireError::Protocol(format!(
                "fragments expected Fragments, got {other:?}"
            ))),
        }
    }

    /// Audit the mirror against the worker's ground truth: fetch every
    /// mirrored rule's fragment and compare. `Ok(true)` means the mirror
    /// is exact.
    pub fn audit(&mut self) -> Result<bool, WireError> {
        let rules = self.audit_begin()?;
        self.audit_finish(&rules)
    }

    /// Orderly worker teardown (dropping the transport also works — the
    /// worker exits on disconnect — but this confirms delivery).
    pub fn shutdown(mut self) -> Result<(), WireError> {
        let resp = self.call_encoded(&[TAG_SHUTDOWN])?;
        expect_ack(resp, "shutdown")
    }
}

fn scored_rule(c: &Candidate) -> ScoredRule {
    ScoredRule {
        rule: c.rule,
        overlap: c.overlap as u64,
        count: c.count as u64,
    }
}

/// One shard partition: in-memory, or mirrored from a worker.
enum Part {
    Local(BenefitStore),
    Remote(RemoteShard),
}

impl Part {
    fn agg(&self, r: RuleRef) -> Option<BenefitAgg> {
        match self {
            Part::Local(b) => b.agg(r).copied(),
            Part::Remote(w) => w.agg(r),
        }
    }

    fn len(&self) -> usize {
        match self {
            Part::Local(b) => b.len(),
            Part::Remote(w) => w.len(),
        }
    }

    fn contains(&self, r: RuleRef) -> bool {
        match self {
            Part::Local(b) => b.contains(r),
            Part::Remote(w) => w.contains(r),
        }
    }
}

/// Drive one request across every remote partition. `payload(s)` builds
/// shard `s`'s encoded body and post-state (`None` = the shard has no
/// work in this operation, and no frame is sent).
///
/// `Sequential` performs one blocking round trip per shard in shard
/// order — the reference wire trace. `Concurrent` sends to every shard
/// first, then joins the replies in the same fixed shard order, so `S`
/// round trips overlap into roughly one; requests, replies and fold
/// order are identical, making the setting a pure latency knob. On a
/// partial failure under `Concurrent`, the surviving shards are still
/// joined (their replies drained) before the first error is returned —
/// no reply is left buffered to be misattributed to a later request.
fn fan_out(
    parts: &mut [Part],
    fanout: Fanout,
    mut payload: impl FnMut(usize) -> Option<(Vec<u8>, Post)>,
) -> Result<(), WireError> {
    match fanout {
        Fanout::Sequential => {
            for (s, part) in parts.iter_mut().enumerate() {
                if let Part::Remote(w) = part {
                    if let Some((body, post)) = payload(s) {
                        w.mutate(body, post)?;
                    }
                }
            }
            Ok(())
        }
        Fanout::Concurrent => {
            let mut first_err: Option<WireError> = None;
            let mut sent = vec![false; parts.len()];
            for (s, part) in parts.iter_mut().enumerate() {
                if let Part::Remote(w) = part {
                    if let Some((body, post)) = payload(s) {
                        match w.begin(body, post) {
                            Ok(()) => sent[s] = true,
                            Err(e) => {
                                first_err.get_or_insert(e);
                            }
                        }
                    }
                }
            }
            for (s, part) in parts.iter_mut().enumerate() {
                if !sent[s] {
                    continue;
                }
                if let Part::Remote(w) = part {
                    if let Err(e) = w.finish() {
                        first_err.get_or_insert(e);
                    }
                }
            }
            match first_err {
                None => Ok(()),
                Some(e) => Err(e),
            }
        }
    }
}

/// Per-shard benefit partitions — local stores or remote workers — behind
/// one store-shaped facade.
pub struct ShardedBenefitStore {
    map: ShardMap,
    parts: Vec<Part>,
    fanout: Fanout,
    poisoned: Option<WireError>,
}

impl ShardedBenefitStore {
    /// One in-memory partition per range of `map`. With one shard the
    /// single partition is a full-span [`BenefitStore`] — the unsharded
    /// reference path.
    pub fn new(map: ShardMap) -> ShardedBenefitStore {
        let parts = if map.shards() == 1 {
            vec![Part::Local(BenefitStore::new())]
        } else {
            map.ranges()
                .map(|r| Part::Local(BenefitStore::for_span(r.start, r.end)))
                .collect()
        };
        ShardedBenefitStore {
            map,
            parts,
            fanout: Fanout::default(),
            poisoned: None,
        }
    }

    /// One *remote* partition per range of `map`: `connect` builds the
    /// transport for each shard, and every worker is initialized with the
    /// corpus (encoded once, shared across all `S` inits), the index
    /// recipe and the current `(P, scores)` state. The connector is kept
    /// for reconnect-and-replay after a mid-run wire failure; `fanout`
    /// selects how broadcasts are driven.
    pub fn connect_remote(
        map: ShardMap,
        corpus: &Corpus,
        index_cfg: &IndexConfig,
        p: &IdSet,
        scores: &[f32],
        connect: Arc<ShardConnector>,
        fanout: Fanout,
    ) -> Result<ShardedBenefitStore, WireError> {
        let prefix = Arc::new(init_prefix(corpus, index_cfg));
        let mut parts = Vec::with_capacity(map.shards());
        for (s, r) in map.ranges().enumerate() {
            let transport = connect(s, r.clone())?;
            let positives: Vec<u32> = p.iter().filter(|&id| r.start <= id && id < r.end).collect();
            parts.push(Part::Remote(RemoteShard::connect_with(
                transport,
                s,
                prefix.clone(),
                r.start,
                r.end,
                positives,
                scores[r.start as usize..r.end as usize].to_vec(),
                Some(connect.clone()),
            )?));
        }
        Ok(ShardedBenefitStore {
            map,
            parts,
            fanout,
            poisoned: None,
        })
    }

    /// Number of shard partitions.
    pub fn shards(&self) -> usize {
        self.parts.len()
    }

    /// The id partition this store coordinates.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Whether any partition is remote (mirror-backed).
    pub fn is_remote(&self) -> bool {
        matches!(self.parts.first(), Some(Part::Remote(_)))
    }

    /// Replace the fan-out discipline. A pure driving knob (requests,
    /// replies and fold order are unchanged), so flipping it between
    /// broadcasts is always safe — the bench compares modes on one
    /// worker fleet this way.
    pub fn set_fanout(&mut self, fanout: Fanout) {
        self.fanout = fanout;
    }

    /// How remote broadcasts are driven.
    pub fn fanout(&self) -> Fanout {
        self.fanout
    }

    /// The wire failure that poisoned this coordinator, if any. Poisoned
    /// stores answer `None` to every read — partial merges are
    /// unrepresentable.
    pub fn wire_error(&self) -> Option<&WireError> {
        self.poisoned.as_ref()
    }

    /// The local shard partitions, in shard order (diagnostics, benches;
    /// empty when the partitions are remote).
    pub fn local_parts(&self) -> impl Iterator<Item = &BenefitStore> {
        self.parts.iter().filter_map(|p| match p {
            Part::Local(b) => Some(b),
            Part::Remote(_) => None,
        })
    }

    /// Number of tracked rules (every partition tracks the same set).
    pub fn len(&self) -> usize {
        self.parts[0].len()
    }

    /// Whether no rule is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `r` has tracked fragments.
    pub fn contains(&self, r: RuleRef) -> bool {
        self.poisoned.is_none() && self.parts[0].contains(r)
    }

    /// The merged aggregate for `r`: per-shard fragments summed in the
    /// fixed-point domain — bit-identical to a single full-span store.
    /// `None` when untracked or when the coordinator is poisoned.
    pub fn agg(&self, r: RuleRef) -> Option<BenefitAgg> {
        if self.poisoned.is_some() {
            return None;
        }
        let mut merged = BenefitAgg {
            covered_pos: 0,
            new_instances: 0,
            sum_q: 0,
        };
        for part in &self.parts {
            let frag = part.agg(r)?;
            merged.covered_pos += frag.covered_pos;
            merged.new_instances += frag.new_instances;
            merged.sum_q += frag.sum_q;
        }
        Some(merged)
    }

    /// The merged benefit for `r`, if tracked (what selection reads).
    pub fn benefit_of(&self, r: RuleRef) -> Option<Benefit> {
        self.agg(r).map(|a| a.benefit())
    }

    /// Run a fallible mutation under the poison discipline: refuse if
    /// already poisoned, poison on first failure.
    fn guarded(
        &mut self,
        f: impl FnOnce(&mut Vec<Part>, Fanout) -> Result<(), WireError>,
    ) -> Result<(), WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let fanout = self.fanout;
        match f(&mut self.parts, fanout) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Ensure every rule in `rules` has a fragment in every partition
    /// (shard-parallel when local and `threads > 1`; encoded once and
    /// broadcast when remote).
    pub fn track(
        &mut self,
        rules: &[RuleRef],
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        threads: usize,
    ) -> Result<(), WireError> {
        if self.is_remote() {
            let body = body_of(TAG_TRACK, rules);
            return self.guarded(|parts, fanout| {
                fan_out(parts, fanout, |_| Some((body.clone(), Post::None)))
            });
        }
        self.for_each_local(threads, |part, intra_threads| {
            part.track(rules.iter().copied(), index, p, scores, intra_threads)
        });
        Ok(())
    }

    /// [`ShardedBenefitStore::track`] for freshly generated candidates,
    /// seeding fragments from the search statistics (see
    /// [`BenefitStore::track_scored`]).
    pub fn track_scored(
        &mut self,
        cands: &[Candidate],
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        threads: usize,
    ) -> Result<(), WireError> {
        if self.is_remote() {
            let cands: Vec<ScoredRule> = cands.iter().map(scored_rule).collect();
            let body = body_of(TAG_TRACK_SCORED, &cands);
            return self.guarded(|parts, fanout| {
                fan_out(parts, fanout, |_| Some((body.clone(), Post::None)))
            });
        }
        self.for_each_local(threads, |part, intra_threads| {
            part.track_scored(cands, index, p, scores, intra_threads)
        });
        Ok(())
    }

    /// Recompute every fragment from scratch after a full re-score epoch
    /// (shard-parallel when local and `threads > 1`; remote workers
    /// receive their span's new scores and rebuild on their side).
    pub fn rebuild(
        &mut self,
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        threads: usize,
    ) -> Result<(), WireError> {
        if self.is_remote() {
            let map = self.map.clone();
            return self.guarded(|parts, fanout| {
                fan_out(parts, fanout, |s| {
                    let r = map.range(s);
                    let span = &scores[r.start as usize..r.end as usize];
                    Some((body_of(TAG_REBUILD, span), Post::Rebuild(span.to_vec())))
                })
            });
        }
        self.for_each_local(threads, |part, intra_threads| {
            part.rebuild(index, p, scores, intra_threads)
        });
        Ok(())
    }

    /// Drop fragments for rules not satisfying `keep`, in every partition.
    pub fn retain(&mut self, keep: impl Fn(RuleRef) -> bool + Sync) -> Result<(), WireError> {
        if self.is_remote() {
            return self.guarded(|parts, fanout| {
                // Every partition tracks the same rule set, so the keep
                // list (and its encoding) is computed once and shared.
                let first = parts.iter().find_map(|p| match p {
                    Part::Remote(w) => Some(w),
                    Part::Local(_) => None,
                });
                let mut kept: Vec<RuleRef> = match first {
                    Some(w) => w.mirror.keys().copied().filter(|&r| keep(r)).collect(),
                    None => return Ok(()),
                };
                kept.sort_unstable();
                let body = body_of(TAG_RETAIN, &kept);
                let kept = Arc::new(kept);
                fan_out(parts, fanout, |_| {
                    Some((body.clone(), Post::Retain(kept.clone())))
                })
            });
        }
        for part in &mut self.parts {
            if let Part::Local(b) = part {
                b.retain(&keep);
            }
        }
        Ok(())
    }

    /// Route each new positive id to its owning shard's partition (the
    /// partition walks the inverted postings for the id). Must be called
    /// with pre-retrain scores, like [`BenefitStore::on_positives_added`].
    pub fn on_positives_added(
        &mut self,
        new_ids: &[u32],
        index: &IndexSet,
        scores: &[f32],
    ) -> Result<(), WireError> {
        if self.is_remote() {
            let map = self.map.clone();
            return self.guarded(|parts, fanout| {
                fan_out(parts, fanout, |s| {
                    let r = map.range(s);
                    let run: Vec<u32> = new_ids
                        .iter()
                        .copied()
                        .filter(|&id| r.start <= id && id < r.end)
                        .collect();
                    if run.is_empty() {
                        return None;
                    }
                    let body = body_of(TAG_POSITIVES_ADDED, &run);
                    Some((body, Post::Positives(run)))
                })
            });
        }
        if self.parts.len() == 1 {
            if let Part::Local(b) = &mut self.parts[0] {
                b.on_positives_added(new_ids, index, scores);
            }
            return Ok(());
        }
        for &id in new_ids {
            if let Part::Local(b) = &mut self.parts[self.map.owner(id)] {
                b.on_positives_added(&[id], index, scores);
            }
        }
        Ok(())
    }

    /// Slice an id-sorted change journal into per-shard runs and patch each
    /// owning partition with its run. Remote: the journal entries are
    /// encoded *once* into a fixed-width byte run, and each shard's body
    /// is a slice of it (count-prefixed), so the encode cost is paid once
    /// regardless of `S`.
    pub fn on_scores_changed(
        &mut self,
        changes: &[(u32, f32, f32)],
        p: &IdSet,
        index: &IndexSet,
    ) -> Result<(), WireError> {
        debug_assert!(
            changes.windows(2).all(|w| w[0].0 <= w[1].0),
            "change journal must be sorted by id"
        );
        if self.is_remote() {
            if changes.is_empty() {
                return Ok(());
            }
            let mut entries = Vec::with_capacity(changes.len() * 12);
            for c in changes {
                c.encode(&mut entries);
            }
            // (u32, f32, f32) encodes fixed-width, so a shard's run of
            // entries is a byte slice at entry-width offsets.
            let width = entries.len() / changes.len();
            let map = self.map.clone();
            return self.guarded(|parts, fanout| {
                fan_out(parts, fanout, |s| {
                    let r = map.range(s);
                    let a = changes.partition_point(|&(id, _, _)| id < r.start);
                    let b = changes.partition_point(|&(id, _, _)| id < r.end);
                    if a == b {
                        return None;
                    }
                    let mut body = Vec::with_capacity(5 + (b - a) * width);
                    body.push(TAG_SCORES_CHANGED);
                    ((b - a) as u32).encode(&mut body);
                    body.extend_from_slice(&entries[a * width..b * width]);
                    let writes = changes[a..b]
                        .iter()
                        .map(|&(id, _, new)| (id, new))
                        .collect();
                    Some((body, Post::Scores(writes)))
                })
            });
        }
        if self.parts.len() == 1 {
            if let Part::Local(b) = &mut self.parts[0] {
                b.on_scores_changed(changes, p, index);
            }
            return Ok(());
        }
        for (s, part) in self.parts.iter_mut().enumerate() {
            let r = self.map.range(s);
            let a = changes.partition_point(|&(id, _, _)| id < r.start);
            let b = changes.partition_point(|&(id, _, _)| id < r.end);
            if let Part::Local(store) = part {
                store.on_scores_changed(&changes[a..b], p, index);
            }
        }
        Ok(())
    }

    /// The corpus grew at an append barrier: ids `old_n..corpus.len()`
    /// were appended, `index` and `scores` already cover them, and none
    /// are positive. Grows the id partition under the epoch rule
    /// ([`ShardMap::grow`] — the chunk split stays frozen, every new id
    /// joins the last shard), extends the last partition's span, and
    /// folds the appended ids into its fragments.
    ///
    /// Remote: every worker receives the appended texts (each needs the
    /// full grown corpus to grow its index), but only the last shard's
    /// span — and its slice of `scores` — actually moves. After the
    /// fan-out confirms, the shared `ShardInit` reconnect prefix is
    /// re-encoded from the grown corpus so a later worker death replays
    /// the grown deployment. A failure mid-append poisons the store like
    /// any other broadcast; the per-shard reconnect path replays the
    /// append body itself, so a transient death during the fan-out still
    /// converges on the grown state.
    pub fn on_corpus_appended(
        &mut self,
        corpus: &Corpus,
        texts: &[String],
        index: &IndexSet,
        scores: &[f32],
    ) -> Result<(), WireError> {
        let old_n = self.map.sentences() as u32;
        let new_n = corpus.len() as u32;
        debug_assert_eq!(old_n as usize + texts.len(), new_n as usize);
        debug_assert_eq!(scores.len(), new_n as usize);
        if new_n == old_n {
            return Ok(());
        }
        self.map.grow(new_n as usize);
        if self.is_remote() {
            // The texts dominate the frame; encode them once and share the
            // byte run across every shard's body.
            let mut texts_enc = Vec::new();
            (texts.len() as u32).encode(&mut texts_enc);
            for t in texts {
                t.encode(&mut texts_enc);
            }
            let map = self.map.clone();
            let last = self.parts.len() - 1;
            self.guarded(|parts, fanout| {
                fan_out(parts, fanout, |s| {
                    let new_hi = map.range(s).end;
                    let span: &[f32] = if s == last {
                        &scores[old_n as usize..new_hi as usize]
                    } else {
                        &[]
                    };
                    let mut body = Vec::with_capacity(1 + texts_enc.len() + 8 + 4 * span.len());
                    body.push(TAG_CORPUS_APPEND);
                    body.extend_from_slice(&texts_enc);
                    new_hi.encode(&mut body);
                    (span.len() as u32).encode(&mut body);
                    for v in span {
                        v.encode(&mut body);
                    }
                    Some((
                        body,
                        Post::Append {
                            new_hi,
                            scores: span.to_vec(),
                        },
                    ))
                })
            })?;
            let prefix = Arc::new(init_prefix(corpus, index.config()));
            for part in &mut self.parts {
                if let Part::Remote(w) = part {
                    w.prefix = prefix.clone();
                }
            }
            return Ok(());
        }
        let new_ids: Vec<u32> = (old_n..new_n).collect();
        let last = self.parts.len() - 1;
        if let Part::Local(b) = &mut self.parts[last] {
            b.extend_span(new_n);
            b.on_ids_appended(&new_ids, index, scores);
        }
        Ok(())
    }

    /// Audit every remote mirror against its worker's ground truth
    /// (`Ok(true)` when all mirrors are exact; trivially true for local
    /// partitions). Driven per the configured fan-out like every other
    /// broadcast; a wire failure poisons the store (after draining the
    /// surviving shards' replies).
    pub fn audit_remote(&mut self) -> Result<bool, WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let fanout = self.fanout;
        let mut exact = true;
        let result = match fanout {
            Fanout::Sequential => {
                let mut run = || -> Result<(), WireError> {
                    for part in &mut self.parts {
                        if let Part::Remote(w) = part {
                            exact &= w.audit()?;
                        }
                    }
                    Ok(())
                };
                run()
            }
            Fanout::Concurrent => {
                let mut first_err: Option<WireError> = None;
                let mut sent: Vec<Option<Vec<RuleRef>>> = Vec::new();
                sent.resize_with(self.parts.len(), || None);
                for (s, part) in self.parts.iter_mut().enumerate() {
                    if let Part::Remote(w) = part {
                        match w.audit_begin() {
                            Ok(rules) => sent[s] = Some(rules),
                            Err(e) => {
                                first_err.get_or_insert(e);
                            }
                        }
                    }
                }
                for (s, part) in self.parts.iter_mut().enumerate() {
                    let Some(rules) = sent[s].take() else {
                        continue;
                    };
                    if let Part::Remote(w) = part {
                        match w.audit_finish(&rules) {
                            Ok(ok) => exact &= ok,
                            Err(e) => {
                                first_err.get_or_insert(e);
                            }
                        }
                    }
                }
                match first_err {
                    None => Ok(()),
                    Some(e) => Err(e),
                }
            }
        };
        match result {
            Ok(()) => Ok(exact),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Tear down remote workers in an orderly fashion (no-op for local
    /// partitions; concurrent fan-out sends every `Shutdown` before
    /// joining the `Ack`s). Dropping the store also works — workers exit
    /// on disconnect.
    pub fn shutdown(self) -> Result<(), WireError> {
        let fanout = self.fanout;
        let mut remotes: Vec<RemoteShard> = self
            .parts
            .into_iter()
            .filter_map(|p| match p {
                Part::Remote(w) => Some(w),
                Part::Local(_) => None,
            })
            .collect();
        match fanout {
            Fanout::Sequential => {
                for w in remotes {
                    w.shutdown()?;
                }
            }
            Fanout::Concurrent => {
                for w in &mut remotes {
                    w.session.send_encoded(&[TAG_SHUTDOWN])?;
                }
                for w in &mut remotes {
                    expect_ack(w.session.recv_reply()?, "shutdown")?;
                }
            }
        }
        Ok(())
    }

    /// Run `op` over every local partition — shard-parallel when
    /// `threads > 1` and there is more than one shard (each worker owns
    /// disjoint partitions, so order and results are deterministic); a
    /// single full-span partition instead gets the whole thread budget for
    /// its intra-store chunking.
    fn for_each_local(
        &mut self,
        threads: usize,
        op: impl Fn(&mut BenefitStore, usize) + Sync + Send,
    ) {
        let mut slots: Vec<&mut BenefitStore> = self
            .parts
            .iter_mut()
            .filter_map(|p| match p {
                Part::Local(b) => Some(b),
                Part::Remote(_) => None,
            })
            .collect();
        if slots.len() == 1 {
            return op(slots[0], threads);
        }
        if threads > 1 {
            use rayon::prelude::*;
            // One chunk of shards per configured worker, same bounding
            // idiom as the engine's batch computation. Leftover width
            // (threads > shards) is handed to each group as its
            // intra-store chunking budget, so few-shard configurations
            // keep the full thread budget of the unsharded path.
            let chunk = slots.len().div_ceil(threads);
            let groups = slots.len().div_ceil(chunk);
            let intra = (threads / groups).max(1);
            slots.par_chunks_mut(chunk).for_each(|group| {
                for part in group.iter_mut() {
                    op(part, intra);
                }
            });
        } else {
            for part in slots {
                op(part, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::benefit;
    use darwin_index::{IndexConfig, IndexSet};
    use darwin_text::Corpus;
    use darwin_wire::msg::Request;

    fn setup() -> (Corpus, IndexSet) {
        let c = Corpus::from_texts([
            "the shuttle to the airport leaves hourly",
            "is there a shuttle to the airport tonight",
            "a bus to the airport runs daily",
            "order pizza to the room please",
            "the pool opens at nine daily",
            "is there a bus downtown tonight",
            "the shuttle downtown is free",
        ]);
        let idx = IndexSet::build(&c, &IndexConfig::small());
        (c, idx)
    }

    /// The hand-assembled request bodies must be byte-identical to
    /// encoding the [`Request`] variants they stand in for — the
    /// encode-once broadcast is a pure amortization, not a dialect.
    #[test]
    fn bodies_match_request_encoding() {
        let rules = vec![RuleRef::Phrase(3), RuleRef::Phrase(7)];
        let scores = vec![0.25f32, 0.5, 0.75];
        let ids = vec![4u32, 9];
        let changes = vec![(2u32, 0.1f32, 0.9f32), (5, 0.3, 0.05)];
        let cases: Vec<(Vec<u8>, Request)> = vec![
            (
                body_of(TAG_TRACK, &rules),
                Request::Track {
                    rules: rules.clone(),
                },
            ),
            (
                body_of(TAG_REBUILD, &scores),
                Request::Rebuild {
                    scores: scores.clone(),
                },
            ),
            (
                body_of(TAG_RETAIN, &rules),
                Request::Retain {
                    keep: rules.clone(),
                },
            ),
            (
                body_of(TAG_POSITIVES_ADDED, &ids),
                Request::PositivesAdded { ids: ids.clone() },
            ),
            (
                body_of(TAG_SCORES_CHANGED, &changes),
                Request::ScoresChanged {
                    changes: changes.clone(),
                },
            ),
            (
                body_of(TAG_FRAGMENTS, &rules),
                Request::Fragments {
                    rules: rules.clone(),
                },
            ),
            (vec![TAG_SHUTDOWN], Request::Shutdown),
        ];
        for (body, req) in cases {
            assert_eq!(body, req.to_bytes(), "{req:?}");
        }
        // The sliced ScoresChanged body: count prefix + a byte run cut
        // at entry-width offsets must equal encoding the sub-journal.
        let mut entries = Vec::new();
        for c in &changes {
            c.encode(&mut entries);
        }
        let width = entries.len() / changes.len();
        let mut sliced = vec![TAG_SCORES_CHANGED];
        1u32.encode(&mut sliced);
        sliced.extend_from_slice(&entries[width..2 * width]);
        assert_eq!(
            sliced,
            Request::ScoresChanged {
                changes: changes[1..].to_vec()
            }
            .to_bytes()
        );
        // And the assembled ShardInit body equals the encoded variant.
        let (c, _) = setup();
        let cfg = IndexConfig::small();
        let prefix = Arc::new(init_prefix(&c, &cfg));
        let mut init = vec![TAG_SHARD_INIT];
        init.extend_from_slice(&prefix);
        2u32.encode(&mut init);
        5u32.encode(&mut init);
        vec![3u32].encode(&mut init);
        vec![0.5f32, 0.25, 0.125].encode(&mut init);
        assert_eq!(
            init,
            Request::ShardInit {
                corpus: CorpusSlice::full(&c),
                index: cfg,
                lo: 2,
                hi: 5,
                positives: vec![3],
                scores: vec![0.5, 0.25, 0.125],
            }
            .to_bytes()
        );
        // And the assembled CorpusAppend body (texts encoded once, shared
        // across shards) equals the encoded variant.
        let texts = vec!["the night bus".to_string(), "pizza downtown".to_string()];
        let span = [0.5f32, 0.5];
        let mut texts_enc = Vec::new();
        (texts.len() as u32).encode(&mut texts_enc);
        for t in &texts {
            t.encode(&mut texts_enc);
        }
        let mut append = vec![TAG_CORPUS_APPEND];
        append.extend_from_slice(&texts_enc);
        9u32.encode(&mut append);
        (span.len() as u32).encode(&mut append);
        for v in span {
            v.encode(&mut append);
        }
        assert_eq!(
            append,
            Request::CorpusAppend {
                texts,
                new_hi: 9,
                scores: span.to_vec(),
            }
            .to_bytes()
        );
    }

    /// Merged fragments equal the global benefit for every shard count,
    /// through tracking, positive deltas, journal patches and rebuilds.
    #[test]
    fn merge_is_exact_for_every_shard_count() {
        let (c, idx) = setup();
        let n = c.len();
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        for shards in [1usize, 2, 3, 4, 7] {
            let mut p = IdSet::from_ids(&[0], n);
            let mut scores: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).fract()).collect();
            let mut store = ShardedBenefitStore::new(ShardMap::new(n, shards));
            store.track(&rules, &idx, &p, &scores, 1).unwrap();

            let check = |store: &ShardedBenefitStore, p: &IdSet, scores: &[f32], label: &str| {
                for &r in &rules {
                    assert_eq!(
                        store.benefit_of(r).unwrap(),
                        benefit(idx.coverage(r), p, scores),
                        "S={shards} {label}: rule {:?}",
                        idx.heuristic(r)
                    );
                }
            };
            check(&store, &p, &scores, "after track");

            // P grows across shard boundaries.
            let new_ids = [1u32, 5, 6];
            store.on_positives_added(&new_ids, &idx, &scores).unwrap();
            p.extend_from_slice(&new_ids);
            check(&store, &p, &scores, "after positives");

            // Sorted journal spanning several shards; one id inside P.
            let changes: Vec<(u32, f32, f32)> = vec![
                (2, scores[2], 0.9),
                (3, scores[3], 0.05),
                (5, scores[5], 0.7),
            ];
            for &(id, _, new) in &changes {
                if !p.contains(id) {
                    scores[id as usize] = new;
                }
            }
            store.on_scores_changed(&changes, &p, &idx).unwrap();
            check(&store, &p, &scores, "after journal");

            // Full epoch.
            for (i, s) in scores.iter_mut().enumerate() {
                *s = (*s + 0.17 + i as f32 * 0.013).fract();
            }
            store.rebuild(&idx, &p, &scores, 4).unwrap();
            check(&store, &p, &scores, "after rebuild");
        }
    }

    #[test]
    fn single_shard_is_full_span() {
        let (c, _) = setup();
        let store = ShardedBenefitStore::new(ShardMap::new(c.len(), 1));
        assert_eq!(store.shards(), 1);
        assert!(!store.is_remote());
        assert_eq!(store.local_parts().next().unwrap().span(), (0, u32::MAX));
    }

    #[test]
    fn retain_applies_to_all_partitions() {
        let (c, idx) = setup();
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        let p = IdSet::from_ids(&[0, 1], c.len());
        let scores = vec![0.5; c.len()];
        let mut store = ShardedBenefitStore::new(ShardMap::new(c.len(), 3));
        store.track(&rules, &idx, &p, &scores, 1).unwrap();
        let keep = rules[0];
        store.retain(|r| r == keep).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.contains(keep));
        assert!(store.benefit_of(rules[1]).is_none());
    }

    fn inproc_connector() -> Arc<ShardConnector> {
        Arc::new(|_, _| {
            let (client, mut server) = darwin_wire::InProc::pair();
            std::thread::spawn(move || {
                let _ = crate::remote::serve_shard(&mut server);
            });
            Ok(Box::new(client) as Box<dyn Transport>)
        })
    }

    /// Drive the full mutation vocabulary through remote workers under
    /// both fan-out disciplines: every mirror state (and therefore every
    /// read) must be identical to the local reference, and the audit
    /// must confirm exactness against worker ground truth.
    #[test]
    fn concurrent_fanout_matches_sequential_and_local() {
        let (c, idx) = setup();
        let n = c.len();
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        for fanout in [Fanout::Sequential, Fanout::Concurrent] {
            let mut p = IdSet::from_ids(&[0], n);
            let mut scores: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).fract()).collect();
            let mut store = ShardedBenefitStore::connect_remote(
                ShardMap::new(n, 3),
                &c,
                &IndexConfig::small(),
                &p,
                &scores,
                inproc_connector(),
                fanout,
            )
            .unwrap();
            let mut reference = ShardedBenefitStore::new(ShardMap::new(n, 1));

            let check =
                |store: &ShardedBenefitStore, reference: &ShardedBenefitStore, label: &str| {
                    for &r in &rules {
                        assert_eq!(
                            store.benefit_of(r),
                            reference.benefit_of(r),
                            "{fanout:?} {label}: rule {:?}",
                            idx.heuristic(r)
                        );
                    }
                };

            store.track(&rules, &idx, &p, &scores, 1).unwrap();
            reference.track(&rules, &idx, &p, &scores, 1).unwrap();
            check(&store, &reference, "after track");

            let new_ids = [1u32, 5, 6];
            store.on_positives_added(&new_ids, &idx, &scores).unwrap();
            reference
                .on_positives_added(&new_ids, &idx, &scores)
                .unwrap();
            p.extend_from_slice(&new_ids);
            check(&store, &reference, "after positives");

            let changes: Vec<(u32, f32, f32)> = vec![
                (2, scores[2], 0.9),
                (3, scores[3], 0.05),
                (5, scores[5], 0.7),
            ];
            for &(id, _, new) in &changes {
                if !p.contains(id) {
                    scores[id as usize] = new;
                }
            }
            store.on_scores_changed(&changes, &p, &idx).unwrap();
            reference.on_scores_changed(&changes, &p, &idx).unwrap();
            check(&store, &reference, "after journal");

            for (i, s) in scores.iter_mut().enumerate() {
                *s = (*s + 0.17 + i as f32 * 0.013).fract();
            }
            store.rebuild(&idx, &p, &scores, 1).unwrap();
            reference.rebuild(&idx, &p, &scores, 1).unwrap();
            check(&store, &reference, "after rebuild");

            let keep: Vec<RuleRef> = rules.iter().copied().take(rules.len() / 2).collect();
            store.retain(|r| keep.contains(&r)).unwrap();
            reference.retain(|r| keep.contains(&r)).unwrap();
            assert_eq!(store.len(), reference.len(), "{fanout:?} after retain");
            check(&store, &reference, "after retain");

            assert!(store.audit_remote().unwrap(), "{fanout:?} audit");
            store.shutdown().unwrap();
        }
    }

    /// A worker dying mid-run recovers through reconnect-and-replay when
    /// the connector can stand up a fresh worker: the interrupted
    /// request replays exactly once and the run continues unpoisoned.
    #[test]
    fn reconnect_replays_interrupted_request() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (c, idx) = setup();
        let n = c.len();
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        let p = IdSet::from_ids(&[0], n);
        let scores = vec![0.5f32; n];
        // First dial per shard: a worker whose transport we can sever.
        // Re-dials: healthy in-proc workers.
        let dials = Arc::new(AtomicUsize::new(0));
        let dials_in_connector = dials.clone();
        let connect: Arc<ShardConnector> = Arc::new(move |_, _| {
            dials_in_connector.fetch_add(1, Ordering::SeqCst);
            let (client, mut server) = darwin_wire::InProc::pair();
            std::thread::spawn(move || {
                let _ = crate::remote::serve_shard(&mut server);
            });
            Ok(Box::new(client) as Box<dyn Transport>)
        });
        let mut store = ShardedBenefitStore::connect_remote(
            ShardMap::new(n, 2),
            &c,
            &IndexConfig::small(),
            &p,
            &scores,
            connect,
            Fanout::Concurrent,
        )
        .unwrap();
        store.track(&rules, &idx, &p, &scores, 1).unwrap();
        let before = dials.load(Ordering::SeqCst);

        // Sever shard 0's transport under the store's feet: the next
        // broadcast fails mid-fan-out and must recover by re-dialing.
        if let Part::Remote(w) = &mut store.parts[0] {
            w.session = Session::new(Box::new(darwin_wire::DeadTransport));
        }
        let changes: Vec<(u32, f32, f32)> = vec![(1, 0.5, 0.9), (5, 0.5, 0.1)];
        store.on_scores_changed(&changes, &p, &idx).unwrap();
        assert!(store.wire_error().is_none(), "recovered, not poisoned");
        assert!(dials.load(Ordering::SeqCst) > before, "re-dialed");

        // The recovered deployment is still exact.
        assert!(store.audit_remote().unwrap());
        let mut reference = ShardedBenefitStore::new(ShardMap::new(n, 1));
        reference.track(&rules, &idx, &p, &scores, 1).unwrap();
        reference.on_scores_changed(&changes, &p, &idx).unwrap();
        for &r in &rules {
            assert_eq!(store.benefit_of(r), reference.benefit_of(r));
        }
        store.shutdown().unwrap();
    }

    /// The store leg of append equivalence: growing the partition at an
    /// append barrier leaves every merged benefit identical to a scratch
    /// pass over the grown corpus — locally for every shard count, and
    /// remotely under both fan-outs (where the append deltas must also
    /// keep the mirrors exact against worker ground truth). Growth then
    /// continues across the barrier: an appended id turning positive
    /// flows through the ordinary delta route.
    #[test]
    fn append_matches_scratch_store_on_grown_corpus() {
        let extra = vec![
            "the late shuttle downtown leaves hourly".to_string(),
            "order a pizza downtown tonight".to_string(),
        ];
        let run = |mut store: ShardedBenefitStore, label: &str| {
            let (mut c, mut idx) = setup();
            let old_n = c.len();
            let rules: Vec<RuleRef> = idx.all_rules().collect();
            let mut p = IdSet::from_ids(&[0, 1], old_n);
            let mut scores: Vec<f32> = (0..old_n).map(|i| (i as f32 * 0.31).fract()).collect();
            store.track(&rules, &idx, &p, &scores, 1).unwrap();

            c.append_texts(extra.iter(), 1);
            idx.append(&c).unwrap();
            scores.resize(c.len(), 0.5); // neutral prior for appended ids
            store.on_corpus_appended(&c, &extra, &idx, &scores).unwrap();
            assert_eq!(store.shard_map().sentences(), c.len(), "{label}");
            for &r in &rules {
                assert_eq!(
                    store.benefit_of(r).unwrap(),
                    benefit(idx.coverage(r), &p, &scores),
                    "{label} post-append: rule {:?}",
                    idx.heuristic(r)
                );
            }

            // An appended sentence turns positive across the barrier.
            let appended = old_n as u32 + 1;
            store
                .on_positives_added(&[appended], &idx, &scores)
                .unwrap();
            p.insert(appended);
            for &r in &rules {
                assert_eq!(
                    store.benefit_of(r).unwrap(),
                    benefit(idx.coverage(r), &p, &scores),
                    "{label} post-YES: rule {:?}",
                    idx.heuristic(r)
                );
            }
            store
        };
        let n = setup().0.len();
        for shards in [1usize, 2, 3, 4] {
            run(
                ShardedBenefitStore::new(ShardMap::new(n, shards)),
                &format!("local S={shards}"),
            );
        }
        for fanout in [Fanout::Sequential, Fanout::Concurrent] {
            let (c, _) = setup();
            let p = IdSet::from_ids(&[0, 1], n);
            let scores: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).fract()).collect();
            let store = ShardedBenefitStore::connect_remote(
                ShardMap::new(n, 3),
                &c,
                &IndexConfig::small(),
                &p,
                &scores,
                inproc_connector(),
                fanout,
            )
            .unwrap();
            let mut store = run(store, &format!("remote {fanout:?}"));
            assert!(
                store.audit_remote().unwrap(),
                "{fanout:?} audit post-append"
            );
            store.shutdown().unwrap();
        }
    }

    /// A dead transport must surface as a clean error and poison the
    /// coordinator — reads answer `None`, further mutations refuse.
    #[test]
    fn dead_transport_poisons_cleanly() {
        let (c, idx) = setup();
        let p = IdSet::from_ids(&[0], c.len());
        let scores = vec![0.5; c.len()];
        let map = ShardMap::new(c.len(), 2);
        let connect: Arc<ShardConnector> =
            Arc::new(|_, _| Ok(Box::new(darwin_wire::DeadTransport)));
        let err = match ShardedBenefitStore::connect_remote(
            map,
            &c,
            &IndexConfig::small(),
            &p,
            &scores,
            connect,
            Fanout::Concurrent,
        ) {
            Err(e) => e,
            Ok(_) => panic!("connecting through a dead transport must fail"),
        };
        assert_eq!(err, WireError::Disconnected);
        let _ = idx; // connection dies before the index matters
    }
}

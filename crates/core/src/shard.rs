//! The sharded benefit coordinator.
//!
//! [`ShardedBenefitStore`] partitions the corpus across `S` shard-local
//! [`BenefitStore`]s, one per contiguous id range of a
//! [`darwin_index::ShardMap`]. Each partition maintains, for every tracked
//! rule, the *fragment* of its benefit aggregate contributed by the
//! shard's slice of the rule's coverage; the coordinator:
//!
//! * **routes deltas to owners** — a YES answer's new positive ids go to
//!   the shard that owns them ([`ShardedBenefitStore::on_positives_added`]),
//!   and an incremental re-score journal (sorted by id, the
//!   `ScoreCache::last_changes` invariant) is sliced into per-shard runs
//!   with two binary searches per shard
//!   ([`ShardedBenefitStore::on_scores_changed`]);
//! * **fans bulk work out across shards** — tracking freshly generated
//!   rules and the full-epoch rebuild run shard-parallel when
//!   `threads > 1`, deterministic because each partition owns disjoint
//!   state and results never interleave;
//! * **merges fragments exactly at read time** —
//!   [`ShardedBenefitStore::benefit_of`] sums the per-shard fragments in
//!   the fixed-point domain of [`crate::benefit::quantize`], where integer
//!   addition is associative, so the merged benefit is bit-identical to
//!   the single-store value for any shard count and any delta
//!   interleaving. Selection over merged fragments therefore asks the
//!   exact question sequence of the unsharded path.
//!
//! `S = 1` constructs one full-span [`BenefitStore`] — the pre-shard
//! reference path, byte for byte.

use crate::benefit::Benefit;
use crate::candidates::Candidate;
use crate::engine::{BenefitAgg, BenefitStore};
use darwin_index::{IdSet, IndexSet, RuleRef, ShardMap};

/// Per-shard [`BenefitStore`] partitions behind one store-shaped facade.
pub struct ShardedBenefitStore {
    map: ShardMap,
    parts: Vec<BenefitStore>,
}

impl ShardedBenefitStore {
    /// One shard-local partition per range of `map`. With one shard the
    /// single partition is a full-span [`BenefitStore`] — the unsharded
    /// reference path.
    pub fn new(map: ShardMap) -> ShardedBenefitStore {
        let parts = if map.shards() == 1 {
            vec![BenefitStore::new()]
        } else {
            map.ranges()
                .map(|r| BenefitStore::for_span(r.start, r.end))
                .collect()
        };
        ShardedBenefitStore { map, parts }
    }

    /// Number of shard partitions.
    pub fn shards(&self) -> usize {
        self.parts.len()
    }

    /// The id partition this store coordinates.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard-local partitions, in shard order (diagnostics, benches).
    pub fn parts(&self) -> &[BenefitStore] {
        &self.parts
    }

    /// Number of tracked rules (every partition tracks the same set).
    pub fn len(&self) -> usize {
        self.parts[0].len()
    }

    /// Whether no rule is tracked.
    pub fn is_empty(&self) -> bool {
        self.parts[0].is_empty()
    }

    /// Whether `r` has tracked fragments.
    pub fn contains(&self, r: RuleRef) -> bool {
        self.parts[0].contains(r)
    }

    /// The merged aggregate for `r`: per-shard fragments summed in the
    /// fixed-point domain — bit-identical to a single full-span store.
    pub fn agg(&self, r: RuleRef) -> Option<BenefitAgg> {
        let mut merged = BenefitAgg {
            covered_pos: 0,
            new_instances: 0,
            sum_q: 0,
        };
        for part in &self.parts {
            let frag = part.agg(r)?;
            merged.covered_pos += frag.covered_pos;
            merged.new_instances += frag.new_instances;
            merged.sum_q += frag.sum_q;
        }
        Some(merged)
    }

    /// The merged benefit for `r`, if tracked (what selection reads).
    pub fn benefit_of(&self, r: RuleRef) -> Option<Benefit> {
        self.agg(r).map(|a| a.benefit())
    }

    /// Ensure every rule in `rules` has a fragment in every partition
    /// (shard-parallel when `threads > 1`).
    pub fn track(
        &mut self,
        rules: &[RuleRef],
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        threads: usize,
    ) {
        self.for_each_part(threads, |part, intra_threads| {
            part.track(rules.iter().copied(), index, p, scores, intra_threads)
        });
    }

    /// [`ShardedBenefitStore::track`] for freshly generated candidates,
    /// seeding fragments from the search statistics (see
    /// [`BenefitStore::track_scored`]).
    pub fn track_scored(
        &mut self,
        cands: &[Candidate],
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        threads: usize,
    ) {
        self.for_each_part(threads, |part, intra_threads| {
            part.track_scored(cands, index, p, scores, intra_threads)
        });
    }

    /// Recompute every fragment from scratch after a full re-score epoch
    /// (shard-parallel when `threads > 1`).
    pub fn rebuild(&mut self, index: &IndexSet, p: &IdSet, scores: &[f32], threads: usize) {
        self.for_each_part(threads, |part, intra_threads| {
            part.rebuild(index, p, scores, intra_threads)
        });
    }

    /// Drop fragments for rules not satisfying `keep`, in every partition.
    pub fn retain(&mut self, keep: impl Fn(RuleRef) -> bool + Sync) {
        for part in &mut self.parts {
            part.retain(&keep);
        }
    }

    /// Route each new positive id to its owning shard's partition (the
    /// partition walks the inverted postings for the id). Must be called
    /// with pre-retrain scores, like [`BenefitStore::on_positives_added`].
    pub fn on_positives_added(&mut self, new_ids: &[u32], index: &IndexSet, scores: &[f32]) {
        if self.parts.len() == 1 {
            return self.parts[0].on_positives_added(new_ids, index, scores);
        }
        for &id in new_ids {
            self.parts[self.map.owner(id)].on_positives_added(&[id], index, scores);
        }
    }

    /// Slice an id-sorted change journal into per-shard runs and patch each
    /// owning partition with its run.
    pub fn on_scores_changed(&mut self, changes: &[(u32, f32, f32)], p: &IdSet, index: &IndexSet) {
        if self.parts.len() == 1 {
            return self.parts[0].on_scores_changed(changes, p, index);
        }
        debug_assert!(
            changes.windows(2).all(|w| w[0].0 <= w[1].0),
            "change journal must be sorted by id"
        );
        for (s, part) in self.parts.iter_mut().enumerate() {
            let r = self.map.range(s);
            let a = changes.partition_point(|&(id, _, _)| id < r.start);
            let b = changes.partition_point(|&(id, _, _)| id < r.end);
            part.on_scores_changed(&changes[a..b], p, index);
        }
    }

    /// Run `op` over every partition — shard-parallel when `threads > 1`
    /// and there is more than one shard (each worker owns disjoint
    /// partitions, so order and results are deterministic); a single
    /// full-span partition instead gets the whole thread budget for its
    /// intra-store chunking.
    fn for_each_part(
        &mut self,
        threads: usize,
        op: impl Fn(&mut BenefitStore, usize) + Sync + Send,
    ) {
        if self.parts.len() == 1 {
            return op(&mut self.parts[0], threads);
        }
        if threads > 1 {
            use rayon::prelude::*;
            // One chunk of shards per configured worker, same bounding
            // idiom as the engine's batch computation. Leftover width
            // (threads > shards) is handed to each group as its
            // intra-store chunking budget, so few-shard configurations
            // keep the full thread budget of the unsharded path.
            let chunk = self.parts.len().div_ceil(threads);
            let groups = self.parts.len().div_ceil(chunk);
            let intra = (threads / groups).max(1);
            let mut slots: Vec<&mut BenefitStore> = self.parts.iter_mut().collect();
            slots.par_chunks_mut(chunk).for_each(|group| {
                for part in group.iter_mut() {
                    op(part, intra);
                }
            });
        } else {
            for part in &mut self.parts {
                op(part, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::benefit;
    use darwin_index::{IndexConfig, IndexSet};
    use darwin_text::Corpus;

    fn setup() -> (Corpus, IndexSet) {
        let c = Corpus::from_texts([
            "the shuttle to the airport leaves hourly",
            "is there a shuttle to the airport tonight",
            "a bus to the airport runs daily",
            "order pizza to the room please",
            "the pool opens at nine daily",
            "is there a bus downtown tonight",
            "the shuttle downtown is free",
        ]);
        let idx = IndexSet::build(&c, &IndexConfig::small());
        (c, idx)
    }

    /// Merged fragments equal the global benefit for every shard count,
    /// through tracking, positive deltas, journal patches and rebuilds.
    #[test]
    fn merge_is_exact_for_every_shard_count() {
        let (c, idx) = setup();
        let n = c.len();
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        for shards in [1usize, 2, 3, 4, 7] {
            let mut p = IdSet::from_ids(&[0], n);
            let mut scores: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).fract()).collect();
            let mut store = ShardedBenefitStore::new(ShardMap::new(n, shards));
            store.track(&rules, &idx, &p, &scores, 1);

            let check = |store: &ShardedBenefitStore, p: &IdSet, scores: &[f32], label: &str| {
                for &r in &rules {
                    assert_eq!(
                        store.benefit_of(r).unwrap(),
                        benefit(idx.coverage(r), p, scores),
                        "S={shards} {label}: rule {:?}",
                        idx.heuristic(r)
                    );
                }
            };
            check(&store, &p, &scores, "after track");

            // P grows across shard boundaries.
            let new_ids = [1u32, 5, 6];
            store.on_positives_added(&new_ids, &idx, &scores);
            p.extend_from_slice(&new_ids);
            check(&store, &p, &scores, "after positives");

            // Sorted journal spanning several shards; one id inside P.
            let changes: Vec<(u32, f32, f32)> = vec![
                (2, scores[2], 0.9),
                (3, scores[3], 0.05),
                (5, scores[5], 0.7),
            ];
            for &(id, _, new) in &changes {
                if !p.contains(id) {
                    scores[id as usize] = new;
                }
            }
            store.on_scores_changed(&changes, &p, &idx);
            check(&store, &p, &scores, "after journal");

            // Full epoch.
            for (i, s) in scores.iter_mut().enumerate() {
                *s = (*s + 0.17 + i as f32 * 0.013).fract();
            }
            store.rebuild(&idx, &p, &scores, 4);
            check(&store, &p, &scores, "after rebuild");
        }
    }

    #[test]
    fn single_shard_is_full_span() {
        let (c, _) = setup();
        let store = ShardedBenefitStore::new(ShardMap::new(c.len(), 1));
        assert_eq!(store.shards(), 1);
        assert_eq!(store.parts()[0].span(), (0, u32::MAX));
    }

    #[test]
    fn retain_applies_to_all_partitions() {
        let (c, idx) = setup();
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        let p = IdSet::from_ids(&[0, 1], c.len());
        let scores = vec![0.5; c.len()];
        let mut store = ShardedBenefitStore::new(ShardMap::new(c.len(), 3));
        store.track(&rules, &idx, &p, &scores, 1);
        let keep = rules[0];
        store.retain(|r| r == keep);
        assert_eq!(store.len(), 1);
        assert!(store.contains(keep));
        assert!(store.benefit_of(rules[1]).is_none());
    }
}

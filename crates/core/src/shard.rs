//! The sharded benefit coordinator, generic over local and remote shards.
//!
//! [`ShardedBenefitStore`] partitions the corpus across `S` shard
//! partitions, one per contiguous id range of a [`darwin_index::ShardMap`].
//! Each partition maintains, for every tracked rule, the *fragment* of its
//! benefit aggregate contributed by the shard's slice of the rule's
//! coverage. A partition is one of two backends:
//!
//! * **local** — an in-memory [`BenefitStore`] (the pre-wire path, and the
//!   `S = 1` full-span reference);
//! * **remote** — a [`RemoteShard`]: the partition lives in a *worker*
//!   (another thread or another process) behind a
//!   [`darwin_wire::Transport`]. The coordinator ships deltas — new
//!   positives, score-journal runs, rule-tracking requests — as wire
//!   messages, and every mutating reply carries the fragments that
//!   changed, which the coordinator applies to a local *mirror*. Selection
//!   reads the mirror, so the read path costs no round-trips and the
//!   merged benefit is computed exactly as in the local case.
//!
//! The coordinator:
//!
//! * **routes deltas to owners** — a YES answer's new positive ids go to
//!   the shard that owns them ([`ShardedBenefitStore::on_positives_added`]),
//!   and an incremental re-score journal (sorted by id, the
//!   `ScoreCache::last_changes` invariant) is sliced into per-shard runs
//!   with two binary searches per shard
//!   ([`ShardedBenefitStore::on_scores_changed`]);
//! * **fans bulk work out across shards** — local partitions shard-parallel
//!   when `threads > 1`; remote partitions in shard order (each owns
//!   disjoint state, so order never changes results);
//! * **merges fragments exactly at read time** —
//!   [`ShardedBenefitStore::benefit_of`] sums the per-shard fragments in
//!   the fixed-point domain of [`crate::benefit::quantize`], where integer
//!   addition is associative, so the merged benefit is bit-identical to
//!   the single-store value for any shard count, any delta interleaving
//!   *and any backend* — fragments are integers on the wire, so transport
//!   changes nothing.
//!
//! **Failure discipline:** a wire failure during any mutating operation
//! *poisons* the coordinator: the error is returned (and kept — see
//! [`ShardedBenefitStore::wire_error`]), and every subsequent read answers
//! `None`, so selection can never act on a partially-merged state. The
//! engine aborts the run cleanly when it sees the poison; nothing panics.
//!
//! `S = 1` with local backing constructs one full-span [`BenefitStore`] —
//! the pre-shard reference path, byte for byte.

use crate::benefit::Benefit;
use crate::candidates::Candidate;
use crate::engine::{BenefitAgg, BenefitStore};
use darwin_index::fx::FxHashMap;
use darwin_index::{IdSet, IndexConfig, IndexSet, RuleRef, ShardMap};
use darwin_text::Corpus;
use darwin_wire::msg::{CorpusSlice, Request, Response, ScoredRule, Session, WireAgg};
use darwin_wire::{Transport, WireError};

/// Builds the transport to one shard worker: called once per shard with
/// the shard index and its id range.
pub type ShardConnector =
    dyn Fn(usize, std::ops::Range<u32>) -> Result<Box<dyn Transport>, WireError> + Send + Sync;

pub(crate) fn agg_from_wire(w: WireAgg) -> BenefitAgg {
    BenefitAgg {
        covered_pos: w.covered_pos as usize,
        new_instances: w.new_instances as usize,
        sum_q: w.sum_q,
    }
}

pub(crate) fn agg_to_wire(a: &BenefitAgg) -> WireAgg {
    WireAgg {
        covered_pos: a.covered_pos as u64,
        new_instances: a.new_instances as u64,
        sum_q: a.sum_q,
    }
}

/// Coordinator-side handle to a shard partition living in a worker behind
/// a [`Transport`]. Mutations are wire calls; reads hit the fragment
/// mirror the mutation replies keep up to date.
pub struct RemoteShard {
    session: Session,
    lo: u32,
    hi: u32,
    mirror: FxHashMap<RuleRef, BenefitAgg>,
}

impl RemoteShard {
    /// Handshake with the worker and stand up its partition: ships the
    /// full corpus (workers index it themselves — the heuristic index
    /// needs global postings), the index recipe, the owned span, and the
    /// current positives/scores of that span.
    pub fn connect(
        transport: Box<dyn Transport>,
        corpus: &Corpus,
        index_cfg: &IndexConfig,
        lo: u32,
        hi: u32,
        p: &IdSet,
        scores: &[f32],
    ) -> Result<RemoteShard, WireError> {
        let mut session = Session::new(transport);
        session.hello()?;
        let positives: Vec<u32> = p.iter().filter(|&id| lo <= id && id < hi).collect();
        let req = Request::ShardInit {
            corpus: CorpusSlice::full(corpus),
            index: index_cfg.clone(),
            lo,
            hi,
            positives,
            scores: scores[lo as usize..hi as usize].to_vec(),
        };
        match session.call(&req)? {
            Response::Ack => Ok(RemoteShard {
                session,
                lo,
                hi,
                mirror: FxHashMap::default(),
            }),
            other => Err(WireError::Protocol(format!(
                "shard init expected Ack, got {other:?}"
            ))),
        }
    }

    /// The owned id span `[lo, hi)`.
    pub fn span(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    /// Number of tracked (mirrored) rules.
    pub fn len(&self) -> usize {
        self.mirror.len()
    }

    /// Whether no rule is tracked.
    pub fn is_empty(&self) -> bool {
        self.mirror.is_empty()
    }

    /// Whether `r` has a mirrored fragment.
    pub fn contains(&self, r: RuleRef) -> bool {
        self.mirror.contains_key(&r)
    }

    /// The mirrored fragment for `r`, if tracked.
    pub fn agg(&self, r: RuleRef) -> Option<BenefitAgg> {
        self.mirror.get(&r).copied()
    }

    /// A mutating exchange: the worker applies the request and replies
    /// with the fragments it changed, which we fold into the mirror.
    fn mutate(&mut self, req: Request) -> Result<(), WireError> {
        match self.session.call(&req)? {
            Response::FragmentDeltas { changed } => {
                for (r, agg) in changed {
                    self.mirror.insert(r, agg_from_wire(agg));
                }
                Ok(())
            }
            Response::Ack => Ok(()),
            other => Err(WireError::Protocol(format!(
                "mutation expected FragmentDeltas/Ack, got {other:?}"
            ))),
        }
    }

    /// Track `rules` (the worker computes fragments for the missing ones).
    pub fn track(&mut self, rules: &[RuleRef]) -> Result<(), WireError> {
        self.mutate(Request::Track {
            rules: rules.to_vec(),
        })
    }

    /// Track freshly generated candidates, statistics attached.
    pub fn track_scored(&mut self, cands: &[Candidate]) -> Result<(), WireError> {
        let cands = cands
            .iter()
            .map(|c| ScoredRule {
                rule: c.rule,
                overlap: c.overlap as u64,
                count: c.count as u64,
            })
            .collect();
        self.mutate(Request::TrackScored { cands })
    }

    /// Full re-score epoch: ship the span's new scores, the worker
    /// rebuilds every fragment and replies with all of them.
    pub fn rebuild(&mut self, full_scores: &[f32]) -> Result<(), WireError> {
        self.mutate(Request::Rebuild {
            scores: full_scores[self.lo as usize..self.hi as usize].to_vec(),
        })
    }

    /// Drop fragments for rules not satisfying `keep`, on both sides.
    pub fn retain(&mut self, keep: impl Fn(RuleRef) -> bool) -> Result<(), WireError> {
        let mut kept: Vec<RuleRef> = self.mirror.keys().copied().filter(|&r| keep(r)).collect();
        kept.sort_unstable();
        match self.session.call(&Request::Retain { keep: kept })? {
            Response::Ack => {
                self.mirror.retain(|&r, _| keep(r));
                Ok(())
            }
            other => Err(WireError::Protocol(format!(
                "retain expected Ack, got {other:?}"
            ))),
        }
    }

    /// `P` grew by `ids` (all owned by this shard, pre-retrain scores
    /// still current on the worker).
    pub fn on_positives_added(&mut self, ids: &[u32]) -> Result<(), WireError> {
        debug_assert!(ids.iter().all(|&id| self.lo <= id && id < self.hi));
        self.mutate(Request::PositivesAdded { ids: ids.to_vec() })
    }

    /// Ship this shard's slice of an incremental score journal.
    pub fn on_scores_changed(&mut self, changes: &[(u32, f32, f32)]) -> Result<(), WireError> {
        self.mutate(Request::ScoresChanged {
            changes: changes.to_vec(),
        })
    }

    /// Audit the mirror against the worker's ground truth: fetch every
    /// mirrored rule's fragment and compare. `Ok(true)` means the mirror
    /// is exact.
    pub fn audit(&mut self) -> Result<bool, WireError> {
        let mut rules: Vec<RuleRef> = self.mirror.keys().copied().collect();
        rules.sort_unstable();
        match self.session.call(&Request::Fragments {
            rules: rules.clone(),
        })? {
            Response::Fragments { aggs } => {
                if aggs.len() != rules.len() {
                    return Ok(false);
                }
                Ok(rules
                    .iter()
                    .zip(aggs)
                    .all(|(r, a)| a.map(agg_from_wire) == self.mirror.get(r).copied()))
            }
            other => Err(WireError::Protocol(format!(
                "fragments expected Fragments, got {other:?}"
            ))),
        }
    }

    /// Orderly worker teardown (dropping the transport also works — the
    /// worker exits on disconnect — but this confirms delivery).
    pub fn shutdown(mut self) -> Result<(), WireError> {
        match self.session.call(&Request::Shutdown)? {
            Response::Ack => Ok(()),
            other => Err(WireError::Protocol(format!(
                "shutdown expected Ack, got {other:?}"
            ))),
        }
    }
}

/// One shard partition: in-memory, or mirrored from a worker.
enum Part {
    Local(BenefitStore),
    Remote(RemoteShard),
}

impl Part {
    fn agg(&self, r: RuleRef) -> Option<BenefitAgg> {
        match self {
            Part::Local(b) => b.agg(r).copied(),
            Part::Remote(w) => w.agg(r),
        }
    }

    fn len(&self) -> usize {
        match self {
            Part::Local(b) => b.len(),
            Part::Remote(w) => w.len(),
        }
    }

    fn contains(&self, r: RuleRef) -> bool {
        match self {
            Part::Local(b) => b.contains(r),
            Part::Remote(w) => w.contains(r),
        }
    }
}

/// Per-shard benefit partitions — local stores or remote workers — behind
/// one store-shaped facade.
pub struct ShardedBenefitStore {
    map: ShardMap,
    parts: Vec<Part>,
    poisoned: Option<WireError>,
}

impl ShardedBenefitStore {
    /// One in-memory partition per range of `map`. With one shard the
    /// single partition is a full-span [`BenefitStore`] — the unsharded
    /// reference path.
    pub fn new(map: ShardMap) -> ShardedBenefitStore {
        let parts = if map.shards() == 1 {
            vec![Part::Local(BenefitStore::new())]
        } else {
            map.ranges()
                .map(|r| Part::Local(BenefitStore::for_span(r.start, r.end)))
                .collect()
        };
        ShardedBenefitStore {
            map,
            parts,
            poisoned: None,
        }
    }

    /// One *remote* partition per range of `map`: `connect` builds the
    /// transport for each shard, and every worker is initialized with the
    /// corpus, the index recipe and the current `(P, scores)` state.
    pub fn connect_remote(
        map: ShardMap,
        corpus: &Corpus,
        index_cfg: &IndexConfig,
        p: &IdSet,
        scores: &[f32],
        connect: &ShardConnector,
    ) -> Result<ShardedBenefitStore, WireError> {
        let mut parts = Vec::with_capacity(map.shards());
        for (s, r) in map.ranges().enumerate() {
            let transport = connect(s, r.clone())?;
            parts.push(Part::Remote(RemoteShard::connect(
                transport, corpus, index_cfg, r.start, r.end, p, scores,
            )?));
        }
        Ok(ShardedBenefitStore {
            map,
            parts,
            poisoned: None,
        })
    }

    /// Number of shard partitions.
    pub fn shards(&self) -> usize {
        self.parts.len()
    }

    /// The id partition this store coordinates.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Whether any partition is remote (mirror-backed).
    pub fn is_remote(&self) -> bool {
        matches!(self.parts.first(), Some(Part::Remote(_)))
    }

    /// The wire failure that poisoned this coordinator, if any. Poisoned
    /// stores answer `None` to every read — partial merges are
    /// unrepresentable.
    pub fn wire_error(&self) -> Option<&WireError> {
        self.poisoned.as_ref()
    }

    /// The local shard partitions, in shard order (diagnostics, benches;
    /// empty when the partitions are remote).
    pub fn local_parts(&self) -> impl Iterator<Item = &BenefitStore> {
        self.parts.iter().filter_map(|p| match p {
            Part::Local(b) => Some(b),
            Part::Remote(_) => None,
        })
    }

    /// Number of tracked rules (every partition tracks the same set).
    pub fn len(&self) -> usize {
        self.parts[0].len()
    }

    /// Whether no rule is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `r` has tracked fragments.
    pub fn contains(&self, r: RuleRef) -> bool {
        self.poisoned.is_none() && self.parts[0].contains(r)
    }

    /// The merged aggregate for `r`: per-shard fragments summed in the
    /// fixed-point domain — bit-identical to a single full-span store.
    /// `None` when untracked or when the coordinator is poisoned.
    pub fn agg(&self, r: RuleRef) -> Option<BenefitAgg> {
        if self.poisoned.is_some() {
            return None;
        }
        let mut merged = BenefitAgg {
            covered_pos: 0,
            new_instances: 0,
            sum_q: 0,
        };
        for part in &self.parts {
            let frag = part.agg(r)?;
            merged.covered_pos += frag.covered_pos;
            merged.new_instances += frag.new_instances;
            merged.sum_q += frag.sum_q;
        }
        Some(merged)
    }

    /// The merged benefit for `r`, if tracked (what selection reads).
    pub fn benefit_of(&self, r: RuleRef) -> Option<Benefit> {
        self.agg(r).map(|a| a.benefit())
    }

    /// Run a fallible mutation under the poison discipline: refuse if
    /// already poisoned, poison on first failure.
    fn guarded(
        &mut self,
        f: impl FnOnce(&mut Vec<Part>) -> Result<(), WireError>,
    ) -> Result<(), WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match f(&mut self.parts) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Ensure every rule in `rules` has a fragment in every partition
    /// (shard-parallel when local and `threads > 1`).
    pub fn track(
        &mut self,
        rules: &[RuleRef],
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        threads: usize,
    ) -> Result<(), WireError> {
        if self.is_remote() {
            return self.guarded(|parts| {
                for part in parts {
                    if let Part::Remote(w) = part {
                        w.track(rules)?;
                    }
                }
                Ok(())
            });
        }
        self.for_each_local(threads, |part, intra_threads| {
            part.track(rules.iter().copied(), index, p, scores, intra_threads)
        });
        Ok(())
    }

    /// [`ShardedBenefitStore::track`] for freshly generated candidates,
    /// seeding fragments from the search statistics (see
    /// [`BenefitStore::track_scored`]).
    pub fn track_scored(
        &mut self,
        cands: &[Candidate],
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        threads: usize,
    ) -> Result<(), WireError> {
        if self.is_remote() {
            return self.guarded(|parts| {
                for part in parts {
                    if let Part::Remote(w) = part {
                        w.track_scored(cands)?;
                    }
                }
                Ok(())
            });
        }
        self.for_each_local(threads, |part, intra_threads| {
            part.track_scored(cands, index, p, scores, intra_threads)
        });
        Ok(())
    }

    /// Recompute every fragment from scratch after a full re-score epoch
    /// (shard-parallel when local and `threads > 1`; remote workers
    /// receive their span's new scores and rebuild on their side).
    pub fn rebuild(
        &mut self,
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        threads: usize,
    ) -> Result<(), WireError> {
        if self.is_remote() {
            return self.guarded(|parts| {
                for part in parts {
                    if let Part::Remote(w) = part {
                        w.rebuild(scores)?;
                    }
                }
                Ok(())
            });
        }
        self.for_each_local(threads, |part, intra_threads| {
            part.rebuild(index, p, scores, intra_threads)
        });
        Ok(())
    }

    /// Drop fragments for rules not satisfying `keep`, in every partition.
    pub fn retain(&mut self, keep: impl Fn(RuleRef) -> bool + Sync) -> Result<(), WireError> {
        if self.is_remote() {
            return self.guarded(|parts| {
                for part in parts {
                    if let Part::Remote(w) = part {
                        w.retain(&keep)?;
                    }
                }
                Ok(())
            });
        }
        for part in &mut self.parts {
            if let Part::Local(b) = part {
                b.retain(&keep);
            }
        }
        Ok(())
    }

    /// Route each new positive id to its owning shard's partition (the
    /// partition walks the inverted postings for the id). Must be called
    /// with pre-retrain scores, like [`BenefitStore::on_positives_added`].
    pub fn on_positives_added(
        &mut self,
        new_ids: &[u32],
        index: &IndexSet,
        scores: &[f32],
    ) -> Result<(), WireError> {
        if self.is_remote() {
            let map = self.map.clone();
            return self.guarded(|parts| {
                for (s, part) in parts.iter_mut().enumerate() {
                    let r = map.range(s);
                    let run: Vec<u32> = new_ids
                        .iter()
                        .copied()
                        .filter(|&id| r.start <= id && id < r.end)
                        .collect();
                    if run.is_empty() {
                        continue;
                    }
                    if let Part::Remote(w) = part {
                        w.on_positives_added(&run)?;
                    }
                }
                Ok(())
            });
        }
        if self.parts.len() == 1 {
            if let Part::Local(b) = &mut self.parts[0] {
                b.on_positives_added(new_ids, index, scores);
            }
            return Ok(());
        }
        for &id in new_ids {
            if let Part::Local(b) = &mut self.parts[self.map.owner(id)] {
                b.on_positives_added(&[id], index, scores);
            }
        }
        Ok(())
    }

    /// Slice an id-sorted change journal into per-shard runs and patch each
    /// owning partition with its run.
    pub fn on_scores_changed(
        &mut self,
        changes: &[(u32, f32, f32)],
        p: &IdSet,
        index: &IndexSet,
    ) -> Result<(), WireError> {
        debug_assert!(
            changes.windows(2).all(|w| w[0].0 <= w[1].0),
            "change journal must be sorted by id"
        );
        if self.is_remote() {
            let map = self.map.clone();
            return self.guarded(|parts| {
                for (s, part) in parts.iter_mut().enumerate() {
                    let r = map.range(s);
                    let a = changes.partition_point(|&(id, _, _)| id < r.start);
                    let b = changes.partition_point(|&(id, _, _)| id < r.end);
                    if a == b {
                        continue;
                    }
                    if let Part::Remote(w) = part {
                        w.on_scores_changed(&changes[a..b])?;
                    }
                }
                Ok(())
            });
        }
        if self.parts.len() == 1 {
            if let Part::Local(b) = &mut self.parts[0] {
                b.on_scores_changed(changes, p, index);
            }
            return Ok(());
        }
        for (s, part) in self.parts.iter_mut().enumerate() {
            let r = self.map.range(s);
            let a = changes.partition_point(|&(id, _, _)| id < r.start);
            let b = changes.partition_point(|&(id, _, _)| id < r.end);
            if let Part::Local(store) = part {
                store.on_scores_changed(&changes[a..b], p, index);
            }
        }
        Ok(())
    }

    /// Audit every remote mirror against its worker's ground truth
    /// (`Ok(true)` when all mirrors are exact; trivially true for local
    /// partitions).
    pub fn audit_remote(&mut self) -> Result<bool, WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        for part in &mut self.parts {
            if let Part::Remote(w) = part {
                if !w.audit()? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Tear down remote workers in an orderly fashion (no-op for local
    /// partitions). Dropping the store also works — workers exit on
    /// disconnect.
    pub fn shutdown(self) -> Result<(), WireError> {
        for part in self.parts {
            if let Part::Remote(w) = part {
                w.shutdown()?;
            }
        }
        Ok(())
    }

    /// Run `op` over every local partition — shard-parallel when
    /// `threads > 1` and there is more than one shard (each worker owns
    /// disjoint partitions, so order and results are deterministic); a
    /// single full-span partition instead gets the whole thread budget for
    /// its intra-store chunking.
    fn for_each_local(
        &mut self,
        threads: usize,
        op: impl Fn(&mut BenefitStore, usize) + Sync + Send,
    ) {
        let mut slots: Vec<&mut BenefitStore> = self
            .parts
            .iter_mut()
            .filter_map(|p| match p {
                Part::Local(b) => Some(b),
                Part::Remote(_) => None,
            })
            .collect();
        if slots.len() == 1 {
            return op(slots[0], threads);
        }
        if threads > 1 {
            use rayon::prelude::*;
            // One chunk of shards per configured worker, same bounding
            // idiom as the engine's batch computation. Leftover width
            // (threads > shards) is handed to each group as its
            // intra-store chunking budget, so few-shard configurations
            // keep the full thread budget of the unsharded path.
            let chunk = slots.len().div_ceil(threads);
            let groups = slots.len().div_ceil(chunk);
            let intra = (threads / groups).max(1);
            slots.par_chunks_mut(chunk).for_each(|group| {
                for part in group.iter_mut() {
                    op(part, intra);
                }
            });
        } else {
            for part in slots {
                op(part, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::benefit;
    use darwin_index::{IndexConfig, IndexSet};
    use darwin_text::Corpus;

    fn setup() -> (Corpus, IndexSet) {
        let c = Corpus::from_texts([
            "the shuttle to the airport leaves hourly",
            "is there a shuttle to the airport tonight",
            "a bus to the airport runs daily",
            "order pizza to the room please",
            "the pool opens at nine daily",
            "is there a bus downtown tonight",
            "the shuttle downtown is free",
        ]);
        let idx = IndexSet::build(&c, &IndexConfig::small());
        (c, idx)
    }

    /// Merged fragments equal the global benefit for every shard count,
    /// through tracking, positive deltas, journal patches and rebuilds.
    #[test]
    fn merge_is_exact_for_every_shard_count() {
        let (c, idx) = setup();
        let n = c.len();
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        for shards in [1usize, 2, 3, 4, 7] {
            let mut p = IdSet::from_ids(&[0], n);
            let mut scores: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).fract()).collect();
            let mut store = ShardedBenefitStore::new(ShardMap::new(n, shards));
            store.track(&rules, &idx, &p, &scores, 1).unwrap();

            let check = |store: &ShardedBenefitStore, p: &IdSet, scores: &[f32], label: &str| {
                for &r in &rules {
                    assert_eq!(
                        store.benefit_of(r).unwrap(),
                        benefit(idx.coverage(r), p, scores),
                        "S={shards} {label}: rule {:?}",
                        idx.heuristic(r)
                    );
                }
            };
            check(&store, &p, &scores, "after track");

            // P grows across shard boundaries.
            let new_ids = [1u32, 5, 6];
            store.on_positives_added(&new_ids, &idx, &scores).unwrap();
            p.extend_from_slice(&new_ids);
            check(&store, &p, &scores, "after positives");

            // Sorted journal spanning several shards; one id inside P.
            let changes: Vec<(u32, f32, f32)> = vec![
                (2, scores[2], 0.9),
                (3, scores[3], 0.05),
                (5, scores[5], 0.7),
            ];
            for &(id, _, new) in &changes {
                if !p.contains(id) {
                    scores[id as usize] = new;
                }
            }
            store.on_scores_changed(&changes, &p, &idx).unwrap();
            check(&store, &p, &scores, "after journal");

            // Full epoch.
            for (i, s) in scores.iter_mut().enumerate() {
                *s = (*s + 0.17 + i as f32 * 0.013).fract();
            }
            store.rebuild(&idx, &p, &scores, 4).unwrap();
            check(&store, &p, &scores, "after rebuild");
        }
    }

    #[test]
    fn single_shard_is_full_span() {
        let (c, _) = setup();
        let store = ShardedBenefitStore::new(ShardMap::new(c.len(), 1));
        assert_eq!(store.shards(), 1);
        assert!(!store.is_remote());
        assert_eq!(store.local_parts().next().unwrap().span(), (0, u32::MAX));
    }

    #[test]
    fn retain_applies_to_all_partitions() {
        let (c, idx) = setup();
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        let p = IdSet::from_ids(&[0, 1], c.len());
        let scores = vec![0.5; c.len()];
        let mut store = ShardedBenefitStore::new(ShardMap::new(c.len(), 3));
        store.track(&rules, &idx, &p, &scores, 1).unwrap();
        let keep = rules[0];
        store.retain(|r| r == keep).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.contains(keep));
        assert!(store.benefit_of(rules[1]).is_none());
    }

    /// A dead transport must surface as a clean error and poison the
    /// coordinator — reads answer `None`, further mutations refuse.
    #[test]
    fn dead_transport_poisons_cleanly() {
        let (c, idx) = setup();
        let p = IdSet::from_ids(&[0], c.len());
        let scores = vec![0.5; c.len()];
        let map = ShardMap::new(c.len(), 2);
        let connect: Box<ShardConnector> =
            Box::new(|_, _| Ok(Box::new(darwin_wire::DeadTransport)));
        let err = match ShardedBenefitStore::connect_remote(
            map,
            &c,
            &IndexConfig::small(),
            &p,
            &scores,
            &*connect,
        ) {
            Err(e) => e,
            Ok(_) => panic!("connecting through a dead transport must fail"),
        };
        assert_eq!(err, WireError::Disconnected);
        let _ = idx; // connection dies before the index matters
    }
}

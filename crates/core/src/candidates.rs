//! Candidate-heuristic generation (paper Algorithm 2).
//!
//! Greedy best-first search over the index: start from the `*` root, pop
//! the candidate with the highest coverage over the discovered positives
//! `P`, add its children to the frontier, repeat until `k` heuristics are
//! collected. Subtrees with zero overlap with `P` are never expanded —
//! that pruning is what keeps the exponential TreeMatch space tractable.

use crate::hierarchy::Hierarchy;
use darwin_index::{IdSet, IndexSet, RuleRef};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct Entry {
    overlap: usize,
    /// Tie-break on total coverage: on equal overlap with `P`, prefer the
    /// *tighter* rule (fewer total matches ⇒ higher expected precision),
    /// then the rule handle for determinism.
    count: usize,
    rule: RuleRef,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.overlap
            .cmp(&other.overlap)
            .then(other.count.cmp(&self.count))
            .then_with(|| other.rule.cmp(&self.rule))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A generated candidate with the statistics best-first search already
/// computed for it (`overlap` = `|C_r ∩ P|`, `count` = `|C_r|`). The
/// §3.2.1 hierarchy cleanup decides from these instead of rescanning
/// coverage, and the engine seeds its benefit aggregates from them too
/// (`BenefitStore::track_scored` takes the counts as given instead of
/// re-deriving them with a per-posting membership scan).
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    pub rule: RuleRef,
    pub overlap: usize,
    pub count: usize,
}

/// Generate up to `k` candidate heuristics with high coverage over `p`
/// (Algorithm 2), with their search statistics. The returned list is in
/// pop order (best first) and never contains the root. Rules covering more
/// than `max_count` sentences are skipped (their subtrees are still
/// explored — children are tighter).
pub fn generate_scored(index: &IndexSet, p: &IdSet, k: usize, max_count: usize) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(k.min(1024));
    let mut heap = BinaryHeap::new();
    let mut seen: darwin_index::fx::FxHashSet<RuleRef> = Default::default();

    let push_children = |rule: RuleRef,
                         heap: &mut BinaryHeap<Entry>,
                         seen: &mut darwin_index::fx::FxHashSet<RuleRef>| {
        for child in index.children(rule) {
            if !seen.insert(child) {
                continue;
            }
            let postings = index.coverage(child);
            let overlap = p.count_in(postings);
            if overlap == 0 {
                continue; // zero overlap ⇒ the whole subtree is useless
            }
            heap.push(Entry {
                overlap,
                count: postings.len(),
                rule: child,
            });
        }
    };

    push_children(RuleRef::Root, &mut heap, &mut seen);
    while out.len() < k {
        let Some(best) = heap.pop() else { break };
        // Over-broad rules are expanded (children may qualify) but not
        // offered as candidates themselves.
        if best.count <= max_count {
            out.push(Candidate {
                rule: best.rule,
                overlap: best.overlap,
                count: best.count,
            });
        }
        push_children(best.rule, &mut heap, &mut seen);
    }
    out
}

/// [`generate_scored`] stripped to the rule handles.
pub fn generate(index: &IndexSet, p: &IdSet, k: usize, max_count: usize) -> Vec<RuleRef> {
    generate_scored(index, p, k, max_count)
        .into_iter()
        .map(|c| c.rule)
        .collect()
}

/// Generate candidates and arrange them into a [`Hierarchy`], applying the
/// cleanup of §3.2.1: candidates whose coverage adds no new positive
/// sentences beyond `p` are dropped (decided from the search's own
/// statistics — no second coverage scan). Returns the surviving candidates
/// alongside the hierarchy, in pool order, so the engine can seed benefit
/// aggregates from the same statistics.
pub fn generate_hierarchy_scored(
    index: &IndexSet,
    p: &IdSet,
    k: usize,
    max_count: usize,
) -> (Hierarchy, Vec<Candidate>) {
    let cleaned: Vec<Candidate> = generate_scored(index, p, k, max_count)
        .into_iter()
        .filter(|c| c.count > c.overlap)
        .collect();
    let rules: Vec<RuleRef> = cleaned.iter().map(|c| c.rule).collect();
    (Hierarchy::new(index, rules), cleaned)
}

/// [`generate_hierarchy_scored`] stripped to the hierarchy.
pub fn generate_hierarchy(index: &IndexSet, p: &IdSet, k: usize, max_count: usize) -> Hierarchy {
    generate_hierarchy_scored(index, p, k, max_count).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_grammar::Heuristic;
    use darwin_index::IndexConfig;
    use darwin_text::Corpus;

    fn setup() -> (Corpus, IndexSet) {
        let texts = [
            "the shuttle to the airport leaves hourly",
            "is there a shuttle to the airport tonight",
            "the shuttle to downtown is free",
            "order a pizza to the room",
            "the pool opens at nine",
            "is there a bus to the airport",
        ];
        let c = Corpus::from_texts(texts);
        let idx = IndexSet::build(&c, &IndexConfig::small());
        (c, idx)
    }

    #[test]
    fn candidates_overlap_positives() {
        let (c, idx) = setup();
        // Positives: the two airport-shuttle sentences.
        let p = IdSet::from_ids(&[0, 1], c.len());
        let cands = generate(&idx, &p, 50, usize::MAX);
        assert!(!cands.is_empty());
        for &r in &cands {
            assert!(
                p.count_in(idx.coverage(r)) > 0,
                "{:?}",
                idx.heuristic(r).display(c.vocab())
            );
        }
        // "shuttle" ranks near the top (overlap 2; bare "the" has overlap 2
        // as well but that's fine — both cover P).
        let shuttle = idx
            .resolve(&Heuristic::phrase(&c, "shuttle").unwrap())
            .unwrap();
        assert!(cands.contains(&shuttle));
    }

    #[test]
    fn best_first_order_is_nonincreasing_overlap() {
        let (c, idx) = setup();
        let p = IdSet::from_ids(&[0, 1, 2], c.len());
        let cands = generate(&idx, &p, 100, usize::MAX);
        // Because children are only injected after their parent pops, the
        // sequence isn't globally sorted; but the first candidate must have
        // the maximum overlap among all root children.
        let first_overlap = p.count_in(idx.coverage(cands[0]));
        assert_eq!(
            first_overlap, 3,
            "a unigram covering all three positives pops first"
        );
    }

    #[test]
    fn respects_k() {
        let (c, idx) = setup();
        let p = IdSet::from_ids(&[0, 1, 2], c.len());
        assert!(generate(&idx, &p, 5, usize::MAX).len() <= 5);
        let all = generate(&idx, &p, 10_000, usize::MAX);
        assert!(all.len() < 10_000, "pool exhausts on a tiny corpus");
    }

    #[test]
    fn empty_p_yields_nothing() {
        let (c, idx) = setup();
        let p = IdSet::with_universe(c.len());
        assert!(generate(&idx, &p, 10, usize::MAX).is_empty());
    }

    #[test]
    fn cleanup_drops_fully_covered_rules() {
        let (c, idx) = setup();
        // All shuttle sentences already positive: rules covering only them
        // add nothing and must be cleaned; "airport" still adds sentence 5.
        let p = IdSet::from_ids(&[0, 1, 2], c.len());
        let h = generate_hierarchy(&idx, &p, 200, usize::MAX);
        let shuttle = idx
            .resolve(&Heuristic::phrase(&c, "shuttle").unwrap())
            .unwrap();
        assert!(!h.contains(shuttle), "'shuttle' adds no new positives");
        let airport = idx
            .resolve(&Heuristic::phrase(&c, "airport").unwrap())
            .unwrap();
        assert!(h.contains(airport), "'airport' still adds sentence 5");
    }
}

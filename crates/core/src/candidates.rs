//! Candidate-heuristic generation (paper Algorithm 2).
//!
//! Greedy best-first search over the index: start from the `*` root, pop
//! the candidate with the highest coverage over the discovered positives
//! `P`, add its children to the frontier, repeat until `k` heuristics are
//! collected. Subtrees with zero overlap with `P` are never expanded —
//! that pruning is what keeps the exponential TreeMatch space tractable.

use crate::frontier::FrontierPool;
use crate::hierarchy::Hierarchy;
use darwin_index::{IdSet, IndexSet, RuleRef};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry with its whole priority packed into one `u128` — a single
/// integer compare per sift step instead of a three-field lexicographic
/// chain (the walk is heap-bound once posting scans are memoized).
///
/// Layout (high → low): `overlap` ascending, then `!count` (on equal
/// overlap with `P`, prefer the *tighter* rule — fewer total matches ⇒
/// higher expected precision), then `!dense_id` (prefer the smaller rule
/// handle, for determinism; the dense numbering orders exactly like
/// [`RuleRef`]'s derived `Ord`, phrases before trees).
#[derive(PartialEq, Eq)]
struct Entry {
    key: u128,
    rule: RuleRef,
}

impl Entry {
    fn new(overlap: usize, count: usize, dense: u32, rule: RuleRef) -> Entry {
        let key = ((overlap as u128) << 64) | ((!(count as u32) as u128) << 32) | !dense as u128;
        Entry { key, rule }
    }

    fn overlap(&self) -> usize {
        (self.key >> 64) as usize
    }

    fn count(&self) -> usize {
        !((self.key >> 32) as u32) as usize
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A generated candidate with the statistics best-first search already
/// computed for it (`overlap` = `|C_r ∩ P|`, `count` = `|C_r|`). The
/// §3.2.1 hierarchy cleanup decides from these instead of rescanning
/// coverage, and the engine seeds its benefit aggregates from them too
/// (`BenefitStore::track_scored` takes the counts as given instead of
/// re-deriving them with a per-posting membership scan).
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The generated rule's index handle.
    pub rule: RuleRef,
    /// `|C_r ∩ P|` at generation time.
    pub overlap: usize,
    /// `|C_r|` — the rule's total coverage.
    pub count: usize,
}

/// What the best-first walk asks of its backing state — how nodes are
/// visited and how they expand. [`generate_scored`] answers from the index
/// directly (bitset seen-set, posting scan per node, derivation edges); a
/// [`FrontierPool`] answers from memoized statistics and cached adjacency.
/// One trait with both methods (rather than two closures) because the
/// incremental source backs both out of the same mutable tables.
pub(crate) trait WalkSource {
    /// Visit `r`: `None` when it was already reached in *this* walk (the
    /// expansion's seen-set), its `(overlap, count, dense_id)` statistics
    /// otherwise.
    fn visit(&mut self, r: RuleRef) -> Option<(usize, usize, u32)>;
    /// Append the one-step specializations of `rule` to `buf` (the walk
    /// clears it), in the index's child order.
    fn expand(&mut self, rule: RuleRef, buf: &mut Vec<RuleRef>);
}

/// The best-first expansion of Algorithm 2 over a [`WalkSource`]. Keeping
/// the control flow in one place is what makes the incremental path
/// *structurally* trace-equivalent to the full walk: the two differ only
/// in where the (identical) numbers come from.
pub(crate) fn best_first_walk<S: WalkSource>(
    k: usize,
    max_count: usize,
    src: &mut S,
) -> Vec<Candidate> {
    fn push_children<S: WalkSource>(
        rule: RuleRef,
        heap: &mut BinaryHeap<Entry>,
        buf: &mut Vec<RuleRef>,
        src: &mut S,
    ) {
        buf.clear();
        src.expand(rule, buf);
        for &child in buf.iter() {
            let Some((overlap, count, dense)) = src.visit(child) else {
                continue; // already reached in this walk
            };
            if overlap == 0 {
                continue; // zero overlap ⇒ the whole subtree is useless
            }
            heap.push(Entry::new(overlap, count, dense, child));
        }
    }

    let mut out = Vec::with_capacity(k.min(1024));
    let mut heap = BinaryHeap::new();
    let mut buf: Vec<RuleRef> = Vec::new();

    push_children(RuleRef::Root, &mut heap, &mut buf, src);
    while out.len() < k {
        let Some(best) = heap.pop() else { break };
        // Over-broad rules are expanded (children may qualify) but not
        // offered as candidates themselves.
        if best.count() <= max_count {
            out.push(Candidate {
                rule: best.rule,
                overlap: best.overlap(),
                count: best.count(),
            });
        }
        push_children(best.rule, &mut heap, &mut buf, src);
    }
    out
}

/// The from-scratch [`WalkSource`]: a bitset seen-set over the dense rule
/// numbering and a posting scan per visited node.
struct ScratchSource<'a> {
    index: &'a IndexSet,
    p: &'a IdSet,
    seen: IdSet,
}

impl WalkSource for ScratchSource<'_> {
    fn visit(&mut self, r: RuleRef) -> Option<(usize, usize, u32)> {
        let dense = self.index.dense_id(r);
        if !self.seen.insert(dense) {
            return None;
        }
        let postings = self.index.coverage(r);
        Some((self.p.count_in(postings), postings.len(), dense))
    }

    fn expand(&mut self, rule: RuleRef, buf: &mut Vec<RuleRef>) {
        self.index.for_each_child(rule, |c| buf.push(c));
    }
}

/// Generate up to `k` candidate heuristics with high coverage over `p`
/// (Algorithm 2), with their search statistics. The returned list is in
/// pop order (best first) and never contains the root. Rules covering more
/// than `max_count` sentences are skipped (their subtrees are still
/// explored — children are tighter).
pub fn generate_scored(index: &IndexSet, p: &IdSet, k: usize, max_count: usize) -> Vec<Candidate> {
    let mut src = ScratchSource {
        index,
        p,
        seen: IdSet::with_universe(index.dense_rules()),
    };
    best_first_walk(k, max_count, &mut src)
}

/// [`generate_scored`] stripped to the rule handles.
pub fn generate(index: &IndexSet, p: &IdSet, k: usize, max_count: usize) -> Vec<RuleRef> {
    generate_scored(index, p, k, max_count)
        .into_iter()
        .map(|c| c.rule)
        .collect()
}

/// Generate candidates and arrange them into a [`Hierarchy`], applying the
/// cleanup of §3.2.1: candidates whose coverage adds no new positive
/// sentences beyond `p` are dropped (decided from the search's own
/// statistics — no second coverage scan). Returns the surviving candidates
/// alongside the hierarchy, in pool order, so the engine can seed benefit
/// aggregates from the same statistics.
pub fn generate_hierarchy_scored(
    index: &IndexSet,
    p: &IdSet,
    k: usize,
    max_count: usize,
) -> (Hierarchy, Vec<Candidate>) {
    finish_hierarchy(index, generate_scored(index, p, k, max_count))
}

/// [`generate_hierarchy_scored`] driven by a persistent [`FrontierPool`]
/// instead of a from-scratch walk: the pool replays the best-first
/// expansion from its memoized per-rule statistics (kept exact across YES
/// answers by [`FrontierPool::note_positives`] deltas), paying posting
/// scans only for rules the frontier reaches for the first time. Output is
/// byte-for-byte identical to the from-scratch variant.
pub fn generate_hierarchy_pooled(
    index: &IndexSet,
    p: &IdSet,
    k: usize,
    max_count: usize,
    pool: &mut FrontierPool,
) -> (Hierarchy, Vec<Candidate>) {
    finish_hierarchy(index, pool.generate_scored(index, p, k, max_count))
}

/// The §3.2.1 cleanup + hierarchy assembly shared by the full-walk and
/// frontier-pooled regeneration paths.
fn finish_hierarchy(index: &IndexSet, cands: Vec<Candidate>) -> (Hierarchy, Vec<Candidate>) {
    let cleaned: Vec<Candidate> = cands.into_iter().filter(|c| c.count > c.overlap).collect();
    let rules: Vec<RuleRef> = cleaned.iter().map(|c| c.rule).collect();
    (Hierarchy::new(index, rules), cleaned)
}

/// [`generate_hierarchy_scored`] stripped to the hierarchy.
pub fn generate_hierarchy(index: &IndexSet, p: &IdSet, k: usize, max_count: usize) -> Hierarchy {
    generate_hierarchy_scored(index, p, k, max_count).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_grammar::Heuristic;
    use darwin_index::IndexConfig;
    use darwin_text::Corpus;

    fn setup() -> (Corpus, IndexSet) {
        let texts = [
            "the shuttle to the airport leaves hourly",
            "is there a shuttle to the airport tonight",
            "the shuttle to downtown is free",
            "order a pizza to the room",
            "the pool opens at nine",
            "is there a bus to the airport",
        ];
        let c = Corpus::from_texts(texts);
        let idx = IndexSet::build(&c, &IndexConfig::small());
        (c, idx)
    }

    #[test]
    fn candidates_overlap_positives() {
        let (c, idx) = setup();
        // Positives: the two airport-shuttle sentences.
        let p = IdSet::from_ids(&[0, 1], c.len());
        let cands = generate(&idx, &p, 50, usize::MAX);
        assert!(!cands.is_empty());
        for &r in &cands {
            assert!(
                p.count_in(idx.coverage(r)) > 0,
                "{:?}",
                idx.heuristic(r).display(c.vocab())
            );
        }
        // "shuttle" ranks near the top (overlap 2; bare "the" has overlap 2
        // as well but that's fine — both cover P).
        let shuttle = idx
            .resolve(&Heuristic::phrase(&c, "shuttle").unwrap())
            .unwrap();
        assert!(cands.contains(&shuttle));
    }

    #[test]
    fn best_first_order_is_nonincreasing_overlap() {
        let (c, idx) = setup();
        let p = IdSet::from_ids(&[0, 1, 2], c.len());
        let cands = generate(&idx, &p, 100, usize::MAX);
        // Because children are only injected after their parent pops, the
        // sequence isn't globally sorted; but the first candidate must have
        // the maximum overlap among all root children.
        let first_overlap = p.count_in(idx.coverage(cands[0]));
        assert_eq!(
            first_overlap, 3,
            "a unigram covering all three positives pops first"
        );
    }

    #[test]
    fn respects_k() {
        let (c, idx) = setup();
        let p = IdSet::from_ids(&[0, 1, 2], c.len());
        assert!(generate(&idx, &p, 5, usize::MAX).len() <= 5);
        let all = generate(&idx, &p, 10_000, usize::MAX);
        assert!(all.len() < 10_000, "pool exhausts on a tiny corpus");
    }

    #[test]
    fn empty_p_yields_nothing() {
        let (c, idx) = setup();
        let p = IdSet::with_universe(c.len());
        assert!(generate(&idx, &p, 10, usize::MAX).is_empty());
    }

    #[test]
    fn cleanup_drops_fully_covered_rules() {
        let (c, idx) = setup();
        // All shuttle sentences already positive: rules covering only them
        // add nothing and must be cleaned; "airport" still adds sentence 5.
        let p = IdSet::from_ids(&[0, 1, 2], c.len());
        let h = generate_hierarchy(&idx, &p, 200, usize::MAX);
        let shuttle = idx
            .resolve(&Heuristic::phrase(&c, "shuttle").unwrap())
            .unwrap();
        assert!(!h.contains(shuttle), "'shuttle' adds no new positives");
        let airport = idx
            .resolve(&Heuristic::phrase(&c, "airport").unwrap())
            .unwrap();
        assert!(h.contains(airport), "'airport' still adds sentence 5");
    }
}

//! The Darwin adaptive rule discovery system (paper §3).
//!
//! Given an analyzed corpus, a heuristic index and a seed (one labeling
//! rule or a couple of positive sentences), Darwin iteratively:
//!
//! 1. generates a manageable pool of promising candidate heuristics from
//!    the index, organized by subset/superset structure
//!    ([`candidates`], Algorithm 2; [`hierarchy`]) — regenerated after
//!    every YES from a persistent candidate frontier ([`frontier`]) that
//!    re-scores only the entries the new positives touch, instead of
//!    re-walking the index from the root,
//! 2. selects the next heuristic to verify using a traversal strategy —
//!    [`traversal::LocalSearch`], [`traversal::UniversalSearch`] or
//!    [`traversal::HybridSearch`] (Algorithms 3–5), guided by a *benefit*
//!    score computed from a classifier trained on the positives found so
//!    far ([`benefit`]) and maintained incrementally by the [`engine`]
//!    (per-rule aggregates patched by delta as `P` grows and scores move,
//!    instead of a per-question rescan of every candidate's coverage) —
//!    partitioned across corpus shards and merged exactly at selection
//!    time when [`DarwinConfig::shards`] > 1 ([`shard`]),
//! 3. asks the [`oracle::Oracle`] a YES/NO question about the selected
//!    heuristic — or, against a slow (human/crowd) oracle, *submits* it
//!    through the [`oracle::AsyncOracle`] split and keeps a wave of
//!    further diverse questions in flight while answers are outstanding
//!    ([`batch`], with §4.3 crowd-cost accounting), and
//! 4. on YES, grows the positive set, retrains the classifier and updates
//!    all scores ([`pipeline`], Algorithm 1 — the loop itself is
//!    [`engine::Engine::step`], shared by the sequential, parallel and
//!    baseline runners; the async loop applies answers out of order
//!    through the same machinery and retrains once per drained wave).
//!
//! The output is the accepted rule set, the discovered positives, the
//! trained classifier scores, and a per-question trace from which the
//! evaluation reconstructs coverage/F-score curves.

#![warn(missing_docs)]

pub mod batch;
pub mod benefit;
pub mod candidates;
pub mod config;
pub mod engine;
pub mod frontier;
pub mod hierarchy;
pub mod oracle;
pub mod parallel;
pub mod pipeline;
pub mod remote;
pub mod shard;
pub mod snapshot;
pub mod stream;
pub mod traversal;

pub use batch::{
    AdaptiveBatcher, AsyncReport, AsyncRunResult, BatchPolicy, CostModel, CrowdCost,
    ScriptedArrival, SessionOutcome, SimulatedLatency,
};
pub use config::{DarwinConfig, Fanout, TraversalKind};
pub use engine::{BenefitAgg, BenefitStore, Engine, EngineFlavor, EngineParts, EngineState};
pub use frontier::{FrontierImage, FrontierPool, FrontierStats};
pub use oracle::{
    AsyncOracle, GroundTruthOracle, Immediate, Oracle, QuestionId, SampledAnnotatorOracle,
};
pub use parallel::{select_diverse_batch, MajorityOracle};
pub use pipeline::{Darwin, RemoteShards, RunResult, Seed, TraceStep};
pub use remote::{
    inproc_shard_connector, inproc_wire_classifier, inproc_wire_oracle, serve_classifier,
    serve_oracle, serve_shard, WireClassifier, WireOracle,
};
pub use shard::{RemoteShard, ShardConnector, ShardedBenefitStore};
pub use snapshot::{SessionCounters, Snapshot, SnapshotError};
pub use stream::{AppendMode, StreamSession, StreamStatus};
pub use traversal::{Strategy, StrategyState};

//! The incremental question-loop engine.
//!
//! Algorithm 1's loop used to live three times in this crate — once in
//! [`crate::pipeline`], once in [`crate::parallel`], and implicitly under
//! every baseline selector — and each copy recomputed `benefit()` over
//! every candidate's full coverage on every oracle question, an
//! O(|rules| × |coverage|) rescan. This module is the single shared loop,
//! and it maintains per-rule benefit aggregates *by delta*:
//!
//! * when `P` gains sentence ids, only the rules covering those ids (found
//!   via [`IndexSet::rules_covering`], the inverted postings) change
//!   benefit — each loses the ids' score contributions;
//! * when the classifier re-scores a few sentences incrementally, the
//!   `(id, old, new)` journal from [`ScoreCache::last_changes`] patches the
//!   same way;
//! * when the classifier does a *full* re-score ([`ScoreCache::epoch`]
//!   bumps), sums are rebuilt from scratch — in parallel when
//!   [`crate::DarwinConfig::threads`] > 1.
//!
//! With [`crate::DarwinConfig::shards`] > 1 the engine is a *coordinator*:
//! aggregates are partitioned into per-shard [`BenefitStore`]s (one per
//! contiguous id range), deltas route to the shard owning the sentence,
//! and selection reads fragments merged by [`ShardedBenefitStore`] — see
//! [`crate::shard`] for why the merge is exact.
//!
//! Selection then reads cached aggregates — O(|rules| · shards) per
//! question instead of O(|rules| × |coverage|). Because sums are kept in
//! the fixed-point domain of [`crate::benefit::quantize`], the aggregates
//! are *bit-equal* to a from-scratch [`crate::benefit::benefit`] call at
//! every step, so
//! the incremental engine asks the exact same question sequence as the
//! rescan path at every shard count
//! (`DarwinConfig { incremental_benefit: false, .. }` keeps that path alive
//! as an ablation and as the reference for the equivalence tests).

use crate::benefit::{quantize, Benefit};
use crate::candidates::{generate_hierarchy_pooled, generate_hierarchy_scored};
use crate::frontier::FrontierPool;
use crate::hierarchy::Hierarchy;
use crate::oracle::{Oracle, QuestionId};
use crate::pipeline::{Darwin, RunResult, Seed, TraceStep};
use crate::shard::ShardedBenefitStore;
use crate::traversal::{Ctx, Strategy};
use darwin_classifier::{ScoreCache, TextClassifier};
use darwin_grammar::Heuristic;
use darwin_index::fx::{FxHashMap, FxHashSet};
use darwin_index::{AppendDelta, IdSet, IndexSet, RuleRef, ShardMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Order-sensitive hash of a sorted coverage set (coverage-duplicate
/// detection: rules with identical coverage get identical oracle answers).
pub(crate) fn coverage_hash(cov: &[u32]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = darwin_index::fx::FxHasher::default();
    cov.hash(&mut h);
    h.finish()
}

/// Canonical form for alias detection across grammars: a TreeMatch bare
/// token terminal matches exactly the sentences containing that token, the
/// same set as the one-token phrase.
pub(crate) fn canonical(h: Heuristic) -> Heuristic {
    use darwin_grammar::{PhrasePattern, TreePattern, TreeTerm};
    match &h {
        Heuristic::Tree(TreePattern::Term(TreeTerm::Tok(t))) => {
            Heuristic::Phrase(PhrasePattern::from_tokens([*t]))
        }
        _ => h,
    }
}

/// Delta-maintained benefit aggregate for one rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenefitAgg {
    /// `|C_r ∩ P|` — covered sentences already positive.
    pub covered_pos: usize,
    /// `|C_r \ P|` — new instances the rule would add.
    pub new_instances: usize,
    /// `Σ quantize(p_s)` over `C_r \ P` (fixed-point, order-independent).
    pub sum_q: i64,
}

impl BenefitAgg {
    /// The aggregate as a [`Benefit`] (what selection compares).
    pub fn benefit(&self) -> Benefit {
        Benefit {
            sum_q: self.sum_q,
            new_instances: self.new_instances,
        }
    }
}

/// Per-rule benefit aggregates, patched by delta as `P` grows and scores
/// move, rebuilt only on full re-score epochs.
///
/// A store covers a *span* of sentence ids: the default ([`BenefitStore::new`])
/// spans the whole corpus and its aggregates are the global benefit — the
/// unsharded reference path. [`BenefitStore::for_span`] builds a shard-local
/// partition whose aggregates count only the span's slice of each rule's
/// coverage; [`crate::shard::ShardedBenefitStore`] merges those fragments
/// back into the global benefit exactly (integer fixed-point sums).
pub struct BenefitStore {
    pub(crate) aggs: FxHashMap<RuleRef, BenefitAgg>,
    /// Owned id span `[lo, hi)`. The full-span marker is `(0, u32::MAX)`,
    /// which skips posting-list slicing entirely.
    lo: u32,
    hi: u32,
}

impl Default for BenefitStore {
    fn default() -> BenefitStore {
        BenefitStore::new()
    }
}

impl BenefitStore {
    /// A full-span store: aggregates are the global benefit.
    pub fn new() -> BenefitStore {
        BenefitStore {
            aggs: FxHashMap::default(),
            lo: 0,
            hi: u32::MAX,
        }
    }

    /// A shard-local store owning ids in `[lo, hi)`: every aggregate is the
    /// benefit fragment contributed by that range alone.
    pub fn for_span(lo: u32, hi: u32) -> BenefitStore {
        BenefitStore {
            aggs: FxHashMap::default(),
            lo,
            hi,
        }
    }

    /// The owned id span.
    pub fn span(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    fn full_span(&self) -> bool {
        self.lo == 0 && self.hi == u32::MAX
    }

    #[inline]
    fn owns(&self, id: u32) -> bool {
        self.lo <= id && id < self.hi
    }

    /// This store's slice of a rule's (sorted) posting list.
    fn coverage_slice<'a>(&self, index: &'a IndexSet, r: RuleRef) -> &'a [u32] {
        let cov = index.coverage(r);
        if self.full_span() {
            cov
        } else {
            darwin_index::shard_slice(cov, self.lo, self.hi)
        }
    }

    /// Number of tracked rules.
    pub fn len(&self) -> usize {
        self.aggs.len()
    }

    /// Whether no rule is tracked.
    pub fn is_empty(&self) -> bool {
        self.aggs.is_empty()
    }

    /// Whether `r` has a tracked aggregate.
    pub fn contains(&self, r: RuleRef) -> bool {
        self.aggs.contains_key(&r)
    }

    /// The cached aggregate for `r`, if tracked.
    pub fn agg(&self, r: RuleRef) -> Option<&BenefitAgg> {
        self.aggs.get(&r)
    }

    /// The cached benefit for `r`, if tracked.
    pub fn benefit_of(&self, r: RuleRef) -> Option<Benefit> {
        self.aggs.get(&r).map(BenefitAgg::benefit)
    }

    pub(crate) fn compute(
        &self,
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        r: RuleRef,
    ) -> BenefitAgg {
        let mut agg = BenefitAgg {
            covered_pos: 0,
            new_instances: 0,
            sum_q: 0,
        };
        for &s in self.coverage_slice(index, r) {
            if p.contains(s) {
                agg.covered_pos += 1;
            } else {
                agg.new_instances += 1;
                agg.sum_q += quantize(scores[s as usize]);
            }
        }
        agg
    }

    /// [`BenefitStore::compute`] seeded from the candidate-generation
    /// statistics (`overlap` = global `|C_r ∩ P|`, `count` = `|C_r|`),
    /// which best-first search already paid for: a full-span store takes
    /// both counters straight from the statistics — only `sum_q` still
    /// needs the coverage walk. (A span store can't localize the global
    /// counts and falls back to the span scan; generation never emits
    /// `overlap == 0` candidates, so there is no zero-overlap shortcut to
    /// take.)
    pub(crate) fn compute_scored(
        &self,
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        c: &crate::candidates::Candidate,
    ) -> BenefitAgg {
        if self.full_span() {
            let mut sum_q = 0i64;
            for &s in self.coverage_slice(index, c.rule) {
                if !p.contains(s) {
                    sum_q += quantize(scores[s as usize]);
                }
            }
            return BenefitAgg {
                covered_pos: c.overlap,
                new_instances: c.count - c.overlap,
                sum_q,
            };
        }
        self.compute(index, p, scores, c.rule)
    }

    /// Ensure every rule in `rules` has an aggregate, computing missing
    /// ones from scratch (in parallel when `threads > 1`).
    pub fn track<I>(
        &mut self,
        rules: I,
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        threads: usize,
    ) where
        I: IntoIterator<Item = RuleRef>,
    {
        let missing: Vec<RuleRef> = rules
            .into_iter()
            .filter(|r| !self.aggs.contains_key(r))
            .collect();
        let computed = parallel_batch(&missing, threads, |&r| {
            (r, self.compute(index, p, scores, r))
        });
        self.aggs.extend(computed);
    }

    /// [`BenefitStore::track`] for freshly generated candidates, seeding
    /// aggregates from the search statistics (`compute_scored`) instead of
    /// recomputing `covered_pos` from scratch.
    pub fn track_scored(
        &mut self,
        cands: &[crate::candidates::Candidate],
        index: &IndexSet,
        p: &IdSet,
        scores: &[f32],
        threads: usize,
    ) {
        let missing: Vec<crate::candidates::Candidate> = cands
            .iter()
            .filter(|c| !self.aggs.contains_key(&c.rule))
            .copied()
            .collect();
        let computed = parallel_batch(&missing, threads, |c| {
            (c.rule, self.compute_scored(index, p, scores, c))
        });
        self.aggs.extend(computed);
    }

    /// Recompute every tracked aggregate from scratch (after a full
    /// re-score epoch, when patching would touch nearly every sentence
    /// anyway).
    pub fn rebuild(&mut self, index: &IndexSet, p: &IdSet, scores: &[f32], threads: usize) {
        let mut rules: Vec<RuleRef> = self.aggs.keys().copied().collect();
        rules.sort_unstable();
        let computed = parallel_batch(&rules, threads, |&r| (r, self.compute(index, p, scores, r)));
        self.aggs.extend(computed);
    }

    /// Drop aggregates for rules not satisfying `keep` (rules evicted from
    /// the candidate pool). Safe at any time: untracked rules fall back to
    /// a from-scratch scan in [`crate::traversal::Ctx::benefit`], which
    /// returns the same value the aggregate held.
    pub fn retain(&mut self, keep: impl Fn(RuleRef) -> bool) {
        self.aggs.retain(|&r, _| keep(r));
    }

    /// The tracked rules and their aggregates (diagnostics, benches).
    pub fn tracked(&self) -> impl Iterator<Item = (RuleRef, &BenefitAgg)> {
        self.aggs.iter().map(|(&r, agg)| (r, agg))
    }

    /// `P` grew by `new_ids` (none previously positive): every tracked rule
    /// covering one of them absorbs it — the id's score contribution moves
    /// out of the benefit sum. Must be called with the scores the sums
    /// currently reflect (i.e. *before* the post-answer retrain). Ids
    /// outside this store's span are ignored (they belong to a sibling
    /// shard).
    pub fn on_positives_added(&mut self, new_ids: &[u32], index: &IndexSet, scores: &[f32]) {
        for &id in new_ids {
            if !self.owns(id) {
                continue;
            }
            let q = quantize(scores[id as usize]);
            for r in index.rules_covering(id) {
                if let Some(agg) = self.aggs.get_mut(&r) {
                    agg.covered_pos += 1;
                    agg.new_instances -= 1;
                    agg.sum_q -= q;
                }
            }
        }
    }

    /// The classifier incrementally re-scored some sentences: patch every
    /// tracked rule covering a moved id that is still outside `P`. Ids
    /// outside this store's span are ignored.
    pub fn on_scores_changed(&mut self, changes: &[(u32, f32, f32)], p: &IdSet, index: &IndexSet) {
        for &(id, old, new) in changes {
            if !self.owns(id) || p.contains(id) {
                continue; // sibling shard's id, or contributes nothing
            }
            let dq = quantize(new) - quantize(old);
            if dq == 0 {
                continue;
            }
            for r in index.rules_covering(id) {
                if let Some(agg) = self.aggs.get_mut(&r) {
                    agg.sum_q += dq;
                }
            }
        }
    }

    /// The corpus grew: ids in `new_ids` were appended (none positive, all
    /// scored — the neutral prior until the next retrain). Every tracked
    /// rule covering an owned appended id gains it as a new instance.
    /// `extend_span` must be called first when the store is the last shard's
    /// fragment, so ownership covers the appended tail.
    pub fn on_ids_appended(&mut self, new_ids: &[u32], index: &IndexSet, scores: &[f32]) {
        for &id in new_ids {
            if !self.owns(id) {
                continue;
            }
            let q = quantize(scores[id as usize]);
            for r in index.rules_covering(id) {
                if let Some(agg) = self.aggs.get_mut(&r) {
                    agg.new_instances += 1;
                    agg.sum_q += q;
                }
            }
        }
    }

    /// Extend the owned span to `[lo, new_hi)` — the epoch growth rule for
    /// the *last* shard's fragment, mirroring [`darwin_index::ShardMap::grow`].
    /// A full-span store already owns every id and is left untouched.
    pub fn extend_span(&mut self, new_hi: u32) {
        if self.full_span() {
            return;
        }
        assert!(new_hi >= self.hi, "BenefitStore span cannot shrink");
        self.hi = new_hi;
    }
}

/// Map `f` over `items`, chunked one-per-worker when `threads > 1` and the
/// batch is big enough to amortize thread spawns. Output preserves input
/// order (the engine's determinism guarantee leans on this).
fn parallel_batch<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads > 1 && items.len() >= 64 {
        use rayon::prelude::*;
        // One chunk per configured worker: the shim (and real rayon) won't
        // use more threads than there are chunks, so the configured count
        // is an effective upper bound.
        let chunk = items.len().div_ceil(threads);
        items
            .par_chunks(chunk)
            .map(|part| part.iter().map(&f).collect::<Vec<R>>())
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect()
    } else {
        items.iter().map(&f).collect()
    }
}

/// The mutable run state every strategy and flavor of the loop shares.
pub struct EngineState {
    /// The discovered positive set `P`.
    pub p: IdSet,
    /// Rules already submitted to the oracle (or skipped as duplicates).
    pub queried: FxHashSet<RuleRef>,
    /// Rules the oracle confirmed (includes the seed rule when given).
    pub accepted: Vec<Heuristic>,
    /// Rules the oracle rejected.
    pub rejected: Vec<Heuristic>,
    /// Per-question history.
    pub trace: Vec<TraceStep>,
    asked: FxHashSet<Heuristic>,
    asked_coverages: FxHashSet<u64>,
}

impl EngineState {
    /// Canonical heuristics already asked (alias dedup) — snapshot capture.
    pub(crate) fn asked(&self) -> &FxHashSet<Heuristic> {
        &self.asked
    }

    /// Coverage hashes already asked (duplicate dedup) — snapshot capture.
    pub(crate) fn asked_coverages(&self) -> &FxHashSet<u64> {
        &self.asked_coverages
    }
}

/// Which loop flavor an [`Engine`] serves. The two differ in RNG stream
/// and in the parallel loop's always-incremental score cache. One
/// deliberate unification vs. the pre-engine loops: both flavors now mark
/// a resolved seed rule as queried, so the parallel batch selector can no
/// longer re-offer the seed to an annotator (the sequential loop always
/// excluded it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineFlavor {
    /// One annotator, retrain after every YES (`Darwin::run*`).
    Sequential,
    /// Batched annotators, retrain once per round (`Darwin::run_parallel`).
    Parallel,
}

/// The step-driven question loop: owns the classifier, score cache,
/// hierarchy and benefit aggregates; strategies pull questions from it.
pub struct Engine<'a> {
    darwin: &'a Darwin<'a>,
    /// Shared run state (positives, queried, accepted/rejected, trace).
    pub state: EngineState,
    clf: Box<dyn TextClassifier>,
    cache: ScoreCache,
    rng: StdRng,
    hierarchy: Hierarchy,
    store: Option<ShardedBenefitStore>,
    /// Persistent best-first expansion state for hierarchy regeneration
    /// (`None` = the full-walk reference path,
    /// `DarwinConfig::incremental_frontier = false`).
    frontier: Option<FrontierPool>,
    /// Questions submitted to an async oracle and not yet answered
    /// ([`crate::batch`]): selection keeps proposing around them, answers
    /// resolve them in any order.
    pending: Vec<(QuestionId, RuleRef)>,
    seed_refs: Vec<RuleRef>,
    max_count: usize,
    /// First wire failure of a distributed run: set when a remote-shard
    /// operation fails (the store is poisoned at the same moment), after
    /// which selection refuses and the run winds down cleanly.
    wire_abort: Option<darwin_wire::WireError>,
}

impl<'a> Engine<'a> {
    /// Build the engine: apply the seed, train the initial classifier and
    /// generate the first hierarchy (Algorithm 1 lines 1–6).
    pub fn new(darwin: &'a Darwin<'a>, seed: Seed, flavor: EngineFlavor) -> Engine<'a> {
        let corpus = darwin.corpus();
        let index = darwin.index();
        let cfg = darwin.config();
        let n = corpus.len();

        let mut state = EngineState {
            p: IdSet::with_universe(n),
            queried: FxHashSet::default(),
            accepted: Vec::new(),
            rejected: Vec::new(),
            trace: Vec::new(),
            asked: FxHashSet::default(),
            asked_coverages: FxHashSet::default(),
        };
        let mut seed_refs: Vec<RuleRef> = Vec::new();

        match &seed {
            Seed::Rule(h) => {
                let cov: Vec<u32> = match index.resolve(h) {
                    Some(r) => {
                        seed_refs.push(r);
                        state.queried.insert(r);
                        index.coverage(r).to_vec()
                    }
                    None => h.coverage(corpus),
                };
                state.p.extend_from_slice(&cov);
                state.accepted.push(h.clone());
                state.asked.insert(canonical(h.clone()));
                if let Some(r) = seed_refs.first() {
                    state
                        .asked_coverages
                        .insert(coverage_hash(index.coverage(*r)));
                }
            }
            Seed::Positives(ids) => {
                state.p.extend_from_slice(ids);
            }
        }

        // `warm_start` is a pure buffer-reuse knob (bit-identical weights),
        // applied here so the config default flows into whichever kind the
        // run configured. A remote classifier trains the identical recipe
        // in its worker; a connect failure falls back to the local build
        // and aborts the run via `wire_abort` before the first question.
        let kind = cfg.classifier.clone().with_warm_start(cfg.warm_start);
        let mut clf_abort: Option<darwin_wire::WireError> = None;
        let clf: Box<dyn TextClassifier> = match darwin.remote_classifier() {
            None => kind.build(darwin.embeddings(), cfg.seed),
            Some(spec) => match (spec.connect)().and_then(|t| {
                crate::remote::WireClassifier::connect(t, corpus, cfg.seed, &kind, cfg.seed)
            }) {
                Ok(wc) => Box::new(wc),
                Err(e) => {
                    clf_abort = Some(e);
                    kind.build(darwin.embeddings(), cfg.seed)
                }
            },
        };
        let cache = match flavor {
            EngineFlavor::Sequential if !cfg.incremental_scoring => ScoreCache::full_only(n),
            _ => ScoreCache::new(n),
        }
        .with_shards(cfg.shards)
        .with_threads(cfg.threads);
        let salt = match flavor {
            EngineFlavor::Sequential => 0xDA,
            EngineFlavor::Parallel => 0x9A11,
        };
        let rng = StdRng::seed_from_u64(cfg.seed ^ salt);
        let max_count = (cfg.max_coverage_frac * n as f64).ceil() as usize;

        let mut engine = Engine {
            darwin,
            state,
            clf,
            cache,
            rng,
            hierarchy: Hierarchy::new(index, Vec::new()),
            store: None,
            frontier: cfg.incremental_frontier.then(FrontierPool::new),
            pending: Vec::new(),
            seed_refs,
            max_count,
            wire_abort: clf_abort,
        };
        engine.retrain_and_sync();
        if cfg.incremental_benefit {
            // Created empty: the hierarchy generation below seeds the
            // partitions from the candidate-search statistics.
            let map = ShardMap::new(n, cfg.shards);
            match darwin.remote_shards() {
                None => engine.store = Some(ShardedBenefitStore::new(map)),
                // Distributed deployment: one worker per shard, each
                // initialized with the corpus, the coordinator index's
                // own build recipe, and the current (P, scores) snapshot.
                Some(spec) => match ShardedBenefitStore::connect_remote(
                    map,
                    corpus,
                    index.config(),
                    &engine.state.p,
                    engine.cache.scores(),
                    spec.connect.clone(),
                    cfg.fanout,
                ) {
                    Ok(store) => engine.store = Some(store),
                    Err(e) => engine.wire_abort = Some(e),
                },
            }
        } else if darwin.remote_shards().is_some() {
            // The rescan ablation has no distributed form: refusing
            // loudly beats silently running an in-process run the caller
            // believes is distributed.
            engine.wire_abort = Some(darwin_wire::WireError::Protocol(
                "remote shards require DarwinConfig::incremental_benefit".into(),
            ));
        }
        engine.regen_hierarchy();
        engine
    }

    /// Rebuild an engine at the state a [`crate::snapshot::Snapshot`]
    /// captured — the resume half of the durable-session contract.
    ///
    /// What is restored directly: the run state (`P`, queried/asked sets,
    /// accepted/rejected, trace), the score cache image (re-sharded for
    /// *this* deployment's `shards`/`threads` — pure perf knobs), the RNG
    /// at its exact captured words, the frontier memo, the in-flight
    /// question set and the seed handles. What is *re-derived*: the
    /// classifier (untrained — `fit` is a pure function of
    /// `(P, RNG draws, seed)`, so the next retrain reproduces the
    /// identical model; the restored scores are the model's output at the
    /// barrier), the candidate hierarchy (deterministic in `P`), and the
    /// benefit aggregates (recomputed from the restored `(P, scores)`,
    /// bit-equal to the suspended run's delta-maintained sums by the
    /// store-consistency invariant). Re-attaching remote shards replays
    /// `ShardInit` with the restored state through this `Darwin`'s
    /// connector, and [`Engine::regen_hierarchy`] doubles as the `Track`
    /// replay.
    ///
    /// Deliberately does **not** retrain: that would consume RNG words
    /// the uninterrupted reference never drew at this point.
    pub fn resume(
        darwin: &'a Darwin<'a>,
        snap: &crate::snapshot::Snapshot,
    ) -> Result<Engine<'a>, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let corpus = darwin.corpus();
        let index = darwin.index();
        let cfg = darwin.config();
        let n = corpus.len();
        if snap.n as usize != n || snap.cache.scores.len() != n {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot sized for {} sentences ({} scores), live corpus has {n}",
                snap.n,
                snap.cache.scores.len()
            )));
        }

        let state = EngineState {
            p: IdSet::from_ids(&snap.p, n),
            queried: snap.queried.iter().copied().collect(),
            accepted: snap.accepted.clone(),
            rejected: snap.rejected.clone(),
            trace: snap.trace.clone(),
            asked: snap.asked.iter().cloned().collect(),
            asked_coverages: snap.asked_coverages.iter().copied().collect(),
        };

        // The classifier is built exactly as in `Engine::new` — local or
        // behind this deployment's connector — but left untrained.
        let kind = cfg.classifier.clone().with_warm_start(cfg.warm_start);
        let mut clf_abort: Option<darwin_wire::WireError> = None;
        let clf: Box<dyn TextClassifier> = match darwin.remote_classifier() {
            None => kind.build(darwin.embeddings(), cfg.seed),
            Some(spec) => match (spec.connect)().and_then(|t| {
                crate::remote::WireClassifier::connect(t, corpus, cfg.seed, &kind, cfg.seed)
            }) {
                Ok(wc) => Box::new(wc),
                Err(e) => {
                    clf_abort = Some(e);
                    kind.build(darwin.embeddings(), cfg.seed)
                }
            },
        };
        let cache = ScoreCache::import(&snap.cache)
            .with_shards(cfg.shards)
            .with_threads(cfg.threads);
        let rng = StdRng::from_state(snap.rng);
        let frontier = match (&snap.frontier, cfg.incremental_frontier) {
            (Some(img), true) => Some(FrontierPool::import(img).map_err(SnapshotError::Corrupt)?),
            // Resuming with the pool enabled but no captured memo: a fresh
            // pool's first regeneration is a full walk — identical output,
            // the memo was only ever a cost optimization.
            (None, true) => Some(FrontierPool::new()),
            _ => None,
        };
        let max_count = (cfg.max_coverage_frac * n as f64).ceil() as usize;
        let pending = snap
            .pending
            .iter()
            .map(|&(q, r)| (crate::oracle::QuestionId(q), r))
            .collect();

        let mut engine = Engine {
            darwin,
            state,
            clf,
            cache,
            rng,
            hierarchy: Hierarchy::new(index, Vec::new()),
            store: None,
            frontier,
            pending,
            seed_refs: snap.seed_refs.clone(),
            max_count,
            wire_abort: clf_abort,
        };
        if cfg.incremental_benefit {
            let map = ShardMap::new(n, cfg.shards);
            match darwin.remote_shards() {
                None => engine.store = Some(ShardedBenefitStore::new(map)),
                // Re-attach workers by replaying `ShardInit` with the
                // *restored* (P, scores) — the state the suspended
                // coordinator's workers held at the barrier.
                Some(spec) => match ShardedBenefitStore::connect_remote(
                    map,
                    corpus,
                    index.config(),
                    &engine.state.p,
                    engine.cache.scores(),
                    spec.connect.clone(),
                    cfg.fanout,
                ) {
                    Ok(store) => engine.store = Some(store),
                    Err(e) => engine.wire_abort = Some(e),
                },
            }
        } else if darwin.remote_shards().is_some() {
            engine.wire_abort = Some(darwin_wire::WireError::Protocol(
                "remote shards require DarwinConfig::incremental_benefit".into(),
            ));
        }
        engine.regen_hierarchy();
        Ok(engine)
    }

    /// The score cache (snapshot capture).
    pub(crate) fn cache(&self) -> &ScoreCache {
        &self.cache
    }

    /// The raw RNG state (snapshot capture).
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// The wire failure that aborted a distributed run, if any. While set,
    /// selection returns nothing and the run winds down with the cleanly
    /// applied prefix of its state.
    pub fn wire_error(&self) -> Option<&darwin_wire::WireError> {
        self.wire_abort
            .as_ref()
            .or_else(|| self.store.as_ref().and_then(|s| s.wire_error()))
    }

    /// Record a wire failure from a store operation (first one wins).
    fn note_wire(&mut self, r: Result<(), darwin_wire::WireError>) {
        if let Err(e) = r {
            self.wire_abort.get_or_insert(e);
        }
    }

    /// Audit every remote shard mirror against its worker (`Ok(true)` =
    /// exact; trivially true for local deployments). Test/diagnostic hook.
    pub fn audit_remote_store(&mut self) -> Result<bool, darwin_wire::WireError> {
        match &mut self.store {
            Some(store) => store.audit_remote(),
            None => Ok(true),
        }
    }

    /// The seed heuristics' rule handles (what strategies are seeded with).
    pub fn seed_refs(&self) -> &[RuleRef] {
        &self.seed_refs
    }

    /// Questions asked so far.
    pub fn questions(&self) -> usize {
        self.state.trace.len()
    }

    /// Current classifier scores.
    pub fn scores(&self) -> &[f32] {
        self.cache.scores()
    }

    /// The current candidate hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The sharded benefit aggregates (`None` when running in rescan mode).
    pub fn store(&self) -> Option<&ShardedBenefitStore> {
        self.store.as_ref()
    }

    /// The persistent candidate frontier (`None` when
    /// `DarwinConfig::incremental_frontier` is off).
    pub fn frontier(&self) -> Option<&FrontierPool> {
        self.frontier.as_ref()
    }

    /// Read-only selection view over the current state.
    pub fn ctx(&self) -> Ctx<'_> {
        Ctx {
            index: self.darwin.index(),
            hierarchy: &self.hierarchy,
            p: &self.state.p,
            scores: self.cache.scores(),
            queried: &self.state.queried,
            benefit_threshold: self.darwin.config().benefit_threshold,
            store: self.store.as_ref(),
        }
    }

    /// Pull the next question from `strategy`, skipping cross-grammar
    /// aliases and coverage duplicates without consuming budget (Definition
    /// 4: the oracle's answer depends only on `C_r`, so asking two rules
    /// with identical coverage wastes a query).
    pub fn select(&mut self, strategy: &mut dyn Strategy) -> Option<RuleRef> {
        if self.wire_error().is_some() {
            return None; // distributed state is gone; stop asking
        }
        let index = self.darwin.index();
        // Every alias/duplicate skip marks a previously unqueried rule, so
        // the loop shrinks the pool and terminates on its own; the stall
        // counter only guards against a strategy that keeps re-proposing
        // rules already queried (which would otherwise spin forever).
        let mut stalls = 0;
        loop {
            let pick = {
                let ctx = self.ctx();
                strategy.select(&ctx).or_else(|| {
                    // Fallback: the most promising remaining candidate.
                    ctx.most_promising(self.hierarchy.rules().iter().copied())
                })
            };
            let r = pick?;
            if !self.state.queried.insert(r) {
                stalls += 1;
                if stalls >= 256 {
                    return None;
                }
                continue;
            }
            if !self.state.asked.insert(canonical(index.heuristic(r))) {
                continue;
            }
            if !self
                .state
                .asked_coverages
                .insert(coverage_hash(index.coverage(r)))
            {
                continue;
            }
            return Some(r);
        }
    }

    /// Number of questions currently in flight (submitted, unanswered).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The in-flight questions, in submission order.
    pub fn pending(&self) -> impl Iterator<Item = (QuestionId, RuleRef)> + '_ {
        self.pending.iter().copied()
    }

    /// Mark `rule` as in flight under `qid`: selection keeps avoiding it
    /// (it is already in `queried` — [`Engine::select`] and
    /// [`Engine::select_refill`] put it there) and
    /// [`Engine::select_refill`] additionally steers new proposals away
    /// from its uncovered sentences until the answer arrives.
    pub fn begin_question(&mut self, qid: QuestionId, rule: RuleRef) {
        debug_assert!(
            self.state.queried.contains(&rule),
            "begin_question on a rule selection never marked"
        );
        debug_assert!(
            self.pending.iter().all(|&(q, _)| q != qid),
            "duplicate QuestionId"
        );
        self.pending.push((qid, rule));
    }

    /// Apply an answer to an in-flight question — in *any* order relative
    /// to other submissions; a YES flows through the exact
    /// [`Engine::record`] path (benefit deltas, frontier YES-journal,
    /// trace). Returns the resolved rule, or `None` for an unknown id
    /// (already resolved, or never submitted).
    pub fn resolve(&mut self, qid: QuestionId, answer: bool) -> Option<RuleRef> {
        let at = self.pending.iter().position(|&(q, _)| q == qid)?;
        let (_, rule) = self.pending.remove(at);
        self.record(rule, answer);
        Some(rule)
    }

    /// Give up on every in-flight question (the oracle stopped
    /// delivering): the pending set empties, nothing is recorded, and the
    /// rules stay `queried` — their submissions were spent. Returns how
    /// many questions were abandoned.
    pub fn abandon_pending(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        n
    }

    /// Total benefit (fixed-point) of `r` under the current state — what
    /// the adaptive batcher's benefit-decay cutoff is anchored on.
    pub fn benefit_sum(&self, r: RuleRef) -> i64 {
        self.ctx().benefit(r).sum_q
    }

    /// Propose one more question *while others are in flight* — see
    /// [`Engine::select_refill_batch`]; this is the single-pick form.
    pub fn select_refill(&mut self, floor: Option<i64>) -> Option<RuleRef> {
        self.select_refill_batch(1, floor).pop()
    }

    /// Propose up to `want` further questions *while others are in
    /// flight*: the highest-ranked candidates under the parallel batch
    /// gating ([`crate::parallel::select_diverse_batch`]'s ranking) whose
    /// new coverage overlaps the union of in-flight and just-proposed
    /// questions' new coverage by at most half — annotators working
    /// concurrently should not review near-duplicates. The pool is ranked
    /// once per call, so a whole wave refill costs one scan + sort, not
    /// one per slot.
    ///
    /// `floor` (benefit-decay batching) ends the proposal scan — and with
    /// it the wave — at the first candidate whose total benefit fell
    /// below it: once benefit decays past the cutoff, nothing further
    /// down the proposal order extends the wave.
    ///
    /// Exact coverage duplicates and cross-grammar aliases of anything
    /// already asked are consumed without being proposed, like
    /// [`Engine::select`]; candidates merely *overlapping* an in-flight
    /// question stay available for later waves.
    pub fn select_refill_batch(&mut self, want: usize, floor: Option<i64>) -> Vec<RuleRef> {
        let mut picks = Vec::new();
        if want == 0 || self.wire_error().is_some() {
            return picks;
        }
        let index = self.darwin.index();
        // Union of new (≔ outside P) coverage across in-flight questions.
        let mut covered = IdSet::with_universe(self.darwin.corpus().len());
        for &(_, r) in &self.pending {
            for &s in index.coverage(r) {
                if !self.state.p.contains(s) {
                    covered.insert(s);
                }
            }
        }
        let ranked = {
            let ctx = self.ctx();
            crate::parallel::rank_gated(&ctx)
        };
        for (r, _, sum_q, _) in ranked {
            if picks.len() == want {
                break;
            }
            if floor.is_some_and(|f| sum_q < f) {
                break; // benefit decayed below the cutoff: the wave stops
            }
            let new: Vec<u32> = index
                .coverage(r)
                .iter()
                .copied()
                .filter(|&s| !self.state.p.contains(s))
                .collect();
            if new.is_empty() {
                continue;
            }
            let overlap = covered.count_in(&new);
            if overlap * 2 > new.len() {
                continue; // mostly duplicates an in-flight question
            }
            if !self.state.asked.insert(canonical(index.heuristic(r))) {
                self.state.queried.insert(r);
                continue;
            }
            if !self
                .state
                .asked_coverages
                .insert(coverage_hash(index.coverage(r)))
            {
                self.state.queried.insert(r);
                continue;
            }
            self.state.queried.insert(r);
            covered.extend_from_slice(&new);
            picks.push(r);
        }
        picks
    }

    /// Record an oracle answer: on YES grow `P`, patch the benefit
    /// aggregates by delta, and log the trace step. Does *not* retrain —
    /// the sequential loop retrains per YES, the parallel loop once per
    /// round. Returns the answer (what the loops key retraining on).
    pub fn record(&mut self, rule: RuleRef, answer: bool) -> bool {
        let index = self.darwin.index();
        let h = index.heuristic(rule);
        let cov = index.coverage(rule);
        let mut new_ids: Vec<u32> = Vec::new();
        if answer {
            new_ids = cov
                .iter()
                .copied()
                .filter(|&s| !self.state.p.contains(s))
                .collect();
            if let Some(store) = &mut self.store {
                // Scores are still pre-retrain here — exactly what the sums
                // reflect.
                let r = store.on_positives_added(&new_ids, index, self.cache.scores());
                self.note_wire(r);
            }
            if let Some(pool) = &mut self.frontier {
                // Journaled only — the pool re-scores its frontier lazily
                // at the next regeneration.
                pool.note_positives(&new_ids);
            }
            self.state.p.extend_from_slice(cov);
            self.state.accepted.push(h.clone());
        } else {
            self.state.rejected.push(h.clone());
        }
        self.state.trace.push(TraceStep {
            question: self.state.trace.len() + 1,
            rule: h,
            answer,
            new_positive_ids: new_ids,
            p_size: self.state.p.len(),
        });
        answer
    }

    /// Retrain the classifier on `P` vs. sampled presumed negatives,
    /// refresh the score cache, and bring the benefit aggregates back in
    /// sync — patched from the score journal after an incremental pass,
    /// rebuilt (in parallel when configured) after a full epoch.
    pub fn retrain_and_sync(&mut self) {
        let darwin = self.darwin;
        let corpus = darwin.corpus();
        let cfg = darwin.config();
        let pos: Vec<u32> = self.state.p.iter().collect();
        if pos.is_empty() {
            return;
        }
        let n = corpus.len() as u32;
        // Cap the sample at a third of the corpus: sampling presumed
        // negatives too densely would sweep in most undiscovered positives
        // and teach the classifier to reject exactly the sentences Darwin
        // still needs to find.
        let want = (pos.len() * cfg.neg_per_pos)
            .max(cfg.min_negatives)
            .min(corpus.len() / 3)
            .min(corpus.len().saturating_sub(pos.len()));
        let mut neg: Vec<u32> = Vec::with_capacity(want);
        let mut guard = 0;
        while neg.len() < want && guard < want * 20 {
            let id = self.rng.gen_range(0..n);
            if !self.state.p.contains(id) {
                neg.push(id);
            }
            guard += 1;
        }
        let dbg = std::env::var("DARWIN_DEBUG_RETRAIN").is_ok();
        let t0 = std::time::Instant::now();
        self.clf.fit(corpus, darwin.embeddings(), &pos, &neg);
        let t_fit = t0.elapsed();
        let t1 = std::time::Instant::now();
        self.cache.refresh(&*self.clf, corpus, darwin.embeddings());
        let t_refresh = t1.elapsed();

        let t2 = std::time::Instant::now();
        if let Some(store) = &mut self.store {
            let r = if self.cache.last_refresh_was_full() {
                store.rebuild(
                    darwin.index(),
                    &self.state.p,
                    self.cache.scores(),
                    cfg.threads,
                )
            } else {
                store.on_scores_changed(self.cache.last_changes(), &self.state.p, darwin.index())
            };
            self.note_wire(r);
        }
        if dbg {
            eprintln!(
                "retrain: pos={} neg={} fit={:?} refresh={:?} (size={} full={} journal={}) sync={:?}",
                pos.len(),
                neg.len(),
                t_fit,
                t_refresh,
                self.cache.last_refresh_size(),
                self.cache.last_refresh_was_full(),
                self.cache.last_changes().len(),
                t2.elapsed()
            );
        }
    }

    /// Regenerate the candidate hierarchy around the grown positive set
    /// (§3.7) and start tracking aggregates for rules new to the pool —
    /// seeded from the candidate search's own `overlap`/`count` statistics
    /// rather than recomputing `covered_pos` from scratch.
    /// Already-tracked rules keep their delta-maintained aggregates —
    /// `RuleRef`s are stable index handles, so nothing is recomputed for
    /// them.
    pub fn regen_hierarchy(&mut self) {
        let darwin = self.darwin;
        let cfg = darwin.config();
        let (hierarchy, cands) = match &mut self.frontier {
            // The pool drains the dirty-id journal `record` fed it, patches
            // the affected frontier statistics, and replays the walk from
            // the surviving state — identical output, no root-to-frontier
            // posting rescan.
            Some(pool) => generate_hierarchy_pooled(
                darwin.index(),
                &self.state.p,
                cfg.n_candidates,
                self.max_count,
                pool,
            ),
            None => generate_hierarchy_scored(
                darwin.index(),
                &self.state.p,
                cfg.n_candidates,
                self.max_count,
            ),
        };
        self.hierarchy = hierarchy;
        if let Some(store) = &mut self.store {
            // Evict rules that left the pool — without this the store (and
            // every full-epoch rebuild) grows with the union of all pools
            // ever generated. Rules that re-enter later are simply
            // recomputed; selection reads the same values either way.
            let hierarchy = &self.hierarchy;
            let r = store.retain(|r| hierarchy.contains(r)).and_then(|()| {
                store.track_scored(
                    &cands,
                    darwin.index(),
                    &self.state.p,
                    self.cache.scores(),
                    cfg.threads,
                )
            });
            self.note_wire(r);
        }
    }

    /// One sequential question: select, ask, apply, feed back (retraining
    /// and regenerating the hierarchy on YES). Returns `false` when the
    /// strategy has nothing left to ask.
    ///
    /// The strategy observes the answer *after* [`Engine::record`] applied
    /// it — the `ctx` passed to [`Strategy::feedback`] already reflects
    /// the grown `P`. The async loop ([`crate::batch`]) runs the same
    /// order (answers record as they arrive, feedback at the wave
    /// barrier), so batch size 1 replays this step exactly by
    /// construction, whatever a strategy reads in its feedback.
    pub fn step(&mut self, strategy: &mut dyn Strategy, oracle: &mut dyn Oracle) -> bool {
        let Some(rule) = self.select(strategy) else {
            return false;
        };
        let index = self.darwin.index();
        let h = index.heuristic(rule);
        let cov = index.coverage(rule);
        let answer = oracle.ask(self.darwin.corpus(), &h, cov);
        self.record(rule, answer);
        {
            let ctx = self.ctx();
            strategy.feedback(rule, answer, &ctx);
        }
        if answer {
            // Score update (§3.7): retrain, refresh scores, regenerate the
            // hierarchy around the grown positive set.
            self.retrain_and_sync();
            self.regen_hierarchy();
        }
        true
    }

    /// Consume the engine into a [`RunResult`].
    pub fn finish(self) -> RunResult {
        let wire_error = self.wire_error().map(|e| e.to_string());
        RunResult {
            accepted: self.state.accepted,
            rejected: self.state.rejected,
            positives: self.state.p.iter().collect(),
            trace: self.state.trace,
            scores: self.cache.scores().to_vec(),
            wire_error,
        }
    }

    /// Verify every tracked aggregate against a from-scratch recomputation
    /// (test/diagnostic hook; the property tests drive this): each *local*
    /// shard partition's fragments must equal a span-scratch
    /// recomputation, and the merged aggregates must equal the global one.
    /// Remote mirrors are audited against their workers by
    /// [`Engine::audit_remote_store`] instead (that check needs the wire).
    pub fn store_is_consistent(&self) -> bool {
        let Some(store) = &self.store else {
            return true;
        };
        let index = self.darwin.index();
        let (p, scores) = (&self.state.p, self.cache.scores());
        let fragments_ok = store.local_parts().all(|part| {
            part.tracked()
                .all(|(r, agg)| *agg == part.compute(index, p, scores, r))
        });
        let global = BenefitStore::new();
        let merge_ok = store.local_parts().next().into_iter().all(|first| {
            first
                .tracked()
                .all(|(r, _)| store.agg(r) == Some(global.compute(index, p, scores, r)))
        });
        fragments_ok && merge_ok
    }

    /// Decompose the engine into its owned state, releasing the `Darwin`
    /// borrow — the suspend half of the streaming-session contract
    /// ([`crate::stream::StreamSession`]). Unlike a
    /// [`crate::snapshot::Snapshot`], nothing is serialized or re-derived:
    /// the live classifier (including a connected wire worker), the score
    /// cache, the RNG, the hierarchy, the benefit store (including remote
    /// shard sessions) and the frontier memo all move out intact, so
    /// [`Engine::from_parts`] against an *equal* corpus/index view
    /// continues the run as if the engine had never been taken apart.
    pub fn into_parts(self) -> EngineParts {
        EngineParts {
            state: self.state,
            clf: self.clf,
            cache: self.cache,
            rng: self.rng,
            hierarchy: self.hierarchy,
            store: self.store,
            frontier: self.frontier,
            pending: self.pending,
            seed_refs: self.seed_refs,
            max_count: self.max_count,
            wire_abort: self.wire_abort,
        }
    }

    /// Reassemble an engine from [`Engine::into_parts`] against a (possibly
    /// rebuilt) `Darwin` view. Pure reassembly: no reconnects, no retrain,
    /// no hierarchy regeneration — the caller guarantees `darwin` presents
    /// the same corpus/index the parts were taken from (or that corpus/
    /// index growth has been reconciled via [`Engine::apply_append`]
    /// immediately after reassembly).
    pub fn from_parts(darwin: &'a Darwin<'a>, parts: EngineParts) -> Engine<'a> {
        Engine {
            darwin,
            state: parts.state,
            clf: parts.clf,
            cache: parts.cache,
            rng: parts.rng,
            hierarchy: parts.hierarchy,
            store: parts.store,
            frontier: parts.frontier,
            pending: parts.pending,
            seed_refs: parts.seed_refs,
            max_count: parts.max_count,
            wire_abort: parts.wire_abort,
        }
    }

    /// Reconcile the engine with a corpus that grew from `old_n` sentences
    /// by `texts` — the wave-barrier append operation. The caller has
    /// already grown the corpus, the index (in place via
    /// [`IndexSet::append`], or rebuilt from scratch on the grown corpus —
    /// the two produce identical indexes) and the embeddings
    /// (zero-padded: appends never retrain embeddings), and `darwin` views
    /// the grown state.
    ///
    /// What happens here, in order:
    ///
    /// 1. the score cache grows — appended ids enter at the 0.5 neutral
    ///    prior and are journaled so the next incremental refresh scores
    ///    them with the live classifier;
    /// 2. the benefit store folds the appended ids into every tracked
    ///    aggregate at that prior and extends its span/partition
    ///    ([`ShardedBenefitStore::on_corpus_appended`] — remote shards get
    ///    the `CorpusAppend` frame), after which the grown partition is
    ///    re-threaded into the cache's shard bounds;
    /// 3. a corpus-mirroring classifier (wire worker) is forwarded the
    ///    growth;
    /// 4. the frontier memo folds the appended ids (`delta` carries the
    ///    dense-id shift; `None` means the index was rebuilt from scratch,
    ///    so the memo is reset and the next walk is a full one — identical
    ///    output, the memo is a cost optimization);
    /// 5. the coverage cap is recomputed for the grown `n` and the
    ///    hierarchy regenerated once.
    ///
    /// Deliberately does **not** retrain: appends are not oracle answers,
    /// and retraining here would consume RNG words the delta/rebuild
    /// equivalence (and any suspended twin of this run) depends on.
    pub fn apply_append(&mut self, old_n: u32, texts: &[String], delta: Option<&AppendDelta>) {
        let darwin = self.darwin;
        let corpus = darwin.corpus();
        let index = darwin.index();
        let cfg = darwin.config();
        let n = corpus.len();
        let added = n - old_n as usize;
        if added == 0 {
            return;
        }
        self.cache.append(added);
        if let Some(store) = &mut self.store {
            let mut r = store.on_corpus_appended(corpus, texts, index, self.cache.scores());
            let ranges = store
                .shard_map()
                .ranges()
                .map(|r| (r.start, r.end))
                .collect();
            self.cache.set_shard_ranges(ranges);
            if r.is_ok() && delta.is_none() {
                // Scratch-rebuild reference path: recompute every tracked
                // aggregate from the grown (P, scores) instead of trusting
                // the delta fold — this is what the append-equivalence
                // suites compare the fold against.
                r = store.rebuild(index, &self.state.p, self.cache.scores(), cfg.threads);
            }
            self.note_wire(r);
        }
        self.clf.corpus_appended(texts, n);
        match (&mut self.frontier, delta) {
            (Some(pool), Some(delta)) => {
                let new_ids: Vec<u32> = (old_n..n as u32).collect();
                pool.append_ids(index, &new_ids, delta);
            }
            (Some(pool), None) => *pool = FrontierPool::new(),
            (None, _) => {}
        }
        self.max_count = (cfg.max_coverage_frac * n as f64).ceil() as usize;
        self.regen_hierarchy();
    }
}

/// The owned state of a suspended-in-memory [`Engine`] — everything but
/// the `Darwin` borrow. Produced by [`Engine::into_parts`] at a wave
/// barrier, held across a corpus append (during which no engine exists and
/// the corpus/index are mutable), and consumed by [`Engine::from_parts`].
pub struct EngineParts {
    state: EngineState,
    clf: Box<dyn TextClassifier>,
    cache: ScoreCache,
    rng: StdRng,
    hierarchy: Hierarchy,
    store: Option<ShardedBenefitStore>,
    frontier: Option<FrontierPool>,
    pending: Vec<(QuestionId, RuleRef)>,
    seed_refs: Vec<RuleRef>,
    max_count: usize,
    wire_abort: Option<darwin_wire::WireError>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::benefit;
    use darwin_index::{IndexConfig, IndexSet};
    use darwin_text::Corpus;

    fn setup() -> (Corpus, IndexSet) {
        let c = Corpus::from_texts([
            "the shuttle to the airport leaves hourly",
            "is there a shuttle to the airport tonight",
            "a bus to the airport runs daily",
            "order pizza to the room please",
            "the pool opens at nine daily",
        ]);
        let idx = IndexSet::build(&c, &IndexConfig::small());
        (c, idx)
    }

    fn scratch(index: &IndexSet, p: &IdSet, scores: &[f32], r: RuleRef) -> BenefitAgg {
        BenefitStore::new().compute(index, p, scores, r)
    }

    #[test]
    fn track_matches_scratch_benefit() {
        let (c, idx) = setup();
        let p = IdSet::from_ids(&[0, 1], c.len());
        let scores = vec![0.9, 0.9, 0.8, 0.2, 0.1];
        let mut store = BenefitStore::new();
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        store.track(rules.iter().copied(), &idx, &p, &scores, 1);
        for &r in &rules {
            assert_eq!(
                store.benefit_of(r).unwrap(),
                benefit(idx.coverage(r), &p, &scores)
            );
        }
    }

    #[test]
    fn positive_delta_matches_scratch() {
        let (c, idx) = setup();
        let mut p = IdSet::from_ids(&[0], c.len());
        let scores = vec![0.9, 0.9, 0.8, 0.2, 0.1];
        let mut store = BenefitStore::new();
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        store.track(rules.iter().copied(), &idx, &p, &scores, 1);

        // P gains sentences 1 and 2.
        let new_ids = [1u32, 2];
        store.on_positives_added(&new_ids, &idx, &scores);
        p.extend_from_slice(&new_ids);

        for &r in &rules {
            assert_eq!(
                store.agg(r).copied().unwrap(),
                scratch(&idx, &p, &scores, r),
                "{:?}",
                idx.heuristic(r)
            );
        }
    }

    #[test]
    fn score_delta_matches_scratch() {
        let (c, idx) = setup();
        let p = IdSet::from_ids(&[0, 1], c.len());
        let mut scores = vec![0.9, 0.9, 0.8, 0.2, 0.1];
        let mut store = BenefitStore::new();
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        store.track(rules.iter().copied(), &idx, &p, &scores, 1);

        // Re-score: one id outside P, one inside P (must be ignored).
        let changes = [(2u32, 0.8f32, 0.3f32), (1u32, 0.9f32, 0.5f32)];
        store.on_scores_changed(&changes, &p, &idx);
        scores[2] = 0.3;
        scores[1] = 0.5;

        for &r in &rules {
            assert_eq!(
                store.agg(r).copied().unwrap(),
                scratch(&idx, &p, &scores, r)
            );
        }
    }

    #[test]
    fn append_delta_matches_scratch_on_grown_corpus() {
        let (mut c, mut idx) = setup();
        let p = IdSet::from_ids(&[0, 1], c.len());
        let mut scores = vec![0.9, 0.9, 0.8, 0.2, 0.1];
        let mut full = BenefitStore::new();
        let mut span = BenefitStore::for_span(3, c.len() as u32);
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        full.track(rules.iter().copied(), &idx, &p, &scores, 1);
        span.track(rules.iter().copied(), &idx, &p, &scores, 1);

        let old_n = c.len();
        c.append_texts(
            ["the night shuttle to the airport is free", "pizza daily"].iter(),
            1,
        );
        idx.append(&c).unwrap();
        let new_ids: Vec<u32> = (old_n as u32..c.len() as u32).collect();
        scores.resize(c.len(), 0.5); // neutral prior until the next retrain

        full.on_ids_appended(&new_ids, &idx, &scores);
        span.extend_span(c.len() as u32);
        span.on_ids_appended(&new_ids, &idx, &scores);

        // Positives stay dimensioned for the grown universe.
        let p = IdSet::from_ids(&[0, 1], c.len());
        for &r in &rules {
            assert_eq!(
                full.agg(r).copied().unwrap(),
                scratch(&idx, &p, &scores, r),
                "full-span {:?}",
                idx.heuristic(r)
            );
            assert_eq!(
                span.agg(r).copied().unwrap(),
                BenefitStore::for_span(3, c.len() as u32).compute(&idx, &p, &scores, r),
                "span {:?}",
                idx.heuristic(r)
            );
        }
    }

    #[test]
    fn parallel_rebuild_equals_sequential() {
        let (c, idx) = setup();
        let p = IdSet::from_ids(&[0, 3], c.len());
        let scores = vec![0.6, 0.7, 0.8, 0.9, 0.4];
        let rules: Vec<RuleRef> = idx.all_rules().collect();
        let mut seq = BenefitStore::new();
        seq.track(rules.iter().copied(), &idx, &p, &scores, 1);
        let mut par = BenefitStore::new();
        par.track(rules.iter().copied(), &idx, &p, &scores, 4);
        par.rebuild(&idx, &p, &scores, 4);
        for &r in &rules {
            assert_eq!(seq.agg(r), par.agg(r));
        }
    }
}

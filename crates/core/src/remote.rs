//! Worker serve loops and coordinator clients for the wire boundary.
//!
//! Three worker roles speak the [`darwin_wire`] protocol:
//!
//! * **shard workers** ([`serve_shard`]) own one [`BenefitStore`]
//!   partition plus their own copy of the corpus, index, positive set and
//!   span scores — all mirrored from the coordinator by delta messages.
//!   Every mutating request is answered with the benefit fragments it
//!   changed, so the coordinator-side [`crate::shard::RemoteShard`] mirror
//!   stays exact without read-time round-trips.
//! * **oracle workers** ([`serve_oracle`]) answer YES/NO questions from a
//!   local [`Oracle`] (a crowd gateway, a labeling UI, ground truth in
//!   experiments). Answers are computed at submit and delivered at the
//!   next poll — the wire twin of the [`crate::Immediate`] adapter, which
//!   is what makes a wire-oracle run replay the local trace.
//! * **classifier workers** ([`serve_classifier`]) train and score a
//!   [`TextClassifier`] built from a wire-described recipe, so remote
//!   shards can score without sharing memory ([`WireClassifier`] is the
//!   coordinator-side `TextClassifier` that forwards `fit`/`predict_batch`
//!   over the transport).
//!
//! All three loops share one discipline: every request gets exactly one
//! response; malformed or out-of-role requests get [`Response::Error`];
//! the loop exits cleanly on `Shutdown` or peer disconnect. A worker
//! never panics on wire input.

use crate::engine::BenefitStore;
use crate::oracle::{AsyncOracle, Oracle, QuestionId};
use crate::shard::{agg_to_wire, ShardConnector};
use darwin_classifier::{ClassifierKind, CnnConfig, LogRegConfig, TextClassifier};
use darwin_index::fx::FxHashSet;
use darwin_index::{IdSet, IndexConfig, IndexSet, RuleRef};
use darwin_text::embed::EmbedConfig;
use darwin_text::{Corpus, Embeddings};
use darwin_wire::frame::{MIN_SUPPORTED_VERSION, PROTOCOL_VERSION};
use darwin_wire::msg::{
    recv_request, send_response, CorpusSlice, Request, Response, Session, WireClassifierKind,
};
use darwin_wire::{Transport, WireError};
use std::sync::Mutex;
use std::time::Duration;

// ---- shared serve plumbing ----------------------------------------------

fn reply(t: &mut dyn Transport, seq: u64, resp: &Response) -> Result<(), WireError> {
    send_response(t, seq, resp)
}

fn reply_error(t: &mut dyn Transport, seq: u64, message: String) -> Result<(), WireError> {
    reply(t, seq, &Response::Error { message })
}

/// Answer a `Hello` under the negotiation rule: the session speaks
/// `min(client, worker)`; clients older than our support window are
/// refused.
fn answer_hello(t: &mut dyn Transport, seq: u64, version: u8) -> Result<(), WireError> {
    if version < MIN_SUPPORTED_VERSION {
        reply_error(t, seq, format!("protocol version {version} unsupported"))?;
        return Err(WireError::BadVersion {
            got: version,
            want: PROTOCOL_VERSION,
        });
    }
    reply(
        t,
        seq,
        &Response::Hello {
            version: version.min(PROTOCOL_VERSION),
        },
    )
}

// ---- shard worker --------------------------------------------------------

/// The state a shard worker owns after `ShardInit`. The corpus is retained
/// after indexing (the fragment math runs entirely on postings, but a later
/// `CorpusAppend` re-enters the analyzer to grow the index in place).
struct ShardState {
    corpus: Corpus,
    index: IndexSet,
    store: BenefitStore,
    p: IdSet,
    scores: Vec<f32>,
    lo: u32,
    hi: u32,
}

impl ShardState {
    /// Fragments for `rules`, sorted by rule — what mutation replies carry.
    fn deltas(&self, mut rules: Vec<RuleRef>) -> Response {
        rules.sort_unstable();
        rules.dedup();
        let changed = rules
            .into_iter()
            .filter_map(|r| self.store.agg(r).map(|a| (r, agg_to_wire(a))))
            .collect();
        Response::FragmentDeltas { changed }
    }

    /// Tracked rules covering any of `ids` (the fragments a positive or
    /// score delta can move).
    fn affected(&self, ids: impl Iterator<Item = u32>) -> Vec<RuleRef> {
        let mut out: FxHashSet<RuleRef> = FxHashSet::default();
        for id in ids {
            for r in self.index.rules_covering(id) {
                if self.store.contains(r) {
                    out.insert(r);
                }
            }
        }
        out.into_iter().collect()
    }
}

/// Serve the shard-worker protocol over `t` until shutdown or disconnect.
///
/// The worker is initialized by the first `ShardInit` (corpus texts are
/// re-analyzed and re-indexed — deterministic, so rule handles agree with
/// the coordinator's), then applies tracking/delta/rebuild requests to its
/// span-scoped [`BenefitStore`], replying with the changed fragments.
pub fn serve_shard(t: &mut dyn Transport) -> Result<(), WireError> {
    let mut state: Option<ShardState> = None;
    loop {
        let Some((seq, req)) = recv_request(t)? else {
            return Ok(()); // coordinator hung up: done
        };
        match req {
            Request::Hello { version } => answer_hello(t, seq, version)?,
            Request::Shutdown => {
                reply(t, seq, &Response::Ack)?;
                return Ok(());
            }
            Request::ShardInit {
                corpus,
                index,
                lo,
                hi,
                positives,
                scores,
            } => {
                // Validate the whole init against the shipped corpus
                // before touching any state — a malformed frame must be
                // a clean Error reply, never a panic.
                let n_texts = corpus.texts.len() as u32;
                if hi < lo || hi > n_texts {
                    reply_error(
                        t,
                        seq,
                        format!("span {lo}..{hi} outside corpus 0..{n_texts}"),
                    )?;
                    continue;
                }
                if scores.len() != (hi - lo) as usize {
                    reply_error(t, seq, "span scores length mismatch".into())?;
                    continue;
                }
                if positives.iter().any(|&id| id < lo || id >= hi) {
                    reply_error(t, seq, "initial positive outside the span".into())?;
                    continue;
                }
                let corpus = match corpus.restore() {
                    Ok(c) => c,
                    Err(e) => {
                        reply_error(t, seq, e.to_string())?;
                        continue;
                    }
                };
                // Workers index sequentially regardless of the
                // coordinator's build parallelism — both constructions are
                // deterministic and identical.
                let index_cfg = IndexConfig {
                    threads: 1,
                    ..index
                };
                let index = IndexSet::build(&corpus, &index_cfg);
                let n = corpus.len();
                let mut full_scores = vec![0.0f32; n];
                full_scores[lo as usize..hi as usize].copy_from_slice(&scores);
                state = Some(ShardState {
                    p: IdSet::from_ids(&positives, n),
                    store: BenefitStore::for_span(lo, hi),
                    index,
                    scores: full_scores,
                    lo,
                    hi,
                    corpus,
                });
                reply(t, seq, &Response::Ack)?;
            }
            other => {
                let Some(s) = state.as_mut() else {
                    reply_error(t, seq, "shard worker not initialized".into())?;
                    continue;
                };
                let resp = shard_request(s, other);
                reply(t, seq, &resp)?;
            }
        }
    }
}

/// Apply one post-init request to the shard state.
fn shard_request(s: &mut ShardState, req: Request) -> Response {
    match req {
        Request::Track { rules } => {
            if let Some(r) = rules.iter().find(|r| !s.index.contains_rule(**r)) {
                return Response::Error {
                    message: format!("unknown rule handle {r:?} for this shard's index"),
                };
            }
            let missing: Vec<RuleRef> = rules
                .iter()
                .copied()
                .filter(|r| !s.store.contains(*r))
                .collect();
            s.store
                .track(rules.iter().copied(), &s.index, &s.p, &s.scores, 1);
            s.deltas(missing)
        }
        Request::TrackScored { cands } => {
            if let Some(c) = cands.iter().find(|c| !s.index.contains_rule(c.rule)) {
                return Response::Error {
                    message: format!("unknown rule handle {:?} for this shard's index", c.rule),
                };
            }
            let cands: Vec<crate::candidates::Candidate> = cands
                .into_iter()
                .map(|c| crate::candidates::Candidate {
                    rule: c.rule,
                    overlap: c.overlap as usize,
                    count: c.count as usize,
                })
                .collect();
            let missing: Vec<RuleRef> = cands
                .iter()
                .map(|c| c.rule)
                .filter(|r| !s.store.contains(*r))
                .collect();
            s.store.track_scored(&cands, &s.index, &s.p, &s.scores, 1);
            s.deltas(missing)
        }
        Request::Rebuild { scores } => {
            if scores.len() != (s.hi - s.lo) as usize {
                return Response::Error {
                    message: "rebuild scores length mismatch".into(),
                };
            }
            s.scores[s.lo as usize..s.hi as usize].copy_from_slice(&scores);
            s.store.rebuild(&s.index, &s.p, &s.scores, 1);
            let all: Vec<RuleRef> = s.store.tracked().map(|(r, _)| r).collect();
            s.deltas(all)
        }
        Request::Retain { keep } => {
            let keep: FxHashSet<RuleRef> = keep.into_iter().collect();
            s.store.retain(|r| keep.contains(&r));
            Response::Ack
        }
        Request::PositivesAdded { ids } => {
            if ids
                .iter()
                .any(|&id| id < s.lo || id >= s.hi || s.p.contains(id))
            {
                return Response::Error {
                    message: "positive id outside span or already positive".into(),
                };
            }
            let affected = s.affected(ids.iter().copied());
            // Pre-retrain scores are still current here — exactly what the
            // fragments reflect (the coordinator sends positives before
            // any score message of the retrain that follows).
            s.store.on_positives_added(&ids, &s.index, &s.scores);
            s.p.extend_from_slice(&ids);
            s.deltas(affected)
        }
        Request::ScoresChanged { changes } => {
            if changes.iter().any(|&(id, _, _)| id < s.lo || id >= s.hi) {
                return Response::Error {
                    message: "score change outside span".into(),
                };
            }
            let affected = s.affected(
                changes
                    .iter()
                    .filter(|&&(id, _, _)| !s.p.contains(id))
                    .map(|&(id, _, _)| id),
            );
            s.store.on_scores_changed(&changes, &s.p, &s.index);
            for &(id, _, new) in &changes {
                s.scores[id as usize] = new;
            }
            s.deltas(affected)
        }
        Request::Fragments { rules } => Response::Fragments {
            aggs: rules
                .into_iter()
                .map(|r| s.store.agg(r).map(agg_to_wire))
                .collect(),
        },
        Request::CorpusAppend {
            texts,
            new_hi,
            scores,
        } => {
            // Validate everything before mutating: a refused append must
            // leave the worker exactly where it was.
            let old_hi = s.hi;
            let grown = s.corpus.len() + texts.len();
            if new_hi < old_hi || (new_hi as usize) > grown {
                return Response::Error {
                    message: format!(
                        "append span {old_hi}..{new_hi} outside grown corpus 0..{grown}"
                    ),
                };
            }
            if scores.len() != (new_hi - old_hi) as usize {
                return Response::Error {
                    message: "append scores length mismatch".into(),
                };
            }
            if s.index.config().min_count > 1 {
                return Response::Error {
                    message: "cannot append to a pruned index".into(),
                };
            }
            s.corpus.append_texts(texts.iter(), 1);
            if let Err(e) = s.index.append(&s.corpus) {
                return Response::Error {
                    message: e.to_string(),
                };
            }
            // Appended ids outside the (possibly unchanged) span keep the
            // zero placeholder, exactly like init.
            s.scores.resize(s.corpus.len(), 0.0);
            s.scores[old_hi as usize..new_hi as usize].copy_from_slice(&scores);
            let new_owned: Vec<u32> = (old_hi..new_hi).collect();
            let affected = s.affected(new_owned.iter().copied());
            s.store.extend_span(new_hi);
            s.store.on_ids_appended(&new_owned, &s.index, &s.scores);
            s.hi = new_hi;
            s.deltas(affected)
        }
        other => Response::Error {
            message: format!("not a shard request: {other:?}"),
        },
    }
}

// ---- oracle worker -------------------------------------------------------

/// Serve the oracle protocol over `t` until shutdown or disconnect:
/// `Submit` asks the local oracle immediately, `Poll` delivers everything
/// answered since the last poll, sorted by question id — the wire twin of
/// [`crate::Immediate`], so driving the batch loop through a
/// [`WireOracle`] + `serve_oracle` pair replays the local trace.
pub fn serve_oracle(
    t: &mut dyn Transport,
    corpus: &Corpus,
    oracle: &mut dyn Oracle,
) -> Result<(), WireError> {
    let mut ready: Vec<(u64, bool)> = Vec::new();
    loop {
        let Some((seq, req)) = recv_request(t)? else {
            return Ok(());
        };
        match req {
            Request::Hello { version } => answer_hello(t, seq, version)?,
            Request::Shutdown => {
                reply(t, seq, &Response::Ack)?;
                return Ok(());
            }
            Request::Submit {
                qid,
                rule,
                coverage,
            } => {
                let answer = oracle.ask(corpus, &rule, &coverage);
                ready.push((qid, answer));
                reply(t, seq, &Response::Ack)?;
            }
            Request::Poll { timeout_ms: _ } => {
                // Answers are computed at submit, so nothing to wait for.
                let mut answers = std::mem::take(&mut ready);
                answers.sort_unstable_by_key(|&(qid, _)| qid);
                reply(t, seq, &Response::Answers { answers })?;
            }
            other => reply_error(t, seq, format!("not an oracle request: {other:?}"))?,
        }
    }
}

/// Coordinator-side [`AsyncOracle`] speaking to a [`serve_oracle`] worker.
///
/// A transport failure makes the oracle go *silent and unhealthy*: `poll`
/// returns nothing forever, [`AsyncOracle::healthy`] reports `false`, and
/// the wave driver abandons the in-flight questions — PR 4's silent-oracle
/// path, now reachable from a dead worker. The failure is kept in
/// [`WireOracle::last_error`].
pub struct WireOracle {
    session: Session,
    in_flight: usize,
    submitted: usize,
    error: Option<WireError>,
}

impl WireOracle {
    /// Handshake with an oracle worker.
    pub fn connect(transport: Box<dyn Transport>) -> Result<WireOracle, WireError> {
        let mut session = Session::new(transport);
        session.hello()?;
        Ok(WireOracle {
            session,
            in_flight: 0,
            submitted: 0,
            error: None,
        })
    }

    /// The wire failure that silenced this oracle, if any.
    pub fn last_error(&self) -> Option<&WireError> {
        self.error.as_ref()
    }

    fn fail(&mut self, e: WireError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn poll_with(&mut self, timeout_ms: u64) -> Vec<(QuestionId, bool)> {
        if self.in_flight == 0 || self.error.is_some() {
            return Vec::new();
        }
        match self.session.call(&Request::Poll { timeout_ms }) {
            Ok(Response::Answers { answers }) => {
                self.in_flight = self.in_flight.saturating_sub(answers.len());
                answers
                    .into_iter()
                    .map(|(qid, a)| (QuestionId(qid), a))
                    .collect()
            }
            Ok(other) => {
                self.fail(WireError::Protocol(format!(
                    "poll expected Answers, got {other:?}"
                )));
                Vec::new()
            }
            Err(e) => {
                self.fail(e);
                Vec::new()
            }
        }
    }
}

impl AsyncOracle for WireOracle {
    fn submit(
        &mut self,
        qid: QuestionId,
        _corpus: &Corpus,
        rule: &darwin_grammar::Heuristic,
        coverage: &[u32],
    ) {
        self.submitted += 1;
        if self.error.is_some() {
            return; // already silent; the driver will abandon
        }
        let req = Request::Submit {
            qid: qid.0,
            rule: rule.clone(),
            coverage: coverage.to_vec(),
        };
        match self.session.call(&req) {
            Ok(Response::Ack) => self.in_flight += 1,
            Ok(other) => self.fail(WireError::Protocol(format!(
                "submit expected Ack, got {other:?}"
            ))),
            Err(e) => self.fail(e),
        }
    }

    fn poll(&mut self) -> Vec<(QuestionId, bool)> {
        self.poll_with(0)
    }

    fn poll_deadline(&mut self, timeout: Duration) -> Vec<(QuestionId, bool)> {
        self.poll_with(timeout.as_millis() as u64)
    }

    fn queries(&self) -> usize {
        self.submitted
    }

    fn healthy(&self) -> bool {
        self.error.is_none()
    }
}

// ---- classifier worker ---------------------------------------------------

// `warm_start` is deliberately *not* carried on the wire: it is a local
// buffer-reuse knob that cannot change any trained weight (warm fits are
// bit-identical to cold fits by construction), so the protocol stays at
// its existing version and workers simply run their own default.
fn kind_to_wire(kind: &ClassifierKind) -> WireClassifierKind {
    match kind {
        ClassifierKind::Cnn(c) => WireClassifierKind::Cnn {
            widths: c.widths.iter().map(|&w| w as u32).collect(),
            filters: c.filters as u32,
            hidden: c.hidden as u32,
            max_len: c.max_len as u32,
            epochs: c.epochs as u32,
            lr: c.lr,
            batch: c.batch as u32,
        },
        ClassifierKind::LogReg(c) => WireClassifierKind::LogReg {
            epochs: c.epochs as u32,
            lr: c.lr,
            l2: c.l2,
            l2_bow: c.l2_bow,
        },
    }
}

fn kind_from_wire(kind: &WireClassifierKind) -> ClassifierKind {
    match kind {
        WireClassifierKind::Cnn {
            widths,
            filters,
            hidden,
            max_len,
            epochs,
            lr,
            batch,
        } => ClassifierKind::Cnn(CnnConfig {
            widths: widths.iter().map(|&w| w as usize).collect(),
            filters: *filters as usize,
            hidden: *hidden as usize,
            max_len: *max_len as usize,
            epochs: *epochs as usize,
            lr: *lr,
            batch: *batch as usize,
            warm_start: true,
        }),
        WireClassifierKind::LogReg {
            epochs,
            lr,
            l2,
            l2_bow,
        } => ClassifierKind::LogReg(LogRegConfig {
            epochs: *epochs as usize,
            lr: *lr,
            l2: *l2,
            l2_bow: *l2_bow,
            warm_start: true,
        }),
    }
}

/// Serve the classifier protocol over `t` until shutdown or disconnect:
/// `ClassifierInit` re-analyzes the corpus, retrains embeddings with the
/// shipped seed (deterministic — bit-identical to the coordinator's) and
/// builds the described classifier; `Fit` and `PredictBatch` then forward
/// to it.
pub fn serve_classifier(t: &mut dyn Transport) -> Result<(), WireError> {
    struct State {
        corpus: Corpus,
        emb: Embeddings,
        clf: Box<dyn TextClassifier>,
    }
    let mut state: Option<State> = None;
    loop {
        let Some((seq, req)) = recv_request(t)? else {
            return Ok(());
        };
        match req {
            Request::Hello { version } => answer_hello(t, seq, version)?,
            Request::Shutdown => {
                reply(t, seq, &Response::Ack)?;
                return Ok(());
            }
            Request::ClassifierInit {
                corpus,
                embed_seed,
                kind,
                model_seed,
            } => {
                let corpus = match corpus.restore() {
                    Ok(c) => c,
                    Err(e) => {
                        reply_error(t, seq, e.to_string())?;
                        continue;
                    }
                };
                let emb = Embeddings::train(
                    &corpus,
                    &EmbedConfig {
                        seed: embed_seed,
                        ..Default::default()
                    },
                );
                let clf = kind_from_wire(&kind).build(&emb, model_seed);
                state = Some(State { corpus, emb, clf });
                reply(t, seq, &Response::Ack)?;
            }
            Request::Fit { pos, neg } => match state.as_mut() {
                None => reply_error(t, seq, "classifier worker not initialized".into())?,
                Some(s) => {
                    s.clf.fit(&s.corpus, &s.emb, &pos, &neg);
                    reply(t, seq, &Response::Ack)?;
                }
            },
            Request::PredictBatch { ids } => match state.as_mut() {
                None => reply_error(t, seq, "classifier worker not initialized".into())?,
                Some(s) => {
                    if ids.iter().any(|&id| id as usize >= s.corpus.len()) {
                        reply_error(t, seq, "prediction id out of range".into())?;
                        continue;
                    }
                    let mut scores = Vec::with_capacity(ids.len());
                    s.clf.predict_batch(&s.corpus, &s.emb, &ids, &mut scores);
                    reply(t, seq, &Response::Scores { scores })?;
                }
            },
            Request::CorpusAppend {
                texts,
                new_hi,
                scores: _,
            } => match state.as_mut() {
                None => reply_error(t, seq, "classifier worker not initialized".into())?,
                Some(s) => {
                    if s.corpus.len() + texts.len() != new_hi as usize {
                        reply_error(t, seq, "append length disagrees with coordinator".into())?;
                        continue;
                    }
                    s.corpus.append_texts(texts.iter(), 1);
                    // The embedding table is frozen at init; OOV tokens get
                    // the deterministic zero row, so featurization agrees
                    // with a coordinator that grew the same way.
                    s.emb.grow_to(s.corpus.vocab().len());
                    reply(t, seq, &Response::Ack)?;
                }
            },
            other => reply_error(t, seq, format!("not a classifier request: {other:?}"))?,
        }
    }
}

/// Coordinator-side [`TextClassifier`] that trains and scores in a
/// [`serve_classifier`] worker — `predict_batch` over the wire, so remote
/// shards can score without sharing memory.
///
/// `TextClassifier`'s surface is infallible, so a wire failure degrades to
/// *neutral* scores (0.5 — the score every sentence starts with) and is
/// recorded in [`WireClassifier::last_error`]; callers that care check it
/// after a pass. Scores that do arrive are the worker's bit-exact output.
pub struct WireClassifier {
    link: Mutex<(Session, Option<WireError>)>,
}

impl WireClassifier {
    /// Handshake and initialize the worker with the corpus, embedding
    /// seed and classifier recipe. The worker retrains embeddings from
    /// the same seed — deterministic, so features agree bit for bit.
    pub fn connect(
        transport: Box<dyn Transport>,
        corpus: &Corpus,
        embed_seed: u64,
        kind: &ClassifierKind,
        model_seed: u64,
    ) -> Result<WireClassifier, WireError> {
        let mut session = Session::new(transport);
        session.hello()?;
        let req = Request::ClassifierInit {
            corpus: CorpusSlice::full(corpus),
            embed_seed,
            kind: kind_to_wire(kind),
            model_seed,
        };
        match session.call(&req)? {
            Response::Ack => Ok(WireClassifier {
                link: Mutex::new((session, None)),
            }),
            other => Err(WireError::Protocol(format!(
                "classifier init expected Ack, got {other:?}"
            ))),
        }
    }

    /// The wire failure that degraded this classifier, if any.
    pub fn last_error(&self) -> Option<WireError> {
        self.link.lock().unwrap().1.clone()
    }
}

impl TextClassifier for WireClassifier {
    fn fit(&mut self, _corpus: &Corpus, _emb: &Embeddings, pos: &[u32], neg: &[u32]) {
        let link = self.link.get_mut().unwrap();
        if link.1.is_some() {
            return;
        }
        let req = Request::Fit {
            pos: pos.to_vec(),
            neg: neg.to_vec(),
        };
        match link.0.call(&req) {
            Ok(Response::Ack) => {}
            Ok(other) => {
                link.1 = Some(WireError::Protocol(format!(
                    "fit expected Ack, got {other:?}"
                )))
            }
            Err(e) => link.1 = Some(e),
        }
    }

    fn predict(&self, corpus: &Corpus, emb: &Embeddings, id: u32) -> f32 {
        let mut out = Vec::with_capacity(1);
        self.predict_batch(corpus, emb, &[id], &mut out);
        out[0]
    }

    fn predict_batch(&self, _corpus: &Corpus, _emb: &Embeddings, ids: &[u32], out: &mut Vec<f32>) {
        let mut link = self.link.lock().unwrap();
        if link.1.is_none() {
            let req = Request::PredictBatch { ids: ids.to_vec() };
            match link.0.call(&req) {
                Ok(Response::Scores { scores }) if scores.len() == ids.len() => {
                    out.extend_from_slice(&scores);
                    return;
                }
                Ok(other) => {
                    link.1 = Some(WireError::Protocol(format!(
                        "predict expected {} Scores, got {other:?}",
                        ids.len()
                    )))
                }
                Err(e) => link.1 = Some(e),
            }
        }
        out.extend(std::iter::repeat_n(0.5, ids.len()));
    }

    fn corpus_appended(&mut self, texts: &[String], new_len: usize) {
        let link = self.link.get_mut().unwrap();
        if link.1.is_some() {
            return;
        }
        // The worker validates the grown length against its own mirror;
        // the score span is empty because the classifier worker keeps no
        // per-sentence scores (that is the shard workers' state).
        let req = Request::CorpusAppend {
            texts: texts.to_vec(),
            new_hi: new_len as u32,
            scores: Vec::new(),
        };
        match link.0.call(&req) {
            Ok(Response::Ack) => {}
            Ok(other) => {
                link.1 = Some(WireError::Protocol(format!(
                    "corpus append expected Ack, got {other:?}"
                )))
            }
            Err(e) => link.1 = Some(e),
        }
    }
}

// ---- in-process worker spawning -----------------------------------------

/// Spawn a shard worker *thread* per shard over [`darwin_wire::InProc`]
/// channels and return a connector for
/// [`crate::Darwin::with_remote_shards`]. The workers run the exact serve
/// loop a separate process would and exit when the coordinator hangs up.
pub fn inproc_shard_connector() -> Box<ShardConnector> {
    Box::new(|_s, _range| {
        let (client, mut server) = darwin_wire::InProc::pair();
        std::thread::spawn(move || {
            let _ = serve_shard(&mut server);
        });
        Ok(Box::new(client))
    })
}

/// Spawn a classifier worker *thread* over a [`darwin_wire::InProc`]
/// channel and return a connector for
/// [`crate::Darwin::with_remote_classifier`]. The worker runs the exact
/// serve loop a separate process would and exits when the coordinator
/// hangs up.
pub fn inproc_classifier_connector() -> Box<crate::pipeline::ClassifierConnector> {
    Box::new(|| {
        let (client, mut server) = darwin_wire::InProc::pair();
        std::thread::spawn(move || {
            let _ = serve_classifier(&mut server);
        });
        Ok(Box::new(client))
    })
}

/// Spawn an oracle worker thread serving `oracle` over the given corpus
/// (both moved into the thread) and return the connected [`WireOracle`].
pub fn inproc_wire_oracle<O>(corpus: Corpus, oracle: O) -> Result<WireOracle, WireError>
where
    O: Oracle + Send + 'static,
{
    let (client, mut server) = darwin_wire::InProc::pair();
    std::thread::spawn(move || {
        let mut oracle = oracle;
        let _ = serve_oracle(&mut server, &corpus, &mut oracle);
    });
    WireOracle::connect(Box::new(client))
}

/// Spawn a classifier worker thread and return the connected
/// [`WireClassifier`].
pub fn inproc_wire_classifier(
    corpus: &Corpus,
    embed_seed: u64,
    kind: &ClassifierKind,
    model_seed: u64,
) -> Result<WireClassifier, WireError> {
    let (client, mut server) = darwin_wire::InProc::pair();
    std::thread::spawn(move || {
        let _ = serve_classifier(&mut server);
    });
    WireClassifier::connect(Box::new(client), corpus, embed_seed, kind, model_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use darwin_grammar::Heuristic;

    fn corpus() -> (Corpus, Vec<bool>) {
        let c = Corpus::from_texts([
            "the shuttle to the airport leaves hourly",
            "is there a shuttle to the airport tonight",
            "a bus to the airport runs daily",
            "order pizza to the room please",
            "the pool opens at nine daily",
        ]);
        (c, vec![true, true, true, false, false])
    }

    #[test]
    fn wire_oracle_mirrors_immediate_semantics() {
        let (c, labels) = corpus();
        let rule = Heuristic::phrase(&c, "shuttle").unwrap();
        // The worker thread owns its oracle, so give it 'static labels.
        let labels: &'static [bool] = Box::leak(labels.into_boxed_slice());
        let mut o = inproc_wire_oracle(c.clone(), GroundTruthOracle::new(labels, 0.8)).unwrap();
        assert!(o.poll().is_empty(), "no blocking when nothing in flight");
        o.submit(QuestionId(0), &c, &rule, &[0, 1]);
        o.submit(QuestionId(1), &c, &rule, &[3, 4]);
        let got = o.poll();
        assert_eq!(got, vec![(QuestionId(0), true), (QuestionId(1), false)]);
        assert!(o.poll().is_empty(), "answers deliver exactly once");
        assert_eq!(o.queries(), 2);
        assert!(o.healthy());
    }

    #[test]
    fn wire_oracle_goes_silent_on_dead_worker() {
        let (c, _labels) = corpus();
        let rule = Heuristic::phrase(&c, "shuttle").unwrap();
        let mut o = WireOracle {
            session: Session::new(Box::new(darwin_wire::DeadTransport)),
            in_flight: 0,
            submitted: 0,
            error: None,
        };
        o.submit(QuestionId(0), &c, &rule, &[0]);
        assert!(!o.healthy());
        assert!(o.poll().is_empty());
        assert_eq!(o.last_error(), Some(&WireError::Disconnected));
        assert_eq!(o.queries(), 1, "submissions still count as spent");
    }

    #[test]
    fn wire_classifier_matches_local_bit_for_bit() {
        let (c, _) = corpus();
        let kind = ClassifierKind::logreg();
        let emb = Embeddings::train(
            &c,
            &EmbedConfig {
                seed: 7,
                ..Default::default()
            },
        );
        let mut local = kind.build(&emb, 9);
        local.fit(&c, &emb, &[0, 1], &[3, 4]);
        let mut remote = inproc_wire_classifier(&c, 7, &kind, 9).unwrap();
        remote.fit(&c, &emb, &[0, 1], &[3, 4]);
        let ids: Vec<u32> = (0..c.len() as u32).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        local.predict_batch(&c, &emb, &ids, &mut a);
        remote.predict_batch(&c, &emb, &ids, &mut b);
        assert_eq!(a, b, "wire scores must be bit-identical");
        assert_eq!(remote.predict(&c, &emb, 0), a[0]);
        assert!(remote.last_error().is_none());
    }

    #[test]
    fn wire_classifier_degrades_to_neutral_on_failure() {
        let clf = WireClassifier {
            link: Mutex::new((Session::new(Box::new(darwin_wire::DeadTransport)), None)),
        };
        let (c, _) = corpus();
        let emb = Embeddings::train(&c, &EmbedConfig::default());
        let mut out = Vec::new();
        clf.predict_batch(&c, &emb, &[0, 1], &mut out);
        assert_eq!(out, vec![0.5, 0.5]);
        assert_eq!(clf.last_error(), Some(WireError::Disconnected));
    }

    /// A malformed init — span past the corpus, inverted span, positives
    /// outside the span — must be a clean remote error, never a worker
    /// panic, and the loop must survive to accept a valid init.
    #[test]
    fn shard_worker_validates_init_spans() {
        let (c, _labels) = corpus();
        let (client, mut server) = darwin_wire::InProc::pair();
        let handle = std::thread::spawn(move || serve_shard(&mut server));
        let mut session = Session::new(Box::new(client));
        session.hello().unwrap();
        let slice = CorpusSlice::full(&c);
        let bad_inits = [
            (0u32, 10u32, vec![], vec![0.5; 10]), // hi past the corpus
            (3, 1, vec![], vec![]),               // inverted span
            (0, 3, vec![4], vec![0.5; 3]),        // positive outside span
            (0, 3, vec![0], vec![0.5; 2]),        // scores length mismatch
        ];
        for (lo, hi, positives, scores) in bad_inits {
            let err = session
                .call(&Request::ShardInit {
                    corpus: slice.clone(),
                    index: IndexConfig::small(),
                    lo,
                    hi,
                    positives,
                    scores,
                })
                .unwrap_err();
            assert!(matches!(err, WireError::Remote(_)), "got {err:?}");
        }
        // The loop survived all of it: a valid init still works.
        let ok = session.call(&Request::ShardInit {
            corpus: slice,
            index: IndexConfig::small(),
            lo: 0,
            hi: c.len() as u32,
            positives: vec![0],
            scores: vec![0.5; c.len()],
        });
        assert_eq!(ok.unwrap(), Response::Ack);
        session.call(&Request::Shutdown).unwrap();
        assert!(handle.join().unwrap().is_ok());
    }

    /// Rule handles arrive over the wire as raw node ids; an out-of-range
    /// phrase node, or a tree pattern sent to a worker whose index was
    /// built without TreeMatch, must come back as a clean remote error —
    /// not a slice panic — and the worker must survive to serve valid
    /// requests.
    #[test]
    fn shard_worker_rejects_unknown_rule_handles() {
        let (c, _labels) = corpus();
        let (client, mut server) = darwin_wire::InProc::pair();
        let handle = std::thread::spawn(move || serve_shard(&mut server));
        let mut session = Session::new(Box::new(client));
        session.hello().unwrap();
        session
            .call(&Request::ShardInit {
                corpus: CorpusSlice::full(&c),
                index: IndexConfig {
                    enable_tree: false,
                    ..IndexConfig::small()
                },
                lo: 0,
                hi: c.len() as u32,
                positives: vec![0],
                scores: vec![0.5; c.len()],
            })
            .unwrap();
        let bad = [
            RuleRef::Phrase(u32::MAX), // out-of-range trie node
            RuleRef::Tree(0),          // no tree index in this worker
        ];
        for r in bad {
            let err = session
                .call(&Request::Track { rules: vec![r] })
                .unwrap_err();
            assert!(matches!(err, WireError::Remote(_)), "got {err:?}");
        }
        // The loop survived: a valid handle still tracks.
        let resp = session
            .call(&Request::Track {
                rules: vec![RuleRef::Root],
            })
            .unwrap();
        assert!(
            matches!(resp, Response::FragmentDeltas { .. }),
            "got {resp:?}"
        );
        session.call(&Request::Shutdown).unwrap();
        assert!(handle.join().unwrap().is_ok());
    }

    /// The execution-layer invariance contract for the classifier
    /// boundary: a full run with the classifier behind an in-process wire
    /// worker replays the local run's trace and scores bit for bit.
    #[test]
    fn remote_classifier_run_replays_local_trace() {
        use crate::config::DarwinConfig;
        use crate::pipeline::{Darwin, Seed};
        use darwin_index::IndexSet;

        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            texts.push(format!("is there a shuttle to the airport at {i}"));
            labels.push(true);
            texts.push(format!("is there a bus to the airport at {i}"));
            labels.push(true);
        }
        for i in 0..15 {
            texts.push(format!("order a pizza with {i} toppings to the room"));
            labels.push(false);
            texts.push(format!("the pool opens at {i} for guests"));
            labels.push(false);
        }
        let corpus = Corpus::from_texts(texts.iter());
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let cfg = DarwinConfig::fast().with_budget(8);
        let seed = || Seed::Rule(Heuristic::phrase(&corpus, "shuttle to the airport").unwrap());

        let local = Darwin::new(&corpus, &index, cfg.clone());
        let mut o = GroundTruthOracle::new(&labels, 0.8);
        let a = local.run(seed(), &mut o);

        let remote =
            Darwin::new(&corpus, &index, cfg).with_remote_classifier(inproc_classifier_connector());
        let mut o = GroundTruthOracle::new(&labels, 0.8);
        let b = remote.run(seed(), &mut o);

        assert!(b.wire_error.is_none(), "{:?}", b.wire_error);
        assert_eq!(a.positives, b.positives);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(&b.trace) {
            assert_eq!(x.rule, y.rule);
            assert_eq!(x.answer, y.answer);
            assert_eq!(x.new_positive_ids, y.new_positive_ids);
        }
        assert_eq!(a.scores, b.scores, "scores bit-identical across the wire");
    }

    /// A classifier connector whose transport is dead must abort the run
    /// cleanly before the first question — never panic, never silently run
    /// a local classifier the caller believes is remote.
    #[test]
    fn remote_classifier_connect_failure_aborts_cleanly() {
        use crate::config::DarwinConfig;
        use crate::pipeline::{Darwin, Seed};
        use darwin_index::IndexSet;

        let (c, labels) = corpus();
        let index = IndexSet::build(&c, &IndexConfig::small());
        let darwin = Darwin::new(&c, &index, DarwinConfig::fast().with_budget(4))
            .with_remote_classifier(Box::new(|| Ok(Box::new(darwin_wire::DeadTransport))));
        let mut o = GroundTruthOracle::new(&labels, 0.8);
        let run = darwin.run(
            Seed::Rule(Heuristic::phrase(&c, "shuttle").unwrap()),
            &mut o,
        );
        assert!(run.wire_error.is_some(), "dead transport must surface");
        assert!(run.trace.is_empty(), "no questions after an aborted init");
    }

    #[test]
    fn shard_worker_rejects_garbage_without_dying() {
        let (client, mut server) = darwin_wire::InProc::pair();
        let handle = std::thread::spawn(move || serve_shard(&mut server));
        let mut session = Session::new(Box::new(client));
        session.hello().unwrap();
        // Track before init: a clean remote error, and the loop survives.
        let err = session.call(&Request::Track { rules: vec![] }).unwrap_err();
        assert!(matches!(err, WireError::Remote(_)));
        // An oracle request to a shard worker: same.
        let err = session.call(&Request::Poll { timeout_ms: 0 }).unwrap_err();
        assert!(matches!(err, WireError::Remote(_)));
        session.call(&Request::Shutdown).unwrap();
        assert!(handle.join().unwrap().is_ok());
    }
}

//! Labeling under updates: append-delta corpora at wave barriers.
//!
//! A Darwin run is dimensioned to its corpus — scores, shard spans,
//! frontier memos and benefit aggregates are all indexed by sentence id —
//! so the classic pipeline treats the corpus as frozen for the lifetime
//! of a session. [`StreamSession`] lifts that restriction for the one
//! mutation real labeling deployments need: **appending** new sentences
//! while a session is underway.
//!
//! The session owns the corpus, the index and the embeddings, and drives
//! the async question loop in *segments* ([`crate::batch`]'s wave
//! protocol). Between segments — always at a wave barrier, the only
//! point where no question is in flight, feedback is applied and the
//! retrain (if any) is done — the engine is decomposed into its owned
//! parts ([`Engine::into_parts`]), the corpus grows, and every
//! id-dimensioned structure grows with it:
//!
//! * the corpus appends in place (existing ids, symbols and the vocabulary
//!   prefix untouched — `darwin_text::Corpus::append_texts`),
//! * the index grows by delta ([`IndexSet::append`]; `min_count == 1`
//!   indexes only — pruning renumbers nodes) producing an identical index
//!   to a from-scratch rebuild on the grown corpus,
//! * the embeddings zero-pad ([`darwin_text::Embeddings::grow_to`]) —
//!   appends never retrain embeddings,
//! * the engine reconciles via [`Engine::apply_append`]: score cache
//!   (appended ids at the 0.5 neutral prior), benefit store (local spans
//!   and remote workers, via the `CorpusAppend` wire frame), frontier
//!   memo (dense-id remap), coverage cap, hierarchy.
//!
//! **Epoch discipline**: the shard partition (`ShardMap`) freezes its
//! chunk split when it grows — appended ids fold into the *last* shard's
//! span — and is re-partitioned only when a fresh map is built (a new
//! session, a resume). Within a session the split is therefore stable
//! across appends, which is what lets remote workers grow in place
//! instead of being redistributed.
//!
//! **The equivalence contract**: a session that appends at barriers and
//! continues is bit-identical — trace, positives, scores — to one that
//! rebuilt the index (and benefit aggregates, and frontier) from scratch
//! on the grown corpus at the same barrier ([`AppendMode::Rebuild`], the
//! reference path the suites compare against). Shards, threads and
//! transport stay pure perf knobs throughout.

use crate::batch::{drive_segment, AsyncRunResult, CostModel, SegmentEnd};
use crate::engine::{Engine, EngineFlavor, EngineParts};
use crate::oracle::AsyncOracle;
use crate::pipeline::{ClassifierConnector, Darwin, Seed};
use crate::shard::ShardConnector;
use crate::snapshot::SessionCounters;
use crate::traversal::Strategy;
use crate::DarwinConfig;
use darwin_index::{AppendError, IndexSet};
use darwin_text::embed::EmbedConfig;
use darwin_text::{Corpus, Embeddings};

/// How [`StreamSession::append`] grows the index (and the structures
/// derived from it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppendMode {
    /// Grow in place: [`IndexSet::append`], benefit aggregates folded by
    /// delta, frontier memo remapped. The production path.
    Delta,
    /// Rebuild from scratch on the grown corpus: fresh index build, full
    /// benefit recomputation, frontier memo reset. Identical output by
    /// the append-equivalence contract — this is the reference the
    /// equivalence suites compare [`AppendMode::Delta`] against.
    Rebuild,
}

/// What a [`StreamSession::drive`] call left behind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamStatus {
    /// The session stopped at the requested wave barrier; the engine is
    /// held live and [`StreamSession::append`] /
    /// [`StreamSession::drive`] may continue it.
    Suspended,
    /// The run completed — [`StreamSession::result`] has the output.
    Finished,
}

/// The engine between segments: decomposed but alive (classifier trained,
/// remote sessions connected, frontier memo warm).
struct Dormant {
    parts: EngineParts,
    strategy: Box<dyn Strategy>,
}

/// An interactive labeling session over a corpus that grows.
///
/// ```no_run
/// # use darwin_core::stream::StreamSession;
/// # use darwin_core::{DarwinConfig, GroundTruthOracle, Immediate, Seed};
/// # use darwin_index::{IndexConfig, IndexSet};
/// # use darwin_text::Corpus;
/// # let labels = vec![true; 64];
/// let corpus = Corpus::from_texts(["a seed sentence to label"]);
/// let index = IndexSet::build(&corpus, &IndexConfig { min_count: 1, ..Default::default() });
/// let mut session = StreamSession::new(corpus, index, DarwinConfig::fast(), Seed::Positives(vec![0]));
/// let mut oracle = Immediate::new(GroundTruthOracle::new(&labels, 0.8));
/// session.drive(&mut oracle, Some(2)); // run to the second wave barrier
/// session.append(["a sentence that arrived mid-session"]).unwrap();
/// session.drive(&mut oracle, None); // drive the grown corpus to completion
/// let result = session.into_result().unwrap();
/// ```
pub struct StreamSession {
    corpus: Corpus,
    index: IndexSet,
    /// `Some` between segments; taken while a `Darwin` view exists.
    emb: Option<Embeddings>,
    cfg: DarwinConfig,
    mode: AppendMode,
    /// Consumed by the first segment's `Engine::new`.
    seed: Option<Seed>,
    /// Consumed by the first segment's `Darwin` (the engine's remote
    /// sessions outlive the view that connected them).
    remote: Option<Box<ShardConnector>>,
    remote_clf: Option<Box<ClassifierConnector>>,
    live: Option<Dormant>,
    counters: SessionCounters,
    result: Option<AsyncRunResult>,
}

impl StreamSession {
    /// Create a session, training embeddings over the initial corpus
    /// (appended sentences reuse them — embeddings are grown by
    /// zero-padding, never retrained, so a word first seen in an append
    /// contributes a zero vector exactly as an OOV word does).
    pub fn new(corpus: Corpus, index: IndexSet, cfg: DarwinConfig, seed: Seed) -> StreamSession {
        let emb = Embeddings::train(
            &corpus,
            &EmbedConfig {
                seed: cfg.seed,
                ..Default::default()
            },
        );
        StreamSession::with_embeddings(corpus, index, cfg, seed, emb)
    }

    /// Create with pre-trained embeddings.
    pub fn with_embeddings(
        corpus: Corpus,
        index: IndexSet,
        cfg: DarwinConfig,
        seed: Seed,
        emb: Embeddings,
    ) -> StreamSession {
        StreamSession {
            corpus,
            index,
            emb: Some(emb),
            cfg,
            mode: AppendMode::Delta,
            seed: Some(seed),
            remote: None,
            remote_clf: None,
            live: None,
            counters: SessionCounters::default(),
            result: None,
        }
    }

    /// Distribute the benefit shards to workers — see
    /// [`Darwin::with_remote_shards`]. Appends reach the workers through
    /// the `CorpusAppend` frame; the epoch discipline above keeps each
    /// worker's span stable (only the last shard's span grows).
    pub fn with_remote_shards(mut self, connect: Box<ShardConnector>) -> StreamSession {
        self.remote = Some(connect);
        self
    }

    /// Train and score the classifier in a worker — see
    /// [`Darwin::with_remote_classifier`]. The worker mirrors the corpus,
    /// so appends forward to it (and its embeddings zero-pad in step with
    /// the coordinator's).
    pub fn with_remote_classifier(mut self, connect: Box<ClassifierConnector>) -> StreamSession {
        self.remote_clf = Some(connect);
        self
    }

    /// Select the append path (default [`AppendMode::Delta`]).
    pub fn with_append_mode(mut self, mode: AppendMode) -> StreamSession {
        self.mode = mode;
        self
    }

    /// The corpus as of now (base plus every append so far).
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The index over the current corpus.
    pub fn index(&self) -> &IndexSet {
        &self.index
    }

    /// Cumulative wave barriers crossed.
    pub fn waves(&self) -> u64 {
        self.counters.waves
    }

    /// The completed run, once [`StreamStatus::Finished`].
    pub fn result(&self) -> Option<&AsyncRunResult> {
        self.result.as_ref()
    }

    /// Consume the session into the completed run (`None` if it never
    /// finished).
    pub fn into_result(self) -> Option<AsyncRunResult> {
        self.result
    }

    /// Drive the question loop until the *cumulative* wave count reaches
    /// `until_waves` (`None` = to completion). Stopping points are wave
    /// barriers — the same points [`Darwin::snapshot`] may suspend at —
    /// so a stopped session is always in a state an append can reconcile.
    pub fn drive(
        &mut self,
        oracle: &mut dyn AsyncOracle,
        until_waves: Option<u64>,
    ) -> StreamStatus {
        if self.result.is_some() {
            return StreamStatus::Finished;
        }
        let emb = self.emb.take().expect("embeddings held between segments");
        let mut darwin = Darwin::with_embeddings(&self.corpus, &self.index, self.cfg.clone(), emb);
        if let Some(connect) = self.remote.take() {
            darwin = darwin.with_remote_shards(connect);
        }
        if let Some(connect) = self.remote_clf.take() {
            darwin = darwin.with_remote_classifier(connect);
        }
        let (engine, strategy) = match self.live.take() {
            Some(d) => (Engine::from_parts(&darwin, d.parts), d.strategy),
            None => {
                let seed = self.seed.take().expect("fresh session carries a seed");
                let engine = Engine::new(&darwin, seed, EngineFlavor::Sequential);
                let strategy = crate::pipeline::default_strategy(&self.cfg, engine.seed_refs());
                (engine, strategy)
            }
        };
        let end = drive_segment(
            &darwin,
            engine,
            strategy,
            self.counters,
            oracle,
            &CostModel::paper(),
            until_waves,
        );
        match end {
            SegmentEnd::Finished(result) => self.result = Some(result),
            SegmentEnd::Suspended {
                engine,
                strategy,
                counters,
            } => {
                self.counters = counters;
                self.live = Some(Dormant {
                    parts: engine.into_parts(),
                    strategy,
                });
            }
        }
        self.emb = Some(darwin.into_embeddings());
        if self.result.is_some() {
            StreamStatus::Finished
        } else {
            StreamStatus::Suspended
        }
    }

    /// Append `texts` to the corpus and reconcile every id-dimensioned
    /// structure — the wave-barrier append operation. Legal at any point
    /// the session is not mid-segment: before the first wave (the first
    /// engine is then simply built over the grown corpus), between
    /// segments, or after completion (the growth applies, for a later
    /// session over the same owned corpus). Returns the number of
    /// sentences appended.
    ///
    /// Requires a `min_count == 1` index — pruned indexes renumber nodes
    /// on growth, which would invalidate every live rule handle — and
    /// rejects with [`AppendError::PrunedIndex`] *before* touching any
    /// state.
    pub fn append<I, S>(&mut self, texts: I) -> Result<usize, AppendError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let min_count = self.index.config().min_count;
        if min_count > 1 {
            return Err(AppendError::PrunedIndex { min_count });
        }
        let texts: Vec<String> = texts.into_iter().map(|t| t.as_ref().to_string()).collect();
        if texts.is_empty() {
            return Ok(0); // both modes: exactly no-op
        }
        let old_n = self.corpus.len() as u32;
        self.corpus.append_texts(texts.iter(), self.cfg.threads);
        let delta = match self.mode {
            AppendMode::Delta => Some(
                self.index
                    .append_with_threads(&self.corpus, self.cfg.threads)?,
            ),
            AppendMode::Rebuild => {
                let config = self.index.config().clone();
                self.index = IndexSet::build(&self.corpus, &config);
                None
            }
        };
        if let Some(emb) = &mut self.emb {
            emb.grow_to(self.corpus.vocab().len());
        }
        if let Some(d) = self.live.take() {
            let emb = self.emb.take().expect("embeddings held between segments");
            let darwin = Darwin::with_embeddings(&self.corpus, &self.index, self.cfg.clone(), emb);
            let mut engine = Engine::from_parts(&darwin, d.parts);
            engine.apply_append(old_n, &texts, delta.as_ref());
            self.live = Some(Dormant {
                parts: engine.into_parts(),
                strategy: d.strategy,
            });
            self.emb = Some(darwin.into_embeddings());
        }
        Ok(texts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{GroundTruthOracle, Immediate};
    use crate::pipeline::RunResult;
    use crate::remote::inproc_shard_connector;
    use crate::{BatchPolicy, Fanout};
    use darwin_index::IndexConfig;

    /// A transport-intent corpus large enough to keep the run alive
    /// across two appends, plus labels covering the *grown* corpus.
    fn streaming_fixture() -> (Vec<String>, Vec<Vec<String>>, Vec<bool>) {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            texts.push(format!("is there a shuttle to the airport at {i}"));
            labels.push(true);
            texts.push(format!("order a pizza with {i} toppings to the room"));
            labels.push(false);
            texts.push(format!("the pool opens at {i} for guests"));
            labels.push(false);
        }
        // Two append batches: each introduces new positives (a family the
        // base corpus has only hints of) and new negatives — and new
        // vocabulary, so the zero-pad path is exercised.
        let mut batches = Vec::new();
        for b in 0..2 {
            let mut batch = Vec::new();
            for i in 0..4 {
                batch.push(format!("is there a bus to the airport at {b}{i}"));
                labels.push(true);
                batch.push(format!("the gym closes at {b}{i} tonight"));
                labels.push(false);
            }
            batches.push(batch);
        }
        (texts, batches, labels)
    }

    fn stream_cfg(shards: usize, threads: usize) -> DarwinConfig {
        DarwinConfig {
            budget: 8,
            n_candidates: 400,
            shards,
            threads,
            batch: BatchPolicy::Fixed(3),
            ..DarwinConfig::fast()
        }
    }

    fn min1_index(corpus: &Corpus) -> IndexSet {
        IndexSet::build(
            corpus,
            &IndexConfig {
                max_phrase_len: 4,
                min_count: 1,
                ..Default::default()
            },
        )
    }

    /// Drive the schedule: to barrier 1, append batch 0, to barrier 3,
    /// append batch 1, then to completion.
    fn run_schedule(
        cfg: DarwinConfig,
        mode: AppendMode,
        remote: bool,
        remote_clf: bool,
    ) -> RunResult {
        let (base, batches, labels) = streaming_fixture();
        let corpus = Corpus::from_texts(base.iter());
        let index = min1_index(&corpus);
        let mut session = StreamSession::new(corpus, index, cfg, Seed::Positives(vec![0, 3]))
            .with_append_mode(mode);
        if remote {
            session = session.with_remote_shards(inproc_shard_connector());
        }
        if remote_clf {
            session = session.with_remote_classifier(crate::remote::inproc_classifier_connector());
        }
        let mut oracle = Immediate::new(GroundTruthOracle::new(&labels, 0.8));
        for (i, barrier) in [1u64, 3].iter().enumerate() {
            if session.drive(&mut oracle, Some(*barrier)) == StreamStatus::Finished {
                break;
            }
            session.append(batches[i].iter()).unwrap();
        }
        session.drive(&mut oracle, None);
        session.into_result().expect("run completes").run
    }

    fn assert_same_run(a: &RunResult, b: &RunResult, label: &str) {
        assert_eq!(a.trace, b.trace, "{label}: trace");
        assert_eq!(a.positives, b.positives, "{label}: positives");
        assert_eq!(a.accepted, b.accepted, "{label}: accepted");
        assert_eq!(a.rejected, b.rejected, "{label}: rejected");
        assert_eq!(a.scores, b.scores, "{label}: scores");
        assert_eq!(a.wire_error, b.wire_error, "{label}: wire error");
    }

    /// The tentpole invariant: the delta append path is bit-identical to
    /// the from-scratch rebuild reference, and shards / threads /
    /// transport stay pure perf knobs across appends.
    #[test]
    fn append_schedule_matches_rebuild_across_deployments() {
        let reference = run_schedule(stream_cfg(1, 1), AppendMode::Rebuild, false, false);
        assert!(
            reference.trace.len() > 2,
            "fixture must keep the run alive past the appends"
        );
        assert!(
            reference
                .trace
                .iter()
                .any(|s| s.new_positive_ids.iter().any(|&id| id >= 30)),
            "appended sentences must be discoverable"
        );
        for (shards, threads, remote) in [
            (1, 1, false),
            (2, 2, false),
            (3, 1, false),
            (2, 1, true),
            (3, 2, true),
        ] {
            let got = run_schedule(
                stream_cfg(shards, threads),
                AppendMode::Delta,
                remote,
                false,
            );
            let label = format!("delta S={shards} t={threads} remote={remote}");
            assert_same_run(&got, &reference, &label);
        }
        let concurrent = run_schedule(
            DarwinConfig {
                fanout: Fanout::Concurrent,
                ..stream_cfg(3, 2)
            },
            AppendMode::Delta,
            true,
            false,
        );
        assert_same_run(&concurrent, &reference, "delta S=3 concurrent remote");
    }

    /// The remote classifier mirrors the corpus in its worker; appends
    /// must forward and keep scores bit-identical to the local build.
    #[test]
    fn append_forwards_to_remote_classifier() {
        let reference = run_schedule(stream_cfg(1, 1), AppendMode::Rebuild, false, false);
        let got = run_schedule(stream_cfg(1, 1), AppendMode::Delta, false, true);
        assert_same_run(&got, &reference, "remote classifier");
    }

    /// Appending before the first wave just grows the inputs the first
    /// engine is built over: identical to starting from the grown corpus
    /// under the same embedding discipline (embeddings are frozen at
    /// session creation and zero-padded by appends, never retrained — so
    /// the reference shares the base-corpus embeddings).
    #[test]
    fn append_before_first_wave_equals_grown_start() {
        let (base, batches, labels) = streaming_fixture();
        let cfg = stream_cfg(2, 1);
        let base_emb = |corpus_len_vocab: usize| {
            let base_corpus = Corpus::from_texts(base.iter());
            let mut emb = Embeddings::train(
                &base_corpus,
                &EmbedConfig {
                    seed: cfg.seed,
                    ..Default::default()
                },
            );
            emb.grow_to(corpus_len_vocab);
            emb
        };
        let mut oracle = Immediate::new(GroundTruthOracle::new(&labels, 0.8));

        let corpus = Corpus::from_texts(base.iter());
        let index = min1_index(&corpus);
        let emb = base_emb(corpus.vocab().len());
        let mut early = StreamSession::with_embeddings(
            corpus,
            index,
            cfg.clone(),
            Seed::Positives(vec![0, 3]),
            emb,
        );
        early.append(batches[0].iter()).unwrap();
        early.drive(&mut oracle, None);
        let early = early.into_result().unwrap().run;

        let grown_texts: Vec<&String> = base.iter().chain(batches[0].iter()).collect();
        let corpus = Corpus::from_texts(grown_texts.iter().map(|s| s.as_str()));
        let index = min1_index(&corpus);
        let emb = base_emb(corpus.vocab().len());
        let mut oracle = Immediate::new(GroundTruthOracle::new(&labels, 0.8));
        let mut grown =
            StreamSession::with_embeddings(corpus, index, cfg, Seed::Positives(vec![0, 3]), emb);
        grown.drive(&mut oracle, None);
        let grown = grown.into_result().unwrap().run;

        assert_same_run(&early, &grown, "append before first wave");
    }

    /// Empty appends are exact no-ops in both modes.
    #[test]
    fn empty_append_is_a_no_op() {
        let (base, _, labels) = streaming_fixture();
        let corpus = Corpus::from_texts(base.iter());
        let index = min1_index(&corpus);
        let mut session =
            StreamSession::new(corpus, index, stream_cfg(1, 1), Seed::Positives(vec![0, 3]));
        let mut oracle = Immediate::new(GroundTruthOracle::new(&labels, 0.8));
        session.drive(&mut oracle, Some(1));
        let n = session.corpus().len();
        assert_eq!(session.append(Vec::<String>::new()).unwrap(), 0);
        assert_eq!(session.corpus().len(), n);
        session.drive(&mut oracle, None);

        let corpus = Corpus::from_texts(base.iter());
        let index = min1_index(&corpus);
        let mut plain =
            StreamSession::new(corpus, index, stream_cfg(1, 1), Seed::Positives(vec![0, 3]));
        let mut oracle = Immediate::new(GroundTruthOracle::new(&labels, 0.8));
        plain.drive(&mut oracle, None);
        assert_same_run(
            &session.into_result().unwrap().run,
            &plain.into_result().unwrap().run,
            "empty append",
        );
    }

    /// A pruned index refuses appends before any state is touched.
    #[test]
    fn pruned_index_refuses_append() {
        let (base, _, _) = streaming_fixture();
        let corpus = Corpus::from_texts(base.iter());
        let index = IndexSet::build(
            &corpus,
            &IndexConfig {
                max_phrase_len: 4,
                min_count: 2,
                ..Default::default()
            },
        );
        let n = corpus.len();
        let mut session =
            StreamSession::new(corpus, index, stream_cfg(1, 1), Seed::Positives(vec![0]));
        match session.append(["a brand new sentence"]) {
            Err(AppendError::PrunedIndex { min_count: 2 }) => {}
            other => panic!("expected PrunedIndex, got {other:?}"),
        }
        assert_eq!(session.corpus().len(), n, "corpus untouched on refusal");
    }
}

//! The asynchronous batched-oracle loop (paper §4.3's crowd setting).
//!
//! The paper's interactive loop assumes an oracle whose latency dwarfs the
//! engine's compute — a human annotator takes seconds per question, a
//! crowd round-trip minutes, while selection takes microseconds. The
//! step-driven loops ([`crate::pipeline`], [`crate::parallel`]) serialize
//! on every answer; this module pipelines instead:
//!
//! 1. **Waves.** The driver fills a *wave* of up to `k` in-flight
//!    questions ([`crate::DarwinConfig::batch`] sizes `k`): the first pick comes
//!    from the configured traversal strategy — exactly the synchronous
//!    selection — and every further pick from
//!    [`Engine::select_refill`], the in-flight generalization of
//!    [`crate::parallel::select_diverse_batch`] (maximum gated benefit,
//!    skipping rules that mostly duplicate a question already in flight).
//! 2. **Out-of-order application.** Answers come back from
//!    [`AsyncOracle::poll`] in any order and are applied as they arrive
//!    through [`Engine::resolve`] → [`Engine::record`] — the same
//!    YES-journal / benefit-delta / frontier machinery as every other
//!    loop, which is order-independent by construction (`P` grows as a
//!    union; fixed-point sums commute).
//! 3. **Barrier.** When the wave drains, the strategy observes all its
//!    answers in submission order, and the classifier retrains once if
//!    any YES arrived — the parallel loop's one-update-per-round
//!    discipline, which is what makes the latency win real.
//!
//! **The equivalence guarantee** (tested by `tests/batch_async.rs`): with
//! `BatchPolicy::Fixed(1)` and the [`crate::Immediate`] adapter the driver
//! replays [`Darwin::run`]'s synchronous trace byte for byte, at every
//! shard and thread count; and for any fixed batch size, the *final*
//! positive set, accepted rules and scores are invariant under the
//! answer-arrival schedule — only per-wave trace ordering can differ.
//!
//! ```
//! use darwin_core::batch::BatchPolicy;
//! use darwin_core::{Darwin, DarwinConfig, GroundTruthOracle, Immediate, Seed};
//! use darwin_grammar::Heuristic;
//! use darwin_index::{IndexConfig, IndexSet};
//! use darwin_text::Corpus;
//!
//! let corpus = Corpus::from_texts([
//!     "what is the best way to get to the airport",
//!     "is there a shuttle to get to the airport",
//!     "is uber the fastest way to get to the airport",
//!     "what is the best way to order food",
//!     "would uber eats be the fastest way to order",
//!     "what is the best way to check in",
//! ]);
//! let labels = vec![true, true, true, false, false, false];
//! let index = IndexSet::build(&corpus, &IndexConfig::small());
//! let cfg = DarwinConfig {
//!     budget: 5,
//!     batch: BatchPolicy::Fixed(2), // up to two questions in flight
//!     ..DarwinConfig::fast()
//! };
//! let seed = Seed::Rule(Heuristic::phrase(&corpus, "to the airport").unwrap());
//! // Any synchronous oracle rides the async loop via the adapter.
//! let mut oracle = Immediate::new(GroundTruthOracle::new(&labels, 0.8));
//! let out = Darwin::new(&corpus, &index, cfg).run_async(Seed::clone(&seed), &mut oracle);
//! assert!(!out.run.accepted.is_empty());
//! assert!(out.report.peak_in_flight <= 2);
//! assert_eq!(out.report.cost.questions, out.run.questions());
//! ```

use crate::engine::{Engine, EngineFlavor};
use crate::oracle::{AsyncOracle, Oracle, QuestionId};
use crate::pipeline::{Darwin, RunResult, Seed};
use crate::snapshot::{SessionCounters, Snapshot};
use crate::traversal::Strategy;
use darwin_grammar::Heuristic;
use darwin_index::fx::FxHashMap;
use darwin_index::RuleRef;
use darwin_text::Corpus;
use std::time::{Duration, Instant};

/// How the async driver sizes each wave of in-flight questions
/// ([`crate::DarwinConfig::batch`]).
#[derive(Clone, Debug, PartialEq)]
pub enum BatchPolicy {
    /// Keep up to `k` questions in flight per wave. `Fixed(1)` is the
    /// synchronous reference: it replays [`Darwin::run`] byte for byte
    /// under an [`crate::Immediate`] oracle.
    Fixed(usize),
    /// Size waves adaptively from measured answer latency: propose as
    /// many questions as selection can prepare during one oracle
    /// round-trip (`latency / selection-cost`), clamped to `[1, max]`.
    /// The first wave runs at size 1 to take the first measurement.
    /// Wave sizes depend on wall-clock measurements, so traces are *not*
    /// reproducible across hosts — use `Fixed` where replayability
    /// matters.
    LatencyTargeted {
        /// Hard cap on in-flight questions (annotator-pool size).
        max: usize,
    },
    /// Extend a wave only while candidate benefit holds up: stop when the
    /// next refill's total benefit falls below `cutoff` × the wave's
    /// first pick. Deterministic (no wall-clock input): batches are big
    /// while the pool is rich and shrink toward sequential as it thins —
    /// the paper's benefit function as a batching signal.
    BenefitDecay {
        /// Hard cap on in-flight questions.
        max: usize,
        /// Fraction of the wave-opening benefit below which the wave
        /// stops growing (e.g. `0.5`).
        cutoff: f64,
    },
}

impl Default for BatchPolicy {
    fn default() -> BatchPolicy {
        BatchPolicy::Fixed(1)
    }
}

impl BatchPolicy {
    /// The policy's hard cap on in-flight questions.
    pub fn max_in_flight(&self) -> usize {
        match *self {
            BatchPolicy::Fixed(k) => k.max(1),
            BatchPolicy::LatencyTargeted { max } | BatchPolicy::BenefitDecay { max, .. } => {
                max.max(1)
            }
        }
    }
}

/// Runtime companion of a [`BatchPolicy`]: observes per-question selection
/// cost and per-answer latency (EWMA), and emits each wave's target size
/// and benefit floor.
pub struct AdaptiveBatcher {
    policy: BatchPolicy,
    latency_ns: Option<f64>,
    select_ns: Option<f64>,
}

/// EWMA weight of the newest observation.
const EWMA_ALPHA: f64 = 0.3;

impl AdaptiveBatcher {
    /// A batcher executing `policy`.
    pub fn new(policy: BatchPolicy) -> AdaptiveBatcher {
        AdaptiveBatcher {
            policy,
            latency_ns: None,
            select_ns: None,
        }
    }

    /// The policy being executed.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Target in-flight size for the next wave.
    pub fn wave_size(&self) -> usize {
        match self.policy {
            BatchPolicy::Fixed(k) => k.max(1),
            BatchPolicy::BenefitDecay { max, .. } => max.max(1),
            BatchPolicy::LatencyTargeted { max } => match (self.latency_ns, self.select_ns) {
                // Fill one oracle round-trip with selection work.
                (Some(l), Some(s)) if s > 0.0 => ((l / s).round() as usize).clamp(1, max.max(1)),
                _ => 1, // measure before scaling out
            },
        }
    }

    /// Benefit floor for refills of a wave anchored at `anchor` (the
    /// first pick's total benefit): `Some` only under
    /// [`BatchPolicy::BenefitDecay`].
    pub fn floor(&self, anchor: Option<i64>) -> Option<i64> {
        match self.policy {
            BatchPolicy::BenefitDecay { cutoff, .. } => {
                anchor.map(|a| (a as f64 * cutoff).ceil() as i64)
            }
            _ => None,
        }
    }

    /// Observe one submit→arrival answer latency.
    pub fn note_latency(&mut self, ns: u64) {
        Self::ewma(&mut self.latency_ns, ns);
    }

    /// Observe the cost of selecting one question.
    pub fn note_select(&mut self, ns: u64) {
        Self::ewma(&mut self.select_ns, ns);
    }

    fn ewma(slot: &mut Option<f64>, ns: u64) {
        let x = ns as f64;
        *slot = Some(match *slot {
            None => x,
            Some(prev) => EWMA_ALPHA * x + (1.0 - EWMA_ALPHA) * prev,
        });
    }
}

/// The paper's §4.3 crowdsourcing cost model: every question fans out to
/// `members` crowd workers (majority vote), each judgment priced at
/// `cents_per_judgment` — "the oracle considers a majority vote by
/// querying three crowd members", 2¢ per evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Crowd members consulted per question (the paper votes 3).
    pub members: usize,
    /// Price of one member's judgment, in cents (the paper pays 2¢).
    pub cents_per_judgment: usize,
}

impl CostModel {
    /// The paper's configuration: 3-member majority at 2¢ a judgment —
    /// 6¢ per oracle question.
    pub fn paper() -> CostModel {
        CostModel {
            members: 3,
            cents_per_judgment: 2,
        }
    }

    /// A single trusted annotator at 2¢ a question.
    pub fn single() -> CostModel {
        CostModel {
            members: 1,
            cents_per_judgment: 2,
        }
    }

    /// Price `questions` oracle questions under this model.
    pub fn report(&self, questions: usize) -> CrowdCost {
        let judgments = questions * self.members;
        CrowdCost {
            questions,
            judgments,
            cents: judgments * self.cents_per_judgment,
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::paper()
    }
}

/// What a run cost under a [`CostModel`] (§4.3 accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrowdCost {
    /// Logical oracle questions asked.
    pub questions: usize,
    /// Paid member judgments (`questions × members`).
    pub judgments: usize,
    /// Total price in cents.
    pub cents: usize,
}

impl CrowdCost {
    /// Total price in dollars.
    pub fn dollars(&self) -> f64 {
        self.cents as f64 / 100.0
    }
}

/// Wrap a synchronous oracle behind a fixed simulated answer latency:
/// answers become available `latency` after submission. `poll` sleeps
/// until the earliest outstanding answer is due when none is ready yet —
/// the wall-clock model `batch_bench` measures latency hiding against.
pub struct SimulatedLatency<O> {
    inner: O,
    latency: Duration,
    in_flight: Vec<(QuestionId, bool, Instant)>,
}

impl<O: Oracle> SimulatedLatency<O> {
    /// Answers from `inner`, delivered `latency` after submission.
    pub fn new(inner: O, latency: Duration) -> SimulatedLatency<O> {
        SimulatedLatency {
            inner,
            latency,
            in_flight: Vec::new(),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: Oracle> AsyncOracle for SimulatedLatency<O> {
    fn submit(&mut self, qid: QuestionId, corpus: &Corpus, rule: &Heuristic, coverage: &[u32]) {
        let answer = self.inner.ask(corpus, rule, coverage);
        self.in_flight
            .push((qid, answer, Instant::now() + self.latency));
    }

    fn poll(&mut self) -> Vec<(QuestionId, bool)> {
        if self.in_flight.is_empty() {
            return Vec::new();
        }
        let now = Instant::now();
        let earliest = self.in_flight.iter().map(|&(_, _, due)| due).min().unwrap();
        if earliest > now {
            std::thread::sleep(earliest - now);
        }
        let now = Instant::now();
        let mut ready = Vec::new();
        self.in_flight.retain(|&(qid, answer, due)| {
            if due <= now {
                ready.push((qid, answer));
                false
            } else {
                true
            }
        });
        ready
    }

    fn poll_deadline(&mut self, timeout: Duration) -> Vec<(QuestionId, bool)> {
        // Honor the driver's deadline: wait for the earliest due answer,
        // but never past the deadline (the simulated analogue of a
        // timed channel receive).
        if self.in_flight.is_empty() {
            return Vec::new();
        }
        let now = Instant::now();
        let earliest = self.in_flight.iter().map(|&(_, _, due)| due).min().unwrap();
        if earliest > now + timeout {
            std::thread::sleep(timeout);
            return Vec::new();
        }
        self.poll()
    }

    fn queries(&self) -> usize {
        self.inner.queries()
    }
}

/// Wrap a synchronous oracle behind a *scripted* arrival schedule: the
/// `i`-th submission is withheld for `holds[i % holds.len()]` poll cycles,
/// so tests can force any out-of-order delivery (including adversarial
/// ones — first question answered last, interleaved waves) without
/// touching the clock. An empty script behaves like [`crate::Immediate`].
pub struct ScriptedArrival<O> {
    inner: O,
    holds: Vec<usize>,
    submissions: usize,
    in_flight: Vec<(QuestionId, bool, usize)>,
}

impl<O: Oracle> ScriptedArrival<O> {
    /// Answers from `inner`, submission `i` held for
    /// `holds[i % holds.len()]` polls.
    pub fn new(inner: O, holds: Vec<usize>) -> ScriptedArrival<O> {
        ScriptedArrival {
            inner,
            holds,
            submissions: 0,
            in_flight: Vec::new(),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: Oracle> AsyncOracle for ScriptedArrival<O> {
    fn submit(&mut self, qid: QuestionId, corpus: &Corpus, rule: &Heuristic, coverage: &[u32]) {
        let answer = self.inner.ask(corpus, rule, coverage);
        let hold = match self.holds.is_empty() {
            true => 0,
            false => self.holds[self.submissions % self.holds.len()],
        };
        self.submissions += 1;
        self.in_flight.push((qid, answer, hold));
    }

    fn poll(&mut self) -> Vec<(QuestionId, bool)> {
        let mut ready = Vec::new();
        self.in_flight.retain_mut(|entry| {
            if entry.2 == 0 {
                ready.push((entry.0, entry.1));
                false
            } else {
                entry.2 -= 1;
                true
            }
        });
        ready
    }

    fn queries(&self) -> usize {
        self.inner.queries()
    }
}

/// Instrumentation of one async run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsyncReport {
    /// Waves driven (fill → drain → barrier cycles).
    pub waves: usize,
    /// Questions submitted. All are answered unless the oracle went
    /// silent (`abandoned`).
    pub submitted: usize,
    /// Most questions simultaneously in flight.
    pub peak_in_flight: usize,
    /// Classifier retrain barriers (waves containing at least one YES).
    pub retrains: usize,
    /// Questions the driver gave up waiting for: the oracle delivered
    /// nothing for [`IDLE_LIMIT`](crate::batch) with these in flight, so
    /// the run ended early, *keeping* every answer already applied
    /// instead of discarding the paid work. `0` on a healthy run.
    pub abandoned: usize,
    /// Wall-clock of the whole run, nanoseconds.
    pub wall_ns: u128,
    /// §4.3 crowd-cost accounting for the questions asked.
    pub cost: CrowdCost,
}

/// A [`RunResult`] plus the async driver's instrumentation.
pub struct AsyncRunResult {
    /// The run output — same shape as every synchronous loop.
    pub run: RunResult,
    /// Pipelining and cost instrumentation.
    pub report: AsyncReport,
}

/// Give up on a wave if the oracle delivers nothing for this long
/// (wall-clock) — a scripted oracle whose schedule never releases, a
/// remote one that died. Generous enough for human-latency oracles
/// (minutes per answer). The driver does not panic: it abandons the
/// in-flight questions and returns the partial run, so every answer
/// already paid for survives (see [`AsyncReport::abandoned`]).
const IDLE_LIMIT: Duration = Duration::from_secs(15 * 60);

/// Empty polls tolerated at full speed before the driver starts sleeping
/// between polls. Covers poll-cycle-scripted oracles ([`ScriptedArrival`]
/// holds) without slowing them, while a non-blocking slow oracle costs
/// ~1 ms per further poll instead of a busy spin.
const SPIN_FREE_POLLS: usize = 64;

/// How long the driver lets the oracle block per poll
/// ([`AsyncOracle::poll_deadline`]). Oracles that can wait — a channel, a
/// socket, a wire worker — sleep inside this window instead of being
/// spin-polled; oracles that cannot (the default `poll_deadline` just
/// polls) fall back to the driver's own backoff above.
const POLL_DEADLINE: Duration = Duration::from_millis(10);

/// What a suspendable driver session produced: either the run completed
/// (budget exhausted, nothing left to ask, or the oracle went silent), or
/// it was suspended at the requested wave barrier and the complete run
/// state is in the returned [`Snapshot`] — feed it to
/// [`Darwin::resume`](crate::pipeline::Darwin::resume) to continue.
// One value of this enum exists per driven session; the size gap between
// the variants costs nothing worth boxing the result for.
#[allow(clippy::large_enum_variant)]
pub enum SessionOutcome {
    /// The run drove to completion; no snapshot was taken.
    Finished(AsyncRunResult),
    /// The run was suspended at a wave barrier.
    Suspended(Box<Snapshot>),
}

/// The async driver — see the module docs for the wave protocol and the
/// equivalence argument. Called via [`Darwin::run_async`].
pub(crate) fn drive(
    darwin: &Darwin<'_>,
    seed: Seed,
    oracle: &mut dyn AsyncOracle,
    model: &CostModel,
) -> AsyncRunResult {
    let engine = Engine::new(darwin, seed, EngineFlavor::Sequential);
    let strategy = crate::pipeline::default_strategy(darwin.config(), engine.seed_refs());
    match drive_session(
        darwin,
        engine,
        strategy,
        SessionCounters::default(),
        oracle,
        model,
        None,
    ) {
        SessionOutcome::Finished(result) => result,
        SessionOutcome::Suspended(_) => unreachable!("drive() never requests suspension"),
    }
}

/// How a driven segment ended: the run completed, or it stopped at the
/// requested wave barrier with the engine still *live* — classifier
/// trained, remote sessions connected, frontier memo warm. The live form
/// is what [`crate::stream::StreamSession`] holds across a corpus append;
/// [`drive_session`] converts it into a serialized [`Snapshot`] for the
/// durable suspend path.
pub(crate) enum SegmentEnd<'a> {
    /// The run drove to completion.
    Finished(AsyncRunResult),
    /// The run stopped at a wave barrier; everything needed to continue
    /// it (in this process or after an append) is returned alive.
    Suspended {
        /// The engine at the barrier: pending drained, feedback applied,
        /// retrain (if any) done. Boxed — it dwarfs the finished variant.
        engine: Box<Engine<'a>>,
        /// The strategy, with all feedback observed.
        strategy: Box<dyn Strategy>,
        /// Cumulative counters at the barrier.
        counters: SessionCounters,
    },
}

/// The suspendable driver core. `start` carries the cumulative counters
/// (zero for a fresh run, the snapshot's for a resumed one) so question
/// ids and the final [`AsyncReport`] continue across a suspend exactly as
/// if the run had never stopped. With `suspend_after = Some(w)` the
/// driver returns [`SessionOutcome::Suspended`] at the first wave barrier
/// where the *cumulative* wave count reaches `w` — a barrier is the only
/// point where a snapshot is taken (pending set drained, feedback
/// applied, retrain done), which is what makes resume trace-exact.
pub(crate) fn drive_session<'a>(
    darwin: &'a Darwin<'a>,
    engine: Engine<'a>,
    strategy: Box<dyn Strategy>,
    start: SessionCounters,
    oracle: &mut dyn AsyncOracle,
    model: &CostModel,
    suspend_after: Option<u64>,
) -> SessionOutcome {
    match drive_segment(
        darwin,
        engine,
        strategy,
        start,
        oracle,
        model,
        suspend_after,
    ) {
        SegmentEnd::Finished(result) => SessionOutcome::Finished(result),
        SegmentEnd::Suspended {
            engine,
            strategy,
            counters,
        } => {
            let snap = Snapshot::capture(darwin, &engine, strategy.as_ref(), counters);
            SessionOutcome::Suspended(Box::new(snap))
        }
    }
}

/// [`drive_session`]'s engine-alive core — see [`SegmentEnd`]. The
/// in-memory streaming path keeps the returned engine and continues it
/// directly; the durable path serializes it into a [`Snapshot`] and lets
/// it drop.
pub(crate) fn drive_segment<'a>(
    darwin: &'a Darwin<'a>,
    mut engine: Engine<'a>,
    mut strategy: Box<dyn Strategy>,
    start: SessionCounters,
    oracle: &mut dyn AsyncOracle,
    model: &CostModel,
    suspend_after: Option<u64>,
) -> SegmentEnd<'a> {
    let cfg = darwin.config();
    let corpus = darwin.corpus();
    let index = darwin.index();
    let started = Instant::now();

    let mut batcher = AdaptiveBatcher::new(cfg.batch.clone());
    let mut submitted = start.submitted as usize;
    let mut waves = start.waves as usize;
    let mut retrains = start.retrains as usize;
    let mut peak = start.peak as usize;
    let mut abandoned = 0usize;
    let mut submit_at: FxHashMap<u64, Instant> = FxHashMap::default();

    fn submit_one(
        engine: &mut Engine<'_>,
        oracle: &mut dyn AsyncOracle,
        index: &darwin_index::IndexSet,
        corpus: &Corpus,
        submit_at: &mut FxHashMap<u64, Instant>,
        submitted: &mut usize,
        rule: RuleRef,
    ) {
        let qid = QuestionId(*submitted as u64);
        *submitted += 1;
        engine.begin_question(qid, rule);
        let h = index.heuristic(rule);
        submit_at.insert(qid.0, Instant::now());
        oracle.submit(qid, corpus, &h, index.coverage(rule));
    }

    loop {
        // ---- fill a wave ----
        // First pick through the traversal strategy (the synchronous
        // selection), refills through the diverse in-flight ranking —
        // ranked once for the whole wave. The wave's membership is fixed
        // before any of its answers are applied, which is what makes the
        // final state invariant under arrival order.
        let k = batcher.wave_size();
        if submitted < cfg.budget {
            let t = Instant::now();
            if let Some(rule) = engine.select(&mut *strategy) {
                batcher.note_select(t.elapsed().as_nanos() as u64);
                let anchor = engine.benefit_sum(rule);
                submit_one(
                    &mut engine,
                    oracle,
                    index,
                    corpus,
                    &mut submit_at,
                    &mut submitted,
                    rule,
                );
                let want = (k - 1).min(cfg.budget - submitted);
                if want > 0 {
                    let t = Instant::now();
                    let picks = engine.select_refill_batch(want, batcher.floor(Some(anchor)));
                    if !picks.is_empty() {
                        batcher.note_select(t.elapsed().as_nanos() as u64 / picks.len() as u64);
                    }
                    for rule in picks {
                        submit_one(
                            &mut engine,
                            oracle,
                            index,
                            corpus,
                            &mut submit_at,
                            &mut submitted,
                            rule,
                        );
                    }
                }
            }
        }
        if engine.pending_len() == 0 {
            break; // budget exhausted or nothing left to ask
        }
        waves += 1;
        peak = peak.max(engine.pending_len());

        // ---- drain it: answers apply in arrival order ----
        let mut resolved: Vec<(QuestionId, RuleRef, bool)> = Vec::new();
        let mut grew = false;
        let mut idle_polls = 0usize;
        let mut idle_since: Option<Instant> = None;
        while engine.pending_len() > 0 {
            let mut arrived = oracle.poll_deadline(POLL_DEADLINE);
            if arrived.is_empty() {
                // A dead oracle (wire worker gone) can never deliver:
                // abandon immediately instead of waiting out the idle
                // limit.
                if !oracle.healthy() {
                    abandoned = engine.abandon_pending();
                    break;
                }
                // A non-blocking oracle with slow answers: back off
                // instead of spinning; after a long wall-clock silence
                // abandon the wave and keep the partial run.
                let since = *idle_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= IDLE_LIMIT {
                    abandoned = engine.abandon_pending();
                    break;
                }
                idle_polls += 1;
                if idle_polls > SPIN_FREE_POLLS {
                    std::thread::sleep(Duration::from_millis(1));
                }
                continue;
            }
            idle_polls = 0;
            idle_since = None;
            // Canonical order within one delivery batch; deliveries
            // themselves arrive however the oracle pleases.
            arrived.sort_unstable_by_key(|&(qid, _)| qid);
            for (qid, answer) in arrived {
                if let Some(at) = submit_at.remove(&qid.0) {
                    batcher.note_latency(at.elapsed().as_nanos() as u64);
                }
                // An unknown or already-resolved id is a misbehaving
                // oracle (a wire worker fabricating or re-delivering
                // answers): `resolve` is a no-op for it, so state cannot
                // corrupt — drop the answer instead of panicking, in
                // line with the wire layer's no-panic discipline.
                let Some(rule) = engine.resolve(qid, answer) else {
                    continue;
                };
                grew |= answer;
                resolved.push((qid, rule, answer));
            }
        }

        // ---- barrier: strategies observe the wave in submission order,
        // the classifier retrains once if P grew ----
        resolved.sort_unstable_by_key(|&(qid, _, _)| qid);
        for &(_, rule, answer) in &resolved {
            let ctx = engine.ctx();
            strategy.feedback(rule, answer, &ctx);
        }
        if grew {
            engine.retrain_and_sync();
            engine.regen_hierarchy();
            retrains += 1;
        }
        if abandoned > 0 {
            break; // the oracle went silent: return the partial run
        }
        // ---- suspend hook: barriers are the only snapshot points ----
        // Pending is drained, feedback applied, the retrain (if any) done:
        // the run's future is a pure function of the captured state.
        if suspend_after.is_some_and(|stop| waves as u64 >= stop) {
            let counters = SessionCounters {
                submitted: submitted as u64,
                waves: waves as u64,
                retrains: retrains as u64,
                peak: peak as u64,
            };
            return SegmentEnd::Suspended {
                engine: Box::new(engine),
                strategy,
                counters,
            };
        }
    }

    let run = engine.finish();
    let report = AsyncReport {
        waves,
        submitted,
        peak_in_flight: peak,
        retrains,
        abandoned,
        wall_ns: started.elapsed().as_nanos(),
        cost: model.report(run.questions()),
    };
    SegmentEnd::Finished(AsyncRunResult { run, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;

    fn corpus() -> (Corpus, Vec<bool>) {
        let c = Corpus::from_texts([
            "the shuttle to the airport leaves hourly",
            "is there a shuttle to the airport tonight",
            "a bus to the airport runs daily",
            "order pizza to the room please",
            "the pool opens at nine daily",
        ]);
        (c, vec![true, true, true, false, false])
    }

    #[test]
    fn cost_model_matches_paper_pricing() {
        let m = CostModel::paper();
        let c = m.report(10);
        assert_eq!(c.questions, 10);
        assert_eq!(c.judgments, 30);
        assert_eq!(c.cents, 60, "10 questions × 3 members × 2¢");
        assert!((c.dollars() - 0.60).abs() < 1e-9);
        assert_eq!(CostModel::single().report(10).cents, 20);
    }

    #[test]
    fn fixed_policy_ignores_measurements() {
        let mut b = AdaptiveBatcher::new(BatchPolicy::Fixed(4));
        assert_eq!(b.wave_size(), 4);
        b.note_latency(1_000_000_000);
        b.note_select(10);
        assert_eq!(b.wave_size(), 4);
        assert_eq!(b.floor(Some(100)), None);
        assert_eq!(AdaptiveBatcher::new(BatchPolicy::Fixed(0)).wave_size(), 1);
    }

    #[test]
    fn latency_targeted_scales_with_measured_latency() {
        let mut b = AdaptiveBatcher::new(BatchPolicy::LatencyTargeted { max: 16 });
        assert_eq!(b.wave_size(), 1, "measure before scaling out");
        b.note_select(1_000); // 1 µs to select
        b.note_latency(8_000); // 8 µs round-trip
        assert_eq!(b.wave_size(), 8);
        b.note_latency(1_000_000_000); // latency explodes → cap
        assert_eq!(b.wave_size(), 16);
    }

    #[test]
    fn benefit_decay_floor_scales_with_anchor() {
        let b = AdaptiveBatcher::new(BatchPolicy::BenefitDecay {
            max: 8,
            cutoff: 0.5,
        });
        assert_eq!(b.wave_size(), 8);
        assert_eq!(b.floor(Some(1000)), Some(500));
        assert_eq!(b.floor(None), None);
    }

    #[test]
    fn scripted_arrival_reorders_answers() {
        let (c, labels) = corpus();
        let r = Heuristic::phrase(&c, "shuttle").unwrap();
        // First submission held 2 polls, second released immediately.
        let mut o = ScriptedArrival::new(GroundTruthOracle::new(&labels, 0.8), vec![2, 0]);
        o.submit(QuestionId(0), &c, &r, &[0, 1]);
        o.submit(QuestionId(1), &c, &r, &[3, 4]);
        assert_eq!(o.poll(), vec![(QuestionId(1), false)], "q1 lands first");
        assert_eq!(o.poll(), vec![]);
        assert_eq!(o.poll(), vec![(QuestionId(0), true)], "q0 lands last");
        assert_eq!(o.queries(), 2);
    }

    #[test]
    fn simulated_latency_delivers_after_the_deadline() {
        let (c, labels) = corpus();
        let r = Heuristic::phrase(&c, "shuttle").unwrap();
        let mut o = SimulatedLatency::new(
            GroundTruthOracle::new(&labels, 0.8),
            Duration::from_millis(5),
        );
        assert!(o.poll().is_empty(), "no blocking when nothing in flight");
        let t = Instant::now();
        o.submit(QuestionId(0), &c, &r, &[0, 1]);
        let got = o.poll();
        assert!(t.elapsed() >= Duration::from_millis(5));
        assert_eq!(got, vec![(QuestionId(0), true)]);
    }
}

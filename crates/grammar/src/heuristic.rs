//! The unified labeling-heuristic type.

use crate::phrase::PhrasePattern;
use crate::tree::TreePattern;
use darwin_text::{Corpus, Sentence, Vocab};

/// Errors from parsing a heuristic out of its textual form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A token in the pattern does not occur in the corpus vocabulary (such
    /// a rule could never match anything).
    UnknownToken(String),
    /// Structurally invalid pattern text.
    Syntax(String),
    /// Empty input.
    Empty,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownToken(t) => write!(f, "token not in corpus vocabulary: {t:?}"),
            ParseError::Syntax(m) => write!(f, "syntax error: {m}"),
            ParseError::Empty => write!(f, "empty pattern"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A labeling heuristic: a derivation of one of the registered heuristic
/// grammars (paper Definition 2). `Cr` — the set of sentences satisfying a
/// heuristic `r` — is computed either directly ([`Heuristic::matches`]) or
/// through the index (`darwin-index`).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Heuristic {
    /// A TokensRegex derivation.
    Phrase(PhrasePattern),
    /// A TreeMatch derivation.
    Tree(TreePattern),
}

impl Heuristic {
    /// Parse a TokensRegex heuristic, e.g. `"best way to"` or `"caused + by"`.
    pub fn phrase(corpus: &Corpus, text: &str) -> Result<Heuristic, ParseError> {
        Ok(Heuristic::Phrase(PhrasePattern::parse(
            corpus.vocab(),
            text,
        )?))
    }

    /// Parse a TreeMatch heuristic, e.g. `"is/NOUN & is//job"`.
    pub fn tree(corpus: &Corpus, text: &str) -> Result<Heuristic, ParseError> {
        Ok(Heuristic::Tree(TreePattern::parse(corpus.vocab(), text)?))
    }

    /// Does `sentence` satisfy the heuristic?
    pub fn matches(&self, sentence: &Sentence) -> bool {
        match self {
            Heuristic::Phrase(p) => p.matches(sentence),
            Heuristic::Tree(t) => t.matches(sentence),
        }
    }

    /// Brute-force coverage: ids of all corpus sentences satisfying the
    /// heuristic. The index provides the fast path; this is the reference
    /// implementation used in tests and for out-of-index heuristics. Tree
    /// heuristics sweep through one reusable [`crate::tree::MatchCtx`]
    /// (verdicts bit-identical to [`Heuristic::matches`]).
    pub fn coverage(&self, corpus: &Corpus) -> Vec<u32> {
        match self {
            Heuristic::Phrase(p) => corpus
                .sentences()
                .iter()
                .filter(|s| p.matches(s))
                .map(|s| s.id)
                .collect(),
            Heuristic::Tree(t) => {
                let mut ctx = crate::tree::MatchCtx::new();
                corpus
                    .sentences()
                    .iter()
                    .filter(|s| ctx.matches(t, s))
                    .map(|s| s.id)
                    .collect()
            }
        }
    }

    /// Derivation length under the owning grammar.
    pub fn derivation_steps(&self) -> usize {
        match self {
            Heuristic::Phrase(p) => p.derivation_steps(),
            Heuristic::Tree(t) => t.derivation_steps(),
        }
    }

    /// Grammar name, for display.
    pub fn grammar_name(&self) -> &'static str {
        match self {
            Heuristic::Phrase(_) => "TokensRegex",
            Heuristic::Tree(_) => "TreeMatch",
        }
    }

    /// Render to the textual form accepted by the corresponding parser.
    pub fn display(&self, vocab: &Vocab) -> String {
        match self {
            Heuristic::Phrase(p) => p.display(vocab),
            Heuristic::Tree(t) => t.display(vocab),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::Corpus;

    fn setup() -> Corpus {
        Corpus::from_texts([
            "what is the best way to get to sfo airport",
            "is there a bart from sfo to the hotel",
            "what is the best way to check in there",
            "his job is a teacher at the school",
        ])
    }

    #[test]
    fn coverage_matches_paper_example() {
        let c = setup();
        let h = Heuristic::phrase(&c, "best way to").unwrap();
        assert_eq!(h.coverage(&c), vec![0, 2]);
    }

    #[test]
    fn tree_heuristic_end_to_end() {
        let c = setup();
        let h = Heuristic::tree(&c, "is//job").unwrap();
        assert_eq!(h.coverage(&c), vec![3]);
        assert_eq!(h.grammar_name(), "TreeMatch");
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let c = setup();
        let h = Heuristic::phrase(&c, "best way to").unwrap();
        assert_eq!(Heuristic::phrase(&c, &h.display(c.vocab())).unwrap(), h);
        let t = Heuristic::tree(&c, "is/NOUN & is//job").unwrap();
        assert_eq!(Heuristic::tree(&c, &t.display(c.vocab())).unwrap(), t);
    }

    #[test]
    fn parse_error_display() {
        let c = setup();
        let err = Heuristic::phrase(&c, "zeppelin").unwrap_err();
        assert!(err.to_string().contains("zeppelin"));
    }
}

//! The TokensRegex grammar (paper Example 2).
//!
//! ```text
//! A → v A   (∀ v ∈ V)      a literal token
//! A → A + A                one-or-more arbitrary tokens between the parts
//! A → A * A                zero-or-more arbitrary tokens between the parts
//! A → ε
//! ```
//!
//! A pattern made only of literal tokens matches any sentence containing
//! that contiguous phrase ("best way to" matches s1, s3, s6 of Example 1);
//! `+`/`*` insert bounded-anywhere gaps ("caused + by" matches "caused
//! mostly by").

use darwin_text::{Sentence, Sym, Vocab};

/// One element of a token-level pattern.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum PhraseElem {
    /// A literal token.
    Tok(Sym),
    /// `+`: one or more arbitrary tokens.
    Plus,
    /// `*`: zero or more arbitrary tokens.
    Star,
}

/// A TokensRegex derivation: a sequence of literals and gap operators.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PhrasePattern {
    pub elems: Vec<PhraseElem>,
}

impl PhrasePattern {
    /// A pure-literal phrase (the common case; what the index stores).
    pub fn from_tokens(tokens: impl IntoIterator<Item = Sym>) -> PhrasePattern {
        PhrasePattern {
            elems: tokens.into_iter().map(PhraseElem::Tok).collect(),
        }
    }

    /// The literal tokens, ignoring gaps.
    pub fn tokens(&self) -> impl Iterator<Item = Sym> + '_ {
        self.elems.iter().filter_map(|e| match e {
            PhraseElem::Tok(s) => Some(*s),
            _ => None,
        })
    }

    /// True if the pattern is a plain contiguous phrase (no gap operators).
    pub fn is_contiguous(&self) -> bool {
        self.elems.iter().all(|e| matches!(e, PhraseElem::Tok(_)))
    }

    /// Number of grammar derivation steps used to produce this pattern
    /// (one `A → vA` per literal, one binary rule per operator, plus the
    /// closing `A → ε`).
    pub fn derivation_steps(&self) -> usize {
        self.elems.len() + 1
    }

    pub fn len(&self) -> usize {
        self.elems.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Does `sentence` satisfy this heuristic? The pattern may match
    /// starting at any token (substring semantics, like the paper's
    /// "a sentence satisfies the heuristic if it contains that phrase").
    pub fn matches(&self, sentence: &Sentence) -> bool {
        if self.elems.is_empty() {
            return true; // ε matches everything (the root heuristic `*`).
        }
        let toks = &sentence.tokens;
        (0..=toks.len()).any(|start| match_at(&self.elems, toks, start, true))
    }

    /// Parse from a whitespace-separated string: `+` and `*` become gap
    /// operators, everything else must be a vocabulary token.
    pub fn parse(vocab: &Vocab, s: &str) -> Result<PhrasePattern, super::ParseError> {
        let mut elems = Vec::new();
        for part in s.split_whitespace() {
            elems.push(match part {
                "+" => PhraseElem::Plus,
                "*" => PhraseElem::Star,
                tok => PhraseElem::Tok(
                    vocab
                        .get(tok)
                        .ok_or_else(|| super::ParseError::UnknownToken(tok.into()))?,
                ),
            });
        }
        if elems.is_empty() {
            return Err(super::ParseError::Empty);
        }
        Ok(PhrasePattern { elems })
    }

    /// Render back to the textual form accepted by [`PhrasePattern::parse`].
    pub fn display(&self, vocab: &Vocab) -> String {
        let mut out = String::new();
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match e {
                PhraseElem::Tok(s) => out.push_str(vocab.resolve(*s)),
                PhraseElem::Plus => out.push('+'),
                PhraseElem::Star => out.push('*'),
            }
        }
        out
    }
}

/// Backtracking matcher. `anchored` pins the first literal to `pos`; gap
/// operators then re-enable floating within their span.
fn match_at(elems: &[PhraseElem], toks: &[Sym], pos: usize, anchored: bool) -> bool {
    let Some((first, rest)) = elems.split_first() else {
        return true;
    };
    match first {
        PhraseElem::Tok(want) => {
            if anchored {
                pos < toks.len() && toks[pos] == *want && match_at(rest, toks, pos + 1, true)
            } else {
                // Float: find the next occurrence of `want` at or after pos.
                (pos..toks.len())
                    .filter(|&p| toks[p] == *want)
                    .any(|p| match_at(rest, toks, p + 1, true))
            }
        }
        PhraseElem::Plus => pos < toks.len() && match_at(rest, toks, pos + 1, false),
        PhraseElem::Star => match_at(rest, toks, pos, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::Corpus;

    fn setup() -> Corpus {
        Corpus::from_texts([
            "what is the best way to get to sfo airport",
            "is there a bart from sfo to the hotel",
            "what is the best way to check in there",
            "the outage was caused mostly by the storm",
            "the fire was caused by lightning",
        ])
    }

    fn pat(c: &Corpus, s: &str) -> PhrasePattern {
        PhrasePattern::parse(c.vocab(), s).unwrap()
    }

    #[test]
    fn contiguous_phrase_matches_substring() {
        let c = setup();
        let p = pat(&c, "best way to");
        assert!(p.matches(c.sentence(0)));
        assert!(!p.matches(c.sentence(1)));
        assert!(p.matches(c.sentence(2)));
    }

    #[test]
    fn phrase_must_be_contiguous() {
        let c = setup();
        let p = pat(&c, "best way sfo");
        assert!(
            !p.matches(c.sentence(0)),
            "tokens present but not contiguous"
        );
    }

    #[test]
    fn plus_gap_requires_at_least_one_token() {
        let c = setup();
        let gap = pat(&c, "caused + by");
        assert!(gap.matches(c.sentence(3)), "caused mostly by");
        assert!(
            !gap.matches(c.sentence(4)),
            "caused by is adjacent; + needs a gap"
        );
        let star = pat(&c, "caused * by");
        assert!(star.matches(c.sentence(3)));
        assert!(star.matches(c.sentence(4)));
    }

    #[test]
    fn parse_display_roundtrip() {
        let c = setup();
        for s in ["best way to", "caused + by", "caused * by the", "sfo"] {
            let p = pat(&c, s);
            assert_eq!(p.display(c.vocab()), s);
            assert_eq!(
                PhrasePattern::parse(c.vocab(), &p.display(c.vocab())).unwrap(),
                p
            );
        }
    }

    #[test]
    fn unknown_token_is_an_error() {
        let c = setup();
        assert!(matches!(
            PhrasePattern::parse(c.vocab(), "zeppelin rides"),
            Err(super::super::ParseError::UnknownToken(_))
        ));
        assert!(matches!(
            PhrasePattern::parse(c.vocab(), "  "),
            Err(super::super::ParseError::Empty)
        ));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let c = setup();
        let p = PhrasePattern { elems: vec![] };
        for s in c.sentences() {
            assert!(p.matches(s));
        }
    }

    #[test]
    fn repeated_token_backtracking() {
        // "to get to sfo": pattern "to sfo" must match via the second "to".
        let c = setup();
        let p = pat(&c, "to sfo");
        assert!(p.matches(c.sentence(0)));
        let p2 = pat(&c, "to + sfo");
        assert!(p2.matches(c.sentence(0)), "to get ... sfo via first 'to'");
    }

    #[test]
    fn derivation_steps_counts_elems() {
        let c = setup();
        assert_eq!(pat(&c, "best way to").derivation_steps(), 4);
        assert_eq!(pat(&c, "caused + by").derivation_steps(), 4);
    }

    #[test]
    fn gap_at_ends() {
        let c = setup();
        // Trailing + requires a token after "by".
        let p = pat(&c, "by +");
        assert!(p.matches(c.sentence(3)), "by the storm");
        // Sentence 4 ends with "lightning" after "by" so it also matches.
        assert!(p.matches(c.sentence(4)));
        // Leading star.
        let p2 = pat(&c, "* bart");
        assert!(p2.matches(c.sentence(1)));
    }
}

//! The TreeMatch grammar (paper Definition 3).
//!
//! Terminals are corpus tokens and universal POS tags; the operations are
//! `Child` (`a/b`: `b` is a child of `a` in the dependency tree),
//! `Descendant` (`a//b`), and `And` (`p ∧ q`: both patterns hold at the same
//! tree node). The paper's example heuristic for professions is
//! `is/NOUN ∧ job`.
//!
//! The textual syntax accepted by [`TreePattern::parse`] uses `&` for `∧`;
//! `/` and `//` bind tighter than `&`, and parentheses group.

use darwin_text::{PosTag, Sentence, Sym, Vocab};

/// A TreeMatch terminal: a literal token or a POS tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TreeTerm {
    Tok(Sym),
    Pos(PosTag),
}

impl TreeTerm {
    /// Does tree node `i` of `s` satisfy this terminal?
    #[inline]
    pub fn matches_node(&self, s: &Sentence, i: usize) -> bool {
        match self {
            TreeTerm::Tok(t) => s.tokens[i] == *t,
            TreeTerm::Pos(p) => s.tags[i] == *p,
        }
    }
}

/// A TreeMatch derivation.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TreePattern {
    Term(TreeTerm),
    /// `a / b` — the pattern `b` holds at some child of the node where `a` holds.
    Child(Box<TreePattern>, Box<TreePattern>),
    /// `a // b` — `b` holds at some proper descendant.
    Desc(Box<TreePattern>, Box<TreePattern>),
    /// `p & q` — both hold at the same node.
    And(Box<TreePattern>, Box<TreePattern>),
}

impl TreePattern {
    pub fn term_tok(s: Sym) -> TreePattern {
        TreePattern::Term(TreeTerm::Tok(s))
    }

    pub fn term_pos(p: PosTag) -> TreePattern {
        TreePattern::Term(TreeTerm::Pos(p))
    }

    pub fn child(a: TreePattern, b: TreePattern) -> TreePattern {
        TreePattern::Child(Box::new(a), Box::new(b))
    }

    pub fn desc(a: TreePattern, b: TreePattern) -> TreePattern {
        TreePattern::Desc(Box::new(a), Box::new(b))
    }

    pub fn and(a: TreePattern, b: TreePattern) -> TreePattern {
        TreePattern::And(Box::new(a), Box::new(b))
    }

    /// Number of grammar derivation steps (one per terminal, one per operator).
    pub fn derivation_steps(&self) -> usize {
        match self {
            TreePattern::Term(_) => 1,
            TreePattern::Child(a, b) | TreePattern::Desc(a, b) | TreePattern::And(a, b) => {
                1 + a.derivation_steps() + b.derivation_steps()
            }
        }
    }

    /// Does the pattern hold at tree node `i`? Plain recursion over the
    /// corpus-resident CSR adjacency; [`MatchCtx`] is the amortized kernel
    /// for whole-sentence sweeps.
    pub fn matches_at(&self, s: &Sentence, i: usize) -> bool {
        match self {
            TreePattern::Term(t) => t.matches_node(s, i),
            TreePattern::Child(a, b) => {
                a.matches_at(s, i) && s.children(i).any(|c| b.matches_at(s, c))
            }
            TreePattern::Desc(a, b) => {
                a.matches_at(s, i) && s.descendants(i).iter().any(|&d| b.matches_at(s, d))
            }
            TreePattern::And(a, b) => a.matches_at(s, i) && b.matches_at(s, i),
        }
    }

    /// Does `sentence` satisfy this heuristic (the pattern holds at any node)?
    pub fn matches(&self, sentence: &Sentence) -> bool {
        (0..sentence.len()).any(|i| self.matches_at(sentence, i))
    }
}

/// Reusable whole-sentence match scratch — the tree match kernel.
///
/// The plain [`TreePattern::matches`] recursion re-derives a subpattern's
/// verdict at the same tree node once per anchor whose `Child`/`Desc` walk
/// reaches it, and every `Desc` step allocates a descendants `Vec`.
/// `MatchCtx` memoizes composite-subpattern (pattern node × token)
/// verdicts in a flat arena and walks descendants over the sentence's CSR
/// adjacency with a reusable stack, so sweeping all anchors costs each
/// subpattern at most once per token and allocates nothing after warm-up.
/// Term leaves and the root skip the arena — a leaf recomputes cheaper
/// than it probes, and the root is reached once per anchor.
///
/// Verdicts are bit-identical to the plain recursion: every memo cell is a
/// pure function of (pattern node, sentence, token), and the descendant
/// walk visits the same nodes in the same order as
/// [`Sentence::descendants`] (pop from the tail, push children ascending).
/// The property suite pins this equivalence on arbitrary trees.
#[derive(Default)]
pub struct MatchCtx {
    /// node×token verdict arena: 0 unknown, 1 no, 2 yes.
    memo: Vec<u8>,
    /// Pre-order subtree sizes of the currently bound pattern; node ids are
    /// pre-order positions, so node `n`'s children sit at `n + 1` and
    /// `n + 1 + sizes[n + 1]`.
    sizes: Vec<u32>,
    /// Descendant-walk scratch, segmented by recursion depth.
    stack: Vec<u16>,
}

impl MatchCtx {
    pub fn new() -> MatchCtx {
        MatchCtx::default()
    }

    /// Does the pattern hold at any node of `s`? Equivalent to
    /// [`TreePattern::matches`], amortized over all anchors.
    pub fn matches(&mut self, p: &TreePattern, s: &Sentence) -> bool {
        self.bind(p, s);
        (0..s.len()).any(|i| self.eval(p, 0, s, i))
    }

    /// Does the pattern hold at node `i`? Equivalent to
    /// [`TreePattern::matches_at`]. Rebinds the arena, so prefer
    /// [`MatchCtx::matches`] when sweeping anchors.
    pub fn matches_at(&mut self, p: &TreePattern, s: &Sentence, i: usize) -> bool {
        self.bind(p, s);
        self.eval(p, 0, s, i)
    }

    fn bind(&mut self, p: &TreePattern, s: &Sentence) {
        fn layout(p: &TreePattern, sizes: &mut Vec<u32>) -> u32 {
            let me = sizes.len();
            sizes.push(1);
            if let TreePattern::Child(a, b) | TreePattern::Desc(a, b) | TreePattern::And(a, b) = p {
                let sz = 1 + layout(a, sizes) + layout(b, sizes);
                sizes[me] = sz;
                sz
            } else {
                1
            }
        }
        self.sizes.clear();
        layout(p, &mut self.sizes);
        self.memo.clear();
        // Memo cells only ever pay off on *composite* subpatterns strictly
        // below the root: the root is evaluated once per anchor and Term
        // nodes are cheaper to recompute than to probe (both bypass the
        // memo in `eval`). Small patterns — the bulk of the enumerated
        // family — thus skip the arena memset altogether.
        let needs_memo = match p {
            TreePattern::Term(_) => false,
            TreePattern::Child(a, b) | TreePattern::Desc(a, b) | TreePattern::And(a, b) => {
                !matches!(**a, TreePattern::Term(_)) || !matches!(**b, TreePattern::Term(_))
            }
        };
        if needs_memo {
            self.memo.resize(self.sizes.len() * s.len(), 0);
        }
        self.stack.clear();
    }

    fn eval(&mut self, p: &TreePattern, node: usize, s: &Sentence, i: usize) -> bool {
        // Terms bypass the memo: one load+compare beats a probe and a
        // store. The root (node 0) does too — `matches` reaches it exactly
        // once per anchor, so its cells could never be re-read.
        if let TreePattern::Term(t) = p {
            return t.matches_node(s, i);
        }
        let cell = node * s.len() + i;
        if node != 0 {
            match self.memo[cell] {
                1 => return false,
                2 => return true,
                _ => {}
            }
        }
        let hit = match p {
            TreePattern::Term(_) => unreachable!("terms return before the memo probe"),
            TreePattern::And(a, b) => {
                self.eval(a, node + 1, s, i)
                    && self.eval(b, node + 1 + self.sizes[node + 1] as usize, s, i)
            }
            TreePattern::Child(a, b) => {
                self.eval(a, node + 1, s, i) && {
                    let bn = node + 1 + self.sizes[node + 1] as usize;
                    let mut found = false;
                    for &c in s.children_slice(i) {
                        if self.eval(b, bn, s, c as usize) {
                            found = true;
                            break;
                        }
                    }
                    found
                }
            }
            TreePattern::Desc(a, b) => {
                self.eval(a, node + 1, s, i) && {
                    let bn = node + 1 + self.sizes[node + 1] as usize;
                    let base = self.stack.len();
                    self.stack.extend_from_slice(s.children_slice(i));
                    let mut found = false;
                    while self.stack.len() > base {
                        let d = self.stack.pop().expect("stack above base") as usize;
                        if self.eval(b, bn, s, d) {
                            found = true;
                            break;
                        }
                        self.stack.extend_from_slice(s.children_slice(d));
                    }
                    self.stack.truncate(base);
                    found
                }
            }
        };
        if node != 0 {
            self.memo[cell] = if hit { 2 } else { 1 };
        }
        hit
    }
}

impl TreePattern {
    /// Parse the textual syntax (see module docs). Upper-case identifiers
    /// are POS tags, everything else is a vocabulary token.
    pub fn parse(vocab: &Vocab, input: &str) -> Result<TreePattern, super::ParseError> {
        let toks = lex(input)?;
        let mut p = Parser {
            toks: &toks,
            pos: 0,
            vocab,
        };
        let pat = p.parse_and()?;
        if p.pos != p.toks.len() {
            return Err(super::ParseError::Syntax(format!(
                "unexpected trailing input at token {}",
                p.pos
            )));
        }
        Ok(pat)
    }

    /// Render back to parseable text.
    pub fn display(&self, vocab: &Vocab) -> String {
        fn go(p: &TreePattern, vocab: &Vocab, parent_is_path: bool, out: &mut String) {
            match p {
                TreePattern::Term(TreeTerm::Tok(s)) => out.push_str(vocab.resolve(*s)),
                TreePattern::Term(TreeTerm::Pos(t)) => out.push_str(t.name()),
                TreePattern::Child(a, b) | TreePattern::Desc(a, b) => {
                    go(a, vocab, true, out);
                    out.push_str(if matches!(p, TreePattern::Child(..)) {
                        "/"
                    } else {
                        "//"
                    });
                    // Right operand of a path must be atomic or parenthesized.
                    if matches!(**b, TreePattern::Term(_)) {
                        go(b, vocab, true, out);
                    } else {
                        out.push('(');
                        go(b, vocab, false, out);
                        out.push(')');
                    }
                }
                TreePattern::And(a, b) => {
                    if parent_is_path {
                        out.push('(');
                    }
                    go(a, vocab, false, out);
                    out.push_str(" & ");
                    go(b, vocab, false, out);
                    if parent_is_path {
                        out.push(')');
                    }
                }
            }
        }
        let mut out = String::new();
        go(self, vocab, false, &mut out);
        out
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Lexeme {
    Ident(String),
    Slash,
    DoubleSlash,
    Amp,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<Lexeme>, super::ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    out.push(Lexeme::DoubleSlash);
                    i += 2;
                } else {
                    out.push(Lexeme::Slash);
                    i += 1;
                }
            }
            '&' | '∧' => {
                out.push(Lexeme::Amp);
                i += 1;
            }
            '(' => {
                out.push(Lexeme::LParen);
                i += 1;
            }
            ')' => {
                out.push(Lexeme::RParen);
                i += 1;
            }
            _ => {
                let start = i;
                while i < chars.len() && !"/&∧() \t".contains(chars[i]) {
                    i += 1;
                }
                out.push(Lexeme::Ident(chars[start..i].iter().collect()));
            }
        }
    }
    if out.is_empty() {
        return Err(super::ParseError::Empty);
    }
    Ok(out)
}

struct Parser<'a> {
    toks: &'a [Lexeme],
    pos: usize,
    vocab: &'a Vocab,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Lexeme> {
        self.toks.get(self.pos)
    }

    fn parse_and(&mut self) -> Result<TreePattern, super::ParseError> {
        let mut left = self.parse_path()?;
        while self.peek() == Some(&Lexeme::Amp) {
            self.pos += 1;
            let right = self.parse_path()?;
            left = TreePattern::and(left, right);
        }
        Ok(left)
    }

    fn parse_path(&mut self) -> Result<TreePattern, super::ParseError> {
        let mut left = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Lexeme::Slash) => {
                    self.pos += 1;
                    let right = self.parse_atom()?;
                    left = TreePattern::child(left, right);
                }
                Some(Lexeme::DoubleSlash) => {
                    self.pos += 1;
                    let right = self.parse_atom()?;
                    left = TreePattern::desc(left, right);
                }
                _ => return Ok(left),
            }
        }
    }

    fn parse_atom(&mut self) -> Result<TreePattern, super::ParseError> {
        match self.peek().cloned() {
            Some(Lexeme::LParen) => {
                self.pos += 1;
                let inner = self.parse_and()?;
                if self.peek() != Some(&Lexeme::RParen) {
                    return Err(super::ParseError::Syntax("expected ')'".into()));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(Lexeme::Ident(id)) => {
                self.pos += 1;
                if id.chars().all(|c| c.is_ascii_uppercase()) {
                    let tag: PosTag = id
                        .parse()
                        .map_err(|_| super::ParseError::Syntax(format!("unknown POS tag {id}")))?;
                    Ok(TreePattern::term_pos(tag))
                } else {
                    let sym = self
                        .vocab
                        .get(&id)
                        .ok_or(super::ParseError::UnknownToken(id))?;
                    Ok(TreePattern::term_tok(sym))
                }
            }
            other => Err(super::ParseError::Syntax(format!("unexpected {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::Corpus;

    fn setup() -> Corpus {
        Corpus::from_texts([
            "uber is the best way to our hotel",
            "his job is a teacher at the school",
            "the storm caused the outage",
            "what is the best way to order food",
        ])
    }

    fn pat(c: &Corpus, s: &str) -> TreePattern {
        TreePattern::parse(c.vocab(), s).unwrap()
    }

    #[test]
    fn term_matches() {
        let c = setup();
        assert!(pat(&c, "uber").matches(c.sentence(0)));
        assert!(!pat(&c, "uber").matches(c.sentence(1)));
        assert!(pat(&c, "VERB").matches(c.sentence(0)));
    }

    #[test]
    fn child_follows_tree_edges() {
        let c = setup();
        // In "uber is the best way to our hotel", "way" is a child of "is"
        // and "best" a child of "way".
        assert!(pat(&c, "is/way").matches(c.sentence(0)));
        assert!(pat(&c, "way/best").matches(c.sentence(0)));
        assert!(
            !pat(&c, "best/way").matches(c.sentence(0)),
            "edge direction matters"
        );
    }

    #[test]
    fn descendant_reaches_deeper() {
        let c = setup();
        // "hotel" is a grandchild of "way" (via "to"), so // matches but / does not.
        assert!(pat(&c, "is//hotel").matches(c.sentence(0)));
        assert!(pat(&c, "way//hotel").matches(c.sentence(0)));
        assert!(!pat(&c, "way/hotel").matches(c.sentence(0)));
    }

    #[test]
    fn and_requires_same_node() {
        let c = setup();
        // Node "way": NOUN with child "best" and child "to".
        assert!(pat(&c, "NOUN & way").matches(c.sentence(0)));
        assert!(pat(&c, "way/best & way/to").matches(c.sentence(0)));
        assert!(!pat(&c, "uber & hotel").matches(c.sentence(0)));
    }

    #[test]
    fn paper_profession_style_pattern() {
        let c = setup();
        // `is/NOUN & is//job`-ish: "is" with a NOUN child, and "job" below.
        let p = pat(&c, "is/NOUN & is//job");
        assert!(p.matches(c.sentence(1)));
        assert!(!p.matches(c.sentence(0)));
    }

    #[test]
    fn parse_display_roundtrip() {
        let c = setup();
        for s in [
            "uber",
            "NOUN",
            "is/way",
            "is//hotel",
            "NOUN & way",
            "way/best & way/to",
            "is/(NOUN & way)",
            "is/way/best",
        ] {
            let p = pat(&c, s);
            let shown = p.display(c.vocab());
            let reparsed = TreePattern::parse(c.vocab(), &shown).unwrap();
            assert_eq!(p, reparsed, "roundtrip failed for {s} -> {shown}");
        }
    }

    #[test]
    fn parse_errors() {
        let c = setup();
        assert!(matches!(
            TreePattern::parse(c.vocab(), ""),
            Err(crate::ParseError::Empty)
        ));
        assert!(matches!(
            TreePattern::parse(c.vocab(), "zeppelin"),
            Err(crate::ParseError::UnknownToken(_))
        ));
        assert!(matches!(
            TreePattern::parse(c.vocab(), "QQQQ"),
            Err(crate::ParseError::Syntax(_))
        ));
        assert!(matches!(
            TreePattern::parse(c.vocab(), "(is/way"),
            Err(crate::ParseError::Syntax(_))
        ));
        assert!(matches!(
            TreePattern::parse(c.vocab(), "is/way)"),
            Err(crate::ParseError::Syntax(_))
        ));
    }

    #[test]
    fn unicode_and_operator() {
        let c = setup();
        assert_eq!(pat(&c, "NOUN ∧ way"), pat(&c, "NOUN & way"));
    }

    #[test]
    fn derivation_steps() {
        let c = setup();
        assert_eq!(pat(&c, "uber").derivation_steps(), 1);
        assert_eq!(pat(&c, "is/way").derivation_steps(), 3);
        assert_eq!(pat(&c, "way/best & way/to").derivation_steps(), 7);
    }

    #[test]
    fn slash_binds_tighter_than_amp() {
        let c = setup();
        let p = pat(&c, "is/way & is/uber");
        match p {
            TreePattern::And(a, b) => {
                assert!(matches!(*a, TreePattern::Child(..)));
                assert!(matches!(*b, TreePattern::Child(..)));
            }
            other => panic!("expected And at top, got {other:?}"),
        }
    }
}

//! The TreeMatch grammar (paper Definition 3).
//!
//! Terminals are corpus tokens and universal POS tags; the operations are
//! `Child` (`a/b`: `b` is a child of `a` in the dependency tree),
//! `Descendant` (`a//b`), and `And` (`p ∧ q`: both patterns hold at the same
//! tree node). The paper's example heuristic for professions is
//! `is/NOUN ∧ job`.
//!
//! The textual syntax accepted by [`TreePattern::parse`] uses `&` for `∧`;
//! `/` and `//` bind tighter than `&`, and parentheses group.

use darwin_text::{PosTag, Sentence, Sym, Vocab};

/// A TreeMatch terminal: a literal token or a POS tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TreeTerm {
    Tok(Sym),
    Pos(PosTag),
}

impl TreeTerm {
    /// Does tree node `i` of `s` satisfy this terminal?
    #[inline]
    pub fn matches_node(&self, s: &Sentence, i: usize) -> bool {
        match self {
            TreeTerm::Tok(t) => s.tokens[i] == *t,
            TreeTerm::Pos(p) => s.tags[i] == *p,
        }
    }
}

/// A TreeMatch derivation.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TreePattern {
    Term(TreeTerm),
    /// `a / b` — the pattern `b` holds at some child of the node where `a` holds.
    Child(Box<TreePattern>, Box<TreePattern>),
    /// `a // b` — `b` holds at some proper descendant.
    Desc(Box<TreePattern>, Box<TreePattern>),
    /// `p & q` — both hold at the same node.
    And(Box<TreePattern>, Box<TreePattern>),
}

impl TreePattern {
    pub fn term_tok(s: Sym) -> TreePattern {
        TreePattern::Term(TreeTerm::Tok(s))
    }

    pub fn term_pos(p: PosTag) -> TreePattern {
        TreePattern::Term(TreeTerm::Pos(p))
    }

    pub fn child(a: TreePattern, b: TreePattern) -> TreePattern {
        TreePattern::Child(Box::new(a), Box::new(b))
    }

    pub fn desc(a: TreePattern, b: TreePattern) -> TreePattern {
        TreePattern::Desc(Box::new(a), Box::new(b))
    }

    pub fn and(a: TreePattern, b: TreePattern) -> TreePattern {
        TreePattern::And(Box::new(a), Box::new(b))
    }

    /// Number of grammar derivation steps (one per terminal, one per operator).
    pub fn derivation_steps(&self) -> usize {
        match self {
            TreePattern::Term(_) => 1,
            TreePattern::Child(a, b) | TreePattern::Desc(a, b) | TreePattern::And(a, b) => {
                1 + a.derivation_steps() + b.derivation_steps()
            }
        }
    }

    /// Does the pattern hold at tree node `i`?
    pub fn matches_at(&self, s: &Sentence, i: usize) -> bool {
        match self {
            TreePattern::Term(t) => t.matches_node(s, i),
            TreePattern::Child(a, b) => {
                a.matches_at(s, i) && s.children(i).any(|c| b.matches_at(s, c))
            }
            TreePattern::Desc(a, b) => {
                a.matches_at(s, i) && s.descendants(i).iter().any(|&d| b.matches_at(s, d))
            }
            TreePattern::And(a, b) => a.matches_at(s, i) && b.matches_at(s, i),
        }
    }

    /// Does `sentence` satisfy this heuristic (the pattern holds at any node)?
    pub fn matches(&self, sentence: &Sentence) -> bool {
        (0..sentence.len()).any(|i| self.matches_at(sentence, i))
    }

    /// Parse the textual syntax (see module docs). Upper-case identifiers
    /// are POS tags, everything else is a vocabulary token.
    pub fn parse(vocab: &Vocab, input: &str) -> Result<TreePattern, super::ParseError> {
        let toks = lex(input)?;
        let mut p = Parser {
            toks: &toks,
            pos: 0,
            vocab,
        };
        let pat = p.parse_and()?;
        if p.pos != p.toks.len() {
            return Err(super::ParseError::Syntax(format!(
                "unexpected trailing input at token {}",
                p.pos
            )));
        }
        Ok(pat)
    }

    /// Render back to parseable text.
    pub fn display(&self, vocab: &Vocab) -> String {
        fn go(p: &TreePattern, vocab: &Vocab, parent_is_path: bool, out: &mut String) {
            match p {
                TreePattern::Term(TreeTerm::Tok(s)) => out.push_str(vocab.resolve(*s)),
                TreePattern::Term(TreeTerm::Pos(t)) => out.push_str(t.name()),
                TreePattern::Child(a, b) | TreePattern::Desc(a, b) => {
                    go(a, vocab, true, out);
                    out.push_str(if matches!(p, TreePattern::Child(..)) {
                        "/"
                    } else {
                        "//"
                    });
                    // Right operand of a path must be atomic or parenthesized.
                    if matches!(**b, TreePattern::Term(_)) {
                        go(b, vocab, true, out);
                    } else {
                        out.push('(');
                        go(b, vocab, false, out);
                        out.push(')');
                    }
                }
                TreePattern::And(a, b) => {
                    if parent_is_path {
                        out.push('(');
                    }
                    go(a, vocab, false, out);
                    out.push_str(" & ");
                    go(b, vocab, false, out);
                    if parent_is_path {
                        out.push(')');
                    }
                }
            }
        }
        let mut out = String::new();
        go(self, vocab, false, &mut out);
        out
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Lexeme {
    Ident(String),
    Slash,
    DoubleSlash,
    Amp,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<Lexeme>, super::ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    out.push(Lexeme::DoubleSlash);
                    i += 2;
                } else {
                    out.push(Lexeme::Slash);
                    i += 1;
                }
            }
            '&' | '∧' => {
                out.push(Lexeme::Amp);
                i += 1;
            }
            '(' => {
                out.push(Lexeme::LParen);
                i += 1;
            }
            ')' => {
                out.push(Lexeme::RParen);
                i += 1;
            }
            _ => {
                let start = i;
                while i < chars.len() && !"/&∧() \t".contains(chars[i]) {
                    i += 1;
                }
                out.push(Lexeme::Ident(chars[start..i].iter().collect()));
            }
        }
    }
    if out.is_empty() {
        return Err(super::ParseError::Empty);
    }
    Ok(out)
}

struct Parser<'a> {
    toks: &'a [Lexeme],
    pos: usize,
    vocab: &'a Vocab,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Lexeme> {
        self.toks.get(self.pos)
    }

    fn parse_and(&mut self) -> Result<TreePattern, super::ParseError> {
        let mut left = self.parse_path()?;
        while self.peek() == Some(&Lexeme::Amp) {
            self.pos += 1;
            let right = self.parse_path()?;
            left = TreePattern::and(left, right);
        }
        Ok(left)
    }

    fn parse_path(&mut self) -> Result<TreePattern, super::ParseError> {
        let mut left = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Lexeme::Slash) => {
                    self.pos += 1;
                    let right = self.parse_atom()?;
                    left = TreePattern::child(left, right);
                }
                Some(Lexeme::DoubleSlash) => {
                    self.pos += 1;
                    let right = self.parse_atom()?;
                    left = TreePattern::desc(left, right);
                }
                _ => return Ok(left),
            }
        }
    }

    fn parse_atom(&mut self) -> Result<TreePattern, super::ParseError> {
        match self.peek().cloned() {
            Some(Lexeme::LParen) => {
                self.pos += 1;
                let inner = self.parse_and()?;
                if self.peek() != Some(&Lexeme::RParen) {
                    return Err(super::ParseError::Syntax("expected ')'".into()));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(Lexeme::Ident(id)) => {
                self.pos += 1;
                if id.chars().all(|c| c.is_ascii_uppercase()) {
                    let tag: PosTag = id
                        .parse()
                        .map_err(|_| super::ParseError::Syntax(format!("unknown POS tag {id}")))?;
                    Ok(TreePattern::term_pos(tag))
                } else {
                    let sym = self
                        .vocab
                        .get(&id)
                        .ok_or(super::ParseError::UnknownToken(id))?;
                    Ok(TreePattern::term_tok(sym))
                }
            }
            other => Err(super::ParseError::Syntax(format!("unexpected {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::Corpus;

    fn setup() -> Corpus {
        Corpus::from_texts([
            "uber is the best way to our hotel",
            "his job is a teacher at the school",
            "the storm caused the outage",
            "what is the best way to order food",
        ])
    }

    fn pat(c: &Corpus, s: &str) -> TreePattern {
        TreePattern::parse(c.vocab(), s).unwrap()
    }

    #[test]
    fn term_matches() {
        let c = setup();
        assert!(pat(&c, "uber").matches(c.sentence(0)));
        assert!(!pat(&c, "uber").matches(c.sentence(1)));
        assert!(pat(&c, "VERB").matches(c.sentence(0)));
    }

    #[test]
    fn child_follows_tree_edges() {
        let c = setup();
        // In "uber is the best way to our hotel", "way" is a child of "is"
        // and "best" a child of "way".
        assert!(pat(&c, "is/way").matches(c.sentence(0)));
        assert!(pat(&c, "way/best").matches(c.sentence(0)));
        assert!(
            !pat(&c, "best/way").matches(c.sentence(0)),
            "edge direction matters"
        );
    }

    #[test]
    fn descendant_reaches_deeper() {
        let c = setup();
        // "hotel" is a grandchild of "way" (via "to"), so // matches but / does not.
        assert!(pat(&c, "is//hotel").matches(c.sentence(0)));
        assert!(pat(&c, "way//hotel").matches(c.sentence(0)));
        assert!(!pat(&c, "way/hotel").matches(c.sentence(0)));
    }

    #[test]
    fn and_requires_same_node() {
        let c = setup();
        // Node "way": NOUN with child "best" and child "to".
        assert!(pat(&c, "NOUN & way").matches(c.sentence(0)));
        assert!(pat(&c, "way/best & way/to").matches(c.sentence(0)));
        assert!(!pat(&c, "uber & hotel").matches(c.sentence(0)));
    }

    #[test]
    fn paper_profession_style_pattern() {
        let c = setup();
        // `is/NOUN & is//job`-ish: "is" with a NOUN child, and "job" below.
        let p = pat(&c, "is/NOUN & is//job");
        assert!(p.matches(c.sentence(1)));
        assert!(!p.matches(c.sentence(0)));
    }

    #[test]
    fn parse_display_roundtrip() {
        let c = setup();
        for s in [
            "uber",
            "NOUN",
            "is/way",
            "is//hotel",
            "NOUN & way",
            "way/best & way/to",
            "is/(NOUN & way)",
            "is/way/best",
        ] {
            let p = pat(&c, s);
            let shown = p.display(c.vocab());
            let reparsed = TreePattern::parse(c.vocab(), &shown).unwrap();
            assert_eq!(p, reparsed, "roundtrip failed for {s} -> {shown}");
        }
    }

    #[test]
    fn parse_errors() {
        let c = setup();
        assert!(matches!(
            TreePattern::parse(c.vocab(), ""),
            Err(crate::ParseError::Empty)
        ));
        assert!(matches!(
            TreePattern::parse(c.vocab(), "zeppelin"),
            Err(crate::ParseError::UnknownToken(_))
        ));
        assert!(matches!(
            TreePattern::parse(c.vocab(), "QQQQ"),
            Err(crate::ParseError::Syntax(_))
        ));
        assert!(matches!(
            TreePattern::parse(c.vocab(), "(is/way"),
            Err(crate::ParseError::Syntax(_))
        ));
        assert!(matches!(
            TreePattern::parse(c.vocab(), "is/way)"),
            Err(crate::ParseError::Syntax(_))
        ));
    }

    #[test]
    fn unicode_and_operator() {
        let c = setup();
        assert_eq!(pat(&c, "NOUN ∧ way"), pat(&c, "NOUN & way"));
    }

    #[test]
    fn derivation_steps() {
        let c = setup();
        assert_eq!(pat(&c, "uber").derivation_steps(), 1);
        assert_eq!(pat(&c, "is/way").derivation_steps(), 3);
        assert_eq!(pat(&c, "way/best & way/to").derivation_steps(), 7);
    }

    #[test]
    fn slash_binds_tighter_than_amp() {
        let c = setup();
        let p = pat(&c, "is/way & is/uber");
        match p {
            TreePattern::And(a, b) => {
                assert!(matches!(*a, TreePattern::Child(..)));
                assert!(matches!(*b, TreePattern::Child(..)));
            }
            other => panic!("expected And at top, got {other:?}"),
        }
    }
}

//! Heuristic grammars for Darwin (paper §2).
//!
//! A *labeling heuristic* is a derivation of a context-free Heuristic
//! Grammar (Definitions 1–2). Darwin ships two grammars, with the ability
//! to plug in more:
//!
//! * **TokensRegex** ([`phrase`]) — regular expressions over tokens with `+`
//!   (one-or-more arbitrary tokens) and `*` (zero-or-more) operators
//!   (Example 2). A plain token sequence such as `best way to` matches any
//!   sentence containing that phrase.
//! * **TreeMatch** ([`tree`]) — patterns over dependency parse trees with
//!   `Child` (`/`), `Descendant` (`//`) and `And` (`∧`, written `&`)
//!   operations whose terminals are tokens or universal POS tags
//!   (Definition 3), e.g. `is/NOUN & job`.
//!
//! [`mod@cfg`] holds the formal CFG presentations of both grammars and can list
//! the derivation-rule sequence producing any pattern, which is how we test
//! that every heuristic really is a grammar derivation.

pub mod cfg;
pub mod heuristic;
pub mod phrase;
pub mod tree;

pub use heuristic::{Heuristic, ParseError};
pub use phrase::{PhraseElem, PhrasePattern};
pub use tree::{MatchCtx, TreePattern, TreeTerm};

//! Formal context-free grammar machinery (paper Definition 1).
//!
//! Darwin supports "any rule language that can be specified using a
//! context-free grammar". This module gives the two built-in grammars their
//! formal presentation and can *witness* that a concrete pattern is a
//! derivation: [`Cfg::derivation_of_phrase`] and
//! [`Cfg::derivation_of_tree`] return the sequence of production
//! applications that yields the pattern. Tests use this to guarantee every
//! heuristic the system manipulates really belongs to its grammar.

use crate::phrase::{PhraseElem, PhrasePattern};
use crate::tree::{TreePattern, TreeTerm};

/// A symbol on the right-hand side of a production.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RhsSym {
    /// A nonterminal, by name.
    NonTerm(&'static str),
    /// A terminal class (e.g. "any vocabulary token").
    Term(TermClass),
}

/// Terminal classes — grammars over an open vocabulary quantify over all
/// tokens (`∀ v ∈ V`), so terminals are classes rather than literal strings.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TermClass {
    /// Any corpus token.
    AnyToken,
    /// Any universal POS tag.
    AnyPos,
    /// A fixed literal operator, e.g. `+`, `*`, `/`, `//`, `∧`.
    Literal(&'static str),
    /// The empty string.
    Epsilon,
}

/// One derivation rule `lhs → rhs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Production {
    pub name: &'static str,
    pub lhs: &'static str,
    pub rhs: Vec<RhsSym>,
}

/// A context-free Heuristic Grammar.
#[derive(Clone, Debug)]
pub struct Cfg {
    pub name: &'static str,
    pub start: &'static str,
    pub productions: Vec<Production>,
}

impl Cfg {
    /// The TokensRegex grammar of Example 2:
    /// `A → vA | A+A | A*A | ε`.
    pub fn tokens_regex() -> Cfg {
        use RhsSym::*;
        use TermClass::*;
        Cfg {
            name: "TokensRegex",
            start: "A",
            productions: vec![
                Production {
                    name: "token",
                    lhs: "A",
                    rhs: vec![Term(AnyToken), NonTerm("A")],
                },
                Production {
                    name: "plus",
                    lhs: "A",
                    rhs: vec![NonTerm("A"), Term(Literal("+")), NonTerm("A")],
                },
                Production {
                    name: "star",
                    lhs: "A",
                    rhs: vec![NonTerm("A"), Term(Literal("*")), NonTerm("A")],
                },
                Production {
                    name: "eps",
                    lhs: "A",
                    rhs: vec![Term(Epsilon)],
                },
            ],
        }
    }

    /// The TreeMatch grammar of Definition 3:
    /// `A → /A | A∧A | //A | v` with `v` ranging over tokens and POS tags.
    pub fn tree_match() -> Cfg {
        use RhsSym::*;
        use TermClass::*;
        Cfg {
            name: "TreeMatch",
            start: "A",
            productions: vec![
                Production {
                    name: "child",
                    lhs: "A",
                    rhs: vec![NonTerm("A"), Term(Literal("/")), NonTerm("A")],
                },
                Production {
                    name: "desc",
                    lhs: "A",
                    rhs: vec![NonTerm("A"), Term(Literal("//")), NonTerm("A")],
                },
                Production {
                    name: "and",
                    lhs: "A",
                    rhs: vec![NonTerm("A"), Term(Literal("∧")), NonTerm("A")],
                },
                Production {
                    name: "token",
                    lhs: "A",
                    rhs: vec![Term(AnyToken)],
                },
                Production {
                    name: "pos",
                    lhs: "A",
                    rhs: vec![Term(AnyPos)],
                },
            ],
        }
    }

    fn production(&self, name: &str) -> &Production {
        self.productions
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("grammar {} has no production {name}", self.name))
    }

    /// Witness that `p` is a derivation of the TokensRegex grammar: the
    /// leftmost sequence of production names producing it. Returns `None`
    /// if the pattern cannot be derived (it always can, by construction).
    pub fn derivation_of_phrase(&self, p: &PhrasePattern) -> Option<Vec<&'static str>> {
        if self.name != "TokensRegex" {
            return None;
        }
        let mut steps = Vec::with_capacity(p.elems.len() + 1);
        for e in &p.elems {
            steps.push(match e {
                PhraseElem::Tok(_) => self.production("token").name,
                PhraseElem::Plus => self.production("plus").name,
                PhraseElem::Star => self.production("star").name,
            });
        }
        steps.push(self.production("eps").name);
        Some(steps)
    }

    /// Witness that `t` is a derivation of the TreeMatch grammar.
    pub fn derivation_of_tree(&self, t: &TreePattern) -> Option<Vec<&'static str>> {
        if self.name != "TreeMatch" {
            return None;
        }
        let mut steps = Vec::new();
        fn go(cfg: &Cfg, t: &TreePattern, out: &mut Vec<&'static str>) {
            match t {
                TreePattern::Term(TreeTerm::Tok(_)) => out.push(cfg.production("token").name),
                TreePattern::Term(TreeTerm::Pos(_)) => out.push(cfg.production("pos").name),
                TreePattern::Child(a, b) => {
                    out.push(cfg.production("child").name);
                    go(cfg, a, out);
                    go(cfg, b, out);
                }
                TreePattern::Desc(a, b) => {
                    out.push(cfg.production("desc").name);
                    go(cfg, a, out);
                    go(cfg, b, out);
                }
                TreePattern::And(a, b) => {
                    out.push(cfg.production("and").name);
                    go(cfg, a, out);
                    go(cfg, b, out);
                }
            }
        }
        go(self, t, &mut steps);
        Some(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::Corpus;

    #[test]
    fn grammars_have_the_paper_rule_counts() {
        assert_eq!(Cfg::tokens_regex().productions.len(), 4);
        assert_eq!(Cfg::tree_match().productions.len(), 5);
    }

    #[test]
    fn phrase_derivation_witness() {
        let c = Corpus::from_texts(["best way to get there"]);
        let p = PhrasePattern::parse(c.vocab(), "best way + to").unwrap();
        let cfg = Cfg::tokens_regex();
        let d = cfg.derivation_of_phrase(&p).unwrap();
        assert_eq!(d, vec!["token", "token", "plus", "token", "eps"]);
        // Length matches the pattern's own step count.
        assert_eq!(d.len(), p.derivation_steps());
    }

    #[test]
    fn tree_derivation_witness() {
        let c = Corpus::from_texts(["his job is a teacher"]);
        let t = TreePattern::parse(c.vocab(), "is/NOUN & is//job").unwrap();
        let cfg = Cfg::tree_match();
        let d = cfg.derivation_of_tree(&t).unwrap();
        assert_eq!(d[0], "and");
        assert_eq!(d.len(), t.derivation_steps());
        assert!(d.contains(&"pos"));
        assert!(d.contains(&"desc"));
    }

    #[test]
    fn wrong_grammar_yields_none() {
        let c = Corpus::from_texts(["a b"]);
        let p = PhrasePattern::parse(c.vocab(), "a b").unwrap();
        assert!(Cfg::tree_match().derivation_of_phrase(&p).is_none());
    }
}

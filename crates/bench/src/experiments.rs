//! One function per paper table/figure. See DESIGN.md §3 for the index.

use crate::support::{checkpoints, coverage_curve, prepare, scaled, Prepared};
use darwin_baselines::{ActiveLearning, HighC, HighP, KeywordSampling, Snuba, SnubaConfig};
use darwin_classifier::ClassifierKind;
use darwin_core::{
    Darwin, DarwinConfig, GroundTruthOracle, SampledAnnotatorOracle, Seed, TraversalKind,
};
use darwin_datasets::{cause_effect, directions, musicians, professions, tweets, Dataset};
use darwin_eval::{coverage, write_csv, Curve, Table};
use darwin_grammar::Heuristic;
use darwin_index::{IndexConfig, IndexSet};
use darwin_labelmodel::{GenerativeConfig, GenerativeModel, LfMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Table 1 — dataset statistics.
pub fn table1_datasets() {
    let profession_n = scaled(200_000);
    let mut t = Table::new(
        "Table 1: dataset statistics",
        &["dataset", "#sentences", "%positives", "labeling"],
    );
    for d in [
        cause_effect::generate(scaled(10_700), 42),
        musicians::generate(scaled(15_800), 42),
        directions::generate(scaled(15_300), 42),
        professions::generate(profession_n, 42),
        tweets::generate(scaled(2_130), 42),
    ] {
        let s = d.stats();
        t.row(&[
            s.name.into(),
            s.sentences.to_string(),
            format!("{:.1}", s.positive_pct),
            s.task.name().into(),
        ]);
    }
    println!("{}", t.render());
    t.to_csv(&darwin_eval::csv_path("table1_datasets"))
        .expect("csv");
}

fn snuba_coverage(data: &Dataset, sample: &[u32]) -> f64 {
    let result = Snuba::new(SnubaConfig::default()).run(&data.corpus, sample, &data.labels);
    coverage(&result.positives, &data.labels)
}

fn darwin_from_sample(prep: &Prepared, sample: &[u32], budget: usize) -> f64 {
    // Darwin initialized with the positive instances present in the sample
    // (Figure 7/8 protocol: both systems get the same labeled sentences).
    let pos: Vec<u32> = sample
        .iter()
        .copied()
        .filter(|&i| prep.data.labels[i as usize])
        .collect();
    if pos.is_empty() {
        return 0.0;
    }
    let cfg = DarwinConfig {
        budget,
        n_candidates: 4000,
        ..Default::default()
    };
    let darwin = prep.darwin(cfg);
    let mut oracle = GroundTruthOracle::new(&prep.data.labels, 0.8);
    let run = darwin.run(Seed::Positives(pos), &mut oracle);
    coverage(&run.positives, &prep.data.labels)
}

/// Figure 7 — coverage vs random seed-set size, Snuba vs Darwin(HS).
pub fn fig7_seed_size() {
    let budget = 100;
    let mut curves = Vec::new();
    for (name, prep, sizes) in [
        (
            "directions",
            prepare(directions::generate, scaled(15_300), 42),
            vec![25usize, 50, 125, 250, 500, 1000],
        ),
        (
            "musicians",
            prepare(musicians::generate, scaled(15_800), 42),
            vec![25, 100, 500, 1000, 2000],
        ),
    ] {
        let mut snuba = Curve::new(format!("{name}/Snuba"));
        let mut darwin = Curve::new(format!("{name}/Darwin(HS)"));
        for &s in &sizes {
            // Average over independent samples — tiny samples are high
            // variance (they may contain zero positives).
            let (mut sc, mut dc) = (0.0, 0.0);
            const REPS: usize = 2;
            for rep in 0..REPS as u64 {
                let sample = prep.data.seed_sample(s, 7 + rep);
                sc += snuba_coverage(&prep.data, &sample);
                dc += darwin_from_sample(&prep, &sample, budget);
            }
            snuba.push(s, sc / REPS as f64);
            darwin.push(s, dc / REPS as f64);
        }
        print_curves(
            &format!("Figure 7 ({name}): coverage vs #seed sentences"),
            &[&snuba, &darwin],
        );
        curves.push(snuba);
        curves.push(darwin);
    }
    // Abstract headline: Darwin vs Snuba@1000 labeled instances.
    let s1000: Vec<(f64, f64)> = curves
        .chunks(2)
        .map(|pair| (pair[1].value_at(1000, 0.0), pair[0].value_at(1000, 0.0)))
        .collect();
    let gain: f64 = s1000
        .iter()
        .map(|(d, s)| if *s > 0.0 { (d - s) / s } else { 1.0 })
        .sum::<f64>()
        / s1000.len() as f64;
    println!(
        "headline: Darwin finds {:.0}% more positives than Snuba@1000 labels (avg)\n",
        100.0 * gain
    );
    write_csv("fig7_seed_size", &curves).expect("csv");
}

/// Figure 8 — biased seed sets (no 'shuttle' / 'composer' evidence).
pub fn fig8_biased_seed() {
    let budget = 100;
    let mut curves = Vec::new();
    for (name, prep, excl, sizes) in [
        (
            "directions",
            prepare(directions::generate, scaled(15_300), 42),
            "shuttle",
            vec![25usize, 50, 200, 400, 800, 1600],
        ),
        (
            "musicians",
            prepare(musicians::generate, scaled(15_800), 42),
            "composer",
            vec![20, 100, 500, 1000, 2000],
        ),
    ] {
        let mut snuba = Curve::new(format!("{name}/Snuba"));
        let mut darwin = Curve::new(format!("{name}/Darwin(HS)"));
        for &s in &sizes {
            let (mut sc, mut dc) = (0.0, 0.0);
            const REPS: usize = 2;
            for rep in 0..REPS as u64 {
                let sample = prep.data.biased_seed_sample(s, excl, 7 + rep);
                sc += snuba_coverage(&prep.data, &sample);
                dc += darwin_from_sample(&prep, &sample, budget);
            }
            snuba.push(s, sc / REPS as f64);
            darwin.push(s, dc / REPS as f64);
        }
        print_curves(
            &format!(
                "Figure 8 ({name}, biased seed without {excl:?}): coverage vs #seed sentences"
            ),
            &[&snuba, &darwin],
        );
        curves.push(snuba);
        curves.push(darwin);
    }
    write_csv("fig8_biased_seed", &curves).expect("csv");
}

/// Figure 9 (a–d) — rule coverage vs #questions for the Darwin variants
/// and HighP on four datasets.
pub fn fig9_coverage() {
    let mut all = Vec::new();
    for (name, prep, budget) in [
        (
            "musicians",
            prepare(musicians::generate, scaled(15_800), 42),
            100usize,
        ),
        (
            "cause-effect",
            prepare(cause_effect::generate, scaled(10_700), 42),
            100,
        ),
        (
            "directions",
            prepare(directions::generate, scaled(15_300), 42),
            50,
        ),
        (
            "food-tweets",
            prepare(tweets::generate, scaled(2_130), 42),
            100,
        ),
    ] {
        let mut curves = Vec::new();
        for kind in [
            TraversalKind::Hybrid,
            TraversalKind::Universal,
            TraversalKind::Local,
        ] {
            let cfg = DarwinConfig {
                budget,
                n_candidates: 4000,
                traversal: kind,
                ..Default::default()
            };
            let (_, curve) = prep.run_coverage(cfg, format!("{name}/{}", kind.name()));
            curves.push(curve);
        }
        // HighP baseline.
        let cfg = DarwinConfig {
            budget,
            n_candidates: 4000,
            ..Default::default()
        };
        let darwin = prep.darwin(cfg);
        let seed = Heuristic::phrase(&prep.data.corpus, prep.data.seed_rules[0]).unwrap();
        let mut oracle = GroundTruthOracle::new(&prep.data.labels, 0.8);
        let run = darwin.run_with(Seed::Rule(seed), &mut oracle, |_| Box::new(HighP));
        curves.push(coverage_curve(
            &run,
            &prep.data.labels,
            format!("{name}/highP"),
        ));

        let refs: Vec<&Curve> = curves.iter().collect();
        print_curves(&format!("Figure 9 ({name}): coverage vs #questions"), &refs);
        all.extend(curves);
    }
    write_csv("fig9_coverage", &all).expect("csv");
}

/// Figure 9 (e–h) — classifier F-score vs #questions (Darwin(HS), HighP,
/// Active Learning, Keyword Sampling).
pub fn fig9_fscore() {
    let mut all = Vec::new();
    for (name, prep, budget) in [
        (
            "musicians",
            prepare(musicians::generate, scaled(15_800), 42),
            100usize,
        ),
        (
            "cause-effect",
            prepare(cause_effect::generate, scaled(10_700), 42),
            100,
        ),
        (
            "directions",
            prepare(directions::generate, scaled(15_300), 42),
            50,
        ),
        (
            "food-tweets",
            prepare(tweets::generate, scaled(2_130), 42),
            100,
        ),
    ] {
        let cps = checkpoints(budget);
        let kind = ClassifierKind::logreg();
        let mut curves = Vec::new();

        let cfg = DarwinConfig {
            budget,
            n_candidates: 4000,
            ..Default::default()
        };
        let (run, _) = prep.run_coverage(cfg.clone(), "_");
        curves.push(prep.fscore_curve(&run, format!("{name}/Darwin(HS)"), &cps, &kind));

        let darwin = prep.darwin(cfg);
        let seed = Heuristic::phrase(&prep.data.corpus, prep.data.seed_rules[0]).unwrap();
        let mut oracle = GroundTruthOracle::new(&prep.data.labels, 0.8);
        let hp = darwin.run_with(Seed::Rule(seed), &mut oracle, |_| Box::new(HighP));
        curves.push(prep.fscore_curve(&hp, format!("{name}/highP"), &cps, &kind));

        // AL and KS receive the seed rule's coverage as free initial labels.
        let seed_rule = Heuristic::phrase(&prep.data.corpus, prep.data.seed_rules[0]).unwrap();
        let mut seed_ids = seed_rule.coverage(&prep.data.corpus);
        // plus a few random negatives so the first classifier can train
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..seed_ids.len().max(10) {
            seed_ids.push(rng.gen_range(0..prep.data.len() as u32));
        }
        seed_ids.sort_unstable();
        seed_ids.dedup();
        let al = ActiveLearning::default().run(
            &prep.data.corpus,
            &prep.emb,
            &seed_ids,
            &prep.data.labels,
            budget,
        );
        let mut alc = al.f1_curve.resample(&cps, 0.0);
        alc.label = format!("{name}/AL");
        curves.push(alc);

        let ks = KeywordSampling::default().run(
            &prep.data.corpus,
            &prep.emb,
            &prep.data.keywords,
            &prep.data.labels,
            budget,
        );
        let mut ksc = ks.f1_curve.resample(&cps, 0.0);
        ksc.label = format!("{name}/KS");
        curves.push(ksc);

        let refs: Vec<&Curve> = curves.iter().collect();
        print_curves(&format!("Figure 9 ({name}): F-score vs #questions"), &refs);
        all.extend(curves);
    }
    write_csv("fig9_fscore", &all).expect("csv");
}

/// Figure 10 — professions: heuristic coverage (LS, US) and classifier
/// F-score (HS, AL, HighP, KS).
pub fn fig10_professions() {
    let n = scaled(200_000);
    let prep = prepare(professions::generate, n, 42);
    let budget = 100;
    let mut curves = Vec::new();
    for kind in [TraversalKind::Local, TraversalKind::Universal] {
        let cfg = DarwinConfig {
            budget,
            n_candidates: 4000,
            traversal: kind,
            ..Default::default()
        };
        let (_, curve) = prep.run_coverage(cfg, format!("professions/{}", kind.name()));
        curves.push(curve);
    }
    let refs: Vec<&Curve> = curves.iter().collect();
    print_curves("Figure 10a (professions): coverage vs #questions", &refs);

    let cps = checkpoints(budget);
    let kind = ClassifierKind::logreg();
    let cfg = DarwinConfig {
        budget,
        n_candidates: 4000,
        ..Default::default()
    };
    let (run, _) = prep.run_coverage(cfg.clone(), "_");
    let mut fcurves = vec![prep.fscore_curve(&run, "professions/Darwin(HS)", &cps, &kind)];

    let darwin = prep.darwin(cfg);
    let seed = Heuristic::phrase(&prep.data.corpus, prep.data.seed_rules[0]).unwrap();
    let mut oracle = GroundTruthOracle::new(&prep.data.labels, 0.8);
    let hp = darwin.run_with(Seed::Rule(seed), &mut oracle, |_| Box::new(HighP));
    fcurves.push(prep.fscore_curve(&hp, "professions/highP", &cps, &kind));

    let seed_ids = Heuristic::phrase(&prep.data.corpus, prep.data.seed_rules[0])
        .unwrap()
        .coverage(&prep.data.corpus);
    let al = ActiveLearning::default().run(
        &prep.data.corpus,
        &prep.emb,
        &seed_ids,
        &prep.data.labels,
        budget,
    );
    let mut alc = al.f1_curve.resample(&cps, 0.0);
    alc.label = "professions/AL".into();
    fcurves.push(alc);
    let ks = KeywordSampling::default().run(
        &prep.data.corpus,
        &prep.emb,
        &prep.data.keywords,
        &prep.data.labels,
        budget,
    );
    let mut ksc = ks.f1_curve.resample(&cps, 0.0);
    ksc.label = "professions/KS".into();
    fcurves.push(ksc);

    let refs: Vec<&Curve> = fcurves.iter().collect();
    print_curves("Figure 10b (professions): F-score vs #questions", &refs);
    curves.extend(fcurves);
    write_csv("fig10_professions", &curves).expect("csv");
}

/// Figure 11 — example HybridSearch traversals.
pub fn fig11_traversals() {
    for (name, prep, seed_rule, budget) in [
        (
            "cause-effect",
            prepare(cause_effect::generate, scaled(10_700), 42),
            "has been caused by",
            25usize,
        ),
        (
            "directions",
            prepare(directions::generate, scaled(15_300), 42),
            "best way to get to",
            25,
        ),
    ] {
        let cfg = DarwinConfig {
            budget,
            n_candidates: 4000,
            ..Default::default()
        };
        let darwin = prep.darwin(cfg);
        let seed = Heuristic::phrase(&prep.data.corpus, seed_rule).unwrap();
        let mut oracle = GroundTruthOracle::new(&prep.data.labels, 0.8);
        let run = darwin.run(Seed::Rule(seed), &mut oracle);
        println!("== Figure 11 ({name}): HybridSearch traversal from {seed_rule:?} ==");
        for step in &run.trace {
            println!(
                "  q{:<3} {:<36} -> {}",
                step.question,
                step.rule.display(prep.data.corpus.vocab()),
                if step.answer { "YES" } else { "no" }
            );
        }
        println!(
            "  accepted chain: {:?}\n",
            run.accepted
                .iter()
                .map(|h| h.display(prep.data.corpus.vocab()))
                .collect::<Vec<_>>()
        );
    }
}

/// Table 2 — F-score of Darwin vs Darwin+Snorkel (generative de-noising).
pub fn table2_snorkel() {
    let mut t = Table::new(
        "Table 2: Darwin vs Darwin+Snorkel (classifier F-score)",
        &["dataset", "Darwin", "Darwin+Snorkel"],
    );
    for (name, prep, budget) in [
        (
            "musicians",
            prepare(musicians::generate, scaled(15_800), 42),
            100usize,
        ),
        (
            "cause-effect",
            prepare(cause_effect::generate, scaled(10_700), 42),
            100,
        ),
        (
            "directions",
            prepare(directions::generate, scaled(15_300), 42),
            50,
        ),
        (
            "food-tweets",
            prepare(tweets::generate, scaled(2_130), 42),
            100,
        ),
    ] {
        let cfg = DarwinConfig {
            budget,
            n_candidates: 4000,
            ..Default::default()
        };
        let (run, _) = prep.run_coverage(cfg, "_");
        let kind = ClassifierKind::logreg();
        let cps = [budget];
        // Darwin: classifier trained directly on the discovered labels.
        let raw = prep.fscore_curve(&run, "raw", &cps, &kind).last();

        // Darwin+Snorkel: rules -> generative label model -> probabilistic
        // labels -> classifier.
        let coverages: Vec<Vec<u32>> = run
            .accepted
            .iter()
            .map(|h| h.coverage(&prep.data.corpus))
            .collect();
        let refs: Vec<&[u32]> = coverages.iter().map(|c| c.as_slice()).collect();
        let matrix = LfMatrix::from_coverages(prep.data.len(), &refs);
        // Data-driven prior: with precise positive-only LFs, the covered
        // fraction is a good estimate of the positive rate.
        let covered = matrix.coverage();
        let model = GenerativeModel::fit(
            &matrix,
            &GenerativeConfig {
                init_prior: covered.clamp(0.01, 0.5),
                smoothing: 0.1,
                fix_prior: true,
                ..Default::default()
            },
        );
        // De-noise at the LF level (how Snorkel's de-noising actually
        // bites with positive-only, largely disjoint LFs): keep an item if
        // any LF the model deems reliable voted for it. Item-level EM
        // posteriors are under-determined here — a single reliable vote
        // may not push past 0.5 in absolute terms — but the learned per-LF
        // reliabilities are well identified by the overlaps.
        let reliable: Vec<bool> = (0..matrix.n_lfs())
            .map(|j| model.lf_precision(j) >= 0.5)
            .collect();
        let denoised_pos: Vec<u32> = (0..matrix.n_items())
            .filter(|&i| {
                matrix
                    .row(i)
                    .enumerate()
                    .any(|(j, v)| v == darwin_labelmodel::Vote::Positive && reliable[j])
            })
            .map(|i| i as u32)
            .collect();
        let denoised_run = darwin_core::RunResult {
            accepted: vec![],
            rejected: vec![],
            positives: denoised_pos,
            trace: vec![],
            scores: vec![],
            wire_error: None,
        };
        let snorkel = prep
            .fscore_curve(&denoised_run, "snorkel", &cps, &kind)
            .last();
        t.row(&[name.into(), format!("{raw:.2}"), format!("{snorkel:.2}")]);
    }
    println!("{}", t.render());
    t.to_csv(&darwin_eval::csv_path("table2_snorkel"))
        .expect("csv");
}

/// Figure 12 — sensitivity to HybridSearch's τ and to the seed rule
/// (musicians).
pub fn fig12_sensitivity() {
    let prep = prepare(musicians::generate, scaled(15_800), 42);
    let budget = 100;
    let mut curves = Vec::new();
    for tau in [3usize, 5, 7, 9] {
        let cfg = DarwinConfig {
            budget,
            n_candidates: 4000,
            tau,
            ..Default::default()
        };
        let (_, curve) = prep.run_coverage(cfg, format!("tau={tau}"));
        curves.push(curve);
    }
    let refs: Vec<&Curve> = curves.iter().collect();
    print_curves("Figure 12a (musicians): sensitivity to τ", &refs);

    let mut seed_curves = Vec::new();
    for (i, rule) in prep.data.seed_rules.clone().iter().enumerate() {
        let cfg = DarwinConfig {
            budget,
            n_candidates: 4000,
            ..Default::default()
        };
        let darwin = prep.darwin(cfg);
        let seed = Heuristic::phrase(&prep.data.corpus, rule).unwrap();
        let mut oracle = GroundTruthOracle::new(&prep.data.labels, 0.8);
        let run = darwin.run(Seed::Rule(seed), &mut oracle);
        seed_curves.push(coverage_curve(
            &run,
            &prep.data.labels,
            format!("Rule {}", i + 1),
        ));
    }
    let refs: Vec<&Curve> = seed_curves.iter().collect();
    print_curves(
        "Figure 12b (musicians): sensitivity to the seed rule",
        &refs,
    );
    curves.extend(seed_curves);
    write_csv("fig12_sensitivity", &curves).expect("csv");
}

/// Figure 13 — sensitivity to the number of generated candidates.
pub fn fig13_candidates() {
    let prep = prepare(musicians::generate, scaled(15_800), 42);
    let mut curves = Vec::new();
    for k in [5_000usize, 10_000, 20_000] {
        let cfg = DarwinConfig {
            budget: 100,
            n_candidates: k,
            ..Default::default()
        };
        let (_, curve) = prep.run_coverage(cfg, format!("{}K", k / 1000));
        curves.push(curve);
    }
    let refs: Vec<&Curve> = curves.iter().collect();
    print_curves("Figure 13 (musicians): sensitivity to #candidates", &refs);
    write_csv("fig13_candidates", &curves).expect("csv");
}

/// Figure 14 — #questions to reach 75% coverage vs classifier epochs
/// (musicians, Kim CNN).
pub fn fig14_epochs() {
    let prep = prepare(musicians::generate, scaled(8_000), 42);
    let mut curve = Curve::new("Hybrid(CNN)");
    for epochs in [4usize, 6, 8, 10, 12] {
        let cfg = DarwinConfig {
            budget: 100,
            n_candidates: 3000,
            classifier: ClassifierKind::cnn_with_epochs(epochs),
            ..Default::default()
        };
        let (run, cov) = prep.run_coverage(cfg, "_");
        let q = cov.first_reaching(0.75).unwrap_or(run.questions().max(100));
        curve.push(epochs, q as f64);
        println!("epochs {epochs:>2}: {q} questions to 75% coverage");
    }
    // The logistic-regression comparison point from the ablation list.
    let cfg = DarwinConfig {
        budget: 100,
        n_candidates: 3000,
        ..Default::default()
    };
    let (run, cov) = prep.run_coverage(cfg, "_");
    let q = cov.first_reaching(0.75).unwrap_or(run.questions().max(100));
    println!("logreg    : {q} questions to 75% coverage");
    write_csv("fig14_epochs", &[curve]).expect("csv");
}

/// §4.5 — efficiency: index construction time and end-to-end label
/// collection, with and without the incremental re-scoring optimization.
pub fn efficiency() {
    let full = std::env::var("DARWIN_FULL").is_ok();
    let n = if full { 1_000_000 } else { scaled(200_000) };
    println!("== Efficiency (professions at {n} sentences) ==");
    let t0 = Instant::now();
    let data = professions::generate(n, 42);
    println!("generate + analyze: {:.1}s", t0.elapsed().as_secs_f64());

    let t1 = Instant::now();
    let index = IndexSet::build(
        &data.corpus,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 3,
            threads: 8,
            ..Default::default()
        },
    );
    println!(
        "index construction: {:.1}s ({} rules) [paper: < 5 min]",
        t1.elapsed().as_secs_f64(),
        index.rules()
    );

    let emb_t = Instant::now();
    let emb = darwin_text::Embeddings::train(&data.corpus, &Default::default());
    println!("embedding training: {:.1}s", emb_t.elapsed().as_secs_f64());

    let mut t = Table::new(
        "label collection (budget 50)",
        &["configuration", "seconds", "recall", "last refresh size"],
    );
    for (label, incremental) in [("incremental re-scoring", true), ("full re-scoring", false)] {
        let cfg = DarwinConfig {
            budget: 50,
            n_candidates: 4000,
            incremental_scoring: incremental,
            ..Default::default()
        };
        let darwin = Darwin::with_embeddings(&data.corpus, &index, cfg, emb.clone());
        let seed = Heuristic::phrase(&data.corpus, data.seed_rules[0]).unwrap();
        let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
        let t2 = Instant::now();
        let run = darwin.run(Seed::Rule(seed), &mut oracle);
        t.row(&[
            label.into(),
            format!("{:.1}", t2.elapsed().as_secs_f64()),
            format!("{:.2}", coverage(&run.positives, &data.labels)),
            "-".into(),
        ]);
    }
    println!("{}", t.render());
    t.to_csv(&darwin_eval::csv_path("efficiency")).expect("csv");
}

/// §4.5 — human annotator noise: sampled-annotator oracle with k examples
/// per question, plus the benefit-threshold ablation.
pub fn annotator_noise() {
    let prep = prepare(directions::generate, scaled(15_300), 42);
    let budget = 50;
    let mut t = Table::new(
        "Annotator noise (directions, budget 50)",
        &["oracle", "recall", "precision of P", "false YES"],
    );
    // Perfect oracle reference.
    let cfg = DarwinConfig {
        budget,
        n_candidates: 4000,
        ..Default::default()
    };
    let (run, _) = prep.run_coverage(cfg.clone(), "_");
    let p_prec = run
        .positives
        .iter()
        .filter(|&&i| prep.data.labels[i as usize])
        .count() as f64
        / run.positives.len().max(1) as f64;
    t.row(&[
        "ground truth".into(),
        format!("{:.2}", coverage(&run.positives, &prep.data.labels)),
        format!("{p_prec:.2}"),
        "0".into(),
    ]);
    for k in [3usize, 5, 9, 25] {
        let darwin = prep.darwin(cfg.clone());
        let seed = Heuristic::phrase(&prep.data.corpus, prep.data.seed_rules[0]).unwrap();
        let mut oracle = SampledAnnotatorOracle::new(&prep.data.labels, k, 99);
        let run = darwin.run(Seed::Rule(seed), &mut oracle);
        // False YES: accepted rules whose true precision is below 0.8.
        let gt = GroundTruthOracle::new(&prep.data.labels, 0.8);
        let false_yes = run
            .accepted
            .iter()
            .filter(|h| gt.precision(&h.coverage(&prep.data.corpus)) < 0.8)
            .count();
        let prec = run
            .positives
            .iter()
            .filter(|&&i| prep.data.labels[i as usize])
            .count() as f64
            / run.positives.len().max(1) as f64;
        t.row(&[
            format!("annotator k={k}"),
            format!("{:.2}", coverage(&run.positives, &prep.data.labels)),
            format!("{prec:.2}"),
            false_yes.to_string(),
        ]);
    }
    println!("{}", t.render());
    t.to_csv(&darwin_eval::csv_path("annotator_noise"))
        .expect("csv");

    // Benefit-threshold ablation (Algorithm 4 line 8).
    let mut bt = Table::new(
        "Benefit-threshold ablation (directions)",
        &["threshold", "recall"],
    );
    for thr in [0.0f64, 0.25, 0.5, 0.75] {
        let cfg2 = DarwinConfig {
            benefit_threshold: thr,
            ..cfg.clone()
        };
        let (run, _) = prep.run_coverage(cfg2, "_");
        bt.row(&[
            format!("{thr:.2}"),
            format!("{:.2}", coverage(&run.positives, &prep.data.labels)),
        ]);
    }
    println!("{}", bt.render());
    bt.to_csv(&darwin_eval::csv_path("benefit_threshold"))
        .expect("csv");
}

/// Footnote 10 — HighC sanity check: most suggestions are rejected.
pub fn highc_footnote() {
    let prep = prepare(directions::generate, scaled(8_000), 42);
    let cfg = DarwinConfig {
        budget: 30,
        n_candidates: 4000,
        ..Default::default()
    };
    let darwin = prep.darwin(cfg);
    let seed = Heuristic::phrase(&prep.data.corpus, prep.data.seed_rules[0]).unwrap();
    let mut oracle = GroundTruthOracle::new(&prep.data.labels, 0.8);
    let run = darwin.run_with(Seed::Rule(seed), &mut oracle, |_| Box::new(HighC));
    let rejected = run.trace.iter().filter(|s| !s.answer).count();
    println!(
        "== Footnote 10 (HighC): {rejected}/{} suggestions rejected, recall {:.2} ==\n",
        run.questions(),
        coverage(&run.positives, &prep.data.labels)
    );
}

/// Print a set of curves as an aligned table over a shared grid.
fn print_curves(title: &str, curves: &[&Curve]) {
    let mut xs: Vec<usize> = curves.iter().flat_map(|c| c.xs.iter().copied()).collect();
    xs.sort_unstable();
    xs.dedup();
    // Thin the grid for readability.
    let grid: Vec<usize> = if xs.len() > 12 {
        let step = xs.len().div_ceil(12);
        xs.iter()
            .copied()
            .step_by(step)
            .chain(xs.last().copied())
            .collect()
    } else {
        xs
    };
    let mut header: Vec<String> = vec!["x".into()];
    header.extend(curves.iter().map(|c| c.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(title, &header_refs);
    let mut grid = grid;
    grid.dedup();
    for x in grid {
        let mut row = vec![x.to_string()];
        row.extend(curves.iter().map(|c| format!("{:.2}", c.value_at(x, 0.0))));
        t.row(&row);
    }
    println!("{}", t.render());
}

//! Experiment harness regenerating every table and figure of the Darwin
//! paper's evaluation (§4). Each experiment is a library function invoked
//! by a thin binary in `src/bin/`; all of them print the paper's
//! rows/series to stdout and write CSV under `target/experiments/`.
//!
//! Scale control: experiments run at the paper's corpus sizes by default;
//! set `DARWIN_SCALE` (e.g. `0.25`) to shrink every corpus and budget
//! proportionally for quick smoke runs, and `DARWIN_FULL=1` to run the
//! professions efficiency experiment at the paper's 1M sentences.

pub mod experiments;
pub mod support;

//! Ingest profiling driver: where does tree-ingest time go?
//!
//! Decomposes the sustained-ingest pipeline `stream_bench` measures
//! end-to-end into its stages — corpus analysis (tokenize, tag, parse),
//! sketch enumeration, phrase index growth, tree `add_sentence` vs
//! `finalize` — over the same directions base + synthetic arrivals the
//! bench uses. Not part of any suite and writes no artifact; run it
//! (`cargo run --release -p darwin-bench --bin profile_ingest`, two or
//! three times — single runs are noisy) when a BENCH_stream.json number
//! moves and you need to know which stage did it.

use darwin_datasets::directions;
use darwin_index::sketch::{for_each_tree_sketch, TreeSketchConfig};
use darwin_index::{IndexConfig, IndexSet};
use darwin_text::Corpus;
use std::time::Instant;

fn arrivals(offset: usize, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let k = offset + i;
            match k % 3 {
                0 => format!("is there a bus to the airport at {k}"),
                1 => format!("order a pizza with {k} toppings to the room"),
                _ => format!("the gym closes at {k} tonight"),
            }
        })
        .collect()
}

fn main() {
    let d = directions::generate(2000, 42);
    let total = 40_000usize;
    let batch = 1000usize;

    // Corpus analysis alone.
    let mut corpus = d.corpus.clone();
    let t = Instant::now();
    for b in 0..total / batch {
        corpus.append_texts(arrivals(b * batch, batch).iter(), 1);
    }
    let analysis = t.elapsed();
    println!(
        "analysis only:       {:?} ({:.0}/s)",
        analysis,
        total as f64 / analysis.as_secs_f64()
    );

    // Sketch enumeration alone over the grown corpus tail.
    let cfg = TreeSketchConfig::default();
    let t = Instant::now();
    let mut keys = 0usize;
    for s in &corpus.sentences()[2000..] {
        for_each_tree_sketch(s, &cfg, &mut |_k| {
            keys += 1;
            true
        });
    }
    let sketch = t.elapsed();
    println!(
        "tree sketch only:    {:?} ({:.0}/s, {:.1} keys/sentence)",
        sketch,
        total as f64 / sketch.as_secs_f64(),
        keys as f64 / total as f64
    );

    // Phrase-only index append.
    let mut corpus2 = d.corpus.clone();
    let mut idx = IndexSet::build(
        &corpus2,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 1,
            enable_tree: false,
            ..Default::default()
        },
    );
    let t = Instant::now();
    for b in 0..total / batch {
        corpus2.append_texts(arrivals(b * batch, batch).iter(), 1);
        idx.append(&corpus2).unwrap();
    }
    let phrase = t.elapsed();
    println!(
        "analysis+phrase:     {:?} ({:.0}/s)",
        phrase,
        total as f64 / phrase.as_secs_f64()
    );

    // Tree index alone: add_sentence vs finalize split.
    {
        use darwin_index::TreeIndex;
        let base = Corpus::from_texts(
            (0..2000).map(|i| format!("warm base sentence number {i} for the tree")),
        );
        let mut tidx = TreeIndex::build(&base, &cfg);
        let mut c = base.clone();
        let mut add = std::time::Duration::ZERO;
        let mut fin = std::time::Duration::ZERO;
        for b in 0..total / batch {
            let n0 = c.len();
            c.append_texts(arrivals(b * batch, batch).iter(), 1);
            let t = Instant::now();
            for s in &c.sentences()[n0..] {
                tidx.add_sentence(s, &cfg);
            }
            add += t.elapsed();
            let t = Instant::now();
            tidx.finalize();
            fin += t.elapsed();
        }
        println!(
            "tree add_sentence:   {:?} ({:.0}/s), finalize: {:?}  [{} pats]",
            add,
            total as f64 / add.as_secs_f64(),
            fin,
            tidx.len()
        );
    }

    // Decomposed full path: analysis / phrase add / tree add / finalize
    // over the same directions-based corpus the end-to-end cell uses.
    {
        use darwin_index::{PhraseIndex, TreeIndex};
        let mut c = d.corpus.clone();
        let mut pidx = PhraseIndex::build(&c, 4);
        let mut tidx = TreeIndex::build(&c, &cfg);
        let (mut ana, mut pha, mut tra, mut fin) = (
            std::time::Duration::ZERO,
            std::time::Duration::ZERO,
            std::time::Duration::ZERO,
            std::time::Duration::ZERO,
        );
        for b in 0..total / batch {
            let n0 = c.len();
            let t = Instant::now();
            c.append_texts(arrivals(b * batch, batch).iter(), 1);
            ana += t.elapsed();
            let t = Instant::now();
            for s in &c.sentences()[n0..] {
                pidx.add_sentence(s);
            }
            pha += t.elapsed();
            let t = Instant::now();
            for s in &c.sentences()[n0..] {
                tidx.add_sentence(s, &cfg);
            }
            tra += t.elapsed();
            let t = Instant::now();
            tidx.finalize();
            fin += t.elapsed();
        }
        println!(
            "decomposed: analysis {ana:?}, phrase {pha:?}, tree-add {tra:?}, finalize {fin:?}  [{} pats]",
            tidx.len()
        );
    }

    // Tree index append.
    let mut corpus3 = d.corpus.clone();
    let mut idx = IndexSet::build(
        &corpus3,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 1,
            ..Default::default()
        },
    );
    let t = Instant::now();
    for b in 0..total / batch {
        corpus3.append_texts(arrivals(b * batch, batch).iter(), 1);
        idx.append(&corpus3).unwrap();
    }
    let tree = t.elapsed();
    println!(
        "analysis+phr+tree:   {:?} ({:.0}/s)",
        tree,
        total as f64 / tree.as_secs_f64()
    );
}

//! Runs the full experiment suite in paper order.
fn main() {
    use darwin_bench::experiments as e;
    e::table1_datasets();
    e::fig7_seed_size();
    e::fig8_biased_seed();
    e::fig9_coverage();
    e::fig9_fscore();
    e::fig10_professions();
    e::fig11_traversals();
    e::table2_snorkel();
    e::fig12_sensitivity();
    e::fig13_candidates();
    e::fig14_epochs();
    e::efficiency();
    e::annotator_noise();
    e::highc_footnote();
    println!("all experiments complete; CSVs in target/experiments/");
}

//! CI smoke test for the streaming dataset generator: build the 50k
//! professions corpus twice through `generate_streamed` and assert the
//! two runs are identical sentence for sentence, the positive rate lands
//! on the rounded target, and every template slot was filled.

use darwin_datasets::professions;

fn main() {
    let n = 50_000;
    let a = professions::generate_streamed(n, 42);
    let b = professions::generate_streamed(n, 42);
    assert_eq!(a.len(), n);
    assert_eq!(b.len(), n);
    for i in 0..n as u32 {
        assert_eq!(a.corpus.text(i), b.corpus.text(i), "sentence {i} diverged");
        assert_eq!(a.labels[i as usize], b.labels[i as usize]);
        assert_eq!(a.family[i as usize], b.family[i as usize]);
        assert!(!a.corpus.text(i).contains('{'), "unfilled slot at {i}");
    }
    let expected = ((n as f64) * 0.011).round() as usize;
    assert_eq!(a.positives(), expected, "positive quota must telescope");
    let s = a.stats();
    println!(
        "stream_smoke: {} sentences, {} positives ({:.2}%), vocab {}, deterministic across runs",
        n,
        a.positives(),
        s.positive_pct,
        a.corpus.vocab().len()
    );
}

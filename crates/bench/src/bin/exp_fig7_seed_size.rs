//! Regenerates the corresponding paper result. See DESIGN.md §3.
fn main() {
    darwin_bench::experiments::fig7_seed_size();
}

//! Shared plumbing for the experiment binaries.

use darwin_classifier::ClassifierKind;
use darwin_core::{Darwin, DarwinConfig, GroundTruthOracle, RunResult, Seed};
use darwin_datasets::Dataset;
use darwin_eval::Curve;
use darwin_grammar::Heuristic;
use darwin_index::{IndexConfig, IndexSet};
use darwin_text::embed::EmbedConfig;
use darwin_text::Embeddings;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Global scale factor from `DARWIN_SCALE` (default 1.0 = paper sizes).
pub fn scale() -> f64 {
    std::env::var("DARWIN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scale a corpus size, keeping a sensible floor.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(500)
}

/// A dataset bundled with its index and embeddings, ready for runs.
pub struct Prepared {
    pub data: Dataset,
    pub index: IndexSet,
    pub emb: Embeddings,
}

/// Default index configuration for experiments (phrase depth 6 keeps the
/// trie manageable while still indexing every rule the traversals need;
/// the paper's depth-10 sketches are supported via `IndexConfig`).
pub fn experiment_index_config() -> IndexConfig {
    IndexConfig {
        max_phrase_len: 6,
        min_count: 2,
        ..Default::default()
    }
}

/// Generate, analyze and index a dataset.
pub fn prepare(make: impl FnOnce(usize, u64) -> Dataset, n: usize, seed: u64) -> Prepared {
    let data = make(n, seed);
    let t = Instant::now();
    let index = IndexSet::build(&data.corpus, &experiment_index_config());
    eprintln!(
        "[prepare] {}: {} sentences, {} rules indexed in {:.1}s",
        data.name,
        data.len(),
        index.rules(),
        t.elapsed().as_secs_f64()
    );
    let emb = Embeddings::train(&data.corpus, &EmbedConfig::default());
    Prepared { data, index, emb }
}

impl Prepared {
    /// A Darwin instance over this dataset with shared embeddings.
    pub fn darwin(&self, cfg: DarwinConfig) -> Darwin<'_> {
        Darwin::with_embeddings(&self.data.corpus, &self.index, cfg, self.emb.clone())
    }

    /// Run from the dataset's default seed rule against a ground-truth
    /// oracle; returns the run and the coverage-vs-questions curve.
    pub fn run_coverage(&self, cfg: DarwinConfig, label: impl Into<String>) -> (RunResult, Curve) {
        let darwin = self.darwin(cfg);
        let seed = Heuristic::phrase(&self.data.corpus, self.data.seed_rules[0])
            .expect("default seed rule parses");
        let mut oracle = GroundTruthOracle::new(&self.data.labels, 0.8);
        let run = darwin.run(Seed::Rule(seed), &mut oracle);
        let curve = coverage_curve(&run, &self.data.labels, label);
        (run, curve)
    }

    /// F-score-vs-questions curve: retrain a classifier on the positives
    /// known after each checkpoint and measure corpus-wide F1.
    pub fn fscore_curve(
        &self,
        run: &RunResult,
        label: impl Into<String>,
        checkpoints: &[usize],
        kind: &ClassifierKind,
    ) -> Curve {
        let mut curve = Curve::new(label);
        let mut rng = StdRng::seed_from_u64(0xF5);
        for &q in checkpoints {
            let pos = run.positives_after(q.min(run.questions()));
            if pos.is_empty() {
                curve.push(q, 0.0);
                continue;
            }
            let mut neg = Vec::new();
            let want = (pos.len() * 3).clamp(50, self.data.len() / 3);
            let mut guard = 0;
            while neg.len() < want && guard < want * 20 {
                let id = rng.gen_range(0..self.data.len() as u32);
                if pos.binary_search(&id).is_err() {
                    neg.push(id);
                }
                guard += 1;
            }
            let mut clf = kind.build(&self.emb, 0xF5);
            clf.fit(&self.data.corpus, &self.emb, &pos, &neg);
            let mut scores = Vec::new();
            clf.predict_all(&self.data.corpus, &self.emb, &mut scores);
            curve.push(q, darwin_eval::f1_score(&scores, &self.data.labels, 0.5));
        }
        curve
    }
}

/// Coverage (recall of positives) after each question.
pub fn coverage_curve(run: &RunResult, labels: &[bool], label: impl Into<String>) -> Curve {
    let mut curve = Curve::new(label);
    curve.push(0, darwin_eval::coverage(&run.positives_after(0), labels));
    for q in 1..=run.questions() {
        curve.push(q, darwin_eval::coverage(&run.positives_after(q), labels));
    }
    curve
}

/// Standard checkpoint grid for F-score curves.
pub fn checkpoints(budget: usize) -> Vec<usize> {
    let step = (budget / 10).max(5);
    let mut out: Vec<usize> = (step..=budget).step_by(step).collect();
    if out.last() != Some(&budget) {
        out.push(budget);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_datasets::directions;

    #[test]
    fn prepare_and_run_small() {
        let prep = prepare(directions::generate, 1500, 7);
        let cfg = DarwinConfig {
            budget: 8,
            n_candidates: 1500,
            ..Default::default()
        };
        let (run, curve) = prep.run_coverage(cfg, "t");
        assert!(!curve.is_empty());
        assert!(run.questions() <= 8);
        // Coverage is monotone.
        for w in curve.ys.windows(2) {
            assert!(w[1] + 1e-12 >= w[0]);
        }
    }

    #[test]
    fn checkpoint_grid() {
        let c = checkpoints(100);
        assert_eq!(c.last(), Some(&100));
        assert!(c.len() >= 5);
        let c2 = checkpoints(12);
        assert_eq!(c2.last(), Some(&12));
    }
}

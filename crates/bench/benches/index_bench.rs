//! Criterion benches: corpus analysis, sketching and index construction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use darwin_datasets::directions;
use darwin_index::{IndexConfig, IndexSet, PhraseIndex, TreeIndex, TreeSketchConfig};
use darwin_text::Corpus;

fn texts(n: usize) -> Vec<String> {
    let d = directions::generate(n, 42);
    (0..d.len() as u32).map(|i| d.corpus.text(i)).collect()
}

fn bench_analysis(c: &mut Criterion) {
    let t = texts(2000);
    let mut g = c.benchmark_group("text");
    g.sample_size(10);
    g.bench_function("analyze_2k_sentences", |b| {
        b.iter(|| Corpus::from_texts(t.iter()));
    });
    g.bench_function("analyze_2k_parallel4", |b| {
        b.iter(|| Corpus::from_texts_parallel(&t, 4));
    });
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let t = texts(5000);
    let corpus = Corpus::from_texts(t.iter());
    let mut g = c.benchmark_group("index");
    g.sample_size(10);
    g.bench_function("phrase_build_5k_depth6", |b| {
        b.iter(|| PhraseIndex::build(&corpus, 6));
    });
    g.bench_function("phrase_build_parallel4", |b| {
        b.iter(|| PhraseIndex::build_parallel(&corpus, 6, 4));
    });
    g.bench_function("tree_build_5k", |b| {
        b.iter(|| TreeIndex::build(&corpus, &TreeSketchConfig::default()));
    });
    let idx = PhraseIndex::build(&corpus, 6);
    let phrase: Vec<_> = {
        let d = directions::generate(100, 42);
        drop(d);
        ["best", "way", "to"]
            .iter()
            .map(|t| corpus.vocab().get(t).unwrap())
            .collect()
    };
    g.bench_function("phrase_lookup", |b| {
        b.iter(|| idx.lookup(&phrase));
    });
    g.bench_function("incremental_add", |b| {
        b.iter_batched(
            || PhraseIndex::new(6),
            |mut idx| {
                for s in corpus.sentences().iter().take(100) {
                    idx.add_sentence(s);
                }
                idx
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_prune(c: &mut Criterion) {
    let t = texts(5000);
    let corpus = Corpus::from_texts(t.iter());
    let mut g = c.benchmark_group("index_prune");
    g.sample_size(10);
    g.bench_function("build_with_min_count2", |b| {
        b.iter(|| {
            IndexSet::build(
                &corpus,
                &IndexConfig {
                    max_phrase_len: 6,
                    min_count: 2,
                    enable_tree: false,
                    ..Default::default()
                },
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_analysis, bench_index, bench_prune);
criterion_main!(benches);

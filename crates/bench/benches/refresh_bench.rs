//! The score-refresh hot path after the blocked-kernel rewrite: full-pass
//! throughput on the 20k directions corpus across thread counts, a
//! dense-scalar baseline replaying the pre-kernel scoring wall, and a
//! million-sentence full refresh over the streamed professions corpus.
//!
//! Threads set the fan-out width of `ScoreCache::refresh`; the worker
//! budget is the host's available parallelism, so on a single-core host
//! the thread rows measure dispatch overhead only — the JSON records
//! `host_threads` so the numbers can be read accordingly (the established
//! convention of `BENCH_shard.json`).
//!
//! Besides the criterion report, running this bench rewrites
//! `BENCH_refresh.json` at the repo root. Scores are asserted
//! bit-identical across every configuration before any timing — the bench
//! is meaningless otherwise.

use criterion::{criterion_group, criterion_main, Criterion};
use darwin_classifier::adam::sigmoid;
use darwin_classifier::features::{logreg_dim, logreg_features};
use darwin_classifier::{ClassifierKind, ScoreCache, TextClassifier};
use darwin_datasets::{directions, professions};
use darwin_grammar::Heuristic;
use darwin_index::IdSet;
use darwin_text::embed::EmbedConfig;
use darwin_text::{Corpus, Embeddings};
use std::time::Instant;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const SHARDS: usize = 8;

/// The scoring wall this PR tore down: one dense feature vector per
/// sentence, scored with a sequential scalar dot over the full feature
/// dimension (mean embedding + 4096 mostly-zero BoW buckets + bias).
/// Weight *values* don't change its cost, so an arbitrary deterministic
/// weight vector measures the real thing.
struct DenseScalarLogReg {
    w: Vec<f32>,
}

impl DenseScalarLogReg {
    fn new(emb: &Embeddings) -> DenseScalarLogReg {
        let dim = logreg_dim(emb);
        DenseScalarLogReg {
            w: (0..dim).map(|i| ((i % 13) as f32 - 6.0) * 0.01).collect(),
        }
    }

    fn score(&self, f: &[f32]) -> f32 {
        let mut z = 0.0f32;
        for (a, b) in self.w.iter().zip(f) {
            z += a * b;
        }
        sigmoid(z)
    }
}

impl TextClassifier for DenseScalarLogReg {
    fn fit(&mut self, _c: &Corpus, _e: &Embeddings, _p: &[u32], _n: &[u32]) {}

    fn predict(&self, corpus: &Corpus, emb: &Embeddings, id: u32) -> f32 {
        let mut f = vec![0.0f32; self.w.len()];
        logreg_features(corpus, emb, id, &mut f);
        self.score(&f)
    }

    fn predict_batch(&self, corpus: &Corpus, emb: &Embeddings, ids: &[u32], out: &mut Vec<f32>) {
        let mut f = vec![0.0f32; self.w.len()];
        for &id in ids {
            logreg_features(corpus, emb, id, &mut f);
            out.push(self.score(&f));
        }
    }
}

/// Median wall-clock of `f` over `iters` runs, in nanoseconds.
fn median_ns<R>(iters: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            criterion::black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn trained_logreg(corpus: &Corpus, emb: &Embeddings, seed_rule: &str) -> Box<dyn TextClassifier> {
    let n = corpus.len();
    let seed = Heuristic::phrase(corpus, seed_rule).unwrap();
    let pos = seed.coverage(corpus);
    let p = IdSet::from_ids(&pos, n);
    let neg: Vec<u32> = (0..n as u32)
        .filter(|id| !p.contains(*id))
        .step_by(7)
        .take(pos.len() * 3)
        .collect();
    let mut clf = ClassifierKind::logreg().build(emb, 42);
    clf.fit(corpus, emb, &pos, &neg);
    clf
}

fn bench_refresh(c: &mut Criterion) {
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // ---- 20k corpus: kernel path vs the dense-scalar wall --------------
    let d = directions::generate(20_000, 42);
    let n = d.len();
    let emb = Embeddings::train(
        &d.corpus,
        &EmbedConfig {
            seed: 42,
            ..Default::default()
        },
    );
    let clf = trained_logreg(&d.corpus, &emb, d.seed_rules[0]);
    println!("refresh_bench fixture: {n} sentences, {host_threads} host threads");

    // Bit-identity across every (shards, threads) configuration first.
    let mut reference = ScoreCache::full_only(n);
    reference.refresh(&*clf, &d.corpus, &emb);
    for threads in THREAD_COUNTS {
        for shards in [1, SHARDS] {
            let mut cache = ScoreCache::full_only(n)
                .with_shards(shards)
                .with_threads(threads);
            cache.refresh(&*clf, &d.corpus, &emb);
            assert_eq!(
                cache.scores(),
                reference.scores(),
                "threads={threads} shards={shards}: scores diverged"
            );
        }
    }

    let baseline = DenseScalarLogReg::new(&emb);
    let baseline_ns = {
        let mut cache = ScoreCache::full_only(n);
        median_ns(5, || cache.refresh(&baseline, &d.corpus, &emb))
    };
    let baseline_tp = n as f64 / (baseline_ns as f64 / 1e9);
    println!("dense-scalar baseline: {baseline_ns} ns ({baseline_tp:.0} sentences/s)");

    let mut g = c.benchmark_group("refresh_20k");
    g.sample_size(10);
    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        let full_ns = {
            let mut cache = ScoreCache::full_only(n)
                .with_shards(SHARDS)
                .with_threads(threads);
            g.bench_function(&format!("full_refresh_t{threads}"), |b| {
                b.iter(|| cache.refresh(&*clf, &d.corpus, &emb))
            });
            let mut cache = ScoreCache::full_only(n)
                .with_shards(SHARDS)
                .with_threads(threads);
            median_ns(10, || cache.refresh(&*clf, &d.corpus, &emb))
        };
        let tp = n as f64 / (full_ns as f64 / 1e9);
        let speedup = baseline_ns as f64 / full_ns as f64;
        println!(
            "threads={threads}: full {full_ns} ns ({tp:.0} sentences/s, {speedup:.2}x vs dense-scalar)"
        );
        rows.push(format!(
            "    {{\"threads\": {threads}, \"shards\": {SHARDS}, \"full_refresh_ns\": {full_ns}, \"full_refresh_sentences_per_s\": {tp:.0}, \"speedup_vs_dense_scalar\": {speedup:.2}}}"
        ));
    }
    g.finish();

    // ---- 1M corpus: streamed generation + full refresh ------------------
    println!("generating 1M-sentence professions corpus (streamed)...");
    let big = professions::generate_streamed(1_000_000, 42);
    let big_n = big.len();
    let big_emb = Embeddings::train(
        &big.corpus,
        &EmbedConfig {
            seed: 42,
            ..Default::default()
        },
    );
    let big_clf = trained_logreg(&big.corpus, &big_emb, big.seed_rules[0]);
    let mut million_rows = Vec::new();
    for threads in [1usize, 8] {
        let full_ns = {
            let mut cache = ScoreCache::full_only(big_n)
                .with_shards(SHARDS)
                .with_threads(threads);
            median_ns(3, || cache.refresh(&*big_clf, &big.corpus, &big_emb))
        };
        let tp = big_n as f64 / (full_ns as f64 / 1e9);
        println!("1M full refresh, threads={threads}: {full_ns} ns ({tp:.0} sentences/s)");
        million_rows.push(format!(
            "    {{\"sentences\": {big_n}, \"threads\": {threads}, \"shards\": {SHARDS}, \"full_refresh_ns\": {full_ns}, \"full_refresh_sentences_per_s\": {tp:.0}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"refresh\",\n  \"corpus_sentences\": {n},\n  \"host_threads\": {host_threads},\n  \"dense_scalar_baseline_ns\": {baseline_ns},\n  \"dense_scalar_baseline_sentences_per_s\": {baseline_tp:.0},\n  \"per_thread_count\": [\n{}\n  ],\n  \"million_scale\": [\n{}\n  ],\n  \"scores_bit_identical_across_configs\": true\n}}\n",
        rows.join(",\n"),
        million_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_refresh.json");
    std::fs::write(path, &json).expect("write BENCH_refresh.json");
    println!("refresh_bench: recorded BENCH_refresh.json");
}

criterion_group!(benches, bench_refresh);
criterion_main!(benches);

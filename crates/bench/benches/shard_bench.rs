//! Sharded execution layer throughput: score-cache refresh (full and
//! incremental) and benefit-store rebuild/selection vs. shard count, on a
//! ≥20k-sentence corpus.
//!
//! Shards set both the batch granularity and the parallelism width (the
//! worker budget is the host's available parallelism, so on a multi-core
//! host the shard counts > 1 run shard-parallel; on a single-core host
//! they measure the batching effect alone — the JSON records
//! `host_threads` so the numbers can be read accordingly). The
//! `unbatched_incremental_ns` entry replays the pre-shard per-sentence
//! `predict` loop as the reference the batch path replaced.
//!
//! Besides the criterion report, running this bench rewrites
//! `BENCH_shard.json` at the repo root. Scores are asserted bit-identical
//! across all shard counts — the bench is meaningless otherwise.

use criterion::{criterion_group, criterion_main, Criterion};
use darwin_classifier::{ClassifierKind, ScoreCache, TextClassifier};
use darwin_core::candidates::generate_hierarchy;
use darwin_core::traversal::{Ctx, Strategy, UniversalSearch};
use darwin_core::ShardedBenefitStore;
use darwin_datasets::directions;
use darwin_grammar::Heuristic;
use darwin_index::fx::FxHashSet;
use darwin_index::{IdSet, IndexConfig, IndexSet, ShardMap};
use darwin_text::embed::EmbedConfig;
use darwin_text::{Corpus, Embeddings};
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Fixture {
    corpus: Corpus,
    emb: Embeddings,
    clf: Box<dyn TextClassifier>,
    index: IndexSet,
    p: IdSet,
    n: usize,
    host_threads: usize,
}

fn fixture() -> Fixture {
    let d = directions::generate(20_000, 42);
    let n = d.len();
    let index = IndexSet::build(
        &d.corpus,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 2,
            ..Default::default()
        },
    );
    let emb = Embeddings::train(
        &d.corpus,
        &EmbedConfig {
            seed: 42,
            ..Default::default()
        },
    );
    let seed = Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap();
    let pos = seed.coverage(&d.corpus);
    let p = IdSet::from_ids(&pos, n);
    let neg: Vec<u32> = (0..n as u32)
        .filter(|id| !p.contains(*id))
        .step_by(7)
        .take(pos.len() * 3)
        .collect();
    let mut clf = ClassifierKind::logreg().build(&emb, 42);
    clf.fit(&d.corpus, &emb, &pos, &neg);
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let d_corpus = d.corpus;
    Fixture {
        corpus: d_corpus,
        emb,
        clf,
        index,
        p,
        n,
        host_threads,
    }
}

/// Median wall-clock of `f` over `iters` runs, in nanoseconds.
fn median_ns<R>(iters: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            criterion::black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A cache primed past its first (full) round so the next refresh is
/// incremental.
fn primed_incremental(f: &Fixture, shards: usize) -> ScoreCache {
    let mut cache = ScoreCache::new(f.n)
        .with_shards(shards)
        .with_threads(f.host_threads);
    cache.full_every = u32::MAX;
    cache.refresh(&*f.clf, &f.corpus, &f.emb);
    cache
}

fn bench_sharded(c: &mut Criterion) {
    let f = fixture();
    println!(
        "shard_bench fixture: {} sentences, {} host threads, |P| = {}",
        f.n,
        f.host_threads,
        f.p.len()
    );

    // Scores must be bit-identical across shard counts.
    let mut reference = ScoreCache::full_only(f.n);
    reference.refresh(&*f.clf, &f.corpus, &f.emb);
    for s in SHARD_COUNTS {
        let mut cache = ScoreCache::full_only(f.n)
            .with_shards(s)
            .with_threads(f.host_threads);
        cache.refresh(&*f.clf, &f.corpus, &f.emb);
        assert_eq!(cache.scores(), reference.scores(), "S={s}: scores diverged");
    }

    let hierarchy = generate_hierarchy(&f.index, &f.p, 2000, f.n / 2);
    let queried = FxHashSet::default();

    let mut g = c.benchmark_group("shard_refresh_20k");
    g.sample_size(10);
    let mut rows = Vec::new();
    for s in SHARD_COUNTS {
        // Full pass: every sentence re-scored.
        let full_ns = {
            let mut cache = ScoreCache::full_only(f.n)
                .with_shards(s)
                .with_threads(f.host_threads);
            g.bench_function(&format!("full_refresh_s{s}"), |b| {
                b.iter(|| cache.refresh(&*f.clf, &f.corpus, &f.emb))
            });
            let mut cache = ScoreCache::full_only(f.n)
                .with_shards(s)
                .with_threads(f.host_threads);
            median_ns(10, || cache.refresh(&*f.clf, &f.corpus, &f.emb))
        };
        // Incremental pass: only above-threshold sentences re-scored.
        let incr_ns = {
            let mut cache = primed_incremental(&f, s);
            median_ns(10, || cache.refresh(&*f.clf, &f.corpus, &f.emb))
        };
        // Benefit partition rebuild + merged selection.
        let mut store = ShardedBenefitStore::new(ShardMap::new(f.n, s));
        store
            .track(
                hierarchy.rules(),
                &f.index,
                &f.p,
                reference.scores(),
                f.host_threads,
            )
            .unwrap();
        let rebuild_ns = {
            let (index, p, scores) = (&f.index, &f.p, reference.scores());
            let threads = f.host_threads;
            median_ns(10, || store.rebuild(index, p, scores, threads).unwrap())
        };
        let select_ns = {
            let ctx = Ctx {
                index: &f.index,
                hierarchy: &hierarchy,
                p: &f.p,
                scores: reference.scores(),
                queried: &queried,
                benefit_threshold: 0.5,
                store: Some(&store),
            };
            let mut us = UniversalSearch::new();
            assert!(us.select(&ctx).is_some(), "S={s}: nothing selectable");
            median_ns(50, || us.select(&ctx))
        };
        let throughput = f.n as f64 / (full_ns as f64 / 1e9);
        println!(
            "S={s}: full {full_ns} ns ({throughput:.0} sentences/s), incremental {incr_ns} ns, rebuild {rebuild_ns} ns, select {select_ns} ns"
        );
        rows.push(format!(
            "    {{\"shards\": {s}, \"full_refresh_ns\": {full_ns}, \"full_refresh_sentences_per_s\": {throughput:.0}, \"incremental_refresh_ns\": {incr_ns}, \"store_rebuild_ns\": {rebuild_ns}, \"select_ns\": {select_ns}}}"
        ));
    }
    g.finish();

    // The pre-shard reference: one `predict` call per above-threshold
    // sentence, interleaved with the scan (what `ScoreCache::refresh` did
    // before the batch path).
    let unbatched_ns = {
        let cache = primed_incremental(&f, 1);
        let scores: Vec<f32> = cache.scores().to_vec();
        median_ns(10, || {
            let mut out = 0f32;
            for id in 0..f.n as u32 {
                if scores[id as usize] >= cache.threshold {
                    out += f.clf.predict(&f.corpus, &f.emb, id);
                }
            }
            out
        })
    };
    println!("unbatched incremental reference: {unbatched_ns} ns");

    let json = format!(
        "{{\n  \"bench\": \"shard_refresh_20k\",\n  \"corpus_sentences\": {},\n  \"candidate_rules\": {},\n  \"host_threads\": {},\n  \"unbatched_incremental_ns\": {},\n  \"per_shard_count\": [\n{}\n  ],\n  \"scores_bit_identical_across_shard_counts\": true\n}}\n",
        f.n,
        hierarchy.len(),
        f.host_threads,
        unbatched_ns,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    std::fs::write(path, &json).expect("write BENCH_shard.json");
    println!("shard_bench: recorded BENCH_shard.json");
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);

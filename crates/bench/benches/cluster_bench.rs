//! The concurrent fan-out's payoff, measured: journal-patch broadcast
//! latency as the shard count grows, sequential vs concurrent fan-out,
//! over in-process channels, child-process pipes and loopback TCP —
//! plus the encode-once amortization the broadcast leans on.
//!
//! The headline claim (acceptance criterion of the fan-out PR): at
//! S = 4 the *concurrent* broadcast costs about one round trip, not
//! four — its latency stays within a small factor of the single-shard
//! round trip while the sequential broadcast grows linearly.
//!
//! Every configuration is asserted to produce fragments identical to
//! the in-memory store before its timing is reported, and each fleet's
//! mirrors are audited against worker ground truth at the end.
//!
//! Besides the console report, running this bench rewrites
//! `BENCH_cluster.json` at the repo root (see BENCHES.md for the
//! schema).
//!
//! The bench binary doubles as its own worker: with
//! `DARWIN_CLUSTER_BENCH_WORKER=shard` it serves the shard protocol over
//! stdio (`Proc` rows) or, when `DARWIN_CLUSTER_BENCH_DIAL=<addr>` is
//! also set, over a TCP connection it dials itself (`Tcp` rows).

use darwin_core::candidates::generate_hierarchy;
use darwin_core::{serve_shard, Fanout, ShardConnector, ShardedBenefitStore};
use darwin_datasets::directions;
use darwin_grammar::Heuristic;
use darwin_index::{IdSet, IndexConfig, IndexSet, RuleRef, ShardMap};
use darwin_text::Corpus;
use darwin_wire::{Encode, InProc, ProcTransport, StdioTransport, Transport, WireError};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 20_000;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const REPS: usize = 20;

fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

struct Fixture {
    corpus: Corpus,
    index: IndexSet,
    index_cfg: IndexConfig,
    p: IdSet,
    scores: Vec<f32>,
    rules: Vec<RuleRef>,
}

fn fixture() -> Fixture {
    let d = directions::generate(N, 42);
    let index_cfg = IndexConfig {
        max_phrase_len: 4,
        min_count: 2,
        ..Default::default()
    };
    let index = IndexSet::build(&d.corpus, &index_cfg);
    let seed = Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap();
    let p = IdSet::from_ids(&seed.coverage(&d.corpus), d.corpus.len());
    let scores: Vec<f32> = (0..N)
        .map(|i| (i as f32 * 0.137).fract() * 0.6 + 0.2)
        .collect();
    let hierarchy = generate_hierarchy(&index, &p, 2_000, N / 2);
    let rules = hierarchy.rules().to_vec();
    Fixture {
        corpus: d.corpus,
        index,
        index_cfg,
        p,
        scores,
        rules,
    }
}

/// A representative incremental score journal: every 16th sentence moves.
fn journal(f: &Fixture) -> Vec<(u32, f32, f32)> {
    (0..N as u32)
        .step_by(16)
        .map(|id| {
            let old = f.scores[id as usize];
            (id, old, (old + 0.11).fract())
        })
        .collect()
}

/// Loopback RTT is tens of microseconds, so on one machine the journal
/// patch is dominated by worker processing and every fan-out looks the
/// same. This wrapper injects a one-way request latency on the *worker*
/// side (each worker's delay elapses on its own thread, concurrently —
/// exactly how switch latency behaves), making the dispatch discipline
/// visible: sequential pays the delay per shard, concurrent once.
struct SimulatedRtt<T> {
    inner: T,
    one_way: Duration,
}

impl<T: Transport> Transport for SimulatedRtt<T> {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        self.inner.send(payload)
    }
    fn recv_timeout(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>, WireError> {
        let frame = self.inner.recv_timeout(timeout)?;
        if frame.is_some() {
            std::thread::sleep(self.one_way);
        }
        Ok(frame)
    }
}

/// The injected one-way latency for the `inproc_sim_rtt` rows.
const SIM_RTT_ONE_WAY: Duration = Duration::from_micros(500);

/// A connector deploying one worker per shard for a transport row.
fn connector(kind: &'static str) -> Arc<ShardConnector> {
    let exe = std::env::current_exe().expect("own path");
    Arc::new(move |_s, _range| match kind {
        "inproc" => {
            let (client, mut server) = InProc::pair();
            std::thread::spawn(move || {
                let _ = serve_shard(&mut server);
            });
            Ok(Box::new(client) as Box<dyn Transport>)
        }
        "inproc_sim_rtt" => {
            let (client, server) = InProc::pair();
            std::thread::spawn(move || {
                let mut t = SimulatedRtt {
                    inner: server,
                    one_way: SIM_RTT_ONE_WAY,
                };
                let _ = serve_shard(&mut t);
            });
            Ok(Box::new(client) as Box<dyn Transport>)
        }
        "proc" => {
            let mut cmd = std::process::Command::new(&exe);
            cmd.env("DARWIN_CLUSTER_BENCH_WORKER", "shard");
            let t = ProcTransport::spawn(&mut cmd)?;
            Ok(Box::new(t) as Box<dyn Transport>)
        }
        "tcp" => {
            let listener = darwin_wire::Listener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            let mut child = std::process::Command::new(&exe)
                .env("DARWIN_CLUSTER_BENCH_WORKER", "shard")
                .env("DARWIN_CLUSTER_BENCH_DIAL", addr.to_string())
                .spawn()?;
            let t = listener.accept();
            if t.is_err() {
                let _ = child.kill();
            }
            std::thread::spawn(move || {
                let _ = child.wait();
            });
            Ok(Box::new(t?) as Box<dyn Transport>)
        }
        other => unreachable!("unknown transport row {other}"),
    })
}

fn main() {
    // Child mode: serve the shard protocol and exit.
    if std::env::var("DARWIN_CLUSTER_BENCH_WORKER").as_deref() == Ok("shard") {
        match std::env::var("DARWIN_CLUSTER_BENCH_DIAL") {
            Ok(addr) => {
                let mut t = darwin_wire::dial(addr.as_str()).expect("dial coordinator");
                serve_shard(&mut t).expect("bench tcp shard worker");
            }
            Err(_) => {
                let mut t = StdioTransport::new();
                serve_shard(&mut t).expect("bench shard worker");
            }
        }
        return;
    }

    let f = fixture();
    let j = journal(&f);
    let probe = f.rules[f.rules.len() / 2];

    // ---- encode-once amortization ----
    // The broadcast encodes the journal entries into one fixed-width
    // byte run and slices per-shard spans out of it, so the encode cost
    // below is paid once per broadcast regardless of S (the sliced
    // bodies are header + memcpy).
    let encode_once_ns = median_ns(200, || {
        let mut entries = Vec::with_capacity(j.len() * 12);
        for c in &j {
            c.encode(&mut entries);
        }
        assert!(!entries.is_empty());
    });
    println!(
        "encode-once: {} journal entries in {encode_once_ns} ns per broadcast (any S)",
        j.len()
    );

    // ---- in-memory reference ----
    let mut local = ShardedBenefitStore::new(ShardMap::new(N, 1));
    local.track(&f.rules, &f.index, &f.p, &f.scores, 1).unwrap();
    let local_ns = {
        let (p, index) = (&f.p, &f.index);
        median_ns(REPS, || {
            local.on_scores_changed(&j, p, index).unwrap();
        })
    };
    let local_sum = local.agg(probe).map(|a| a.sum_q).unwrap_or(0);
    println!("local reference patch: {local_ns} ns");

    // ---- the fan-out matrix ----
    // One worker fleet per (transport, S); both fan-out modes measured on
    // the same fleet so their numbers differ only by driving discipline.
    let mut rows = Vec::new();
    for kind in ["inproc", "proc", "tcp", "inproc_sim_rtt"] {
        let connect = connector(kind);
        for shards in SHARD_COUNTS {
            let mut store = match ShardedBenefitStore::connect_remote(
                ShardMap::new(N, shards),
                &f.corpus,
                &f.index_cfg,
                &f.p,
                &f.scores,
                connect.clone(),
                Fanout::Sequential,
            ) {
                Ok(s) => s,
                Err(e) => {
                    println!("{kind} S={shards}: unavailable ({e}); skipping row");
                    continue;
                }
            };
            store.track(&f.rules, &f.index, &f.p, &f.scores, 1).unwrap();
            let mut per_mode = Vec::new();
            for fanout in [Fanout::Sequential, Fanout::Concurrent] {
                store.set_fanout(fanout);
                let ns = {
                    let (p, index) = (&f.p, &f.index);
                    median_ns(REPS, || {
                        store.on_scores_changed(&j, p, index).unwrap();
                    })
                };
                per_mode.push(ns);
            }
            // Exactness before the numbers mean anything: the remote
            // fleet applied 1 + 2·REPS patches, the local store 1 + REPS;
            // re-sync the local side and compare the merged fragment.
            let (p, index) = (&f.p, &f.index);
            for _ in 0..REPS {
                local.on_scores_changed(&j, p, index).unwrap();
            }
            let local_sum_now = local.agg(probe).map(|a| a.sum_q).unwrap_or(0);
            assert_eq!(
                store.agg(probe).map(|a| a.sum_q).unwrap_or(1),
                local_sum_now,
                "{kind} S={shards}: remote fragments must match the in-memory store"
            );
            assert!(
                store.audit_remote().unwrap(),
                "{kind} S={shards}: mirror drifted"
            );
            store.shutdown().unwrap();
            let (seq_ns, conc_ns) = (per_mode[0], per_mode[1]);
            println!(
                "{kind} S={shards}: sequential {seq_ns} ns, concurrent {conc_ns} ns ({:.2}x)",
                seq_ns as f64 / conc_ns.max(1) as f64
            );
            rows.push((kind, shards, seq_ns, conc_ns));
        }
    }
    // `local` kept pace with every remote fleet above; keep the baseline
    // sum for the record.
    let _ = local_sum;

    // ---- the headline ratios at S = 4 ----
    let find = |kind: &str, s: usize| {
        rows.iter()
            .find(|(k, sh, _, _)| *k == kind && *sh == s)
            .copied()
    };
    let mut summary = Vec::new();
    for kind in ["inproc", "proc", "tcp", "inproc_sim_rtt"] {
        if let (Some((_, _, _, conc1)), Some((_, _, seq4, conc4))) = (find(kind, 1), find(kind, 4))
        {
            let vs_single = conc4 as f64 / conc1.max(1) as f64;
            let speedup = seq4 as f64 / conc4.max(1) as f64;
            println!(
                "{kind}: S=4 concurrent = {vs_single:.2}x the single-shard round trip, \
                 {speedup:.2}x faster than sequential"
            );
            summary.push((kind, vs_single, speedup));
        }
    }

    // ---- BENCH_cluster.json ----
    let row_json: Vec<String> = rows
        .iter()
        .map(|(kind, s, seq, conc)| {
            format!(
                "    {{\"transport\": \"{kind}\", \"shards\": {s}, \"sequential_ns\": {seq}, \"concurrent_ns\": {conc}}}"
            )
        })
        .collect();
    let summary_json: Vec<String> = summary
        .iter()
        .map(|(kind, vs_single, speedup)| {
            format!(
                "    {{\"transport\": \"{kind}\", \"concurrent_s4_vs_single_shard\": {vs_single:.2}, \"fanout_speedup_s4\": {speedup:.2}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cluster_fanout_20k\",\n  \"corpus_sentences\": {N},\n  \"tracked_rules\": {},\n  \"journal_entries\": {},\n  \"encode_once_ns\": {encode_once_ns},\n  \"local_patch_ns\": {local_ns},\n  \"journal_patch_broadcast\": [\n{}\n  ],\n  \"s4_summary\": [\n{}\n  ],\n  \"remote_fragments_identical_to_local\": true\n}}\n",
        f.rules.len(),
        j.len(),
        row_json.join(",\n"),
        summary_json.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(path, &json).expect("write BENCH_cluster.json");
    println!("cluster_bench: recorded BENCH_cluster.json");
}

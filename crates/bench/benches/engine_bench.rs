//! Per-question selection cost: incremental benefit aggregates vs. the
//! full-rescan baseline, on a ~5k-sentence synthetic corpus.
//!
//! The rescan path recomputes `benefit()` over every candidate's coverage
//! on every question (O(|rules| × |coverage|)); the incremental engine
//! reads delta-maintained aggregates (O(|rules|)). Both select the same
//! rule — the equivalence is asserted here too, not just in the tests.
//!
//! Besides the criterion report, running this bench rewrites
//! `BENCH_engine.json` at the repo root with median timings and the
//! measured speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use darwin_core::candidates::generate_hierarchy;
use darwin_core::traversal::{Ctx, Strategy, UniversalSearch};
use darwin_core::ShardedBenefitStore;
use darwin_datasets::directions;
use darwin_grammar::Heuristic;
use darwin_index::fx::FxHashSet;
use darwin_index::{IdSet, IndexConfig, IndexSet, ShardMap};
use std::time::Instant;

struct Fixture {
    index: IndexSet,
    p: IdSet,
    scores: Vec<f32>,
    queried: FxHashSet<darwin_index::RuleRef>,
    hierarchy: darwin_core::hierarchy::Hierarchy,
    store: ShardedBenefitStore,
    n: usize,
}

fn fixture() -> Fixture {
    let d = directions::generate(5000, 42);
    let n = d.len();
    let index = IndexSet::build(
        &d.corpus,
        &IndexConfig {
            max_phrase_len: 5,
            min_count: 2,
            ..Default::default()
        },
    );
    let seed = Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap();
    let p = IdSet::from_ids(&seed.coverage(&d.corpus), n);
    let hierarchy = generate_hierarchy(&index, &p, 2000, n / 2);
    // Synthetic but structured scores (what a trained classifier produces).
    let scores: Vec<f32> = (0..n)
        .map(|i| (i as f32 * 0.137).fract() * 0.6 + 0.2)
        .collect();
    let mut store = ShardedBenefitStore::new(ShardMap::new(n, 1));
    store
        .track(hierarchy.rules(), &index, &p, &scores, 1)
        .unwrap();
    Fixture {
        index,
        p,
        scores,
        queried: FxHashSet::default(),
        hierarchy,
        store,
        n,
    }
}

fn ctx<'a>(f: &'a Fixture, incremental: bool) -> Ctx<'a> {
    Ctx {
        index: &f.index,
        hierarchy: &f.hierarchy,
        p: &f.p,
        scores: &f.scores,
        queried: &f.queried,
        benefit_threshold: 0.5,
        store: incremental.then_some(&f.store),
    }
}

/// Median wall-clock of `f` over `iters` runs, in nanoseconds.
fn median_ns<R>(iters: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            criterion::black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_selection(c: &mut Criterion) {
    let mut f = fixture();
    println!(
        "engine_bench fixture: {} sentences, {} candidate rules, {} tracked aggregates",
        f.n,
        f.hierarchy.len(),
        f.store.len()
    );

    // Both paths must pick the same rule — the bench is meaningless
    // otherwise.
    let mut us = UniversalSearch::new();
    let rescan_pick = us.select(&ctx(&f, false));
    let incremental_pick = us.select(&ctx(&f, true));
    assert_eq!(rescan_pick, incremental_pick, "selection paths diverged");
    assert!(rescan_pick.is_some(), "nothing selectable in the fixture");

    let mut g = c.benchmark_group("engine_select_5k");
    g.sample_size(20);
    g.bench_function("rescan", |b| {
        let mut us = UniversalSearch::new();
        let ctx = ctx(&f, false);
        b.iter(|| us.select(&ctx));
    });
    g.bench_function("incremental", |b| {
        let mut us = UniversalSearch::new();
        let ctx = ctx(&f, true);
        b.iter(|| us.select(&ctx));
    });
    g.finish();

    // JSON record: per-question selection medians, the per-delta patch
    // cost, and the full-epoch rebuild the patches amortize away.
    let rescan_ns = median_ns(30, || {
        let mut us = UniversalSearch::new();
        us.select(&ctx(&f, false))
    });
    let incremental_ns = median_ns(200, || {
        let mut us = UniversalSearch::new();
        us.select(&ctx(&f, true))
    });
    let speedup = rescan_ns as f64 / incremental_ns as f64;

    // Patch cost: absorb a 25-entry score-change journal (a typical
    // incremental re-score round) into the aggregates. Sums drift across
    // repetitions but the per-call work is identical.
    let journal: Vec<(u32, f32, f32)> = (0..f.n as u32)
        .filter(|&s| !f.p.contains(s))
        .take(25)
        .map(|s| (s, f.scores[s as usize], 1.0 - f.scores[s as usize]))
        .collect();
    let patch_ns = {
        let store = &mut f.store;
        let p = &f.p;
        let index = &f.index;
        median_ns(100, || store.on_scores_changed(&journal, p, index).unwrap())
    };
    let rebuild_ns = {
        let store = &mut f.store;
        let (index, p, scores) = (&f.index, &f.p, &f.scores);
        median_ns(10, || store.rebuild(index, p, scores, 1).unwrap())
    };

    let json = format!(
        "{{\n  \"bench\": \"engine_select_5k\",\n  \"corpus_sentences\": {},\n  \"candidate_rules\": {},\n  \"rescan_select_ns\": {},\n  \"incremental_select_ns\": {},\n  \"speedup\": {:.2},\n  \"score_journal_patch_ns\": {},\n  \"full_rebuild_ns\": {},\n  \"selection_agrees\": true\n}}\n",
        f.n,
        f.hierarchy.len(),
        rescan_ns,
        incremental_ns,
        speedup,
        patch_ns,
        rebuild_ns
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("engine_bench: speedup {speedup:.2}x (recorded in BENCH_engine.json)");
    assert!(
        speedup >= 5.0,
        "incremental selection must be ≥5x faster, got {speedup:.2}x"
    );
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);

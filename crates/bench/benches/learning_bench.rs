//! Criterion benches: classifiers, benefit scoring and the label model.

use criterion::{criterion_group, criterion_main, Criterion};
use darwin_classifier::ClassifierKind;
use darwin_core::benefit::benefit;
use darwin_datasets::directions;
use darwin_index::IdSet;
use darwin_labelmodel::{GenerativeConfig, GenerativeModel, LfMatrix};
use darwin_text::embed::EmbedConfig;
use darwin_text::Embeddings;

fn bench_classifiers(c: &mut Criterion) {
    let d = directions::generate(3000, 42);
    let emb = Embeddings::train(&d.corpus, &EmbedConfig::default());
    let pos: Vec<u32> = (0..d.len() as u32)
        .filter(|&i| d.labels[i as usize])
        .take(100)
        .collect();
    let neg: Vec<u32> = (0..d.len() as u32)
        .filter(|&i| !d.labels[i as usize])
        .take(300)
        .collect();

    let mut g = c.benchmark_group("classifier");
    g.sample_size(10);
    g.bench_function("logreg_fit_400", |b| {
        let mut clf = ClassifierKind::logreg().build(&emb, 1);
        b.iter(|| clf.fit(&d.corpus, &emb, &pos, &neg));
    });
    g.bench_function("cnn_fit_400_4epochs", |b| {
        let mut clf = ClassifierKind::cnn_with_epochs(4).build(&emb, 1);
        b.iter(|| clf.fit(&d.corpus, &emb, &pos, &neg));
    });
    let mut trained = ClassifierKind::logreg().build(&emb, 1);
    trained.fit(&d.corpus, &emb, &pos, &neg);
    g.bench_function("logreg_predict_all_3k", |b| {
        let mut out = Vec::new();
        b.iter(|| trained.predict_all(&d.corpus, &emb, &mut out));
    });
    g.finish();

    let mut g2 = c.benchmark_group("embeddings");
    g2.sample_size(10);
    g2.bench_function("train_3k_corpus", |b| {
        b.iter(|| Embeddings::train(&d.corpus, &EmbedConfig::default()));
    });
    g2.finish();
}

fn bench_benefit(c: &mut Criterion) {
    let n = 100_000u32;
    let postings: Vec<u32> = (0..n).step_by(7).collect();
    let p = IdSet::from_ids(&(0..n).step_by(13).collect::<Vec<_>>(), n as usize);
    let scores = vec![0.3f32; n as usize];
    c.bench_function("benefit_14k_postings", |b| {
        b.iter(|| benefit(&postings, &p, &scores));
    });
}

fn bench_labelmodel(c: &mut Criterion) {
    let coverages: Vec<Vec<u32>> = (0..20)
        .map(|j| (0..1000u32).filter(|i| (i + j) % 7 == 0).collect())
        .collect();
    let refs: Vec<&[u32]> = coverages.iter().map(|v| v.as_slice()).collect();
    let m = LfMatrix::from_coverages(1000, &refs);
    c.bench_function("generative_em_1000x20", |b| {
        b.iter(|| GenerativeModel::fit(&m, &GenerativeConfig::default()));
    });
}

criterion_group!(benches, bench_classifiers, bench_benefit, bench_labelmodel);
criterion_main!(benches);

//! The wire boundary's overhead, measured: codec throughput
//! (encode/decode of the hot messages), round-trip cost of shard
//! operations over `InProc` and `Proc` transports vs the direct
//! in-memory call, and the CNN `predict_batch` scratch-hoisting win.
//!
//! Every remote row is asserted to produce fragments identical to the
//! in-memory store before any timing is reported — a wire layer that
//! changed results would make the numbers meaningless.
//!
//! Besides the criterion report, running this bench rewrites
//! `BENCH_wire.json` at the repo root (see BENCHES.md for the schema).
//!
//! The bench binary doubles as its own `Proc` worker: when
//! `DARWIN_WIRE_BENCH_WORKER=shard` is set it serves the shard protocol
//! over stdio and exits, so the parent can spawn real child processes
//! without depending on another artifact's build location.

use criterion::Criterion;
use darwin_classifier::ClassifierKind;
use darwin_core::candidates::generate_hierarchy;
use darwin_core::{serve_shard, RemoteShard, ShardedBenefitStore};
use darwin_datasets::directions;
use darwin_grammar::Heuristic;
use darwin_index::{IdSet, IndexConfig, IndexSet, RuleRef, ShardMap};
use darwin_text::embed::EmbedConfig;
use darwin_text::{Corpus, Embeddings};
use darwin_wire::{Decode, Encode, InProc, ProcTransport, Request, StdioTransport};
use std::time::Instant;

const N: usize = 20_000;

fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

struct Fixture {
    corpus: Corpus,
    index: IndexSet,
    index_cfg: IndexConfig,
    p: IdSet,
    scores: Vec<f32>,
    rules: Vec<RuleRef>,
}

fn fixture() -> Fixture {
    let d = directions::generate(N, 42);
    let index_cfg = IndexConfig {
        max_phrase_len: 4,
        min_count: 2,
        ..Default::default()
    };
    let index = IndexSet::build(&d.corpus, &index_cfg);
    let seed = Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap();
    let p = IdSet::from_ids(&seed.coverage(&d.corpus), d.corpus.len());
    let scores: Vec<f32> = (0..N)
        .map(|i| (i as f32 * 0.137).fract() * 0.6 + 0.2)
        .collect();
    let hierarchy = generate_hierarchy(&index, &p, 2_000, N / 2);
    let rules = hierarchy.rules().to_vec();
    Fixture {
        corpus: d.corpus,
        index,
        index_cfg,
        p,
        scores,
        rules,
    }
}

/// A representative incremental score journal: every 16th sentence moves.
fn journal(f: &Fixture) -> Vec<(u32, f32, f32)> {
    (0..N as u32)
        .step_by(16)
        .map(|id| {
            let old = f.scores[id as usize];
            (id, old, (old + 0.11).fract())
        })
        .collect()
}

/// Drive one journal patch + fragment read against a remote shard and
/// return the merged sum (so the work can't be optimized away).
fn remote_once(remote: &mut RemoteShard, j: &[(u32, f32, f32)], probe: RuleRef) -> i64 {
    remote.on_scores_changed(j).expect("wire patch");
    remote.agg(probe).map(|a| a.sum_q).unwrap_or(0)
}

fn main() {
    // Child mode: serve the shard protocol over stdio and exit.
    if std::env::var("DARWIN_WIRE_BENCH_WORKER").as_deref() == Ok("shard") {
        let mut t = StdioTransport::new();
        serve_shard(&mut t).expect("bench shard worker");
        return;
    }

    let f = fixture();
    let mut c = Criterion::default();
    let j = journal(&f);
    let probe = f.rules[f.rules.len() / 2];

    // ---- codec: the hot messages ----
    let msg = Request::ScoresChanged { changes: j.clone() };
    let bytes = msg.to_bytes();
    let encode_ns = median_ns(200, || {
        let b = msg.to_bytes();
        assert!(!b.is_empty());
    });
    let decode_ns = median_ns(200, || {
        let m = Request::from_bytes(&bytes).unwrap();
        assert!(matches!(m, Request::ScoresChanged { .. }));
    });
    c.bench_function("wire/encode_journal", |b| {
        b.iter(|| msg.to_bytes());
    });
    c.bench_function("wire/decode_journal", |b| {
        b.iter(|| Request::from_bytes(&bytes).unwrap());
    });
    println!(
        "codec: {} journal entries, {} bytes, encode {encode_ns} ns, decode {decode_ns} ns",
        j.len(),
        bytes.len()
    );

    // ---- in-memory reference: journal patch on a local store ----
    let mut local = ShardedBenefitStore::new(ShardMap::new(N, 1));
    local.track(&f.rules, &f.index, &f.p, &f.scores, 1).unwrap();
    let local_ns = {
        let (p, index) = (&f.p, &f.index);
        median_ns(20, || {
            local.on_scores_changed(&j, p, index).unwrap();
        })
    };
    let local_sum = local.agg(probe).map(|a| a.sum_q).unwrap_or(0);

    // ---- InProc round trip (worker thread, full codec path) ----
    let spawn_inproc = || {
        let (client, mut server) = InProc::pair();
        std::thread::spawn(move || {
            let _ = serve_shard(&mut server);
        });
        RemoteShard::connect(
            Box::new(client),
            &f.corpus,
            &f.index_cfg,
            0,
            N as u32,
            &f.p,
            &f.scores,
        )
        .expect("inproc shard connects")
    };
    let mut inproc = spawn_inproc();
    inproc.track(&f.rules).unwrap();
    let inproc_ns = median_ns(20, || {
        remote_once(&mut inproc, &j, probe);
    });
    assert_eq!(
        inproc.agg(probe).map(|a| a.sum_q).unwrap_or(1),
        local_sum,
        "inproc fragments must match the in-memory store"
    );

    // ---- Proc round trip (real child process over stdio pipes) ----
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = std::process::Command::new(&exe);
    cmd.env("DARWIN_WIRE_BENCH_WORKER", "shard");
    let proc_ns = match ProcTransport::spawn(&mut cmd) {
        Err(e) => {
            println!("proc transport unavailable ({e}); recording null");
            None
        }
        Ok(t) => {
            let mut remote = RemoteShard::connect(
                Box::new(t),
                &f.corpus,
                &f.index_cfg,
                0,
                N as u32,
                &f.p,
                &f.scores,
            )
            .expect("proc shard connects");
            remote.track(&f.rules).unwrap();
            let ns = median_ns(20, || {
                remote_once(&mut remote, &j, probe);
            });
            assert_eq!(
                remote.agg(probe).map(|a| a.sum_q).unwrap_or(1),
                local_sum,
                "proc fragments must match the in-memory store"
            );
            Some(ns)
        }
    };
    println!(
        "journal patch round trip: local {local_ns} ns, inproc {inproc_ns} ns, proc {} ns",
        proc_ns
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".into())
    );

    // ---- predict column: CNN scratch hoisting ----
    let emb = Embeddings::train(
        &f.corpus,
        &EmbedConfig {
            dim: 16,
            seed: 42,
            ..Default::default()
        },
    );
    let mut cnn = ClassifierKind::cnn_with_epochs(2).build(&emb, 42);
    let pos: Vec<u32> = f.p.iter().collect();
    let neg: Vec<u32> = (0..N as u32)
        .filter(|id| !f.p.contains(*id))
        .step_by(29)
        .take(pos.len() * 3)
        .collect();
    cnn.fit(&f.corpus, &emb, &pos, &neg);
    let ids: Vec<u32> = (0..512u32).collect();
    let per_id_ns = median_ns(10, || {
        let mut acc = 0.0f32;
        for &id in &ids {
            acc += cnn.predict(&f.corpus, &emb, id);
        }
        assert!(acc.is_finite());
    });
    let batched_ns = median_ns(10, || {
        let mut out = Vec::with_capacity(ids.len());
        cnn.predict_batch(&f.corpus, &emb, &ids, &mut out);
        assert_eq!(out.len(), ids.len());
    });
    // Bit-identity of the batch path (the contract the cache leans on).
    let mut batch_out = Vec::new();
    cnn.predict_batch(&f.corpus, &emb, &ids, &mut batch_out);
    for (&id, &b) in ids.iter().zip(&batch_out) {
        assert_eq!(cnn.predict(&f.corpus, &emb, id), b);
    }
    let speedup = per_id_ns as f64 / batched_ns.max(1) as f64;
    println!("cnn predict 512 ids: per-id {per_id_ns} ns, batched {batched_ns} ns ({speedup:.2}x)");

    let json = format!(
        "{{\n  \"bench\": \"wire_boundary_20k\",\n  \"corpus_sentences\": {N},\n  \"tracked_rules\": {},\n  \"codec\": {{\"journal_entries\": {}, \"message_bytes\": {}, \"encode_ns\": {encode_ns}, \"decode_ns\": {decode_ns}}},\n  \"journal_patch_roundtrip\": {{\"local_ns\": {local_ns}, \"inproc_ns\": {inproc_ns}, \"proc_ns\": {}}},\n  \"predict_512\": {{\"cnn_per_id_ns\": {per_id_ns}, \"cnn_batched_ns\": {batched_ns}, \"speedup\": {speedup:.2}}},\n  \"remote_fragments_identical_to_local\": true\n}}\n",
        f.rules.len(),
        j.len(),
        bytes.len(),
        proc_ns.map(|n| n.to_string()).unwrap_or_else(|| "null".into()),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");
    std::fs::write(path, &json).expect("write BENCH_wire.json");
    println!("wire_bench: recorded BENCH_wire.json");
}

//! Per-YES hierarchy-regeneration cost: the full best-first walk from the
//! index root vs. the incremental candidate frontier (`FrontierPool`), on
//! 5k- and 20k-sentence corpora.
//!
//! The protocol replays the adaptive loop's growth pattern: starting from a
//! seed rule's coverage, each simulated YES accepts the best candidate that
//! still adds new positives and regenerates the pool — exactly the
//! regeneration the engine performs per YES answer. The full path re-walks
//! from the root each step; the pooled path journals the YES's new ids and
//! regenerates from its memoized frontier (the timed span includes the
//! dirty-delta application — that *is* the per-YES cost). Outputs are
//! asserted byte-identical at every step; the bench is meaningless
//! otherwise.
//!
//! Besides the criterion report, running this bench rewrites
//! `BENCH_frontier.json` at the repo root (see BENCHES.md for the schema).

use criterion::{criterion_group, criterion_main, Criterion};
use darwin_core::candidates::{generate_scored, Candidate};
use darwin_core::FrontierPool;
use darwin_datasets::directions;
use darwin_grammar::Heuristic;
use darwin_index::{IdSet, IndexConfig, IndexSet};
use std::time::Instant;

const K: usize = 2000;
const YES_STEPS: usize = 12;
/// Whole-sequence replays per corpus; each step reports its median across
/// replays (a pooled regeneration mutates the pool, so per-step repeats
/// inside one replay would not measure the dirty-delta application).
const REPLAYS: usize = 5;

struct Fixture {
    index: IndexSet,
    /// `P` before each YES step, and the ids that step adds.
    p_before: Vec<IdSet>,
    new_ids: Vec<Vec<u32>>,
    n: usize,
    max_count: usize,
}

fn fixture(n: usize) -> Fixture {
    let d = directions::generate(n, 42);
    let index = IndexSet::build(
        &d.corpus,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 2,
            ..Default::default()
        },
    );
    let seed = Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap();
    let mut p = IdSet::from_ids(&seed.coverage(&d.corpus), n);
    let max_count = n / 2;

    // Pre-compute the YES sequence, mirroring Algorithm 1's oracle: per
    // step, the best-ranked candidate that still adds positives *and*
    // clears the 0.8-precision bar against the ground-truth labels is
    // accepted and its coverage joins P. (Gating on precision keeps the
    // per-YES dirty batches at the sizes a real run produces — a
    // hypothetical oracle that said YES to the broadest rules would flood
    // in a quarter of the corpus per question, which no precision-bounded
    // annotator does.)
    let precise = |c: &Candidate| {
        let cov = index.coverage(c.rule);
        let pos = cov.iter().filter(|&&id| d.labels[id as usize]).count();
        pos as f64 / cov.len() as f64 >= 0.8
    };
    let mut p_before = Vec::with_capacity(YES_STEPS);
    let mut new_ids = Vec::with_capacity(YES_STEPS);
    for _ in 0..YES_STEPS {
        p_before.push(p.clone());
        let cands = generate_scored(&index, &p, K, max_count);
        let accepted = cands
            .iter()
            .find(|c| c.count > c.overlap && precise(c))
            .expect("growth sequence exhausted the corpus early");
        let fresh: Vec<u32> = index
            .coverage(accepted.rule)
            .iter()
            .copied()
            .filter(|&id| !p.contains(id))
            .collect();
        p.extend_from_slice(&fresh);
        new_ids.push(fresh);
    }
    Fixture {
        index,
        p_before,
        new_ids,
        n,
        max_count,
    }
}

fn assert_same(a: &[Candidate], b: &[Candidate], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: candidate counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            (x.rule, x.overlap, x.count),
            (y.rule, y.overlap, y.count),
            "{label}: pooled and full walks diverged"
        );
    }
}

fn time_ns<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let t = Instant::now();
    let r = criterion::black_box(f());
    (t.elapsed().as_nanos() as u64, r)
}

/// One YES step's timings: the full walk, and the incremental path split
/// into its two phases (dirty-delta flush + memoized replay).
#[derive(Clone, Copy, Default)]
struct StepTimes {
    full_ns: u64,
    delta_ns: u64,
    replay_ns: u64,
}

/// Per-step regeneration medians for one corpus, across `REPLAYS` replays
/// of the whole sequence.
fn measure(f: &Fixture) -> Vec<StepTimes> {
    let mut samples: Vec<Vec<StepTimes>> = vec![Vec::new(); YES_STEPS];
    for _ in 0..REPLAYS {
        let mut pool = FrontierPool::new();
        // Prime on the seed-only positives — the engine builds its first
        // hierarchy before any question is asked, so per-YES costs start
        // from a warm pool, exactly as in a run.
        let primed = pool.generate_scored(&f.index, &f.p_before[0], K, f.max_count);
        assert_same(
            &primed,
            &generate_scored(&f.index, &f.p_before[0], K, f.max_count),
            "priming",
        );
        for (step, samples) in samples.iter_mut().enumerate() {
            // P after this YES = p_before[step] + new_ids[step].
            let mut p = f.p_before[step].clone();
            p.extend_from_slice(&f.new_ids[step]);

            let (full_ns, reference) = time_ns(|| generate_scored(&f.index, &p, K, f.max_count));
            pool.note_positives(&f.new_ids[step]);
            let (delta_ns, ()) = time_ns(|| pool.sync(&f.index, &p));
            let (replay_ns, pooled) =
                time_ns(|| pool.generate_scored(&f.index, &p, K, f.max_count));
            assert_same(&pooled, &reference, &format!("step {step}"));
            samples.push(StepTimes {
                full_ns,
                delta_ns,
                replay_ns,
            });
        }
        assert_eq!(pool.stats().full_rebuilds, 0, "per-YES deltas sufficed");
    }
    let median = |mut v: Vec<u64>| {
        v.sort_unstable();
        v[v.len() / 2]
    };
    samples
        .into_iter()
        .map(|s| StepTimes {
            full_ns: median(s.iter().map(|t| t.full_ns).collect()),
            delta_ns: median(s.iter().map(|t| t.delta_ns).collect()),
            replay_ns: median(s.iter().map(|t| t.replay_ns).collect()),
        })
        .collect()
}

fn bench_frontier(c: &mut Criterion) {
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut blocks = Vec::new();
    for n in [5_000usize, 20_000] {
        let f = fixture(n);
        println!(
            "frontier_bench fixture: {} sentences, {} YES steps, k = {K}",
            f.n, YES_STEPS
        );

        // Criterion entries on the final (largest-P) step, for the report.
        let last = YES_STEPS - 1;
        let mut p_last = f.p_before[last].clone();
        p_last.extend_from_slice(&f.new_ids[last]);
        let mut g = c.benchmark_group(format!("frontier_regen_{n}"));
        g.sample_size(10);
        g.bench_function("full_walk", |b| {
            b.iter(|| generate_scored(&f.index, &p_last, K, f.max_count))
        });
        g.bench_function("incremental", |b| {
            // Warm pool, no dirty ids: the steady-state replay cost.
            let mut pool = FrontierPool::new();
            pool.generate_scored(&f.index, &p_last, K, f.max_count);
            b.iter(|| pool.generate_scored(&f.index, &p_last, K, f.max_count))
        });
        g.finish();

        let per_step = measure(&f);
        let median = |mut v: Vec<u64>| {
            v.sort_unstable();
            v[v.len() / 2]
        };
        let full_med = median(per_step.iter().map(|t| t.full_ns).collect());
        let incr_med = median(per_step.iter().map(|t| t.delta_ns + t.replay_ns).collect());
        let speedup = full_med as f64 / incr_med as f64;
        println!(
            "n={n}: full regen median {full_med} ns, incremental {incr_med} ns ({speedup:.1}x)"
        );
        let rows: Vec<String> = per_step
            .iter()
            .enumerate()
            .map(|(s, t)| {
                format!(
                    "        {{\"yes_step\": {}, \"new_positive_ids\": {}, \"full_regen_ns\": {}, \"incremental_regen_ns\": {}, \"delta_flush_ns\": {}, \"replay_ns\": {}}}",
                    s + 1,
                    f.new_ids[s].len(),
                    t.full_ns,
                    t.delta_ns + t.replay_ns,
                    t.delta_ns,
                    t.replay_ns
                )
            })
            .collect();
        blocks.push(format!(
            "    {{\n      \"corpus_sentences\": {n},\n      \"k_candidates\": {K},\n      \"yes_steps\": {YES_STEPS},\n      \"full_regen_median_ns\": {full_med},\n      \"incremental_regen_median_ns\": {incr_med},\n      \"speedup\": {speedup:.2},\n      \"per_yes\": [\n{}\n      ]\n    }}",
            rows.join(",\n")
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"frontier_regen\",\n  \"host_threads\": {host_threads},\n  \"outputs_bit_identical_full_vs_incremental\": true,\n  \"corpora\": [\n{}\n  ]\n}}\n",
        blocks.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontier.json");
    std::fs::write(path, &json).expect("write BENCH_frontier.json");
    println!("frontier_bench: recorded BENCH_frontier.json");
}

criterion_group!(benches, bench_frontier);
criterion_main!(benches);

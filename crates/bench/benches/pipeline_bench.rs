//! Criterion benches: traversal steps and the end-to-end pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use darwin_core::candidates::generate_hierarchy;
use darwin_core::traversal::{Ctx, Strategy, UniversalSearch};
use darwin_core::{Darwin, DarwinConfig, GroundTruthOracle, Seed};
use darwin_datasets::directions;
use darwin_grammar::Heuristic;
use darwin_index::fx::FxHashSet;
use darwin_index::{IdSet, IndexConfig, IndexSet};

fn bench_traversal_step(c: &mut Criterion) {
    let d = directions::generate(3000, 42);
    let index = IndexSet::build(
        &d.corpus,
        &IndexConfig {
            max_phrase_len: 6,
            min_count: 2,
            ..Default::default()
        },
    );
    let seed = Heuristic::phrase(&d.corpus, "best way to get to").unwrap();
    let p = IdSet::from_ids(&seed.coverage(&d.corpus), d.len());
    let hierarchy = generate_hierarchy(&index, &p, 2000, d.len() / 2);
    let scores = vec![0.2f32; d.len()];
    let queried = FxHashSet::default();
    let ctx = Ctx {
        index: &index,
        hierarchy: &hierarchy,
        p: &p,
        scores: &scores,
        queried: &queried,
        benefit_threshold: 0.5,
        store: None,
    };
    c.bench_function("universal_select_2000_candidates", |b| {
        let mut us = UniversalSearch::new();
        b.iter(|| us.select(&ctx));
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let d = directions::generate(2000, 42);
    let index = IndexSet::build(
        &d.corpus,
        &IndexConfig {
            max_phrase_len: 5,
            min_count: 2,
            ..Default::default()
        },
    );
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("end_to_end_2k_budget10", |b| {
        b.iter(|| {
            let cfg = DarwinConfig {
                budget: 10,
                n_candidates: 1000,
                ..Default::default()
            };
            let darwin = Darwin::new(&d.corpus, &index, cfg);
            let seed = Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap();
            let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
            darwin.run(Seed::Rule(seed), &mut oracle)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_traversal_step, bench_pipeline);
criterion_main!(benches);

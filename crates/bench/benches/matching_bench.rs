//! Criterion benches: heuristic matching and candidate generation.

use criterion::{criterion_group, criterion_main, Criterion};
use darwin_core::candidates;
use darwin_datasets::directions;
use darwin_grammar::{Heuristic, PhrasePattern, TreePattern};
use darwin_index::{IdSet, IndexConfig, IndexSet};

fn bench_matching(c: &mut Criterion) {
    let d = directions::generate(3000, 42);
    let corpus = &d.corpus;
    let contiguous = PhrasePattern::parse(corpus.vocab(), "best way to get").unwrap();
    let gapped = PhrasePattern::parse(corpus.vocab(), "best * get + to").unwrap();
    let tree = TreePattern::parse(corpus.vocab(), "get/to & get//NOUN").unwrap();

    let mut g = c.benchmark_group("matching");
    g.bench_function("phrase_contiguous_3k", |b| {
        b.iter(|| {
            corpus
                .sentences()
                .iter()
                .filter(|s| contiguous.matches(s))
                .count()
        });
    });
    g.bench_function("phrase_gapped_3k", |b| {
        b.iter(|| {
            corpus
                .sentences()
                .iter()
                .filter(|s| gapped.matches(s))
                .count()
        });
    });
    g.bench_function("tree_pattern_3k", |b| {
        b.iter(|| {
            corpus
                .sentences()
                .iter()
                .filter(|s| tree.matches(s))
                .count()
        });
    });
    g.finish();
}

fn bench_candidates(c: &mut Criterion) {
    let d = directions::generate(5000, 42);
    let index = IndexSet::build(
        &d.corpus,
        &IndexConfig {
            max_phrase_len: 6,
            min_count: 2,
            ..Default::default()
        },
    );
    let seed = Heuristic::phrase(&d.corpus, "best way to get to").unwrap();
    let p = IdSet::from_ids(&seed.coverage(&d.corpus), d.len());

    let mut g = c.benchmark_group("candidates");
    g.sample_size(20);
    g.bench_function("algorithm2_k1000", |b| {
        b.iter(|| candidates::generate(&index, &p, 1000, usize::MAX));
    });
    g.bench_function("hierarchy_k1000_with_cleanup", |b| {
        b.iter(|| candidates::generate_hierarchy(&index, &p, 1000, d.len() / 2));
    });
    g.finish();
}

criterion_group!(benches, bench_matching, bench_candidates);
criterion_main!(benches);

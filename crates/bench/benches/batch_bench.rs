//! Wall-clock of the async batched-oracle loop vs the step-driven loop
//! under simulated oracle latency (0 / 10 / 100 ms per answer), at batch
//! sizes 1, 4, 16 and the latency-targeted adaptive policy.
//!
//! The step-driven reference is `Darwin::run` against a synchronous
//! oracle that sleeps the simulated latency inside every `ask` — the
//! paper's annotator loop, which serializes on each answer. The async
//! rows drive `Darwin::run_async` through `SimulatedLatency`, which
//! answers a whole wave one round-trip after submission — so a wave of k
//! questions costs ~1 latency instead of k. Batch 1 is asserted
//! trace-identical to the step-driven reference (same questions, same
//! answers) before any timing is reported; the bench is meaningless
//! otherwise.
//!
//! Besides the criterion report, running this bench rewrites
//! `BENCH_batch.json` at the repo root (see BENCHES.md for the schema).

use criterion::{criterion_group, criterion_main, Criterion};
use darwin_core::batch::{BatchPolicy, SimulatedLatency};
use darwin_core::{CostModel, Darwin, DarwinConfig, GroundTruthOracle, Oracle, RunResult, Seed};
use darwin_datasets::directions;
use darwin_grammar::Heuristic;
use darwin_index::{IndexConfig, IndexSet};
use darwin_text::embed::EmbedConfig;
use darwin_text::{Corpus, Embeddings};
use std::time::{Duration, Instant};

const N: usize = 2_000;
const BUDGET: usize = 24;
const K_CANDIDATES: usize = 1_500;

/// A synchronous oracle that takes `latency` to answer — the step-driven
/// loop blocks in every `ask`, which is exactly what the async loop is
/// built to avoid.
struct SlowOracle<O> {
    inner: O,
    latency: Duration,
}

impl<O: Oracle> Oracle for SlowOracle<O> {
    fn ask(&mut self, corpus: &Corpus, rule: &Heuristic, coverage: &[u32]) -> bool {
        std::thread::sleep(self.latency);
        self.inner.ask(corpus, rule, coverage)
    }

    fn queries(&self) -> usize {
        self.inner.queries()
    }
}

struct Fixture {
    d: darwin_datasets::Dataset,
    index: IndexSet,
    emb: Embeddings,
}

fn fixture() -> Fixture {
    let d = directions::generate(N, 42);
    let index = IndexSet::build(
        &d.corpus,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 2,
            ..Default::default()
        },
    );
    let emb = Embeddings::train(
        &d.corpus,
        &EmbedConfig {
            seed: 42,
            ..Default::default()
        },
    );
    Fixture { d, index, emb }
}

fn cfg(batch: BatchPolicy) -> DarwinConfig {
    DarwinConfig {
        budget: BUDGET,
        n_candidates: K_CANDIDATES,
        batch,
        ..DarwinConfig::fast()
    }
}

fn darwin<'a>(f: &'a Fixture, batch: BatchPolicy) -> Darwin<'a> {
    Darwin::with_embeddings(&f.d.corpus, &f.index, cfg(batch), f.emb.clone())
}

fn seed(f: &Fixture) -> Seed {
    Seed::Rule(Heuristic::phrase(&f.d.corpus, f.d.seed_rules[0]).unwrap())
}

fn assert_same_questions(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.trace.len(), b.trace.len(), "{label}: question counts");
    for (x, y) in a.trace.iter().zip(&b.trace) {
        assert_eq!(x.rule, y.rule, "{label}: q{} rule", x.question);
        assert_eq!(x.answer, y.answer, "{label}: q{} answer", x.question);
    }
}

struct Row {
    label: String,
    wall_ns: u128,
    questions: usize,
    waves: usize,
    retrains: usize,
    peak_in_flight: usize,
    cost_cents: usize,
}

fn bench_batch(c: &mut Criterion) {
    let f = fixture();
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // Criterion entries: driver overhead at zero latency (batching cannot
    // win here — the entry guards against the async loop costing more
    // than the step loop when there is no latency to hide).
    let mut g = c.benchmark_group("batch_driver_0ms");
    g.sample_size(10);
    g.bench_function("step_driven", |b| {
        b.iter(|| {
            let mut o = GroundTruthOracle::new(&f.d.labels, 0.8);
            darwin(&f, BatchPolicy::Fixed(1)).run(seed(&f), &mut o)
        })
    });
    g.bench_function("async_batch4", |b| {
        b.iter(|| {
            let mut o =
                SimulatedLatency::new(GroundTruthOracle::new(&f.d.labels, 0.8), Duration::ZERO);
            darwin(&f, BatchPolicy::Fixed(4)).run_async(seed(&f), &mut o)
        })
    });
    g.finish();

    let mut blocks = Vec::new();
    let mut speedup_100ms_b4 = 0.0f64;
    for latency_ms in [0u64, 10, 100] {
        let latency = Duration::from_millis(latency_ms);

        // Step-driven reference: one blocking ask per question.
        let t = Instant::now();
        let mut slow = SlowOracle {
            inner: GroundTruthOracle::new(&f.d.labels, 0.8),
            latency,
        };
        let step = darwin(&f, BatchPolicy::Fixed(1)).run(seed(&f), &mut slow);
        let step_ns = t.elapsed().as_nanos();
        assert_eq!(step.questions(), BUDGET, "fixture must sustain the budget");

        let policies: [(String, BatchPolicy); 4] = [
            ("1".into(), BatchPolicy::Fixed(1)),
            ("4".into(), BatchPolicy::Fixed(4)),
            ("16".into(), BatchPolicy::Fixed(16)),
            ("adaptive".into(), BatchPolicy::LatencyTargeted { max: 16 }),
        ];
        let mut rows = Vec::new();
        for (label, policy) in policies {
            let mut oracle =
                SimulatedLatency::new(GroundTruthOracle::new(&f.d.labels, 0.8), latency);
            let out =
                darwin(&f, policy).run_async_costed(seed(&f), &mut oracle, &CostModel::paper());
            if label == "1" {
                // The signature invariant, re-proven on the bench fixture:
                // batch 1 asks the step loop's exact questions.
                assert_same_questions(&step, &out.run, "batch=1 vs step-driven");
            }
            let speedup = step_ns as f64 / out.report.wall_ns as f64;
            if latency_ms == 100 && label == "4" {
                speedup_100ms_b4 = speedup;
            }
            println!(
                "latency {latency_ms:>3} ms  batch {label:>8}  wall {:>9}  waves {:>2}  speedup {speedup:.2}x",
                darwin_eval::fmt_ns(out.report.wall_ns),
                out.report.waves
            );
            rows.push(Row {
                label,
                wall_ns: out.report.wall_ns,
                questions: out.run.questions(),
                waves: out.report.waves,
                retrains: out.report.retrains,
                peak_in_flight: out.report.peak_in_flight,
                cost_cents: out.report.cost.cents,
            });
        }

        let row_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "        {{\"batch\": \"{}\", \"wall_ns\": {}, \"questions\": {}, \"waves\": {}, \"retrains\": {}, \"peak_in_flight\": {}, \"cost_cents\": {}, \"speedup_vs_step\": {:.2}}}",
                    r.label,
                    r.wall_ns,
                    r.questions,
                    r.waves,
                    r.retrains,
                    r.peak_in_flight,
                    r.cost_cents,
                    step_ns as f64 / r.wall_ns as f64
                )
            })
            .collect();
        blocks.push(format!(
            "    {{\n      \"oracle_latency_ms\": {latency_ms},\n      \"step_driven_wall_ns\": {step_ns},\n      \"rows\": [\n{}\n      ]\n    }}",
            row_json.join(",\n")
        ));
    }

    assert!(
        speedup_100ms_b4 >= 3.0,
        "acceptance bar: batch 4 must hide ≥ 3x wall-clock at 100 ms latency, got {speedup_100ms_b4:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"batch_latency_hiding\",\n  \"host_threads\": {host_threads},\n  \"corpus_sentences\": {N},\n  \"budget\": {BUDGET},\n  \"batch1_trace_equals_step_driven\": true,\n  \"latencies\": [\n{}\n  ]\n}}\n",
        blocks.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    std::fs::write(path, &json).expect("write BENCH_batch.json");
    println!("batch_bench: recorded BENCH_batch.json");
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);

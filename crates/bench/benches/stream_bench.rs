//! Sustained-ingest throughput for the append-delta layer (ISSUE 9).
//!
//! Three paths, batched appends repeated until a sentence quota is met:
//!
//! * `corpus_index_phrase` — the raw ingest pipeline with a phrase-only
//!   (TokensRegex) index: `Corpus::append_texts` (tokenize, tag, parse)
//!   plus `IndexSet::append` delta growth. This is the sustained-ingest
//!   number the acceptance gate reads (`sustained_sentences_per_sec` ≥
//!   100k/s on a release build).
//! * `corpus_index_tree` — the same pipeline with the TreeMatch hierarchy
//!   enabled. Sketch enumeration plus pattern interning keeps this within
//!   ~3.5× of the phrase path; it is reported alongside rather than
//!   gating, with its own CI floor (≥ 80k/s).
//! * `live_session` — appends folded into a live [`StreamSession`]
//!   between wave barriers: everything above plus embedding zero-pad,
//!   score-cache growth, benefit-store fold and hierarchy regeneration.
//!
//! A fourth cell microbenchmarks the reusable tree match kernel
//! (`MatchCtx`) against the plain recursive matcher it replays, sweeping
//! the indexed tree rules over the base corpus — the per-rule coverage
//! cost the engine pays mid-run.
//!
//! Besides the criterion report, running this bench rewrites
//! `BENCH_stream.json` at the repo root (schema in BENCHES.md).

use criterion::{criterion_group, criterion_main, Criterion};
use darwin_core::stream::StreamSession;
use darwin_core::{BatchPolicy, DarwinConfig, GroundTruthOracle, Immediate, Seed};
use darwin_datasets::directions;
use darwin_grammar::{Heuristic, MatchCtx, TreePattern};
use darwin_index::{IndexConfig, IndexSet};
use std::time::Instant;

const SEED: u64 = 42;
const BASE_SENTENCES: usize = 2000;

fn min1() -> IndexConfig {
    IndexConfig {
        max_phrase_len: 4,
        min_count: 1,
        ..Default::default()
    }
}

fn phrase_min1() -> IndexConfig {
    IndexConfig {
        enable_tree: false,
        ..min1()
    }
}

/// Deterministic synthetic arrivals: transport-intent phrasing with a
/// rolling numeral so every batch brings some fresh vocabulary.
fn arrivals(offset: usize, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let k = offset + i;
            match k % 3 {
                0 => format!("is there a bus to the airport at {k}"),
                1 => format!("order a pizza with {k} toppings to the room"),
                _ => format!("the gym closes at {k} tonight"),
            }
        })
        .collect()
}

struct Row {
    path: &'static str,
    batch_sentences: usize,
    batches: usize,
    total_sentences: usize,
    total_ns: u64,
    sentences_per_sec: f64,
}

fn row(path: &'static str, batch: usize, batches: usize, total_ns: u64) -> Row {
    let total = batch * batches;
    Row {
        path,
        batch_sentences: batch,
        batches,
        total_sentences: total,
        total_ns,
        sentences_per_sec: total as f64 / (total_ns as f64 / 1e9),
    }
}

/// Raw ingest: corpus analysis + index delta growth, no session.
fn measure_corpus_index(
    path: &'static str,
    icfg: &IndexConfig,
    threads: usize,
    batch: usize,
    batches: usize,
) -> Row {
    let d = directions::generate(BASE_SENTENCES, SEED);
    let mut corpus = d.corpus;
    let mut index = IndexSet::build(&corpus, icfg);
    let t = Instant::now();
    for b in 0..batches {
        let texts = arrivals(b * batch, batch);
        corpus.append_texts(texts.iter(), threads);
        index.append(&corpus).expect("min_count == 1 index grows");
    }
    let total_ns = t.elapsed().as_nanos() as u64;
    assert_eq!(corpus.len(), BASE_SENTENCES + batch * batches);
    row(path, batch, batches, total_ns)
}

/// Appends into a live session: the full reconcile path.
fn measure_live_session(threads: usize, batch: usize, batches: usize) -> Row {
    let d = directions::generate(BASE_SENTENCES, SEED);
    let index = IndexSet::build(&d.corpus, &min1());
    let cfg = DarwinConfig {
        budget: 4,
        n_candidates: 400,
        threads,
        batch: BatchPolicy::Fixed(3),
        ..DarwinConfig::fast()
    };
    let labels: Vec<bool> = d
        .labels
        .iter()
        .copied()
        .chain(std::iter::repeat(false))
        .take(BASE_SENTENCES + batch * batches)
        .collect();
    let mut session = StreamSession::new(d.corpus, index, cfg, Seed::Positives(vec![0]));
    let mut oracle = Immediate::new(GroundTruthOracle::new(&labels, 0.8));
    session.drive(&mut oracle, Some(1));
    let t = Instant::now();
    for b in 0..batches {
        let texts = arrivals(b * batch, batch);
        session.append(texts).expect("append at barrier");
    }
    let total_ns = t.elapsed().as_nanos() as u64;
    row("live_session", batch, batches, total_ns)
}

struct KernelCell {
    patterns: usize,
    sentences: usize,
    kernel_ns: u64,
    recursive_ns: u64,
}

/// Sweep up to 512 indexed tree rules over the base corpus, once with the
/// reusable kernel (memo/size/stack arenas reused across calls) and once
/// with the recursive reference it must replay; assert identical hit
/// counts so the speedup is an equivalence-checked measurement.
fn measure_match_kernel() -> (Vec<TreePattern>, Vec<darwin_text::Sentence>, KernelCell) {
    let d = directions::generate(BASE_SENTENCES, SEED);
    let index = IndexSet::build(&d.corpus, &min1());
    let patterns: Vec<TreePattern> = index
        .all_rules()
        .filter_map(|r| match index.heuristic(r) {
            Heuristic::Tree(p) => Some(p),
            Heuristic::Phrase(_) => None,
        })
        .take(512)
        .collect();
    let sentences = d.corpus.sentences().to_vec();

    let mut ctx = MatchCtx::new();
    let t = Instant::now();
    let mut kernel_hits = 0usize;
    for p in &patterns {
        for s in &sentences {
            kernel_hits += ctx.matches(p, s) as usize;
        }
    }
    let kernel_ns = t.elapsed().as_nanos() as u64;

    let t = Instant::now();
    let mut recursive_hits = 0usize;
    for p in &patterns {
        for s in &sentences {
            recursive_hits += p.matches(s) as usize;
        }
    }
    let recursive_ns = t.elapsed().as_nanos() as u64;
    assert_eq!(kernel_hits, recursive_hits, "kernel must replay reference");

    let cell = KernelCell {
        patterns: patterns.len(),
        sentences: sentences.len(),
        kernel_ns,
        recursive_ns,
    };
    (patterns, sentences, cell)
}

fn bench_stream(c: &mut Criterion) {
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let threads = host_threads.min(4);

    let mut g = c.benchmark_group("stream_append");
    g.sample_size(10);
    g.bench_function("corpus_index_1k", |b| {
        b.iter(|| {
            criterion::black_box(measure_corpus_index(
                "corpus_index_phrase",
                &phrase_min1(),
                threads,
                1000,
                2,
            ))
        })
    });
    let (patterns, sentences, kernel) = measure_match_kernel();
    g.bench_function("tree_match_kernel", |b| {
        let mut ctx = MatchCtx::new();
        b.iter(|| {
            let mut hits = 0usize;
            for p in patterns.iter().take(32) {
                for s in &sentences {
                    hits += ctx.matches(p, s) as usize;
                }
            }
            criterion::black_box(hits)
        })
    });
    g.finish();

    let rows = [
        measure_corpus_index("corpus_index_phrase", &phrase_min1(), threads, 1000, 40),
        measure_corpus_index("corpus_index_phrase", &phrase_min1(), threads, 5000, 8),
        measure_corpus_index("corpus_index_tree", &min1(), threads, 1000, 40),
        measure_corpus_index("corpus_index_tree", &min1(), threads, 5000, 8),
        measure_live_session(threads, 1000, 5),
    ];
    let sustained = rows
        .iter()
        .filter(|r| r.path == "corpus_index_phrase")
        .map(|r| r.sentences_per_sec)
        .fold(0.0f64, f64::max);

    let mut blocks = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            blocks.push_str(",\n");
        }
        blocks.push_str(&format!(
            "    {{\n      \"path\": \"{}\",\n      \"batch_sentences\": {},\n      \"batches\": {},\n      \"total_sentences\": {},\n      \"total_ns\": {},\n      \"sentences_per_sec\": {:.0}\n    }}",
            r.path, r.batch_sentences, r.batches, r.total_sentences, r.total_ns, r.sentences_per_sec
        ));
        println!(
            "stream_bench {} batch={}: {:.0} sentences/s",
            r.path, r.batch_sentences, r.sentences_per_sec
        );
    }
    let kernel_speedup = kernel.recursive_ns as f64 / kernel.kernel_ns.max(1) as f64;
    let kernel_block = format!(
        "  \"match_kernel\": {{\n    \"patterns\": {},\n    \"sentences\": {},\n    \"kernel_ns\": {},\n    \"recursive_ns\": {},\n    \"speedup\": {:.2}\n  }},",
        kernel.patterns, kernel.sentences, kernel.kernel_ns, kernel.recursive_ns, kernel_speedup
    );
    println!(
        "stream_bench match_kernel: {} patterns x {} sentences, kernel {:.1}ms vs recursive {:.1}ms ({kernel_speedup:.2}x)",
        kernel.patterns,
        kernel.sentences,
        kernel.kernel_ns as f64 / 1e6,
        kernel.recursive_ns as f64 / 1e6
    );
    let json = format!(
        "{{\n  \"bench\": \"stream_append\",\n  \"base_sentences\": {BASE_SENTENCES},\n  \"host_threads\": {host_threads},\n  \"append_threads\": {threads},\n  \"sustained_sentences_per_sec\": {sustained:.0},\n{kernel_block}\n  \"rows\": [\n{blocks}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    std::fs::write(path, &json).expect("write BENCH_stream.json");
    println!(
        "stream_bench: sustained ingest {sustained:.0} sentences/s, recorded in BENCH_stream.json"
    );
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);

//! Durable-session cost: what a suspend/resume cycle adds on top of an
//! uninterrupted run, and how snapshot serialization scales with corpus
//! size.
//!
//! Per corpus size, the bench suspends a run at a wave barrier, measures
//! encoding the captured [`Snapshot`] to its checksummed frame and
//! decoding it back, then completes the run from the bytes alone and
//! asserts the recovered positives, scores and trace are identical to
//! the uninterrupted reference — the timings are only reported for runs
//! that honored the contract.
//!
//! Besides the criterion report, running this bench rewrites
//! `BENCH_snapshot.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use darwin_core::{
    BatchPolicy, Darwin, DarwinConfig, GroundTruthOracle, Immediate, Seed, SessionOutcome, Snapshot,
};
use darwin_datasets::directions;
use darwin_grammar::Heuristic;
use darwin_index::{IndexConfig, IndexSet};
use std::time::Instant;

const SEED: u64 = 42;
const SUSPEND_AT: u64 = 2;

/// Median wall-clock of `f` over `iters` runs, in nanoseconds.
fn median_ns<R>(iters: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            criterion::black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Row {
    corpus_sentences: usize,
    snapshot_bytes: usize,
    encode_ns: u64,
    decode_ns: u64,
    uninterrupted_ns: u64,
    suspend_resume_ns: u64,
    overhead_ratio: f64,
}

fn measure(n: usize, c: &mut Criterion) -> Row {
    let d = directions::generate(n, SEED);
    let index = IndexSet::build(
        &d.corpus,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 2,
            ..Default::default()
        },
    );
    let cfg = DarwinConfig {
        budget: 12,
        n_candidates: 1200,
        batch: BatchPolicy::Fixed(3),
        ..DarwinConfig::fast()
    };
    let darwin = Darwin::new(&d.corpus, &index, cfg);
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let oracle = || Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));

    // Uninterrupted reference.
    let t = Instant::now();
    let reference = darwin.run_async(seed.clone(), &mut oracle());
    let uninterrupted_ns = t.elapsed().as_nanos() as u64;

    // The whole crashed lifecycle: run to the barrier, capture, encode;
    // then decode, rebuild and finish from the bytes alone.
    let t = Instant::now();
    let snap = match darwin.snapshot(seed.clone(), &mut oracle(), SUSPEND_AT) {
        SessionOutcome::Suspended(snap) => snap,
        SessionOutcome::Finished(_) => unreachable!("budget outlives wave {SUSPEND_AT}"),
    };
    let bytes = snap.to_bytes();
    let resumed = darwin.resume(&bytes, &mut oracle()).expect("resume");
    let suspend_resume_ns = t.elapsed().as_nanos() as u64;

    // The contract, before any timing is reported.
    assert_eq!(reference.run.positives, resumed.run.positives, "P differs");
    assert_eq!(reference.run.scores, resumed.run.scores, "scores differ");
    assert_eq!(reference.run.trace, resumed.run.trace, "trace differs");

    let mut g = c.benchmark_group(format!("snapshot_{n}"));
    g.sample_size(20);
    g.bench_function("encode", |b| b.iter(|| snap.to_bytes()));
    g.bench_function("decode", |b| {
        b.iter(|| Snapshot::from_bytes(&bytes).unwrap())
    });
    g.finish();

    let encode_ns = median_ns(50, || snap.to_bytes());
    let decode_ns = median_ns(50, || Snapshot::from_bytes(&bytes).unwrap());
    Row {
        corpus_sentences: n,
        snapshot_bytes: bytes.len(),
        encode_ns,
        decode_ns,
        uninterrupted_ns,
        suspend_resume_ns,
        overhead_ratio: suspend_resume_ns as f64 / uninterrupted_ns as f64,
    }
}

fn bench_snapshot(c: &mut Criterion) {
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let rows: Vec<Row> = [1000, 5000, 20000].iter().map(|&n| measure(n, c)).collect();

    let mut blocks = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            blocks.push_str(",\n");
        }
        blocks.push_str(&format!(
            "    {{\n      \"corpus_sentences\": {},\n      \"snapshot_bytes\": {},\n      \"encode_ns\": {},\n      \"decode_ns\": {},\n      \"uninterrupted_run_ns\": {},\n      \"suspend_resume_ns\": {},\n      \"overhead_ratio\": {:.3}\n    }}",
            r.corpus_sentences,
            r.snapshot_bytes,
            r.encode_ns,
            r.decode_ns,
            r.uninterrupted_ns,
            r.suspend_resume_ns,
            r.overhead_ratio
        ));
        println!(
            "snapshot_bench {}k: {} bytes, encode {} µs, decode {} µs, lifecycle overhead {:.2}x",
            r.corpus_sentences / 1000,
            r.snapshot_bytes,
            r.encode_ns / 1000,
            r.decode_ns / 1000,
            r.overhead_ratio
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"snapshot_resume\",\n  \"suspend_at_wave\": {SUSPEND_AT},\n  \"host_threads\": {host_threads},\n  \"resumed_identical_to_reference\": true,\n  \"corpora\": [\n{blocks}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
    std::fs::write(path, &json).expect("write BENCH_snapshot.json");
    println!("snapshot_bench: recorded in BENCH_snapshot.json");
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);

//! Shared test harness for the Darwin integration suites.
//!
//! Every integration file used to carry its own copy of the same corpus
//! builders, index configurations, oracle doubles and trace-comparison
//! assertions; this crate is the one home for all of them:
//!
//! * [`corpora`] — deterministic corpus/index fixtures, from the
//!   6-sentence transport corpus up to sized `directions` datasets;
//! * [`oracles`] — test doubles: [`ScriptedOracle`] (canned answers) and
//!   [`NoisyOracle`] (ground truth with seeded answer flips);
//! * [`trace`] — trace-capture assertions: byte-for-byte run equivalence,
//!   final-state equality, candidate-pool equality;
//! * [`strategies`] — proptest generators for random corpora;
//! * [`transports`] — wire-boundary doubles: the fault-injecting
//!   [`FlakyTransport`] and worker-deployment helpers for distributed
//!   suites;
//! * env helpers ([`test_threads`], [`test_batch`], [`test_transport`])
//!   wiring the CI matrix (`DARWIN_TEST_THREADS`, `DARWIN_TEST_BATCH`,
//!   `DARWIN_TEST_TRANSPORT`) into suite configurations.
//!
//! This is a dev-dependency only: nothing here ships in the library.

#![warn(missing_docs)]

pub mod corpora;
pub mod oracles;
pub mod strategies;
pub mod trace;
pub mod transports;

pub use corpora::{directions_fixture, indexed, tiny_transport, transport};
pub use oracles::{NoisyOracle, ScriptedOracle};
pub use trace::{assert_equivalent, assert_same_final, assert_same_pool};
pub use transports::{
    shard_connector, test_transport, wire_oracle, worker_bin, Fault, FlakyTransport, TransportKind,
};

/// Worker-thread count for suite runs: `DARWIN_TEST_THREADS` (the CI
/// matrix runs 1 and 4), default 1. Trace determinism across thread
/// counts is part of the engine contract, so suites run every
/// configuration through this knob.
pub fn test_threads() -> usize {
    env_usize("DARWIN_TEST_THREADS", 1)
}

/// Async wave size for suite runs: `DARWIN_TEST_BATCH` (the CI matrix
/// runs 1 and 8), default 1. Batch size 1 is the synchronous reference;
/// larger sizes exercise the pipelined wave protocol.
pub fn test_batch() -> usize {
    env_usize("DARWIN_TEST_BATCH", 1)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_helpers_default_to_one() {
        // The suite may run under the CI matrix; only pin the fallback.
        assert!(super::env_usize("DARWIN_TESTKIT_UNSET_VAR", 1) == 1);
        assert!(super::test_threads() >= 1);
        assert!(super::test_batch() >= 1);
    }
}

//! Shared test harness for the Darwin integration suites.
//!
//! Every integration file used to carry its own copy of the same corpus
//! builders, index configurations, oracle doubles and trace-comparison
//! assertions; this crate is the one home for all of them:
//!
//! * [`corpora`] — deterministic corpus/index fixtures, from the
//!   6-sentence transport corpus up to sized `directions` datasets;
//! * [`oracles`] — test doubles: [`ScriptedOracle`] (canned answers) and
//!   [`NoisyOracle`] (ground truth with seeded answer flips);
//! * [`trace`] — trace-capture assertions: byte-for-byte run equivalence,
//!   final-state equality, candidate-pool equality;
//! * [`strategies`] — proptest generators for random corpora;
//! * [`transports`] — wire-boundary doubles: the fault-injecting
//!   [`FlakyTransport`] and worker-deployment helpers for distributed
//!   suites;
//! * [`crash`] — the [`CrashPlan`] crash-recovery fault injector and the
//!   snapshot corruption fuzzer for the durable-session suites;
//! * [`TestEnv`] — the CI matrix (`DARWIN_TEST_TRANSPORT`,
//!   `DARWIN_TEST_THREADS`, `DARWIN_TEST_BATCH`, `DARWIN_TEST_CRASH_AT`)
//!   parsed once, composed into suite configurations — suites never
//!   re-parse env vars themselves.
//!
//! This is a dev-dependency only: nothing here ships in the library.

#![warn(missing_docs)]

pub mod corpora;
pub mod crash;
pub mod oracles;
pub mod strategies;
pub mod trace;
pub mod transports;

pub use corpora::{directions_fixture, indexed, tiny_transport, transport};
pub use crash::{assert_resumed_equivalent, snapshot_mutants, CrashPlan, Mutant};
pub use oracles::{NoisyOracle, ScriptedOracle};
pub use trace::{assert_equivalent, assert_same_final, assert_same_pool};
pub use transports::{
    shard_connector, test_transport, wire_oracle, worker_bin, Fault, FlakyTransport, TransportKind,
};

use darwin_core::{BatchPolicy, DarwinConfig};

/// The CI matrix configuration, parsed from the environment exactly once
/// and composed into suite configs — the single home for every
/// `DARWIN_TEST_*` axis, so adding an axis (as `DARWIN_TEST_CRASH_AT`
/// did) touches this struct instead of every suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TestEnv {
    /// How distributed suites deploy workers (`DARWIN_TEST_TRANSPORT`:
    /// `inproc` default, `proc`, `tcp`).
    pub transport: TransportKind,
    /// Worker-thread count (`DARWIN_TEST_THREADS`, default 1; the matrix
    /// runs 1 and 4). Trace determinism across thread counts is part of
    /// the engine contract.
    pub threads: usize,
    /// Async wave size (`DARWIN_TEST_BATCH`, default 1; the matrix runs
    /// 1 and 8). Size 1 is the synchronous reference.
    pub batch: usize,
    /// Restrict crash-recovery suites to killing at this one wave
    /// barrier (`DARWIN_TEST_CRASH_AT`; unset = every barrier). Feeds
    /// [`CrashPlan::exhaustive`].
    pub crash_at: Option<u64>,
}

impl TestEnv {
    /// Parse the matrix from the environment.
    pub fn from_env() -> TestEnv {
        TestEnv {
            transport: transports::test_transport(),
            threads: env_usize("DARWIN_TEST_THREADS", 1),
            batch: env_usize("DARWIN_TEST_BATCH", 1),
            crash_at: std::env::var("DARWIN_TEST_CRASH_AT")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&w| w > 0),
        }
    }

    /// Compose the matrix's execution axes onto `cfg`: thread count and a
    /// fixed wave size. (The transport and crash axes configure the
    /// deployment and the crash plan, not the `DarwinConfig`.)
    pub fn apply(&self, cfg: DarwinConfig) -> DarwinConfig {
        cfg.with_threads(self.threads)
            .with_batch(BatchPolicy::Fixed(self.batch))
    }
}

/// Worker-thread count for suite runs — [`TestEnv::from_env`]'s `threads`
/// axis, kept as a helper for suites that need only this knob.
pub fn test_threads() -> usize {
    TestEnv::from_env().threads
}

/// Async wave size for suite runs — [`TestEnv::from_env`]'s `batch` axis,
/// kept as a helper for suites that need only this knob.
pub fn test_batch() -> usize {
    TestEnv::from_env().batch
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_helpers_default_to_one() {
        // The suite may run under the CI matrix; only pin the fallback.
        assert!(super::env_usize("DARWIN_TESTKIT_UNSET_VAR", 1) == 1);
        assert!(super::test_threads() >= 1);
        assert!(super::test_batch() >= 1);
    }

    #[test]
    fn test_env_is_one_parse_of_the_matrix() {
        let env = TestEnv::from_env();
        assert_eq!(env.threads, test_threads());
        assert_eq!(env.batch, test_batch());
        assert_eq!(env.transport, test_transport());
        let cfg = env.apply(DarwinConfig::fast());
        assert_eq!(cfg.threads, env.threads);
        assert_eq!(cfg.batch, BatchPolicy::Fixed(env.batch));
    }
}

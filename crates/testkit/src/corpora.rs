//! Deterministic corpus and index fixtures.

use darwin_datasets::{directions, Dataset};
use darwin_index::{IndexConfig, IndexSet};
use darwin_text::Corpus;

/// The 6-sentence transport corpus the frontier/engine edge-case tests
/// drive: two discovered positives (shuttle), two undiscovered (bus), two
/// negatives — small enough to reason about every posting by hand.
pub fn tiny_transport() -> (Corpus, IndexSet) {
    let c = Corpus::from_texts([
        "the shuttle to the airport leaves hourly",
        "is there a shuttle to the airport tonight",
        "a bus to the airport runs daily",
        "order pizza to the room please",
        "the pool opens at nine daily",
        "is there a bus downtown tonight",
    ]);
    let idx = IndexSet::build(&c, &IndexConfig::small());
    (c, idx)
}

/// The transport-intent corpus with labels: two positive families sharing
/// the "to the airport" context (24 sentences) against a majority of
/// negatives (80) — the class imbalance mirrors the paper's datasets and
/// keeps randomly sampled "presumed negatives" mostly correct.
pub fn transport() -> (Corpus, Vec<bool>) {
    let mut texts = Vec::new();
    let mut labels = Vec::new();
    for i in 0..12 {
        texts.push(format!("is there a shuttle to the airport at {i}"));
        labels.push(true);
        texts.push(format!("is there a bus to the airport at {i}"));
        labels.push(true);
    }
    for i in 0..40 {
        texts.push(format!("order a pizza with {i} toppings to the room"));
        labels.push(false);
        texts.push(format!("the pool opens at {i} for guests"));
        labels.push(false);
    }
    (Corpus::from_texts(texts.iter()), labels)
}

/// Build the suite-standard index over `corpus`: phrases up to
/// `max_phrase_len` tokens, postings for everything occurring at least
/// twice.
pub fn indexed(corpus: &Corpus, max_phrase_len: usize) -> IndexSet {
    IndexSet::build(
        corpus,
        &IndexConfig {
            max_phrase_len,
            min_count: 2,
            ..Default::default()
        },
    )
}

/// A sized `directions` dataset with the suite-standard index
/// (`max_phrase_len` 4): the workhorse fixture of the equivalence suites.
pub fn directions_fixture(n: usize, seed: u64) -> (Dataset, IndexSet) {
    let d = directions::generate(n, seed);
    let index = indexed(&d.corpus, 4);
    (d, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let (a, _) = directions_fixture(200, 7);
        let (b, _) = directions_fixture(200, 7);
        assert_eq!(a.labels, b.labels);
        let (c, _) = tiny_transport();
        assert_eq!(c.len(), 6);
        let (t, labels) = transport();
        assert_eq!(t.len(), labels.len());
        assert_eq!(labels.iter().filter(|&&l| l).count(), 24);
    }
}

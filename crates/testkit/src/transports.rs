//! Transport test doubles and distributed-run helpers.
//!
//! * [`FlakyTransport`] — a deterministic fault injector wrapping any
//!   transport: it drops, duplicates or truncates outgoing frames on a
//!   seeded schedule, so suites can prove that every wire failure
//!   surfaces as a clean `WireError` (never a panic, never a silently
//!   partial merge).
//! * [`TransportKind`] / [`test_transport`] — the CI matrix axis
//!   (`DARWIN_TEST_TRANSPORT={inproc,proc,tcp}`) choosing how distributed
//!   suites deploy their workers: in-process worker threads over channel
//!   transports, real child processes over stdio pipes, or child
//!   processes dialing back over loopback TCP sockets.
//! * [`shard_connector`] / [`wire_oracle`] — build a worker deployment of
//!   the selected kind for `Darwin::with_remote_shards` and
//!   `Darwin::run_async`.

use darwin_core::{serve_oracle, Oracle, ShardConnector, WireOracle};
use darwin_text::Corpus;
use darwin_wire::{InProc, ProcTransport, Transport, WireError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

/// Which fault a [`FlakyTransport`] injects on a send it decides to harm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The frame never leaves (a lost datagram / dead pipe write).
    Drop,
    /// The frame is delivered twice (a retransmit bug).
    Duplicate,
    /// Only a prefix of the payload is delivered (a torn write after
    /// reassembly — the codec's bounds checks catch it at decode, so the
    /// receiver sees a clean `Corrupt`/`Truncated` error, never garbage).
    Truncate,
}

/// A deterministic fault-injecting wrapper around any [`Transport`].
///
/// Every `send` consults a seeded RNG: with probability `rate` the
/// configured [`Fault`] is injected, otherwise the frame passes through
/// untouched. Receives always pass through — faults on the return path
/// are equivalent to faults on a later send for request/response
/// protocols, and keeping one injection point makes schedules easy to
/// reason about.
pub struct FlakyTransport {
    inner: Box<dyn Transport>,
    fault: Fault,
    /// Injection probability per send, in permille.
    permille: u32,
    /// Sends left unharmed before the schedule starts (lets a handshake
    /// or a conversation prefix succeed, then the fault hits).
    grace: usize,
    rng: StdRng,
    injected: usize,
}

impl FlakyTransport {
    /// Wrap `inner`, injecting `fault` on roughly `rate` (0.0–1.0) of
    /// sends, deterministically from `seed`.
    pub fn new(inner: Box<dyn Transport>, fault: Fault, rate: f64, seed: u64) -> FlakyTransport {
        FlakyTransport {
            inner,
            fault,
            permille: (rate.clamp(0.0, 1.0) * 1000.0) as u32,
            grace: 0,
            rng: StdRng::seed_from_u64(seed),
            injected: 0,
        }
    }

    /// A wrapper that harms the very first send (the fastest way to prove
    /// an operation surfaces its failure).
    pub fn always(inner: Box<dyn Transport>, fault: Fault) -> FlakyTransport {
        FlakyTransport::new(inner, fault, 1.0, 0)
    }

    /// A wrapper that lets the first `healthy_sends` through untouched,
    /// then harms every later send — a worker that dies mid-conversation.
    pub fn after(inner: Box<dyn Transport>, fault: Fault, healthy_sends: usize) -> FlakyTransport {
        let mut t = FlakyTransport::new(inner, fault, 1.0, 0);
        t.grace = healthy_sends;
        t
    }

    /// Faults injected so far.
    pub fn injected(&self) -> usize {
        self.injected
    }
}

impl Transport for FlakyTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        if self.grace > 0 {
            self.grace -= 1;
            return self.inner.send(payload);
        }
        let roll: u32 = self.rng.gen_range(0..1000);
        if roll >= self.permille {
            return self.inner.send(payload);
        }
        self.injected += 1;
        match self.fault {
            Fault::Drop => Ok(()), // swallowed: the peer never sees it
            Fault::Duplicate => {
                self.inner.send(payload)?;
                self.inner.send(payload)
            }
            Fault::Truncate => self.inner.send(&payload[..payload.len() / 2]),
        }
    }

    fn recv_timeout(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>, WireError> {
        // Cap blocking receives: a dropped request means the reply never
        // comes, and a test harness should get a clean timeout-shaped
        // disconnect rather than hang.
        let capped = Some(timeout.unwrap_or(Duration::from_millis(500)));
        match self.inner.recv_timeout(capped)? {
            Some(f) => Ok(Some(f)),
            None => match timeout {
                // The *caller* asked for a timeout: report it.
                Some(_) => Ok(None),
                // The caller would have blocked forever on a frame we
                // dropped: surface the loss as a disconnect.
                None => Err(WireError::Disconnected),
            },
        }
    }
}

/// How distributed suites deploy workers (`DARWIN_TEST_TRANSPORT`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Worker threads over [`InProc`] channels.
    InProc,
    /// Child processes over stdio pipes (needs a worker binary).
    Proc,
    /// Child processes dialing back over loopback TCP sockets (needs a
    /// worker binary supporting `--dial`).
    Tcp,
}

/// The transport axis of the CI matrix: `DARWIN_TEST_TRANSPORT` is
/// `inproc` (default), `proc` or `tcp`. Like `DARWIN_TEST_THREADS`,
/// suites run every configuration through this knob — trace equivalence
/// across transports is part of the wire boundary's contract.
pub fn test_transport() -> TransportKind {
    match std::env::var("DARWIN_TEST_TRANSPORT").as_deref() {
        Ok("proc") => TransportKind::Proc,
        Ok("tcp") => TransportKind::Tcp,
        _ => TransportKind::InProc,
    }
}

/// Spawn `worker_exe <role args> --dial <ephemeral loopback port>` and
/// accept its connection: a one-worker TCP deployment. The child is
/// reaped by a detached thread once its socket closes.
fn tcp_worker(exe: &PathBuf, args: &[String]) -> Result<Box<dyn Transport>, WireError> {
    let listener = darwin_wire::Listener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let mut child = Command::new(exe)
        .args(args)
        .arg("--dial")
        .arg(addr.to_string())
        .spawn()
        .map_err(WireError::from)?;
    let accepted = listener.accept().and_then(|mut t| {
        darwin_wire::accept_registration(&mut t).map(|_| Box::new(t) as Box<dyn Transport>)
    });
    if accepted.is_err() {
        let _ = child.kill();
    }
    std::thread::spawn(move || {
        let _ = child.wait();
    });
    accepted
}

/// Resolve the worker binary for [`TransportKind::Proc`] deployments:
/// explicit override via `DARWIN_WORKER_BIN`, else the root package's
/// `darwin-worker` binary next to the running test executable. Suites in
/// the root package can also pass `env!("CARGO_BIN_EXE_darwin-worker")`
/// to [`shard_connector`] directly.
pub fn worker_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("DARWIN_WORKER_BIN") {
        return Some(PathBuf::from(p));
    }
    // target/debug/deps/<test> -> target/debug/darwin-worker
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?.parent()?;
    let cand = dir.join("darwin-worker");
    cand.exists().then_some(cand)
}

/// A [`ShardConnector`] deploying one worker per shard of the given kind:
/// `InProc` spawns a serve-loop thread per shard; `Proc` spawns
/// `worker_exe shard` as a child process per shard; `Tcp` spawns the same
/// child dialing back over a loopback socket.
pub fn shard_connector(kind: TransportKind, worker_exe: Option<PathBuf>) -> Box<ShardConnector> {
    match kind {
        TransportKind::InProc => darwin_core::inproc_shard_connector(),
        TransportKind::Proc => {
            let exe = worker_exe
                .or_else(worker_bin)
                .expect("proc transport needs a worker binary (DARWIN_WORKER_BIN)");
            Box::new(move |_s, _range| {
                let t = ProcTransport::spawn(Command::new(&exe).arg("shard"))?;
                Ok(Box::new(t) as Box<dyn Transport>)
            })
        }
        TransportKind::Tcp => {
            let exe = worker_exe
                .or_else(worker_bin)
                .expect("tcp transport needs a worker binary (DARWIN_WORKER_BIN)");
            Box::new(move |_s, range| {
                let args = vec![
                    "shard".to_string(),
                    "--span".to_string(),
                    range.start.to_string(),
                    range.end.to_string(),
                ];
                tcp_worker(&exe, &args)
            })
        }
    }
}

/// A connected [`WireOracle`] whose worker answers from `oracle` over
/// `corpus`: a worker thread for `InProc`, or `worker_exe oracle
/// --directions n seed` (which rebuilds the same deterministic fixture)
/// for `Proc`/`Tcp`.
pub fn wire_oracle<O>(
    kind: TransportKind,
    corpus: &Corpus,
    oracle: O,
    proc_args: Option<(&PathBuf, &[String])>,
) -> Result<WireOracle, WireError>
where
    O: Oracle + Send + 'static,
{
    match kind {
        TransportKind::InProc => {
            let corpus = corpus.clone();
            let (client, mut server) = InProc::pair();
            std::thread::spawn(move || {
                let mut oracle = oracle;
                let _ = serve_oracle(&mut server, &corpus, &mut oracle);
            });
            WireOracle::connect(Box::new(client))
        }
        TransportKind::Proc => {
            let (exe, args) = proc_args.expect("proc oracle needs (worker_exe, args)");
            let t = ProcTransport::spawn(Command::new(exe).arg("oracle").args(args))?;
            WireOracle::connect(Box::new(t))
        }
        TransportKind::Tcp => {
            let (exe, args) = proc_args.expect("tcp oracle needs (worker_exe, args)");
            let mut full = vec!["oracle".to_string()];
            full.extend(args.iter().cloned());
            WireOracle::connect(tcp_worker(exe, &full)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flaky_drop_surfaces_as_disconnect_not_hang() {
        let (client, mut server) = InProc::pair();
        let mut flaky = FlakyTransport::always(Box::new(client), Fault::Drop);
        flaky.send(b"lost").unwrap(); // swallowed
        assert_eq!(flaky.injected(), 1);
        assert_eq!(
            server
                .recv_timeout(Some(Duration::from_millis(10)))
                .unwrap(),
            None,
            "dropped frame must never arrive"
        );
        // The reply that will never come: a clean disconnect, not a hang.
        assert_eq!(flaky.recv(), Err(WireError::Disconnected));
    }

    #[test]
    fn flaky_truncate_fails_decode_cleanly() {
        use darwin_wire::{Decode, Encode, Request};
        let (client, mut server) = InProc::pair();
        let mut flaky = FlakyTransport::always(Box::new(client), Fault::Truncate);
        let msg = Request::PredictBatch {
            ids: vec![1, 2, 3, 4, 5, 6, 7, 8],
        };
        flaky.send(&msg.to_bytes()).unwrap();
        // The torn payload still frames (transports reassemble), but the
        // message inside no longer decodes — a clean codec error.
        let payload = server.recv().unwrap();
        let err = Request::from_bytes(&payload).unwrap_err();
        assert!(
            matches!(err, WireError::Truncated { .. } | WireError::Corrupt(_)),
            "truncation must fail decode cleanly, got {err:?}"
        );
    }

    #[test]
    fn flaky_duplicate_delivers_twice() {
        let (client, mut server) = InProc::pair();
        let mut flaky = FlakyTransport::always(Box::new(client), Fault::Duplicate);
        flaky.send(b"twice").unwrap();
        assert_eq!(server.recv().unwrap(), b"twice");
        assert_eq!(server.recv().unwrap(), b"twice");
    }

    #[test]
    fn flaky_rate_is_deterministic_per_seed() {
        let count = |seed| {
            let (client, _server) = InProc::pair();
            let mut flaky = FlakyTransport::new(Box::new(client), Fault::Drop, 0.5, seed);
            for _ in 0..100 {
                let _ = flaky.send(b"x");
            }
            flaky.injected()
        };
        assert_eq!(count(7), count(7), "same seed, same schedule");
        assert!(count(7) > 10 && count(7) < 90, "rate roughly honored");
    }

    #[test]
    fn transport_axis_defaults_to_inproc() {
        if std::env::var("DARWIN_TEST_TRANSPORT").is_err() {
            assert_eq!(test_transport(), TransportKind::InProc);
        }
    }
}

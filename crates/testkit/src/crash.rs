//! Crash-recovery harness and snapshot corruption fuzzing.
//!
//! * [`CrashPlan`] — the exhaustive fault injector behind the durable-
//!   session invariant: run a reference uninterrupted, then for *every*
//!   wave barrier kill the run there (snapshot + drop the engine, the
//!   oracle, the workers) and resume from bytes alone, asserting the
//!   completed trace is byte-identical to the reference.
//! * [`snapshot_mutants`] — a deterministic byte mutator (bit flips,
//!   truncations, length-prefix inflation) for proving snapshot decode
//!   rejects damage with a clean error: never a panic, never an
//!   unbounded allocation.

use crate::trace::assert_equivalent;
use darwin_core::{AsyncOracle, AsyncRunResult, Darwin, Seed, SessionOutcome};
use darwin_wire::{parse_snapshot_frame, snapshot_frame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Assert a resumed run completed *identically* to the uninterrupted
/// reference: byte-for-byte trace, accepted rules in order, scores
/// bit-exact, and the driver's cumulative instrumentation (waves,
/// submissions, retrains, peak, cost) continued across the suspend as if
/// it never happened. Wall-clock is the one field legitimately different.
pub fn assert_resumed_equivalent(
    reference: &AsyncRunResult,
    resumed: &AsyncRunResult,
    label: &str,
) {
    assert_equivalent(&reference.run, &resumed.run, label);
    assert_eq!(
        reference.run.accepted, resumed.run.accepted,
        "{label}: accepted rules differ"
    );
    assert_eq!(
        reference.run.rejected, resumed.run.rejected,
        "{label}: rejected rules differ"
    );
    let (a, b) = (&reference.report, &resumed.report);
    assert_eq!(a.waves, b.waves, "{label}: wave counts differ");
    assert_eq!(a.submitted, b.submitted, "{label}: submissions differ");
    assert_eq!(a.retrains, b.retrains, "{label}: retrain counts differ");
    assert_eq!(
        a.peak_in_flight, b.peak_in_flight,
        "{label}: peak in-flight differs"
    );
    assert_eq!(a.abandoned, b.abandoned, "{label}: abandonment differs");
    assert_eq!(a.cost, b.cost, "{label}: crowd cost differs");
}

/// The exhaustive crash-recovery fault injector.
///
/// [`CrashPlan::exhaustive`] drives a reference run to completion, then
/// for each wave barrier `w` (or only the barrier `crash_at` names, for
/// CI matrix cells) repeats the run on `suspend_on` with a kill at `w`:
/// the suspended leg's engine, oracle and workers are all dropped — only
/// the serialized snapshot bytes survive — and the run resumes on
/// `resume_on`, a deployment that may differ in transport, shard count,
/// thread count and fanout. Every recovered run must satisfy
/// [`assert_resumed_equivalent`] against the reference.
pub struct CrashPlan {
    /// Wave barriers the plan exercised (killed + resumed).
    pub barriers: usize,
    /// Waves the uninterrupted reference drove.
    pub reference_waves: usize,
}

impl CrashPlan {
    /// Run the plan. `make_oracle` must build a *fresh* oracle per leg
    /// whose answers are a pure function of the question (the harness
    /// kills the oracle with the rest of the suspended process);
    /// `crash_at = Some(w)` restricts the plan to that one barrier (the
    /// `DARWIN_TEST_CRASH_AT` matrix axis), `None` exercises every
    /// barrier of the reference.
    pub fn exhaustive<'o>(
        suspend_on: &Darwin<'_>,
        resume_on: &Darwin<'_>,
        seed: &Seed,
        make_oracle: &mut dyn FnMut() -> Box<dyn AsyncOracle + 'o>,
        crash_at: Option<u64>,
    ) -> CrashPlan {
        let mut reference_oracle = make_oracle();
        let reference = suspend_on.run_async(seed.clone(), &mut *reference_oracle);
        drop(reference_oracle);
        let reference_waves = reference.report.waves;

        let mut barriers = 0usize;
        for w in 1..=reference_waves as u64 {
            if crash_at.is_some_and(|only| only != w) {
                continue;
            }
            let mut suspend_oracle = make_oracle();
            let outcome = suspend_on.snapshot(seed.clone(), &mut *suspend_oracle, w);
            drop(suspend_oracle);
            let bytes = match outcome {
                SessionOutcome::Suspended(snap) => snap.to_bytes(),
                // The run can finish a wave early when the final fill
                // comes up empty; nothing left to kill at this barrier.
                SessionOutcome::Finished(done) => {
                    assert_resumed_equivalent(&reference, &done, "early finish");
                    continue;
                }
            };
            // Everything but `bytes` is gone — this is the crash.
            let mut resume_oracle = make_oracle();
            let resumed = resume_on
                .resume(&bytes, &mut *resume_oracle)
                .unwrap_or_else(|e| panic!("resume at barrier {w} failed: {e}"));
            assert_resumed_equivalent(&reference, &resumed, &format!("crash at barrier {w}"));
            barriers += 1;
        }
        CrashPlan {
            barriers,
            reference_waves,
        }
    }
}

/// A deterministically mutated snapshot image plus what the decoder owes
/// us for it.
pub struct Mutant {
    /// The mutated snapshot frame.
    pub bytes: Vec<u8>,
    /// What was done to it (for assertion messages).
    pub what: String,
    /// `true`: decode *must* return a clean error (structural damage —
    /// truncation, header tampering, checksum-visible flips). `false`:
    /// decode merely must not panic — a payload flip behind a freshly
    /// computed checksum can land in a score and produce a different but
    /// well-formed snapshot.
    pub must_reject: bool,
}

/// The deterministic corruption schedule for snapshot fuzzing: bit flips
/// over the raw frame (the checksum must catch every one), truncations at
/// fixed and seeded offsets, header length inflation (the decoder must
/// refuse *before* allocating), and — behind a recomputed checksum, so
/// the codec itself is on trial — payload truncations and interior
/// length-prefix inflation.
pub fn snapshot_mutants(frame: &[u8], seed: u64) -> Vec<Mutant> {
    let payload = parse_snapshot_frame(frame).expect("fuzz input must be a valid snapshot frame");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();

    // Frame truncations: fixed boundaries (empty, magic, header, headless
    // payload) plus seeded interior cuts.
    let mut cuts = vec![0, 1, 2, 3, 6, 7, frame.len() / 2, frame.len() - 1];
    for _ in 0..24 {
        cuts.push(rng.gen_range(0..frame.len()));
    }
    for cut in cuts {
        if cut < frame.len() {
            out.push(Mutant {
                bytes: frame[..cut].to_vec(),
                what: format!("frame truncated to {cut} of {} bytes", frame.len()),
                must_reject: true,
            });
        }
    }

    // Raw bit flips anywhere in the frame: header flips hit magic /
    // version / length validation, payload and trailer flips hit the
    // checksum. Every single one must be rejected.
    for _ in 0..96 {
        let at = rng.gen_range(0..frame.len());
        let bit = rng.gen_range(0..8u8);
        let mut bytes = frame.to_vec();
        bytes[at] ^= 1 << bit;
        out.push(Mutant {
            bytes,
            what: format!("bit {bit} flipped at frame offset {at}"),
            must_reject: true,
        });
    }

    // Header length inflation: the u32 payload length lives at offsets
    // 3..7. The decoder must refuse at the cap or the size mismatch —
    // before believing the length, long before allocating it.
    for inflated in [u32::MAX, u32::MAX / 2, (frame.len() as u32) << 8] {
        let mut bytes = frame.to_vec();
        bytes[3..7].copy_from_slice(&inflated.to_le_bytes());
        out.push(Mutant {
            bytes,
            what: format!("header length inflated to {inflated}"),
            must_reject: true,
        });
    }

    // Payload truncations re-framed with a *valid* checksum: the frame
    // layer passes, the codec's bounds checks are on trial. A strict
    // prefix of a field sequence can never be a complete encoding (the
    // codec also rejects trailing garbage), so all must fail cleanly.
    for _ in 0..24 {
        let cut = rng.gen_range(0..payload.len());
        out.push(Mutant {
            bytes: snapshot_frame(&payload[..cut]),
            what: format!(
                "payload truncated to {cut} of {} bytes, reframed",
                payload.len()
            ),
            must_reject: true,
        });
    }

    // Interior length-prefix inflation behind a valid checksum: overwrite
    // four payload bytes with a huge little-endian count. Wherever it
    // lands — a `Vec` prefix (the codec must refuse without allocating),
    // or plain data (may still decode) — the decoder must not panic.
    for _ in 0..24 {
        let at = rng.gen_range(0..payload.len().saturating_sub(4));
        let mut p = payload.clone();
        p[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        out.push(Mutant {
            bytes: snapshot_frame(&p),
            what: format!("length prefix inflated at payload offset {at}, reframed"),
            must_reject: false,
        });
    }

    // Seeded payload bit flips behind a valid checksum: pure decoder
    // robustness — must not panic, may or may not reject.
    for _ in 0..48 {
        let at = rng.gen_range(0..payload.len());
        let bit = rng.gen_range(0..8u8);
        let mut p = payload.clone();
        p[at] ^= 1 << bit;
        out.push(Mutant {
            bytes: snapshot_frame(&p),
            what: format!("bit {bit} flipped at payload offset {at}, reframed"),
            must_reject: false,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutants_are_deterministic_and_plentiful() {
        // Any valid frame works as fuzz input; an empty payload is one.
        let frame = snapshot_frame(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let a = snapshot_mutants(&frame, 9);
        let b = snapshot_mutants(&frame, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bytes, y.bytes, "schedule must be deterministic");
            assert_eq!(x.must_reject, y.must_reject);
        }
        assert!(a.len() > 150, "got {}", a.len());
        assert!(a.iter().any(|m| !m.must_reject));
    }
}

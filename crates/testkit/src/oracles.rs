//! Oracle test doubles.

use darwin_core::{GroundTruthOracle, Oracle};
use darwin_grammar::Heuristic;
use darwin_text::Corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Answers questions from a canned script, in order; once the script runs
/// out every further question gets `false`. For tests that need an exact,
/// selection-independent answer sequence (forcing a YES flood, an all-NO
/// stall, a specific YES/NO interleaving).
pub struct ScriptedOracle {
    script: Vec<bool>,
    at: usize,
}

impl ScriptedOracle {
    /// Answer from `script`, then `false` forever.
    pub fn new(script: impl IntoIterator<Item = bool>) -> ScriptedOracle {
        ScriptedOracle {
            script: script.into_iter().collect(),
            at: 0,
        }
    }

    /// Whether the script has answers left.
    pub fn exhausted(&self) -> bool {
        self.at >= self.script.len()
    }
}

impl Oracle for ScriptedOracle {
    fn ask(&mut self, _corpus: &Corpus, _rule: &Heuristic, _coverage: &[u32]) -> bool {
        let answer = self.script.get(self.at).copied().unwrap_or(false);
        self.at += 1;
        answer
    }

    fn queries(&self) -> usize {
        self.at
    }
}

/// A [`GroundTruthOracle`] whose verdict is flipped with probability
/// `flip_prob` (seeded, deterministic): the bluntest model of §4.5
/// annotator error, for tests that need a *controlled* error rate rather
/// than the sample-driven errors of `SampledAnnotatorOracle`. The verdict
/// itself is the real `GroundTruthOracle`'s — the double only adds the
/// flips, so the noise tests exercise exactly the oracle model the engine
/// runs against.
pub struct NoisyOracle<'a> {
    truth: GroundTruthOracle<'a>,
    labels: &'a [bool],
    flip_prob: f64,
    rng: StdRng,
    flips: usize,
}

impl<'a> NoisyOracle<'a> {
    /// Ground truth at precision bar `0.8`, flipping each verdict with
    /// probability `flip_prob` under `seed`.
    pub fn new(labels: &'a [bool], flip_prob: f64, seed: u64) -> NoisyOracle<'a> {
        NoisyOracle {
            truth: GroundTruthOracle::new(labels, 0.8),
            labels,
            flip_prob,
            rng: StdRng::seed_from_u64(seed),
            flips: 0,
        }
    }

    /// Override the precision bar (default 0.8).
    pub fn with_threshold(mut self, t: f64) -> Self {
        self.truth = GroundTruthOracle::new(self.labels, t);
        self
    }

    /// How many answers were flipped so far.
    pub fn flips(&self) -> usize {
        self.flips
    }
}

impl Oracle for NoisyOracle<'_> {
    fn ask(&mut self, corpus: &Corpus, rule: &Heuristic, coverage: &[u32]) -> bool {
        let truth = self.truth.ask(corpus, rule, coverage);
        if self.rng.gen_bool(self.flip_prob) {
            self.flips += 1;
            !truth
        } else {
            truth
        }
    }

    fn queries(&self) -> usize {
        self.truth.queries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::from_texts(["a b", "c d"])
    }

    #[test]
    fn scripted_oracle_replays_then_defaults_to_no() {
        let c = corpus();
        let r = Heuristic::phrase(&c, "a").unwrap();
        let mut o = ScriptedOracle::new([true, false, true]);
        assert!(o.ask(&c, &r, &[0]));
        assert!(!o.ask(&c, &r, &[0]));
        assert!(o.ask(&c, &r, &[0]));
        assert!(o.exhausted());
        assert!(!o.ask(&c, &r, &[0]), "post-script answers are NO");
        assert_eq!(o.queries(), 4);
    }

    #[test]
    fn noisy_oracle_flips_at_the_configured_rate() {
        let c = corpus();
        let r = Heuristic::phrase(&c, "a").unwrap();
        let labels = vec![true, false];
        let mut o = NoisyOracle::new(&labels, 0.25, 9);
        for _ in 0..400 {
            o.ask(&c, &r, &[0]);
        }
        let rate = o.flips() as f64 / 400.0;
        assert!((0.15..0.35).contains(&rate), "flip rate {rate}");

        let mut clean = NoisyOracle::new(&labels, 0.0, 9);
        assert!(clean.ask(&c, &r, &[0]), "precise rule, no noise");
        assert!(!clean.ask(&c, &r, &[1]), "imprecise rule, no noise");
        assert!(!clean.ask(&c, &r, &[]), "empty coverage is never precise");
        assert_eq!(clean.flips(), 0);
    }

    #[test]
    fn noisy_oracle_is_deterministic_per_seed() {
        let c = corpus();
        let r = Heuristic::phrase(&c, "a").unwrap();
        let labels = vec![true, false];
        let run = |seed| {
            let mut o = NoisyOracle::new(&labels, 0.5, seed);
            (0..32).map(|_| o.ask(&c, &r, &[0])).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds explore different flips");
    }
}

//! Trace-capture assertions shared by the equivalence suites.

use darwin_core::candidates::{generate_hierarchy_pooled, generate_hierarchy_scored};
use darwin_core::{FrontierPool, RunResult};
use darwin_index::{IdSet, IndexSet};

/// Assert two runs are byte-for-byte equivalent: same question sequence,
/// same answers, same per-step `P` growth, same final positives and
/// scores. The backbone of every execution-layer equivalence claim
/// (incremental vs rescan, shard counts, thread counts, async batch 1 vs
/// the synchronous loop).
pub fn assert_equivalent(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(
        a.trace.len(),
        b.trace.len(),
        "{label}: question counts differ"
    );
    for (x, y) in a.trace.iter().zip(&b.trace) {
        assert_eq!(
            x.rule, y.rule,
            "{label}: question {} asked a different rule",
            x.question
        );
        assert_eq!(
            x.answer, y.answer,
            "{label}: question {} got a different answer",
            x.question
        );
        assert_eq!(
            x.new_positive_ids, y.new_positive_ids,
            "{label}: question {} grew P differently",
            x.question
        );
    }
    assert_eq!(
        a.positives, b.positives,
        "{label}: final positive sets differ"
    );
    assert_eq!(a.scores, b.scores, "{label}: final scores differ");
}

/// Assert two runs land in the same *final* state — positives, scores and
/// the accepted rule set as a set — without constraining per-step trace
/// order. This is the async loop's arrival-schedule invariance: answers of
/// one wave may apply in any order (reordering trace steps within the
/// wave), but the drained wave always leaves identical state.
pub fn assert_same_final(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(
        a.positives, b.positives,
        "{label}: final positive sets differ"
    );
    assert_eq!(a.scores, b.scores, "{label}: final scores differ");
    assert_eq!(
        a.trace.len(),
        b.trace.len(),
        "{label}: question counts differ"
    );
    let rules = |r: &RunResult| {
        let mut v: Vec<String> = r.trace.iter().map(|t| format!("{:?}", t.rule)).collect();
        v.sort();
        v
    };
    assert_eq!(rules(a), rules(b), "{label}: question sets differ");
    let accepted = |r: &RunResult| {
        let mut v: Vec<String> = r.accepted.iter().map(|h| format!("{h:?}")).collect();
        v.sort();
        v
    };
    assert_eq!(accepted(a), accepted(b), "{label}: accepted sets differ");
}

/// Assert a [`FrontierPool`]-backed hierarchy regeneration reproduces the
/// from-scratch walk exactly: same rule pool, same candidate statistics.
pub fn assert_same_pool(idx: &IndexSet, p: &IdSet, k: usize, pool: &mut FrontierPool, label: &str) {
    let (pooled_h, pooled_c) = generate_hierarchy_pooled(idx, p, k, usize::MAX, pool);
    let (scratch_h, scratch_c) = generate_hierarchy_scored(idx, p, k, usize::MAX);
    assert_eq!(
        pooled_h.rules(),
        scratch_h.rules(),
        "{label}: rule pools differ"
    );
    assert_eq!(
        pooled_c.len(),
        scratch_c.len(),
        "{label}: candidate counts differ"
    );
    for (a, b) in pooled_c.iter().zip(&scratch_c) {
        assert_eq!(
            (a.rule, a.overlap, a.count),
            (b.rule, b.overlap, b.count),
            "{label}: candidate statistics differ"
        );
    }
}

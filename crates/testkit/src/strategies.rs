//! Proptest generators for random corpora, shared by the property suites.
//!
//! The alphabet is deliberately tiny so generated sentences repeat enough
//! n-grams for the heuristic index to have real structure (rules with
//! multi-sentence coverage, parent/child containment).

use proptest::prelude::*;

/// Random word from the suite's small alphabet.
pub fn word() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "the", "a", "shuttle", "bus", "airport", "hotel", "to", "from", "best", "way", "get",
        "order", "pizza", "is", "there", "caused", "by", "storm", "fire", "composer", "wrote",
    ])
    .prop_map(str::to_string)
}

/// Random sentence of 1–11 alphabet words.
pub fn sentence() -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 1..12).prop_map(|ws| ws.join(" "))
}

/// Random corpus of 1–39 sentences.
pub fn corpus_texts() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(sentence(), 1..40)
}

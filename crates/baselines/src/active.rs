//! Active learning baseline (paper §4.4).
//!
//! "AL improves its performance by selecting the instance with the highest
//! entropy and asking the oracle for its label. It then re-trains the
//! classifier using the new label." Each instance label costs one oracle
//! question — the same budget currency as Darwin's rule questions, which
//! is the point of the comparison: one YES about a rule yields hundreds of
//! labels, one instance query yields one.

use darwin_classifier::{ClassifierKind, TextClassifier};
use darwin_eval::Curve;
use darwin_text::{Corpus, Embeddings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of an AL run: the label-budget F1 curve plus final scores.
pub struct ActiveLearningResult {
    pub f1_curve: Curve,
    pub scores: Vec<f32>,
    pub labeled: Vec<u32>,
}

/// Entropy-based uncertainty sampling.
pub struct ActiveLearning {
    pub classifier: ClassifierKind,
    /// Retrain (and measure F1) every this many acquired labels.
    pub retrain_every: usize,
    pub seed: u64,
}

impl Default for ActiveLearning {
    fn default() -> Self {
        ActiveLearning {
            classifier: ClassifierKind::logreg(),
            retrain_every: 5,
            seed: 42,
        }
    }
}

impl ActiveLearning {
    /// Run with `budget` instance queries, starting from `seed_ids`
    /// (pre-labeled for free, mirroring how Darwin gets a seed rule).
    /// `labels` is the ground truth used both to answer instance queries
    /// and to measure F1.
    pub fn run(
        &self,
        corpus: &Corpus,
        emb: &Embeddings,
        seed_ids: &[u32],
        labels: &[bool],
        budget: usize,
    ) -> ActiveLearningResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut labeled: Vec<u32> = seed_ids.to_vec();
        let mut clf = self.classifier.build(emb, self.seed);
        let mut scores: Vec<f32> = vec![0.5; corpus.len()];
        let mut f1_curve = Curve::new("AL");

        let retrain =
            |labeled: &Vec<u32>, clf: &mut Box<dyn TextClassifier>, scores: &mut Vec<f32>| {
                let pos: Vec<u32> = labeled
                    .iter()
                    .copied()
                    .filter(|&i| labels[i as usize])
                    .collect();
                let neg: Vec<u32> = labeled
                    .iter()
                    .copied()
                    .filter(|&i| !labels[i as usize])
                    .collect();
                if pos.is_empty() || neg.is_empty() {
                    return;
                }
                clf.fit(corpus, emb, &pos, &neg);
                clf.predict_all(corpus, emb, scores);
            };
        retrain(&labeled, &mut clf, &mut scores);

        for q in 1..=budget {
            // Highest-entropy (closest to 0.5) unlabeled instance; random
            // tie-breaking among near-ties to avoid degenerate loops.
            let mut best: Option<(u32, f32)> = None;
            for id in 0..corpus.len() as u32 {
                if labeled.contains(&id) {
                    continue;
                }
                let margin = (scores[id as usize] - 0.5).abs() + rng.gen_range(0.0f32..1e-4);
                if best.is_none_or(|(_, m)| margin < m) {
                    best = Some((id, margin));
                }
            }
            let Some((pick, _)) = best else { break };
            labeled.push(pick); // the oracle reveals labels[pick]

            if q % self.retrain_every == 0 || q == budget {
                retrain(&labeled, &mut clf, &mut scores);
                f1_curve.push(q, darwin_eval::f1_score(&scores, labels, 0.5));
            }
        }

        ActiveLearningResult {
            f1_curve,
            scores,
            labeled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::embed::EmbedConfig;

    fn fixture() -> (Corpus, Vec<bool>) {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            texts.push(format!("the shuttle to the airport leaves at {i}"));
            labels.push(true);
            texts.push(format!("order a pizza with {i} toppings"));
            labels.push(false);
            texts.push(format!("the pool opens at {i}"));
            labels.push(false);
        }
        (Corpus::from_texts(texts.iter()), labels)
    }

    #[test]
    fn improves_with_budget() {
        let (corpus, labels) = fixture();
        let emb = Embeddings::train(
            &corpus,
            &EmbedConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let al = ActiveLearning::default();
        let seed: Vec<u32> = vec![0, 1, 3, 4]; // one pos, three neg
        let res = al.run(&corpus, &emb, &seed, &labels, 40);
        assert!(!res.f1_curve.is_empty());
        assert!(
            res.f1_curve.last() > 0.6,
            "final F1 {}",
            res.f1_curve.last()
        );
        assert_eq!(res.labeled.len(), seed.len() + 40);
    }

    #[test]
    fn respects_budget_and_never_relabels() {
        let (corpus, labels) = fixture();
        let emb = Embeddings::train(
            &corpus,
            &EmbedConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let al = ActiveLearning::default();
        let res = al.run(&corpus, &emb, &[0, 1], &labels, 10);
        let mut seen = std::collections::HashSet::new();
        for &id in &res.labeled {
            assert!(seen.insert(id), "instance {id} labeled twice");
        }
    }
}

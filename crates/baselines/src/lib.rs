//! Baselines for the Darwin evaluation (paper §4.1 "Baselines").
//!
//! * [`snuba::Snuba`] — automated heuristic mining from a labeled subset
//!   (Varma & Ré, 2019): candidate rules are generated *only* from the
//!   labeled sample, scored on it, and selected as a diverse committee.
//!   Its defining limitation — no generalization to pattern families
//!   absent from the sample — is what Figures 7 and 8 measure.
//! * [`selectors::HighP`] / [`selectors::HighC`] — degenerate Darwin
//!   variants: query the rule with the highest expected precision /
//!   highest raw coverage (§4.3).
//! * [`active::ActiveLearning`] — entropy-based uncertainty sampling over
//!   single instances (§4.4).
//! * [`keyword::KeywordSampling`] — filter the corpus by 10 task keywords
//!   and label random instances from the filtered pool (§4.4).

pub mod active;
pub mod keyword;
pub mod selectors;
pub mod snuba;

pub use active::{ActiveLearning, ActiveLearningResult};
pub use keyword::{KeywordSampling, KeywordSamplingResult};
pub use selectors::{HighC, HighP};
pub use snuba::{Snuba, SnubaConfig, SnubaResult};

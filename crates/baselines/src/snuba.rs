//! mini-Snuba: automatic heuristic generation from a labeled subset.
//!
//! Faithful to the parts of Snuba the comparison exercises (paper §4.2):
//!
//! 1. candidate heuristics are n-grams (n ≤ 3) occurring in the *labeled
//!    positives* — Snuba generates heuristics from the labeled set's
//!    features only, which is exactly why it cannot discover families with
//!    no evidence in the sample;
//! 2. each candidate is scored by F1 on the labeled subset;
//! 3. a committee is selected greedily, trading quality against diversity
//!    (penalizing Jaccard overlap with already-selected rules on the
//!    labeled set), until no candidate clears the quality bar.
//!
//! The returned rules are then applied to the full corpus; coverage of the
//! union is the Figure 7/8 metric.

use darwin_grammar::{Heuristic, PhrasePattern};
use darwin_index::fx::{FxHashMap, FxHashSet};
use darwin_index::IdSet;
use darwin_text::{Corpus, Sym};

/// Committee-selection parameters.
#[derive(Clone, Debug)]
pub struct SnubaConfig {
    /// Maximum n-gram length for candidate heuristics.
    pub max_ngram: usize,
    /// Maximum committee size.
    pub max_rules: usize,
    /// Minimum F1 (on the labeled subset) for a rule to be considered.
    pub min_f1: f64,
    /// Weight of the diversity penalty (0 = pure quality).
    pub diversity: f64,
}

impl Default for SnubaConfig {
    fn default() -> Self {
        SnubaConfig {
            max_ngram: 3,
            max_rules: 60,
            min_f1: 0.25,
            diversity: 0.4,
        }
    }
}

/// The outcome: the committee plus its corpus-wide coverage.
pub struct SnubaResult {
    pub rules: Vec<Heuristic>,
    /// Union of the rules' coverage over the full corpus, sorted.
    pub positives: Vec<u32>,
}

/// The mini-Snuba rule miner.
pub struct Snuba {
    cfg: SnubaConfig,
}

impl Snuba {
    pub fn new(cfg: SnubaConfig) -> Snuba {
        Snuba { cfg }
    }

    /// Mine rules from `labeled` ids with ground-truth `labels` (the full
    /// label vector — only the labeled ids are consulted), then apply them
    /// corpus-wide.
    pub fn run(&self, corpus: &Corpus, labeled: &[u32], labels: &[bool]) -> SnubaResult {
        let pos: Vec<u32> = labeled
            .iter()
            .copied()
            .filter(|&i| labels[i as usize])
            .collect();
        if pos.is_empty() {
            return SnubaResult {
                rules: Vec::new(),
                positives: Vec::new(),
            };
        }
        let labeled_set: Vec<u32> = labeled.to_vec();

        // 1. Candidates: n-grams from labeled positives.
        let mut cand_set: FxHashSet<Vec<Sym>> = FxHashSet::default();
        for &id in &pos {
            let toks = &corpus.sentence(id).tokens;
            for start in 0..toks.len() {
                for len in 1..=self.cfg.max_ngram.min(toks.len() - start) {
                    cand_set.insert(toks[start..start + len].to_vec());
                }
            }
        }

        // 2. Score by F1 on the labeled subset.
        struct Scored {
            gram: Vec<Sym>,
            f1: f64,
            matches: Vec<u32>, // within the labeled subset
        }
        let mut scored: Vec<Scored> = Vec::with_capacity(cand_set.len());
        let total_pos = pos.len() as f64;
        for gram in cand_set {
            let pat = PhrasePattern::from_tokens(gram.iter().copied());
            let matches: Vec<u32> = labeled_set
                .iter()
                .copied()
                .filter(|&i| pat.matches(corpus.sentence(i)))
                .collect();
            if matches.is_empty() {
                continue;
            }
            let tp = matches.iter().filter(|&&i| labels[i as usize]).count() as f64;
            let precision = tp / matches.len() as f64;
            let recall = tp / total_pos;
            let f1 = if precision + recall == 0.0 {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            };
            if f1 >= self.cfg.min_f1 {
                scored.push(Scored { gram, f1, matches });
            }
        }

        // 3. Greedy diverse committee.
        let mut committee: Vec<Scored> = Vec::new();
        let mut chosen_grams: FxHashSet<Vec<Sym>> = FxHashSet::default();
        while committee.len() < self.cfg.max_rules {
            let mut best: Option<(usize, f64)> = None;
            for (i, s) in scored.iter().enumerate() {
                if chosen_grams.contains(&s.gram) {
                    continue;
                }
                let overlap = committee
                    .iter()
                    .map(|c| jaccard(&c.matches, &s.matches))
                    .fold(0.0f64, f64::max);
                let value = s.f1 * (1.0 - self.cfg.diversity * overlap);
                if best.is_none_or(|(_, bv)| value > bv) {
                    best = Some((i, value));
                }
            }
            let Some((i, value)) = best else { break };
            if value < self.cfg.min_f1 * 0.5 {
                break; // remaining candidates are dominated or redundant
            }
            chosen_grams.insert(scored[i].gram.clone());
            committee.push(Scored {
                gram: scored[i].gram.clone(),
                f1: scored[i].f1,
                matches: scored[i].matches.clone(),
            });
        }

        // 4. Apply corpus-wide.
        let rules: Vec<Heuristic> = committee
            .iter()
            .map(|s| Heuristic::Phrase(PhrasePattern::from_tokens(s.gram.iter().copied())))
            .collect();
        let mut union = IdSet::with_universe(corpus.len());
        for r in &rules {
            for id in r.coverage(corpus) {
                union.insert(id);
            }
        }
        SnubaResult {
            rules,
            positives: union.iter().collect(),
        }
    }
}

fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let sa: FxHashMap<u32, ()> = a.iter().map(|&x| (x, ())).collect();
    let inter = b.iter().filter(|x| sa.contains_key(x)).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_datasets::directions;

    #[test]
    fn finds_rules_present_in_seed() {
        let d = directions::generate(4000, 3);
        // A big random sample will contain shuttle sentences.
        let sample = d.seed_sample(1500, 1);
        let result = Snuba::new(SnubaConfig::default()).run(&d.corpus, &sample, &d.labels);
        assert!(!result.rules.is_empty());
        let vocab = d.corpus.vocab();
        let texts: Vec<String> = result.rules.iter().map(|r| r.display(vocab)).collect();
        // Some transport-ish signature should be mined.
        assert!(
            texts.iter().any(|t| t.contains("shuttle")
                || t.contains("get to")
                || t.contains("bart")
                || t.contains("bus")),
            "rules: {texts:?}"
        );
    }

    #[test]
    fn cannot_discover_families_absent_from_seed() {
        let d = directions::generate(6000, 3);
        let biased = d.biased_seed_sample(800, "shuttle", 2);
        let result = Snuba::new(SnubaConfig::default()).run(&d.corpus, &biased, &d.labels);
        let shuttle = d.corpus.vocab().get("shuttle").unwrap();
        for rule in &result.rules {
            if let Heuristic::Phrase(p) = rule {
                assert!(
                    !p.tokens().any(|t| t == shuttle),
                    "Snuba mined 'shuttle' without seeing it"
                );
            }
        }
        // Its union therefore misses most shuttle positives.
        let shuttle_pos: Vec<u32> = (0..d.len() as u32)
            .filter(|&i| d.labels[i as usize] && d.corpus.sentence(i).tokens.contains(&shuttle))
            .collect();
        let covered = shuttle_pos
            .iter()
            .filter(|id| result.positives.binary_search(id).is_ok())
            .count();
        // Some shuttle positives are reachable through shared context
        // n-grams ("is there a", "to the airport"), but without the token
        // itself Snuba cannot cover the family fully.
        assert!(
            (covered as f64) < 0.9 * shuttle_pos.len() as f64,
            "covered {covered}/{} shuttle positives",
            shuttle_pos.len()
        );
    }

    #[test]
    fn empty_or_negative_only_seed_yields_nothing() {
        let d = directions::generate(1000, 3);
        let negatives: Vec<u32> = (0..d.len() as u32)
            .filter(|&i| !d.labels[i as usize])
            .take(50)
            .collect();
        let r = Snuba::new(SnubaConfig::default()).run(&d.corpus, &negatives, &d.labels);
        assert!(r.rules.is_empty());
        assert!(r.positives.is_empty());
        let r2 = Snuba::new(SnubaConfig::default()).run(&d.corpus, &[], &d.labels);
        assert!(r2.rules.is_empty());
    }

    #[test]
    fn more_seed_data_does_not_hurt_coverage() {
        let d = directions::generate(5000, 3);
        let small = d.seed_sample(100, 1);
        let large = d.seed_sample(2500, 1);
        let snuba = Snuba::new(SnubaConfig::default());
        let cov = |ids: &[u32]| darwin_eval::coverage(ids, &d.labels);
        let c_small = cov(&snuba.run(&d.corpus, &small, &d.labels).positives);
        let c_large = cov(&snuba.run(&d.corpus, &large, &d.labels).positives);
        // Allow sampling noise; large seeds must not be dramatically worse.
        assert!(
            c_large + 0.12 >= c_small,
            "small {c_small} vs large {c_large}"
        );
    }
}

//! Keyword Sampling baseline (paper §4.4).
//!
//! "We asked annotators to provide 10 distinct keywords as a heuristic to
//! filter the dataset. The KS technique randomly samples instances from
//! the filtered dataset and asks for its label." Labels train the same
//! classifier as every other technique; F1 is measured per budget step.

use darwin_classifier::ClassifierKind;
use darwin_eval::Curve;
use darwin_text::{Corpus, Embeddings};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a KS run.
pub struct KeywordSamplingResult {
    pub f1_curve: Curve,
    pub scores: Vec<f32>,
    pub labeled: Vec<u32>,
    /// Size of the keyword-filtered pool.
    pub pool_size: usize,
}

/// The keyword-filtered random labeling loop.
pub struct KeywordSampling {
    pub classifier: ClassifierKind,
    pub retrain_every: usize,
    pub seed: u64,
}

impl Default for KeywordSampling {
    fn default() -> Self {
        KeywordSampling {
            classifier: ClassifierKind::logreg(),
            retrain_every: 5,
            seed: 42,
        }
    }
}

impl KeywordSampling {
    pub fn run(
        &self,
        corpus: &Corpus,
        emb: &Embeddings,
        keywords: &[&str],
        labels: &[bool],
        budget: usize,
    ) -> KeywordSamplingResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let keys: Vec<_> = keywords
            .iter()
            .filter_map(|k| corpus.vocab().get(k))
            .collect();
        let mut pool: Vec<u32> = (0..corpus.len() as u32)
            .filter(|&id| corpus.sentence(id).tokens.iter().any(|t| keys.contains(t)))
            .collect();
        let pool_size = pool.len();
        pool.shuffle(&mut rng);

        let mut labeled: Vec<u32> = Vec::new();
        let mut clf = self.classifier.build(emb, self.seed);
        let mut scores = vec![0.5f32; corpus.len()];
        let mut f1_curve = Curve::new("KS");

        for (q, &pick) in pool.iter().take(budget).enumerate() {
            labeled.push(pick);
            let q = q + 1;
            if q % self.retrain_every == 0 || q == budget.min(pool.len()) {
                let pos: Vec<u32> = labeled
                    .iter()
                    .copied()
                    .filter(|&i| labels[i as usize])
                    .collect();
                let neg: Vec<u32> = labeled
                    .iter()
                    .copied()
                    .filter(|&i| !labels[i as usize])
                    .collect();
                if !pos.is_empty() && !neg.is_empty() {
                    clf.fit(corpus, emb, &pos, &neg);
                    clf.predict_all(corpus, emb, &mut scores);
                }
                f1_curve.push(q, darwin_eval::f1_score(&scores, labels, 0.5));
            }
        }

        KeywordSamplingResult {
            f1_curve,
            scores,
            labeled,
            pool_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::embed::EmbedConfig;

    fn fixture() -> (Corpus, Vec<bool>) {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..25 {
            texts.push(format!("the shuttle to the airport leaves at {i}"));
            labels.push(true);
            texts.push(format!("take the bus to the airport at {i}"));
            labels.push(true);
            texts.push(format!("order a pizza with {i} toppings"));
            labels.push(false);
            texts.push(format!("the pool opens at {i}"));
            labels.push(false);
        }
        (Corpus::from_texts(texts.iter()), labels)
    }

    #[test]
    fn filters_pool_by_keywords() {
        let (corpus, labels) = fixture();
        let emb = Embeddings::train(
            &corpus,
            &EmbedConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let ks = KeywordSampling::default();
        let res = ks.run(&corpus, &emb, &["shuttle", "bus", "airport"], &labels, 30);
        assert_eq!(
            res.pool_size, 50,
            "only transport sentences pass the filter"
        );
        for &id in &res.labeled {
            let text = corpus.text(id);
            assert!(
                text.contains("shuttle") || text.contains("bus") || text.contains("airport"),
                "{text}"
            );
        }
    }

    #[test]
    fn keyword_bias_limits_but_trains_a_classifier() {
        let (corpus, labels) = fixture();
        let emb = Embeddings::train(
            &corpus,
            &EmbedConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let ks = KeywordSampling::default();
        let res = ks.run(&corpus, &emb, &["shuttle", "pizza"], &labels, 40);
        assert!(!res.f1_curve.is_empty());
        // With one pos and one neg keyword it can learn something.
        assert!(res.f1_curve.last() > 0.3, "F1 {}", res.f1_curve.last());
    }

    #[test]
    fn unknown_keywords_yield_empty_pool() {
        let (corpus, labels) = fixture();
        let emb = Embeddings::train(
            &corpus,
            &EmbedConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let ks = KeywordSampling::default();
        let res = ks.run(&corpus, &emb, &["zeppelin"], &labels, 10);
        assert_eq!(res.pool_size, 0);
        assert!(res.labeled.is_empty());
    }
}

//! HighP and HighC: the degenerate selection strategies of §4.3.
//!
//! Both plug into the Darwin pipeline through [`darwin_core::Strategy`],
//! replacing the hierarchy traversal while keeping everything else
//! (candidate generation, classifier, oracle protocol) identical — the
//! comparison isolates the selection policy.

use darwin_core::traversal::Ctx;
use darwin_core::Strategy;
use darwin_index::RuleRef;

/// Query the rule with the highest expected precision according to the
/// classifier (mean score over its new instances). The paper observes it
/// "identifies heuristics with very small coverage as its candidates".
pub struct HighP;

impl Strategy for HighP {
    fn name(&self) -> &'static str {
        "HighP"
    }

    fn select(&mut self, ctx: &Ctx) -> Option<RuleRef> {
        ctx.most_promising(ctx.hierarchy.rules().iter().copied())
    }

    fn feedback(&mut self, _rule: RuleRef, _answer: bool, _ctx: &Ctx) {}
}

/// Query the rule with maximum raw coverage, ignoring expected precision.
/// "HighC's performance was quite poor as most of its suggested rules are
/// rejected by the oracle" (paper footnote 10).
pub struct HighC;

impl Strategy for HighC {
    fn name(&self) -> &'static str {
        "HighC"
    }

    fn select(&mut self, ctx: &Ctx) -> Option<RuleRef> {
        ctx.hierarchy
            .rules()
            .iter()
            .copied()
            .filter(|&r| r != RuleRef::Root && !ctx.queried.contains(&r))
            .filter(|&r| ctx.benefit(r).new_instances > 0)
            .max_by_key(|&r| (ctx.index.count(r), std::cmp::Reverse(r)))
    }

    fn feedback(&mut self, _rule: RuleRef, _answer: bool, _ctx: &Ctx) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_core::{Darwin, DarwinConfig, GroundTruthOracle, Seed};
    use darwin_grammar::Heuristic;
    use darwin_index::{IndexConfig, IndexSet};
    use darwin_text::Corpus;

    fn fixture() -> (Corpus, Vec<bool>) {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            texts.push(format!("is there a shuttle to the airport at {i}"));
            labels.push(true);
            texts.push(format!("is there a bus to the airport at {i}"));
            labels.push(true);
        }
        for i in 0..40 {
            texts.push(format!("order a pizza with {i} toppings tonight"));
            labels.push(false);
            texts.push(format!("the pool opens at {i} for guests"));
            labels.push(false);
        }
        (Corpus::from_texts(texts.iter()), labels)
    }

    #[test]
    fn highp_runs_and_asks_tight_rules() {
        let (corpus, labels) = fixture();
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let darwin = Darwin::new(&corpus, &index, DarwinConfig::fast().with_budget(8));
        let seed = Seed::Rule(Heuristic::phrase(&corpus, "shuttle to the airport").unwrap());
        let mut oracle = GroundTruthOracle::new(&labels, 0.8);
        let run = darwin.run_with(seed, &mut oracle, |_| Box::new(HighP));
        assert!(run.questions() > 0);
        assert!(run.positives.len() >= 10);
    }

    #[test]
    fn highc_asks_broadest_rules_and_gets_rejected() {
        let (corpus, labels) = fixture();
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let darwin = Darwin::new(&corpus, &index, DarwinConfig::fast().with_budget(8));
        let seed = Seed::Rule(Heuristic::phrase(&corpus, "shuttle to the airport").unwrap());
        let mut oracle = GroundTruthOracle::new(&labels, 0.8);
        let run = darwin.run_with(seed, &mut oracle, |_| Box::new(HighC));
        // The broadest rules ("the", "a", POS terminals) are noisy: HighC
        // gets mostly NO answers.
        let rejected = run.trace.iter().filter(|t| !t.answer).count();
        assert!(
            rejected * 2 >= run.trace.len(),
            "HighC should be rejected often: {}/{}",
            rejected,
            run.trace.len()
        );
    }

    #[test]
    fn highc_picks_highest_count_first() {
        let (corpus, labels) = fixture();
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        // Disable the coverage-fraction guard: this test checks HighC's raw
        // behaviour of grabbing the broadest rule available.
        let cfg = DarwinConfig {
            max_coverage_frac: 1.0,
            ..DarwinConfig::fast().with_budget(1)
        };
        let darwin = Darwin::new(&corpus, &index, cfg);
        let seed = Seed::Rule(Heuristic::phrase(&corpus, "shuttle to the airport").unwrap());
        let mut oracle = GroundTruthOracle::new(&labels, 0.8);
        let run = darwin.run_with(seed, &mut oracle, |_| Box::new(HighC));
        let first = &run.trace[0];
        let cov = first.rule.coverage(&corpus).len();
        assert!(cov >= 40, "first HighC pick should be broad, got {cov}");
    }
}

//! Unified index facade consumed by the Darwin pipeline.

use crate::inverted::InvertedIndex;
use crate::phrase_index::{NodeId, PhraseIndex};
use crate::sketch::TreeSketchConfig;
use crate::tree_index::{PatId, TreeIndex};
use darwin_grammar::{Heuristic, PhrasePattern};
use darwin_text::Corpus;
use std::sync::OnceLock;

/// A handle to a heuristic materialized in the index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum RuleRef {
    /// The `*` heuristic matching every sentence (Algorithm 2 starts here).
    Root,
    /// A node of the TokensRegex trie.
    Phrase(NodeId),
    /// A pattern of the TreeMatch table.
    Tree(PatId),
}

/// Index construction parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexConfig {
    /// Maximum phrase length (the paper sets the maximum derivation depth
    /// to 10 for generating derivation sketches, §4.1).
    pub max_phrase_len: usize,
    /// Drop phrases occurring in fewer sentences than this (1 = keep all).
    pub min_count: usize,
    /// Also build the TreeMatch pattern index.
    pub enable_tree: bool,
    /// TreeMatch enumeration bounds.
    pub tree: TreeSketchConfig,
    /// Worker threads for construction.
    pub threads: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            max_phrase_len: 10,
            min_count: 2,
            enable_tree: true,
            tree: TreeSketchConfig::default(),
            threads: 1,
        }
    }
}

impl IndexConfig {
    /// A configuration suited to unit tests and tiny corpora: short
    /// phrases, no pruning.
    pub fn small() -> IndexConfig {
        IndexConfig {
            max_phrase_len: 4,
            min_count: 1,
            ..Default::default()
        }
    }

    /// Phrase-only indexing (TreeMatch off).
    pub fn phrase_only() -> IndexConfig {
        IndexConfig {
            enable_tree: false,
            ..Default::default()
        }
    }
}

/// Why [`IndexSet::append`] refused to grow the index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppendError {
    /// The index was built with `min_count > 1`: pruning renumbers trie
    /// nodes, so a delta-grown index could not reproduce the rule
    /// numbering of a scratch build on the grown corpus — and numbering
    /// is output-affecting (the best-first walk tie-breaks on dense ids).
    PrunedIndex {
        /// The offending `min_count` the index was built with.
        min_count: usize,
    },
    /// The corpus passed in is shorter than the indexed prefix — it is not
    /// a grown version of the corpus this index was built over.
    CorpusBehindIndex {
        /// Sentences in the corpus handed to `append`.
        corpus: usize,
        /// Sentences already indexed.
        indexed: usize,
    },
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppendError::PrunedIndex { min_count } => write!(
                f,
                "cannot append to a pruned index (min_count = {min_count}): \
                 pruning renumbers rules; rebuild instead"
            ),
            AppendError::CorpusBehindIndex { corpus, indexed } => write!(
                f,
                "corpus has {corpus} sentences but {indexed} are already indexed"
            ),
        }
    }
}

impl std::error::Error for AppendError {}

/// What [`IndexSet::append`] changed — the numbers a dense-keyed side
/// table needs to remap itself across the append.
///
/// Appending keeps every `RuleRef` stable (trie nodes and tree patterns
/// are numbered in first-occurrence order), but the **dense** numbering
/// lays phrases out before trees, so new phrase nodes shift every tree
/// rule's dense id up by `phrase_after - phrase_before`. A scratch build
/// on the grown corpus shifts identically — the delta and rebuild paths
/// agree — but any table keyed by pre-append dense ids must move its tree
/// slots by that amount.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppendDelta {
    /// Sentences folded in.
    pub sentences: usize,
    /// `phrase_index().len()` before the append (trie nodes incl. root).
    pub phrase_before: usize,
    /// `phrase_index().len()` after.
    pub phrase_after: usize,
    /// [`IndexSet::dense_rules`] before the append.
    pub dense_before: usize,
    /// [`IndexSet::dense_rules`] after.
    pub dense_after: usize,
}

impl AppendDelta {
    /// How far tree rules' dense ids moved.
    pub fn tree_shift(&self) -> usize {
        self.phrase_after - self.phrase_before
    }
}

/// The combined heuristic index: one sub-index per registered grammar.
pub struct IndexSet {
    phrase: PhraseIndex,
    tree: Option<TreeIndex>,
    cfg: IndexConfig,
    all_ids: Vec<u32>,
    /// Sentence → rules transpose, built on first use (the question loop
    /// needs it; index-only workloads never pay for it).
    inverted: OnceLock<InvertedIndex>,
}

impl IndexSet {
    /// Build all enabled sub-indexes over `corpus`.
    pub fn build(corpus: &Corpus, cfg: &IndexConfig) -> IndexSet {
        let mut phrase = if cfg.threads > 1 {
            PhraseIndex::build_parallel(corpus, cfg.max_phrase_len, cfg.threads)
        } else {
            PhraseIndex::build(corpus, cfg.max_phrase_len)
        };
        if cfg.min_count > 1 {
            phrase.prune(cfg.min_count);
        }
        let tree = cfg.enable_tree.then(|| TreeIndex::build(corpus, &cfg.tree));
        let all_ids = (0..corpus.len() as u32).collect();
        IndexSet {
            phrase,
            tree,
            cfg: cfg.clone(),
            all_ids,
            inverted: OnceLock::new(),
        }
    }

    /// The recipe this index was built with. Construction is
    /// deterministic given `(corpus, config)`, so shipping this config
    /// plus the corpus texts lets a remote worker rebuild an index with
    /// identical [`RuleRef`] numbering.
    pub fn config(&self) -> &IndexConfig {
        &self.cfg
    }

    /// Grow the index over sentences appended to `corpus` since the build
    /// (ids `self.sentences()..corpus.len()`). Returns how many sentences
    /// were folded in.
    ///
    /// The delta-grown index is **bit-identical** to a scratch
    /// [`IndexSet::build`] on the grown corpus: trie nodes and tree
    /// patterns are numbered in first-occurrence order either way, the
    /// tree hierarchy is recomputed from the full pattern table by
    /// `finalize`, and a cached inverted transpose is extended in place
    /// (sound because new rules can only cover new sentences — see
    /// [`InvertedIndex::extend_for_append`]). That identity is what lets
    /// streaming sessions prove append ≡ rebuild downstream.
    ///
    /// Refused for pruned indexes (`min_count > 1`): pruning renumbers
    /// nodes, so delta growth could not match a scratch rebuild.
    ///
    /// The returned [`AppendDelta`] records how the dense numbering moved;
    /// side tables keyed by dense ids (the frontier memo) remap with it.
    pub fn append(&mut self, corpus: &Corpus) -> Result<AppendDelta, AppendError> {
        self.append_with_threads(corpus, 1)
    }

    /// [`IndexSet::append`] with the tree-sketch enumeration of the new
    /// batch fanned out over `threads` workers ([`crate::sketch::sketch_batch`]).
    /// Per-sentence enumeration is pure and the per-sentence key lists are
    /// interned in sentence order, so the result is bit-identical to the
    /// serial append — and therefore to a scratch build — for any thread
    /// count.
    pub fn append_with_threads(
        &mut self,
        corpus: &Corpus,
        threads: usize,
    ) -> Result<AppendDelta, AppendError> {
        if self.cfg.min_count > 1 {
            return Err(AppendError::PrunedIndex {
                min_count: self.cfg.min_count,
            });
        }
        let old_n = self.all_ids.len();
        if corpus.len() < old_n {
            return Err(AppendError::CorpusBehindIndex {
                corpus: corpus.len(),
                indexed: old_n,
            });
        }
        let phrase_before = self.phrase.len();
        let dense_before = self.dense_rules();
        if corpus.len() == old_n {
            return Ok(AppendDelta {
                sentences: 0,
                phrase_before,
                phrase_after: phrase_before,
                dense_before,
                dense_after: dense_before,
            });
        }
        let inverted = self.inverted.take();
        let new = &corpus.sentences()[old_n..];
        if let Some(tree) = self.tree.as_mut().filter(|_| threads > 1) {
            let key_lists = crate::sketch::sketch_batch(new, &self.cfg.tree, threads);
            for (s, keys) in new.iter().zip(&key_lists) {
                self.phrase.add_sentence(s);
                tree.add_sentence_keys(s, keys);
            }
        } else {
            for s in new {
                self.phrase.add_sentence(s);
                if let Some(t) = &mut self.tree {
                    t.add_sentence(s, &self.cfg.tree);
                }
            }
        }
        if let Some(t) = &mut self.tree {
            t.finalize();
        }
        self.all_ids.extend(old_n as u32..corpus.len() as u32);
        if let Some(mut inv) = inverted {
            inv.extend_for_append(self, old_n);
            let _ = self.inverted.set(inv);
        }
        Ok(AppendDelta {
            sentences: corpus.len() - old_n,
            phrase_before,
            phrase_after: self.phrase.len(),
            dense_before,
            dense_after: self.dense_rules(),
        })
    }

    /// The sentence → covering-rules transpose (built and cached on first
    /// call).
    pub fn inverted(&self) -> &InvertedIndex {
        self.inverted.get_or_init(|| InvertedIndex::build(self))
    }

    /// All indexed rules whose coverage contains sentence `id`, in
    /// [`IndexSet::all_rules`] order. This is the delta primitive of the
    /// incremental benefit engine: when `P` gains `id` (or `id` is
    /// re-scored), exactly these rules' benefit aggregates change.
    pub fn rules_covering(&self, id: u32) -> impl Iterator<Item = RuleRef> + '_ {
        self.inverted().rules_covering(id).iter().copied()
    }

    /// The phrase sub-index.
    pub fn phrase_index(&self) -> &PhraseIndex {
        &self.phrase
    }

    /// The TreeMatch sub-index, if enabled.
    pub fn tree_index(&self) -> Option<&TreeIndex> {
        self.tree.as_ref()
    }

    /// Number of indexed sentences.
    pub fn sentences(&self) -> usize {
        self.all_ids.len()
    }

    /// Total number of indexed heuristics (excluding the root).
    pub fn rules(&self) -> usize {
        self.phrase.len() - 1 + self.tree.as_ref().map_or(0, |t| t.len())
    }

    /// Coverage set `C_r`: sorted ids of sentences satisfying the rule.
    pub fn coverage(&self, r: RuleRef) -> &[u32] {
        match r {
            RuleRef::Root => &self.all_ids,
            RuleRef::Phrase(n) => self.phrase.postings(n),
            RuleRef::Tree(p) => self.tree.as_ref().expect("tree index enabled").postings(p),
        }
    }

    /// `|C_r|` without materializing anything.
    pub fn count(&self, r: RuleRef) -> usize {
        match r {
            RuleRef::Root => self.all_ids.len(),
            RuleRef::Phrase(n) => self.phrase.count(n),
            RuleRef::Tree(p) => self.tree.as_ref().expect("tree index enabled").count(p),
        }
    }

    /// One-derivation-step specializations of `r`.
    pub fn children(&self, r: RuleRef) -> Vec<RuleRef> {
        let mut out = Vec::new();
        self.for_each_child(r, |c| out.push(c));
        out
    }

    /// Visit the one-derivation-step specializations of `r` without
    /// materializing them ([`IndexSet::children`] minus the `Vec` — the
    /// best-first walk expands enough nodes for the per-pop allocation to
    /// show up).
    pub fn for_each_child(&self, r: RuleRef, mut f: impl FnMut(RuleRef)) {
        match r {
            RuleRef::Root => {
                for c in self.phrase.children(crate::phrase_index::ROOT) {
                    f(RuleRef::Phrase(c));
                }
                if let Some(t) = &self.tree {
                    for &p in t.roots() {
                        f(RuleRef::Tree(p));
                    }
                }
            }
            RuleRef::Phrase(n) => {
                for c in self.phrase.children(n) {
                    f(RuleRef::Phrase(c));
                }
            }
            RuleRef::Tree(p) => {
                for &c in self.tree.as_ref().expect("tree index enabled").children(p) {
                    f(RuleRef::Tree(c));
                }
            }
        }
    }

    /// One-derivation-step generalizations of `r`.
    pub fn parents(&self, r: RuleRef) -> Vec<RuleRef> {
        match r {
            RuleRef::Root => Vec::new(),
            RuleRef::Phrase(n) => match self.phrase.parent(n) {
                Some(crate::phrase_index::ROOT) => vec![RuleRef::Root],
                Some(p) => vec![RuleRef::Phrase(p)],
                None => Vec::new(),
            },
            RuleRef::Tree(p) => {
                let t = self.tree.as_ref().expect("tree index enabled");
                let pars = t.parents(p);
                if pars.is_empty() {
                    vec![RuleRef::Root]
                } else {
                    pars.iter().map(|&q| RuleRef::Tree(q)).collect()
                }
            }
        }
    }

    /// Materialize the heuristic a ref denotes.
    pub fn heuristic(&self, r: RuleRef) -> Heuristic {
        match r {
            RuleRef::Root => Heuristic::Phrase(PhrasePattern { elems: Vec::new() }),
            RuleRef::Phrase(n) => {
                Heuristic::Phrase(PhrasePattern::from_tokens(self.phrase.phrase(n)))
            }
            RuleRef::Tree(p) => {
                Heuristic::Tree(self.tree.as_ref().expect("tree index enabled").pattern(p))
            }
        }
    }

    /// Find the indexed handle for a heuristic, if it is in index range
    /// (contiguous phrases within depth; enumerated tree patterns).
    pub fn resolve(&self, h: &Heuristic) -> Option<RuleRef> {
        match h {
            Heuristic::Phrase(p) if p.is_empty() => Some(RuleRef::Root),
            Heuristic::Phrase(p) if p.is_contiguous() => {
                let syms: Vec<_> = p.tokens().collect();
                self.phrase.lookup(&syms).map(RuleRef::Phrase)
            }
            Heuristic::Phrase(_) => None,
            Heuristic::Tree(t) => self.tree.as_ref()?.lookup(t).map(RuleRef::Tree),
        }
    }

    /// Whether `r` denotes a rule this index actually holds — the
    /// wire-boundary validity check. Every other accessor
    /// ([`IndexSet::coverage`], [`IndexSet::heuristic`], …) treats its
    /// handle as trusted and will panic on an out-of-range node or a tree
    /// ref against a treeless build; workers receiving handles from a
    /// peer check here first and refuse invalid ones cleanly.
    pub fn contains_rule(&self, r: RuleRef) -> bool {
        match r {
            RuleRef::Root => true,
            RuleRef::Phrase(n) => (n as usize) < self.phrase.len(),
            RuleRef::Tree(p) => self.tree.as_ref().is_some_and(|t| (p as usize) < t.len()),
        }
    }

    /// Size of the dense rule numbering ([`IndexSet::dense_id`]).
    pub fn dense_rules(&self) -> usize {
        self.phrase.len() + self.tree.as_ref().map_or(0, |t| t.len())
    }

    /// A dense `0..dense_rules()` numbering of the index: phrase trie
    /// nodes first (slot 0 is the trie root, which doubles as
    /// [`RuleRef::Root`] — no indexed rule occupies it), then tree
    /// patterns. Lets per-rule side tables and visited sets be flat arrays
    /// instead of hash maps — the frontier pool's memo and the best-first
    /// walk's seen-set are the hot consumers.
    pub fn dense_id(&self, r: RuleRef) -> u32 {
        match r {
            RuleRef::Root => 0,
            RuleRef::Phrase(n) => n,
            RuleRef::Tree(p) => self.phrase.len() as u32 + p,
        }
    }

    /// Inverse of [`IndexSet::dense_id`].
    pub fn rule_of_dense(&self, id: u32) -> RuleRef {
        let phrase_len = self.phrase.len() as u32;
        if id == 0 {
            RuleRef::Root
        } else if id < phrase_len {
            RuleRef::Phrase(id)
        } else {
            RuleRef::Tree(id - phrase_len)
        }
    }

    /// All rule handles (excluding the root), phrases first.
    pub fn all_rules(&self) -> impl Iterator<Item = RuleRef> + '_ {
        let phrases = self.phrase.node_ids().map(RuleRef::Phrase);
        let trees = self
            .tree
            .iter()
            .flat_map(|t| t.pat_ids())
            .map(RuleRef::Tree);
        phrases.chain(trees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::from_texts([
            "what is the best way to get to sfo airport",
            "is there a bart from sfo to the hotel",
            "what is the best way to check in there",
            "the storm caused the outage",
            "lightning caused the fire downtown",
        ])
    }

    #[test]
    fn resolve_and_coverage_agree_with_brute_force() {
        let c = corpus();
        let idx = IndexSet::build(&c, &IndexConfig::small());
        let h = Heuristic::phrase(&c, "best way to").unwrap();
        let r = idx.resolve(&h).expect("indexed");
        assert_eq!(idx.coverage(r), &h.coverage(&c)[..]);
        assert_eq!(idx.count(r), 2);
    }

    #[test]
    fn root_matches_everything() {
        let c = corpus();
        let idx = IndexSet::build(&c, &IndexConfig::small());
        assert_eq!(idx.coverage(RuleRef::Root).len(), c.len());
        assert!(idx.parents(RuleRef::Root).is_empty());
        let h = idx.heuristic(RuleRef::Root);
        assert_eq!(idx.resolve(&h), Some(RuleRef::Root));
    }

    #[test]
    fn children_of_root_include_both_grammars() {
        let c = corpus();
        let idx = IndexSet::build(&c, &IndexConfig::small());
        let kids = idx.children(RuleRef::Root);
        assert!(kids.iter().any(|r| matches!(r, RuleRef::Phrase(_))));
        assert!(kids.iter().any(|r| matches!(r, RuleRef::Tree(_))));
    }

    #[test]
    fn parents_lead_back_to_root() {
        let c = corpus();
        let idx = IndexSet::build(&c, &IndexConfig::small());
        // Walk up from a deep phrase.
        let h = Heuristic::phrase(&c, "best way to").unwrap();
        let mut cur = idx.resolve(&h).unwrap();
        let mut steps = 0;
        while cur != RuleRef::Root {
            let pars = idx.parents(cur);
            assert!(!pars.is_empty());
            cur = pars[0];
            steps += 1;
            assert!(steps < 20, "must reach root");
        }
        assert_eq!(steps, 3);
    }

    #[test]
    fn heuristic_roundtrip_through_resolve() {
        let c = corpus();
        let idx = IndexSet::build(&c, &IndexConfig::small());
        for r in idx.all_rules().take(300) {
            let h = idx.heuristic(r);
            assert_eq!(idx.resolve(&h), Some(r), "{}", h.display(c.vocab()));
        }
    }

    #[test]
    fn gapped_phrase_is_not_indexed_but_matchable() {
        let c = corpus();
        let idx = IndexSet::build(&c, &IndexConfig::small());
        let h = Heuristic::phrase(&c, "caused + fire").unwrap();
        assert_eq!(idx.resolve(&h), None);
        assert_eq!(h.coverage(&c), vec![4]);
    }

    #[test]
    fn min_count_prunes_phrases() {
        let c = corpus();
        let pruned = IndexSet::build(
            &c,
            &IndexConfig {
                min_count: 2,
                ..IndexConfig::small()
            },
        );
        let h = Heuristic::phrase(&c, "bart").unwrap();
        assert_eq!(pruned.resolve(&h), None, "singleton phrase pruned");
        let h2 = Heuristic::phrase(&c, "caused the").unwrap();
        assert!(pruned.resolve(&h2).is_some(), "count-2 phrase kept");
    }

    #[test]
    fn phrase_only_config_disables_tree() {
        let c = corpus();
        let idx = IndexSet::build(
            &c,
            &IndexConfig {
                enable_tree: false,
                ..IndexConfig::small()
            },
        );
        assert!(idx.tree_index().is_none());
        assert!(idx
            .children(RuleRef::Root)
            .iter()
            .all(|r| matches!(r, RuleRef::Phrase(_))));
    }

    #[test]
    fn dense_numbering_roundtrips_and_is_injective() {
        let c = corpus();
        let idx = IndexSet::build(&c, &IndexConfig::small());
        let mut seen = vec![false; idx.dense_rules()];
        for r in idx.all_rules() {
            let d = idx.dense_id(r);
            assert!((d as usize) < idx.dense_rules());
            assert_ne!(d, 0, "slot 0 is reserved for the root");
            assert!(!seen[d as usize], "dense id {d} assigned twice");
            seen[d as usize] = true;
            assert_eq!(idx.rule_of_dense(d), r);
        }
        assert_eq!(
            idx.rule_of_dense(idx.dense_id(RuleRef::Root)),
            RuleRef::Root
        );
    }

    /// The index-layer leg of the append-equivalence argument: a
    /// delta-grown index must be indistinguishable from a scratch build on
    /// the grown corpus — same rule set, numbering, coverage, hierarchy
    /// edges and inverted transpose.
    #[test]
    fn append_matches_scratch_build_on_grown_corpus() {
        let first: Vec<String> = (0..12)
            .map(|i| format!("sentence {i} takes the shuttle to the airport"))
            .collect();
        let extra = [
            "a brand new arrival orders pizza with extra cheese".to_string(),
            "the shuttle to the airport waits for the new arrival".to_string(),
            "pizza with extra cheese goes to the airport too".to_string(),
        ];
        let mut corpus = Corpus::from_texts(first.iter());
        let mut grown = IndexSet::build(&corpus, &IndexConfig::small());
        // Populate the inverted cache *before* the append so the delta
        // extension path (not a fresh transpose) is what gets compared.
        let _ = grown.inverted();
        corpus.append_texts(extra.iter(), 1);
        let delta = grown.append(&corpus).unwrap();
        assert_eq!(delta.sentences, extra.len());
        assert_eq!(delta.dense_after, grown.dense_rules());
        assert_eq!(delta.tree_shift(), delta.phrase_after - delta.phrase_before);

        let scratch = IndexSet::build(&corpus, &IndexConfig::small());
        assert_eq!(grown.sentences(), scratch.sentences());
        assert_eq!(grown.rules(), scratch.rules());
        assert_eq!(grown.dense_rules(), scratch.dense_rules());
        let grown_rules: Vec<RuleRef> = grown.all_rules().collect();
        let scratch_rules: Vec<RuleRef> = scratch.all_rules().collect();
        assert_eq!(grown_rules, scratch_rules, "rule numbering diverged");
        for &r in &grown_rules {
            assert_eq!(grown.coverage(r), scratch.coverage(r), "{r:?} coverage");
            assert_eq!(grown.children(r), scratch.children(r), "{r:?} children");
            assert_eq!(grown.parents(r), scratch.parents(r), "{r:?} parents");
            assert_eq!(grown.dense_id(r), scratch.dense_id(r));
        }
        assert_eq!(
            grown.children(RuleRef::Root),
            scratch.children(RuleRef::Root)
        );
        // Inverted transpose: delta-extended rows equal scratch rows.
        for s in 0..corpus.len() as u32 {
            assert_eq!(
                grown.inverted().rules_covering(s),
                scratch.inverted().rules_covering(s),
                "transpose row {s}"
            );
        }
        // Appending nothing is a no-op.
        assert_eq!(grown.append(&corpus).unwrap().sentences, 0);
    }

    #[test]
    fn append_refuses_pruned_indexes_and_shrunk_corpora() {
        let c = corpus();
        let mut pruned = IndexSet::build(
            &c,
            &IndexConfig {
                min_count: 2,
                ..IndexConfig::small()
            },
        );
        assert_eq!(
            pruned.append(&c),
            Err(AppendError::PrunedIndex { min_count: 2 })
        );
        let mut idx = IndexSet::build(&c, &IndexConfig::small());
        let shorter = Corpus::from_texts(["just one sentence"]);
        assert_eq!(
            idx.append(&shorter),
            Err(AppendError::CorpusBehindIndex {
                corpus: 1,
                indexed: 5
            })
        );
    }

    #[test]
    fn rules_count_is_consistent() {
        let c = corpus();
        let idx = IndexSet::build(&c, &IndexConfig::small());
        assert_eq!(idx.rules(), idx.all_rules().count());
        assert_eq!(idx.sentences(), 5);
    }
}

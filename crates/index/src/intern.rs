//! Open-addressing intern table for packed sketch keys.
//!
//! Tree ingest probes the pattern intern map once per enumerated key —
//! millions of probes per batch, each a dependent-load chain on a table
//! far larger than L2. A general `HashMap` pays two chained lines per
//! probe (control bytes, then the slot); this table packs the whole slot
//! into one `u128` word — a [`crate::sketch::SketchKey::pack`] value
//! occupies 101 bits, leaving 27 for the pattern id — so a probe touches
//! exactly one cache line, and [`InternTable::prefetch`] lets list-driven
//! callers hide even that line's latency behind the previous keys' work.
//!
//! Linear probing, power-of-two capacity, load factor ≤ 1/2, no deletes
//! (patterns are never removed from a [`crate::TreeIndex`]).

/// Slot value marking an empty bucket. Never collides with a live slot:
/// a valid packed key has its POS-discriminant payload bits zero, so the
/// all-ones word is not `encode(id, key)` for any valid `(id, key)`.
const EMPTY: u128 = u128::MAX;

/// Bits of a slot occupied by the packed key.
const KEY_BITS: u32 = 101;
/// Mask selecting the packed-key bits of a slot.
const KEY_MASK: u128 = (1 << KEY_BITS) - 1;

/// Multiplicative hash of a packed key (the FxHash word mix over both
/// halves). Bucket selection uses the *high* bits of the product, where
/// a multiplicative hash concentrates its entropy.
#[inline]
fn hash(k: u128) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let h = (0u64.rotate_left(5) ^ (k as u64)).wrapping_mul(SEED);
    (h.rotate_left(5) ^ ((k >> 64) as u64)).wrapping_mul(SEED)
}

/// Packed-key → pattern-id intern table. See the module docs.
pub(crate) struct InternTable {
    /// `id << KEY_BITS | key`, or [`EMPTY`].
    slots: Vec<u128>,
    /// `64 - log2(slots.len())`: shifts the hash down to a bucket index.
    shift: u32,
    len: usize,
}

impl Default for InternTable {
    fn default() -> Self {
        const CAP: usize = 1024;
        InternTable {
            slots: vec![EMPTY; CAP],
            shift: 64 - CAP.trailing_zeros(),
            len: 0,
        }
    }
}

impl InternTable {
    #[inline]
    fn bucket(&self, k: u128) -> usize {
        (hash(k) >> self.shift) as usize
    }

    /// The id interned for `k`, if any.
    #[inline]
    pub(crate) fn get(&self, k: u128) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut b = self.bucket(k);
        loop {
            let slot = self.slots[b];
            if slot == EMPTY {
                return None;
            }
            if (slot ^ k) & KEY_MASK == 0 {
                return Some((slot >> KEY_BITS) as u32);
            }
            b = (b + 1) & mask;
        }
    }

    /// The id interned for `k`, interning `next_id()` first if absent.
    /// Returns `(id, freshly_inserted)`.
    #[inline]
    pub(crate) fn get_or_insert_with(
        &mut self,
        k: u128,
        next_id: impl FnOnce() -> u32,
    ) -> (u32, bool) {
        // Grow *before* probing so the claimed bucket stays valid.
        if self.len * 2 >= self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut b = self.bucket(k);
        loop {
            let slot = self.slots[b];
            if slot == EMPTY {
                let id = next_id();
                assert!(id < (1 << (128 - KEY_BITS)), "pattern id overflows slot");
                self.slots[b] = (id as u128) << KEY_BITS | k;
                self.len += 1;
                return (id, true);
            }
            if (slot ^ k) & KEY_MASK == 0 {
                return ((slot >> KEY_BITS) as u32, false);
            }
            b = (b + 1) & mask;
        }
    }

    /// Hint the CPU to pull `k`'s home cache line; a later
    /// [`InternTable::get_or_insert_with`] for the same key then finds the
    /// line resident. Purely advisory — correct (and a no-op off x86-64)
    /// whatever happens to the table in between.
    #[inline]
    pub(crate) fn prefetch(&self, k: u128) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: prefetch is a hint; it cannot fault even on a bad
        // address, and the address is in-bounds here anyway.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(
                self.slots.as_ptr().add(self.bucket(k)) as *const i8,
                _MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = k;
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; 0]);
        let cap = old.len() * 2;
        self.slots = vec![EMPTY; cap];
        self.shift = 64 - cap.trailing_zeros();
        let mask = cap - 1;
        for slot in old {
            if slot == EMPTY {
                continue;
            }
            let mut b = (hash(slot & KEY_MASK) >> self.shift) as usize;
            while self.slots[b] != EMPTY {
                b = (b + 1) & mask;
            }
            self.slots[b] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_on_empty_is_none() {
        let t = InternTable::default();
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(12345), None);
    }

    #[test]
    fn zero_is_a_valid_key() {
        // SketchKey::Term(Tok(Sym(0))) packs to 0 — the table must not
        // confuse it with an empty slot.
        let mut t = InternTable::default();
        let (id, fresh) = t.get_or_insert_with(0, || 7);
        assert_eq!((id, fresh), (7, true));
        assert_eq!(t.get(0), Some(7));
        let (id, fresh) = t.get_or_insert_with(0, || 99);
        assert_eq!((id, fresh), (7, false));
    }

    #[test]
    fn survives_growth() {
        let mut t = InternTable::default();
        // Insert far past the initial capacity, with adversarially
        // clustered keys (sequential packs are the common case).
        let n = 10_000u32;
        for i in 0..n {
            let (id, fresh) = t.get_or_insert_with((i as u128) << 2, || i);
            assert_eq!((id, fresh), (i, true));
        }
        for i in 0..n {
            assert_eq!(t.get((i as u128) << 2), Some(i), "key {i} after growth");
            let (id, fresh) = t.get_or_insert_with((i as u128) << 2, || u32::MAX);
            assert_eq!((id, fresh), (i, false));
        }
        assert_eq!(t.get((n as u128) << 2), None);
    }

    #[test]
    fn distinguishes_high_bit_keys() {
        let mut t = InternTable::default();
        let a = 1u128 << 100;
        let b = 1u128 << 99;
        t.get_or_insert_with(a, || 1);
        t.get_or_insert_with(b, || 2);
        assert_eq!(t.get(a), Some(1));
        assert_eq!(t.get(b), Some(2));
        t.prefetch(a); // smoke: advisory, must not crash
    }
}

//! FxHash — the fast, non-cryptographic hash used by rustc.
//!
//! Index construction hammers `HashMap<Sym, NodeId>` lookups; SipHash is
//! needlessly slow for 4-byte keys and HashDoS is not a concern for an
//! offline index (see the performance guide's Hashing chapter). This is a
//! from-scratch implementation of the same multiply-rotate scheme.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiplicative hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(42u32), hash_of(42u32));
        assert_eq!(hash_of("shuttle"), hash_of("shuttle"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(1u32), hash_of(2u32));
        assert_ne!(hash_of("bus"), hash_of("shuttle"));
        // Unaligned tails must matter.
        assert_ne!(hash_of("abcdefghi"), hash_of("abcdefghj"));
    }

    #[test]
    fn usable_in_maps() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}

//! Dense id set over `u32` sentence ids.
//!
//! The pipeline constantly asks "is sentence `s` already in the positive set
//! `P`?" and "how many of this rule's postings are new?"; a bit vector makes
//! both O(1)/O(postings) with no hashing.

/// A fixed-universe bit set. The universe size is given at construction and
/// grows on demand when inserting beyond it.
#[derive(Clone, Debug, Default)]
pub struct IdSet {
    blocks: Vec<u64>,
    len: usize,
}

impl IdSet {
    /// An empty set sized for ids `0..universe`.
    pub fn with_universe(universe: usize) -> IdSet {
        IdSet {
            blocks: vec![0; universe.div_ceil(64)],
            len: 0,
        }
    }

    /// Build from a slice of ids.
    pub fn from_ids(ids: &[u32], universe: usize) -> IdSet {
        let mut s = IdSet::with_universe(universe);
        for &i in ids {
            s.insert(i);
        }
        s
    }

    /// Insert; returns true if the id was newly added.
    pub fn insert(&mut self, id: u32) -> bool {
        let (b, m) = (id as usize / 64, 1u64 << (id % 64));
        if b >= self.blocks.len() {
            self.blocks.resize(b + 1, 0);
        }
        let newly = self.blocks[b] & m == 0;
        if newly {
            self.blocks[b] |= m;
            self.len += 1;
        }
        newly
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        let (b, m) = (id as usize / 64, 1u64 << (id % 64));
        self.blocks.get(b).is_some_and(|&w| w & m != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
        self.len = 0;
    }

    /// Insert every id from `ids`; returns how many were new.
    pub fn extend_from_slice(&mut self, ids: &[u32]) -> usize {
        ids.iter().filter(|&&i| self.insert(i)).count()
    }

    /// How many ids in `ids` are members (ids need not be unique; each
    /// occurrence counts).
    pub fn count_in(&self, ids: &[u32]) -> usize {
        ids.iter().filter(|&&i| self.contains(i)).count()
    }

    /// Iterate over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let t = w.trailing_zeros();
                w &= w - 1;
                Some(bi as u32 * 64 + t)
            })
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &IdSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        let mut len = 0usize;
        for (i, b) in self.blocks.iter_mut().enumerate() {
            *b |= other.blocks.get(i).copied().unwrap_or(0);
            len += b.count_ones() as usize;
        }
        self.len = len;
    }
}

impl FromIterator<u32> for IdSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = IdSet::default();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut s = IdSet::with_universe(100);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(99));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn grows_past_universe() {
        let mut s = IdSet::with_universe(10);
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert!(!s.contains(999));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let ids = [5u32, 1, 64, 63, 128, 200];
        let s = IdSet::from_ids(&ids, 256);
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(got, vec![1, 5, 63, 64, 128, 200]);
    }

    #[test]
    fn count_in_and_extend() {
        let mut s = IdSet::with_universe(50);
        assert_eq!(s.extend_from_slice(&[1, 2, 3, 2]), 3);
        assert_eq!(s.count_in(&[1, 2, 9]), 2);
        assert_eq!(s.count_in(&[2, 2]), 2, "occurrences count");
    }

    #[test]
    fn union() {
        let mut a = IdSet::from_ids(&[1, 2], 10);
        let b = IdSet::from_ids(&[2, 300], 10);
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(300));
    }

    #[test]
    fn clear_keeps_working() {
        let mut s = IdSet::from_ids(&[1, 2, 3], 10);
        s.clear();
        assert!(s.is_empty());
        assert!(s.insert(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn from_iterator() {
        let s: IdSet = (0u32..5).collect();
        assert_eq!(s.len(), 5);
    }
}

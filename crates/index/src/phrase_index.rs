//! The trie index over TokensRegex n-grams (paper Figure 6).
//!
//! Each node represents a contiguous phrase heuristic; it stores the number
//! of sentences satisfying it and an inverted list of their ids. The index
//! is created by merging per-sentence derivation sketches one at a time
//! (sequential and incremental paths) or by building chunk-local tries in
//! parallel and merging them (the paper notes the process "is also highly
//! parallelizable").

use crate::fx::FxHashMap;
use darwin_text::{Corpus, Sentence, Sym};

/// Node id within a [`PhraseIndex`]. Id 0 is the root (`*`, the heuristic
/// matching every sentence).
pub type NodeId = u32;

pub(crate) const ROOT: NodeId = 0;

#[derive(Clone, Debug)]
struct Node {
    /// Token on the edge from the parent (meaningless for the root).
    sym: Sym,
    parent: NodeId,
    /// Depth == phrase length (root: 0).
    depth: u16,
    /// Sorted, deduplicated ids of sentences containing the phrase.
    postings: Vec<u32>,
    children: FxHashMap<Sym, NodeId>,
}

/// Trie over contiguous phrases up to `max_len` tokens.
#[derive(Clone, Debug)]
pub struct PhraseIndex {
    nodes: Vec<Node>,
    max_len: usize,
    sentences: u32,
}

impl PhraseIndex {
    /// An empty index accepting phrases up to `max_len` tokens.
    pub fn new(max_len: usize) -> PhraseIndex {
        assert!(max_len >= 1, "max_len must be at least 1");
        let root = Node {
            sym: Sym(u32::MAX),
            parent: ROOT,
            depth: 0,
            postings: Vec::new(),
            children: FxHashMap::default(),
        };
        PhraseIndex {
            nodes: vec![root],
            max_len,
            sentences: 0,
        }
    }

    /// Build sequentially by merging each sentence's derivation sketch.
    pub fn build(corpus: &Corpus, max_len: usize) -> PhraseIndex {
        let mut idx = PhraseIndex::new(max_len);
        for s in corpus.sentences() {
            idx.add_sentence(s);
        }
        idx
    }

    /// Build with `threads` workers: chunk-local tries merged in order.
    /// Produces exactly the same index as [`PhraseIndex::build`].
    pub fn build_parallel(corpus: &Corpus, max_len: usize, threads: usize) -> PhraseIndex {
        let sents = corpus.sentences();
        if threads <= 1 || sents.len() < 2048 {
            return Self::build(corpus, max_len);
        }
        let chunk = sents.len().div_ceil(threads);
        let mut parts: Vec<PhraseIndex> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = sents
                .chunks(chunk)
                .map(|c| {
                    scope.spawn(move || {
                        let mut idx = PhraseIndex::new(max_len);
                        for s in c {
                            idx.add_sentence(s);
                        }
                        idx
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("index build thread panicked"));
            }
        });

        let mut iter = parts.into_iter();
        let mut acc = iter.next().expect("at least one chunk");
        for p in iter {
            acc.merge(p);
        }
        acc
    }

    /// Merge another index into this one. Postings are concatenated, which
    /// preserves sortedness when `other` holds strictly larger sentence ids
    /// (the parallel build merges chunks in corpus order).
    pub fn merge(&mut self, other: PhraseIndex) {
        assert_eq!(self.max_len, other.max_len, "mismatched index depth");
        // Breadth-first walk of `other`, mapping its nodes onto ours.
        let mut queue: Vec<(NodeId, NodeId)> = vec![(ROOT, ROOT)]; // (other, self)
        while let Some((on, sn)) = queue.pop() {
            // Move postings over.
            let other_node = &other.nodes[on as usize];
            self.nodes[sn as usize]
                .postings
                .extend_from_slice(&other_node.postings);
            for (&sym, &oc) in &other_node.children {
                let sc = self.child_or_insert(sn, sym);
                queue.push((oc, sc));
            }
        }
        self.sentences += other.sentences;
    }

    /// Incremental update: merge one sentence's derivation sketch
    /// ("linear update time complexity for adding the derivation sketch of
    /// a new sentence", §3.1).
    ///
    /// Walks the trie directly, one root-to-depth path per start position,
    /// instead of materializing [`crate::sketch::phrase_sketch`]'s gram
    /// list and re-walking
    /// each gram from the root: the nodes visited per start are exactly the
    /// sketch's grams at that start, shorter first, so node creation order
    /// (first occurrence) and postings are identical to the sketch-driven
    /// insert — the postings tail check stands in for the sketch's
    /// per-sentence dedup.
    pub fn add_sentence(&mut self, s: &Sentence) {
        for start in 0..s.tokens.len() {
            let mut cur = ROOT;
            let end = (start + self.max_len).min(s.tokens.len());
            for i in start..end {
                cur = self.child_or_insert(cur, s.tokens[i]);
                let postings = &mut self.nodes[cur as usize].postings;
                if postings.last() != Some(&s.id) {
                    postings.push(s.id);
                }
            }
        }
        self.sentences += 1;
    }

    fn child_or_insert(&mut self, parent: NodeId, sym: Sym) -> NodeId {
        if let Some(&c) = self.nodes[parent as usize].children.get(&sym) {
            return c;
        }
        let id = self.nodes.len() as NodeId;
        let depth = self.nodes[parent as usize].depth + 1;
        self.nodes.push(Node {
            sym,
            parent,
            depth,
            postings: Vec::new(),
            children: FxHashMap::default(),
        });
        self.nodes[parent as usize].children.insert(sym, id);
        id
    }

    /// Remove all nodes whose count is below `min_count` (and their
    /// subtrees — counts are monotone along root-to-leaf paths). Node ids
    /// are re-assigned; the root stays 0.
    pub fn prune(&mut self, min_count: usize) -> usize {
        if min_count <= 1 {
            return 0;
        }
        let mut keep = vec![false; self.nodes.len()];
        keep[ROOT as usize] = true;
        // BFS: children of kept nodes are kept when their count passes.
        let mut queue = vec![ROOT];
        while let Some(n) = queue.pop() {
            for &c in self.nodes[n as usize].children.values() {
                if self.nodes[c as usize].postings.len() >= min_count {
                    keep[c as usize] = true;
                    queue.push(c);
                }
            }
        }
        let removed = keep.iter().filter(|k| !**k).count();
        if removed == 0 {
            return 0;
        }
        // Compact.
        let mut remap = vec![u32::MAX; self.nodes.len()];
        let mut new_nodes: Vec<Node> = Vec::with_capacity(self.nodes.len() - removed);
        for (i, node) in self.nodes.iter().enumerate() {
            if keep[i] {
                remap[i] = new_nodes.len() as u32;
                new_nodes.push(node.clone());
            }
        }
        for node in &mut new_nodes {
            node.parent = remap[node.parent as usize];
            node.children = node
                .children
                .iter()
                .filter(|(_, &c)| remap[c as usize] != u32::MAX)
                .map(|(&s, &c)| (s, remap[c as usize]))
                .collect();
        }
        self.nodes = new_nodes;
        removed
    }

    /// Number of trie nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists (no phrases indexed).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Number of sentences indexed.
    pub fn sentences(&self) -> u32 {
        self.sentences
    }

    /// The paper's `count`: number of sentences satisfying the node's
    /// heuristic. The root counts every sentence.
    pub fn count(&self, n: NodeId) -> usize {
        if n == ROOT {
            self.sentences as usize
        } else {
            self.nodes[n as usize].postings.len()
        }
    }

    /// Inverted list for a node. Empty for the root — callers treat the
    /// root as "matches everything" (see [`PhraseIndex::count`]).
    pub fn postings(&self, n: NodeId) -> &[u32] {
        &self.nodes[n as usize].postings
    }

    /// The node's one-token-shorter prefix (`None` for the root).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        (n != ROOT).then(|| self.nodes[n as usize].parent)
    }

    /// The node's one-token-longer extensions.
    pub fn children(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[n as usize].children.values().copied()
    }

    /// Phrase length of the node.
    pub fn depth(&self, n: NodeId) -> usize {
        self.nodes[n as usize].depth as usize
    }

    /// Reconstruct the phrase (root → node path).
    pub fn phrase(&self, n: NodeId) -> Vec<Sym> {
        let mut out = Vec::with_capacity(self.depth(n));
        let mut cur = n;
        while cur != ROOT {
            out.push(self.nodes[cur as usize].sym);
            cur = self.nodes[cur as usize].parent;
        }
        out.reverse();
        out
    }

    /// Find the node for a contiguous phrase, if indexed.
    pub fn lookup(&self, phrase: &[Sym]) -> Option<NodeId> {
        let mut cur = ROOT;
        for sym in phrase {
            cur = *self.nodes[cur as usize].children.get(sym)?;
        }
        Some(cur)
    }

    /// Iterate over all node ids (excluding the root).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        1..self.nodes.len() as NodeId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::from_texts([
            "what is the best way to get to sfo airport",
            "is uber the fastest way to get to the airport",
            "what is the best way to order food from you",
        ])
    }

    fn node_by_text(c: &Corpus, idx: &PhraseIndex, text: &str) -> NodeId {
        let syms: Vec<Sym> = text
            .split_whitespace()
            .map(|t| c.vocab().get(t).expect("token in vocab"))
            .collect();
        idx.lookup(&syms).expect("phrase indexed")
    }

    #[test]
    fn figure6_counts() {
        // Mirrors Figure 6: after indexing s1 and s4, "way to" has count 2,
        // "best way" count 1, "fastest way" count 1.
        let c = corpus();
        let idx = PhraseIndex::build(&c, 4);
        assert_eq!(idx.count(node_by_text(&c, &idx, "way to")), 3);
        assert_eq!(idx.count(node_by_text(&c, &idx, "best way")), 2);
        assert_eq!(idx.count(node_by_text(&c, &idx, "fastest way")), 1);
        assert_eq!(idx.postings(node_by_text(&c, &idx, "best way")), &[0, 2]);
    }

    #[test]
    fn counts_equal_postings_len_everywhere() {
        let c = corpus();
        let idx = PhraseIndex::build(&c, 5);
        for n in idx.node_ids() {
            assert_eq!(idx.count(n), idx.postings(n).len());
            // Postings sorted + unique.
            assert!(idx.postings(n).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn child_postings_subset_of_parent() {
        let c = corpus();
        let idx = PhraseIndex::build(&c, 5);
        for n in idx.node_ids() {
            let parent = idx.parent(n).unwrap();
            if parent == ROOT {
                continue;
            }
            let pp = idx.postings(parent);
            for id in idx.postings(n) {
                assert!(pp.contains(id), "child postings ⊆ parent postings");
            }
        }
    }

    #[test]
    fn repeated_ngram_counts_sentence_once() {
        let c = Corpus::from_texts(["to get to get to"]);
        let idx = PhraseIndex::build(&c, 2);
        let n = node_by_text(&c, &idx, "to get");
        assert_eq!(idx.count(n), 1);
    }

    #[test]
    fn phrase_reconstruction_roundtrip() {
        let c = corpus();
        let idx = PhraseIndex::build(&c, 4);
        for n in idx.node_ids() {
            let phrase = idx.phrase(n);
            assert_eq!(idx.lookup(&phrase), Some(n));
            assert_eq!(phrase.len(), idx.depth(n));
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let texts: Vec<String> = (0..5000)
            .map(|i| {
                format!(
                    "sentence {} about the way to airport gate {}",
                    i % 97,
                    i % 13
                )
            })
            .collect();
        let c = Corpus::from_texts(texts.iter());
        let seq = PhraseIndex::build(&c, 4);
        let par = PhraseIndex::build_parallel(&c, 4, 4);
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq.sentences(), par.sentences());
        // Same postings for every phrase.
        for n in seq.node_ids() {
            let phrase = seq.phrase(n);
            let pn = par.lookup(&phrase).expect("phrase in parallel index");
            assert_eq!(seq.postings(n), par.postings(pn), "phrase {phrase:?}");
        }
    }

    #[test]
    fn incremental_add_matches_batch() {
        let texts = [
            "the shuttle to the airport",
            "the bus to the hotel",
            "the shuttle to the hotel",
        ];
        let c = Corpus::from_texts(texts);
        let batch = PhraseIndex::build(&c, 3);
        let mut inc = PhraseIndex::new(3);
        for s in c.sentences() {
            inc.add_sentence(s);
        }
        assert_eq!(batch.len(), inc.len());
        for n in batch.node_ids() {
            let pn = inc.lookup(&batch.phrase(n)).unwrap();
            assert_eq!(batch.postings(n), inc.postings(pn));
        }
    }

    #[test]
    fn prune_removes_rare_phrases() {
        let c = corpus();
        let mut idx = PhraseIndex::build(&c, 4);
        let before = idx.len();
        let removed = idx.prune(2);
        assert!(removed > 0);
        assert_eq!(idx.len(), before - removed);
        for n in idx.node_ids() {
            assert!(idx.count(n) >= 2);
            // Parent pointers still valid.
            let phrase = idx.phrase(n);
            assert_eq!(idx.lookup(&phrase), Some(n));
        }
        // "way to" survives (count 3).
        let way_to = node_by_text(&c, &idx, "way to");
        assert_eq!(idx.count(way_to), 3);
    }

    #[test]
    fn root_covers_all_sentences() {
        let c = corpus();
        let idx = PhraseIndex::build(&c, 3);
        assert_eq!(idx.count(ROOT), 3);
    }
}

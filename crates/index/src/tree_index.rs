//! Pattern-table index over TreeMatch heuristics.
//!
//! The TreeMatch grammar generates exponentially many candidates, so the
//! compact derivation sketch is the dependency parse itself (paper §3.1);
//! we enumerate the bounded pattern family of [`crate::sketch::tree_sketch`]
//! and store each pattern with its inverted list, plus *generalization
//! edges* capturing the subset/superset structure the hierarchy needs:
//!
//! * `a/b` is a specialization of both `a` and `a//b`,
//! * `a//b` is a specialization of `a`,
//! * `p ∧ q` is a specialization of both `p` and `q`,
//! * `Term(tok)` is a specialization of `Term(POS-of-tok)` (evidence-based).

use crate::fx::{FxHashMap, FxHashSet};
use crate::intern::InternTable;
use crate::sketch::{
    for_each_tree_sketch_with, term_generalizations, SketchKey, SketchScratch, TreeSketchConfig,
};
use darwin_grammar::{TreePattern, TreeTerm};
use darwin_text::{Corpus, PosTag, Sentence, Sym};

/// Pattern id within a [`TreeIndex`].
pub type PatId = u32;

/// What a token's tag evidence says about its `Term(tok) → Term(POS)`
/// generalization edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TagEvidence {
    /// Token not seen yet.
    Unseen,
    /// Seen with exactly one tag so far.
    One(PosTag),
    /// Seen with more than one tag — the edge would not be
    /// coverage-monotone.
    Ambiguous,
}

/// Inverted index over the enumerated TreeMatch pattern family.
///
/// Patterns are stored as compact [`SketchKey`]s only — hierarchy
/// maintenance, interning and lookup all work on keys, and the boxed
/// [`TreePattern`] is materialized lazily by [`TreeIndex::pattern`]
/// (ingest never allocates a pattern).
pub struct TreeIndex {
    /// `keys[id]` is the compact identity of pattern `id`.
    keys: Vec<SketchKey>,
    /// Intern table, keyed by [`SketchKey::pack`] — a single-word-slot
    /// open-addressing table whose probes touch one cache line, which
    /// matters because ingest probes it once per enumerated key.
    ids: InternTable,
    postings: Vec<Vec<u32>>,
    parents: Vec<Vec<PatId>>,
    children: Vec<Vec<PatId>>,
    /// Terminal patterns — children of the root `*` heuristic.
    roots: Vec<PatId>,
    /// Observed token→tag evidence for terminal generalization edges,
    /// flat-indexed by [`Sym::index`] (symbols are dense vocabulary ids).
    tok_tags: Vec<TagEvidence>,
    /// Patterns `keys[..finalized]` have their hierarchy edges computed;
    /// later interns are folded in by the next [`TreeIndex::finalize`].
    finalized: usize,
    /// Candidate generalizations that were not interned when a child was
    /// finalized → the children waiting on them. If the candidate is
    /// interned later, the edges are added then (keeping append-grown
    /// hierarchies identical to a from-scratch build). Keyed by
    /// [`SketchKey::pack`], like `ids`.
    pending: FxHashMap<u128, Vec<PatId>>,
    /// Tokens whose tag evidence turned ambiguous since the last
    /// finalize, with the tag they held before — their `Term(tok) →
    /// Term(POS)` edge (or pending wait) must be retracted.
    flips: Vec<(Sym, PosTag)>,
    /// Reusable per-sentence enumeration scratch.
    scratch: SketchScratch,
    /// Reusable per-sentence key list + dedup set: [`TreeIndex::add_sentence`]
    /// enumerates into these before interning, so the intern loop can
    /// prefetch ahead over a known key list.
    key_buf: Vec<SketchKey>,
    seen: FxHashSet<SketchKey>,
}

impl TreeIndex {
    /// Build over a corpus.
    pub fn build(corpus: &Corpus, cfg: &TreeSketchConfig) -> TreeIndex {
        let mut idx = TreeIndex {
            keys: Vec::new(),
            ids: InternTable::default(),
            postings: Vec::new(),
            parents: Vec::new(),
            children: Vec::new(),
            roots: Vec::new(),
            tok_tags: Vec::new(),
            finalized: 0,
            pending: FxHashMap::default(),
            flips: Vec::new(),
            scratch: SketchScratch::default(),
            key_buf: Vec::new(),
            seen: FxHashSet::default(),
        };
        for s in corpus.sentences() {
            idx.add_sentence(s, cfg);
        }
        idx.finalize();
        idx
    }

    /// Merge one sentence's sketch. Call [`TreeIndex::finalize`] after the
    /// last addition to (re)compute hierarchy edges.
    ///
    /// Two phases per sentence: enumerate the deduplicated key list into a
    /// reused buffer (first occurrence wins, matching the postings-tail
    /// dedup the intern probe used to provide), then intern the known list
    /// with prefetch-ahead — the same loop the batched path uses — so the
    /// table probe's cache-line pull overlaps earlier keys' work instead
    /// of stalling the enumeration.
    pub fn add_sentence(&mut self, s: &Sentence, cfg: &TreeSketchConfig) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut buf = std::mem::take(&mut self.key_buf);
        let mut seen = std::mem::take(&mut self.seen);
        buf.clear();
        seen.clear();
        for_each_tree_sketch_with(&mut scratch, s, cfg, &mut |k| {
            let fresh = seen.insert(k);
            if fresh {
                buf.push(k);
            }
            fresh
        });
        self.scratch = scratch;
        self.add_sentence_keys(s, &buf);
        self.key_buf = buf;
        self.seen = seen;
    }

    /// The key-list half of [`TreeIndex::add_sentence`], for batches whose
    /// enumeration was fanned out with [`crate::sketch::sketch_batch`]:
    /// `keys` must be sentence `s`'s deduplicated key list in enumeration
    /// order. Interning lists in sentence order reproduces the serial
    /// path's numbering exactly.
    pub fn add_sentence_keys(&mut self, s: &Sentence, sentence_keys: &[SketchKey]) {
        let sid = s.id;
        let ids = &mut self.ids;
        let keys = &mut self.keys;
        let postings = &mut self.postings;
        // Prefetch a few keys ahead: the key list is known up front, so
        // each slot's cache line is pulled while earlier keys are being
        // interned, hiding the probe latency the list order exposes.
        const LOOKAHEAD: usize = 8;
        for (i, &k) in sentence_keys.iter().enumerate() {
            if let Some(&ahead) = sentence_keys.get(i + LOOKAHEAD) {
                ids.prefetch(ahead.pack());
            }
            let (id, _) = ids.get_or_insert_with(k.pack(), || {
                let id = keys.len() as PatId;
                keys.push(k);
                postings.push(Vec::new());
                id
            });
            let p = &mut postings[id as usize];
            if p.last() != Some(&sid) {
                p.push(sid);
            }
        }
        self.observe_tags(s);
    }

    fn observe_tags(&mut self, s: &Sentence) {
        for (tok, tag) in term_generalizations(s) {
            let ix = tok.index();
            if ix >= self.tok_tags.len() {
                self.tok_tags.resize(ix + 1, TagEvidence::Unseen);
            }
            match self.tok_tags[ix] {
                TagEvidence::Unseen => self.tok_tags[ix] = TagEvidence::One(tag),
                TagEvidence::One(old) if old != tag => {
                    self.tok_tags[ix] = TagEvidence::Ambiguous;
                    self.flips.push((tok, old));
                }
                _ => {}
            }
        }
    }

    fn tag_evidence(&self, t: Sym) -> TagEvidence {
        self.tok_tags
            .get(t.index())
            .copied()
            .unwrap_or(TagEvidence::Unseen)
    }

    /// Fold patterns interned since the last call into the generalization
    /// hierarchy — **incremental**: only the new patterns (plus edge
    /// retractions forced by tokens whose tag evidence turned ambiguous)
    /// are visited, so an append-grown session pays O(delta) per batch,
    /// not O(total patterns).
    ///
    /// The result is identical — including the order of every adjacency
    /// list — to recomputing the hierarchy from scratch over the full
    /// table: parent lists and children lists are kept sorted by id
    /// (exactly what the scan in id order produces), a candidate
    /// generalization that is not interned yet is remembered in the
    /// pending-waiters map and wired up the moment a later batch
    /// interns it, and a `Term(tok) → Term(POS)` edge whose tag evidence
    /// is invalidated by later sentences is retracted.
    pub fn finalize(&mut self) {
        // Retract terminal edges whose single-tag evidence flipped.
        let flips = std::mem::take(&mut self.flips);
        for (tok, old_tag) in flips {
            if !old_tag.is_content() {
                continue;
            }
            let Some(c) = self.ids.get(SketchKey::Term(TreeTerm::Tok(tok)).pack()) else {
                continue;
            };
            let gen = SketchKey::Term(TreeTerm::Pos(old_tag)).pack();
            if (c as usize) >= self.finalized {
                // Interned but not yet finalized: it will be processed
                // below against the already-ambiguous evidence.
                continue;
            }
            match self.ids.get(gen) {
                Some(g) => {
                    remove_sorted(&mut self.parents[c as usize], g);
                    remove_sorted(&mut self.children[g as usize], c);
                    if self.parents[c as usize].is_empty() {
                        insert_sorted(&mut self.roots, c);
                    }
                }
                None => {
                    if let Some(w) = self.pending.get_mut(&gen) {
                        w.retain(|&x| x != c);
                        if w.is_empty() {
                            self.pending.remove(&gen);
                        }
                    }
                }
            }
        }
        // Wire up the patterns interned since the last finalize.
        let n = self.keys.len();
        self.parents.resize_with(n, Vec::new);
        self.children.resize_with(n, Vec::new);
        for id in self.finalized as PatId..n as PatId {
            let k = self.keys[id as usize];
            for q in self.parent_candidates(k).into_iter().flatten() {
                let q = q.pack();
                match self.ids.get(q) {
                    Some(g) => {
                        insert_sorted(&mut self.parents[id as usize], g);
                        insert_sorted(&mut self.children[g as usize], id);
                    }
                    None => self.pending.entry(q).or_default().push(id),
                }
            }
            if self.parents[id as usize].is_empty() {
                insert_sorted(&mut self.roots, id);
            }
            // Older patterns that were waiting for this generalization.
            if let Some(waiters) = self.pending.remove(&k.pack()) {
                for c in waiters {
                    if self.parents[c as usize].is_empty() {
                        remove_sorted(&mut self.roots, c);
                    }
                    insert_sorted(&mut self.parents[c as usize], id);
                    insert_sorted(&mut self.children[id as usize], c);
                }
            }
        }
        self.finalized = n;
    }

    /// Candidate parents (strict generalizations, one derivation step
    /// away) of the pattern `k` denotes, interned or not, deduplicated —
    /// at most two, returned without allocating (finalize visits every
    /// new pattern).
    fn parent_candidates(&self, k: SketchKey) -> [Option<SketchKey>; 2] {
        match k {
            SketchKey::Term(TreeTerm::Tok(t)) => {
                // Only unambiguous content tags yield a sound edge.
                if let TagEvidence::One(tag) = self.tag_evidence(t) {
                    if tag.is_content() {
                        return [Some(SketchKey::Term(TreeTerm::Pos(tag))), None];
                    }
                }
                [None, None]
            }
            SketchKey::Term(TreeTerm::Pos(_)) => [None, None],
            SketchKey::Child(a, b) => [Some(SketchKey::Term(a)), Some(SketchKey::Desc(a, b))],
            SketchKey::Desc(a, _) => [Some(SketchKey::Term(a)), None],
            SketchKey::And(h, b1, b2) => [
                Some(SketchKey::Child(h, b1)),
                (b1 != b2).then_some(SketchKey::Child(h, b2)),
            ],
        }
    }

    /// Number of indexed patterns.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no pattern is indexed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The pattern a [`PatId`] denotes, materialized on demand (the index
    /// stores only compact keys).
    pub fn pattern(&self, id: PatId) -> TreePattern {
        self.keys[id as usize].to_pattern()
    }

    /// The compact key of a pattern.
    pub fn key(&self, id: PatId) -> SketchKey {
        self.keys[id as usize]
    }

    /// Find the id of an (enumerated) pattern.
    pub fn lookup(&self, p: &TreePattern) -> Option<PatId> {
        SketchKey::of_pattern(p).and_then(|k| self.ids.get(k.pack()))
    }

    /// Sorted ids of sentences matching the pattern.
    pub fn postings(&self, id: PatId) -> &[u32] {
        &self.postings[id as usize]
    }

    /// `postings(id).len()` without borrowing the list.
    pub fn count(&self, id: PatId) -> usize {
        self.postings[id as usize].len()
    }

    /// One-step structural generalizations of the pattern.
    pub fn parents(&self, id: PatId) -> &[PatId] {
        &self.parents[id as usize]
    }

    /// One-step structural specializations of the pattern.
    pub fn children(&self, id: PatId) -> &[PatId] {
        &self.children[id as usize]
    }

    /// Terminal patterns (the children of the `*` root heuristic).
    pub fn roots(&self) -> &[PatId] {
        &self.roots
    }

    /// Iterate over all pattern ids.
    pub fn pat_ids(&self) -> impl Iterator<Item = PatId> {
        0..self.keys.len() as PatId
    }
}

/// Insert into a sorted id list, keeping it sorted (no-op if present).
fn insert_sorted(v: &mut Vec<PatId>, x: PatId) {
    if let Err(i) = v.binary_search(&x) {
        v.insert(i, x);
    }
}

/// Remove from a sorted id list (no-op if absent).
fn remove_sorted(v: &mut Vec<PatId>, x: PatId) {
    if let Ok(i) = v.binary_search(&x) {
        v.remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::from_texts([
            "uber is the best way to our hotel",
            "his job is a teacher at the school",
            "the storm caused the outage in the city",
            "lightning caused the fire",
        ])
    }

    #[test]
    fn postings_are_correct_coverage() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        // Every indexed pattern's postings equal its brute-force coverage.
        for id in idx.pat_ids().take(500) {
            let p = idx.pattern(id);
            let brute: Vec<u32> = c
                .sentences()
                .iter()
                .filter(|s| p.matches(s))
                .map(|s| s.id)
                .collect();
            assert_eq!(idx.postings(id), &brute[..], "{}", p.display(c.vocab()));
        }
    }

    #[test]
    fn child_pattern_has_desc_and_head_parents() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        let child = TreePattern::parse(c.vocab(), "caused/storm").unwrap();
        let id = idx.lookup(&child).expect("caused/storm indexed");
        let parents: Vec<TreePattern> = idx.parents(id).iter().map(|&p| idx.pattern(p)).collect();
        let head = TreePattern::parse(c.vocab(), "caused").unwrap();
        let desc = TreePattern::parse(c.vocab(), "caused//storm").unwrap();
        assert!(parents.contains(&head));
        assert!(parents.contains(&desc));
    }

    #[test]
    fn parent_coverage_superset_of_child() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        for id in idx.pat_ids() {
            for &par in idx.parents(id) {
                let pp = idx.postings(par);
                for s in idx.postings(id) {
                    assert!(
                        pp.contains(s),
                        "{} should cover everything {} covers",
                        idx.pattern(par).display(c.vocab()),
                        idx.pattern(id).display(c.vocab())
                    );
                }
            }
        }
    }

    #[test]
    fn token_terminal_generalizes_to_pos() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        let tok = TreePattern::parse(c.vocab(), "storm").unwrap();
        let id = idx.lookup(&tok).expect("storm indexed");
        let noun = TreePattern::term_pos(PosTag::Noun);
        let has_noun_parent = idx.parents(id).iter().any(|&p| idx.pattern(p) == noun);
        assert!(
            has_noun_parent,
            "Term(storm) should generalize to Term(NOUN)"
        );
    }

    #[test]
    fn roots_have_no_parents_and_children_inverse_holds() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        assert!(!idx.roots().is_empty());
        for &r in idx.roots() {
            assert!(idx.parents(r).is_empty());
        }
        for id in idx.pat_ids() {
            for &p in idx.parents(id) {
                assert!(idx.children(p).contains(&id));
            }
        }
    }

    /// The incremental hierarchy contract: growing batch by batch (one
    /// finalize per batch) must reproduce the scratch build over the full
    /// corpus exactly — patterns, postings, every adjacency list in the
    /// same order, and the root list. The fixture forces the hard cases:
    /// a generalization interned batches after its specialization (the
    /// pending wait), and a token whose tag evidence turns ambiguous
    /// after its terminal edge was already wired (the flip retraction).
    #[test]
    fn batched_growth_matches_scratch_build() {
        let texts = [
            "the storm caused the outage in the city",
            "lightning caused the fire",
            "his job is a teacher at the school",
            "uber is the best way to our hotel",
            "they fire the lazy teacher",     // "fire" NOUN→VERB flip
            "the storm will outage the grid", // "outage" flips too
            "a shuttle to the airport is fast",
            "the best shuttle leaves at dawn",
        ];
        let cfg = TreeSketchConfig::default();
        for split in 1..texts.len() {
            let scratch_corpus = Corpus::from_texts(texts.iter().copied());
            let scratch = TreeIndex::build(&scratch_corpus, &cfg);

            let mut corpus = Corpus::from_texts(texts[..split].iter().copied());
            let mut grown = TreeIndex::build(&corpus, &cfg);
            for t in &texts[split..] {
                let base = corpus.len();
                corpus.append_texts([t], 1);
                for s in &corpus.sentences()[base..] {
                    grown.add_sentence(s, &cfg);
                }
                grown.finalize();
            }

            assert_eq!(grown.len(), scratch.len(), "split {split}: pattern count");
            assert_eq!(grown.roots, scratch.roots, "split {split}: roots");
            for id in scratch.pat_ids() {
                assert_eq!(
                    grown.pattern(id),
                    scratch.pattern(id),
                    "split {split}: pat {id}"
                );
                assert_eq!(
                    grown.postings(id),
                    scratch.postings(id),
                    "split {split}: postings of {id}"
                );
                assert_eq!(
                    grown.parents(id),
                    scratch.parents(id),
                    "split {split}: parents of {id}"
                );
                assert_eq!(
                    grown.children(id),
                    scratch.children(id),
                    "split {split}: children of {id}"
                );
            }
        }
    }

    #[test]
    fn shared_pattern_counts_both_sentences() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        // "caused/NOUN-ish": both cause sentences have "caused" as root verb.
        let p = TreePattern::parse(c.vocab(), "caused").unwrap();
        let id = idx.lookup(&p).unwrap();
        assert_eq!(idx.count(id), 2);
    }
}

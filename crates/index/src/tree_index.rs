//! Pattern-table index over TreeMatch heuristics.
//!
//! The TreeMatch grammar generates exponentially many candidates, so the
//! compact derivation sketch is the dependency parse itself (paper §3.1);
//! we enumerate the bounded pattern family of [`crate::sketch::tree_sketch`]
//! and store each pattern with its inverted list, plus *generalization
//! edges* capturing the subset/superset structure the hierarchy needs:
//!
//! * `a/b` is a specialization of both `a` and `a//b`,
//! * `a//b` is a specialization of `a`,
//! * `p ∧ q` is a specialization of both `p` and `q`,
//! * `Term(tok)` is a specialization of `Term(POS-of-tok)` (evidence-based).

use crate::fx::FxHashMap;
use crate::sketch::{term_generalizations, tree_sketch, TreeSketchConfig};
use darwin_grammar::{TreePattern, TreeTerm};
use darwin_text::{Corpus, PosTag, Sentence, Sym};

/// Pattern id within a [`TreeIndex`].
pub type PatId = u32;

/// Inverted index over the enumerated TreeMatch pattern family.
pub struct TreeIndex {
    pats: Vec<TreePattern>,
    ids: FxHashMap<TreePattern, PatId>,
    postings: Vec<Vec<u32>>,
    parents: Vec<Vec<PatId>>,
    children: Vec<Vec<PatId>>,
    /// Terminal patterns — children of the root `*` heuristic.
    roots: Vec<PatId>,
    /// Observed token→tag evidence for terminal generalization edges.
    /// `None` marks tokens seen with more than one tag — for those the
    /// `Term(tok) → Term(POS)` edge would not be coverage-monotone.
    tok_tags: FxHashMap<Sym, Option<PosTag>>,
}

impl TreeIndex {
    /// Build over a corpus.
    pub fn build(corpus: &Corpus, cfg: &TreeSketchConfig) -> TreeIndex {
        let mut idx = TreeIndex {
            pats: Vec::new(),
            ids: FxHashMap::default(),
            postings: Vec::new(),
            parents: Vec::new(),
            children: Vec::new(),
            roots: Vec::new(),
            tok_tags: FxHashMap::default(),
        };
        for s in corpus.sentences() {
            idx.add_sentence(s, cfg);
        }
        idx.finalize();
        idx
    }

    /// Merge one sentence's sketch. Call [`TreeIndex::finalize`] after the
    /// last addition to (re)compute hierarchy edges.
    pub fn add_sentence(&mut self, s: &Sentence, cfg: &TreeSketchConfig) {
        for p in tree_sketch(s, cfg) {
            let id = self.intern(p);
            let postings = &mut self.postings[id as usize];
            if postings.last() != Some(&s.id) {
                postings.push(s.id);
            }
        }
        for (tok, tag) in term_generalizations(s) {
            self.tok_tags
                .entry(tok)
                .and_modify(|t| {
                    if *t != Some(tag) {
                        *t = None; // ambiguous across sentences
                    }
                })
                .or_insert(Some(tag));
        }
    }

    fn intern(&mut self, p: TreePattern) -> PatId {
        if let Some(&id) = self.ids.get(&p) {
            return id;
        }
        let id = self.pats.len() as PatId;
        self.ids.insert(p.clone(), id);
        self.pats.push(p);
        self.postings.push(Vec::new());
        id
    }

    /// Compute generalization edges between interned patterns.
    pub fn finalize(&mut self) {
        let n = self.pats.len();
        self.parents = vec![Vec::new(); n];
        self.children = vec![Vec::new(); n];
        self.roots.clear();
        for id in 0..n as PatId {
            let pars = self.structural_parents(&self.pats[id as usize]);
            if pars.is_empty() {
                self.roots.push(id);
            }
            for p in pars {
                self.parents[id as usize].push(p);
                self.children[p as usize].push(id);
            }
        }
    }

    /// Parents (strict generalizations, one derivation step away) of `p`
    /// that exist in the table.
    fn structural_parents(&self, p: &TreePattern) -> Vec<PatId> {
        let mut out = Vec::new();
        let push = |q: &TreePattern, out: &mut Vec<PatId>| {
            if let Some(&id) = self.ids.get(q) {
                out.push(id);
            }
        };
        match p {
            TreePattern::Term(TreeTerm::Tok(t)) => {
                // Only unambiguous content tags yield a sound edge.
                if let Some(Some(tag)) = self.tok_tags.get(t) {
                    if tag.is_content() {
                        push(&TreePattern::term_pos(*tag), &mut out);
                    }
                }
            }
            TreePattern::Term(TreeTerm::Pos(_)) => {}
            TreePattern::Child(a, b) => {
                push(a, &mut out);
                push(&TreePattern::Desc(a.clone(), b.clone()), &mut out);
            }
            TreePattern::Desc(a, _) => {
                push(a, &mut out);
            }
            TreePattern::And(a, b) => {
                push(a, &mut out);
                push(b, &mut out);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of indexed patterns.
    pub fn len(&self) -> usize {
        self.pats.len()
    }

    /// Whether no pattern is indexed.
    pub fn is_empty(&self) -> bool {
        self.pats.is_empty()
    }

    /// The pattern a [`PatId`] denotes.
    pub fn pattern(&self, id: PatId) -> &TreePattern {
        &self.pats[id as usize]
    }

    /// Find the id of an (enumerated) pattern.
    pub fn lookup(&self, p: &TreePattern) -> Option<PatId> {
        self.ids.get(p).copied()
    }

    /// Sorted ids of sentences matching the pattern.
    pub fn postings(&self, id: PatId) -> &[u32] {
        &self.postings[id as usize]
    }

    /// `postings(id).len()` without borrowing the list.
    pub fn count(&self, id: PatId) -> usize {
        self.postings[id as usize].len()
    }

    /// One-step structural generalizations of the pattern.
    pub fn parents(&self, id: PatId) -> &[PatId] {
        &self.parents[id as usize]
    }

    /// One-step structural specializations of the pattern.
    pub fn children(&self, id: PatId) -> &[PatId] {
        &self.children[id as usize]
    }

    /// Terminal patterns (the children of the `*` root heuristic).
    pub fn roots(&self) -> &[PatId] {
        &self.roots
    }

    /// Iterate over all pattern ids.
    pub fn pat_ids(&self) -> impl Iterator<Item = PatId> {
        0..self.pats.len() as PatId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::from_texts([
            "uber is the best way to our hotel",
            "his job is a teacher at the school",
            "the storm caused the outage in the city",
            "lightning caused the fire",
        ])
    }

    #[test]
    fn postings_are_correct_coverage() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        // Every indexed pattern's postings equal its brute-force coverage.
        for id in idx.pat_ids().take(500) {
            let p = idx.pattern(id).clone();
            let brute: Vec<u32> = c
                .sentences()
                .iter()
                .filter(|s| p.matches(s))
                .map(|s| s.id)
                .collect();
            assert_eq!(idx.postings(id), &brute[..], "{}", p.display(c.vocab()));
        }
    }

    #[test]
    fn child_pattern_has_desc_and_head_parents() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        let child = TreePattern::parse(c.vocab(), "caused/storm").unwrap();
        let id = idx.lookup(&child).expect("caused/storm indexed");
        let parents: Vec<&TreePattern> = idx.parents(id).iter().map(|&p| idx.pattern(p)).collect();
        let head = TreePattern::parse(c.vocab(), "caused").unwrap();
        let desc = TreePattern::parse(c.vocab(), "caused//storm").unwrap();
        assert!(parents.contains(&&head));
        assert!(parents.contains(&&desc));
    }

    #[test]
    fn parent_coverage_superset_of_child() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        for id in idx.pat_ids() {
            for &par in idx.parents(id) {
                let pp = idx.postings(par);
                for s in idx.postings(id) {
                    assert!(
                        pp.contains(s),
                        "{} should cover everything {} covers",
                        idx.pattern(par).display(c.vocab()),
                        idx.pattern(id).display(c.vocab())
                    );
                }
            }
        }
    }

    #[test]
    fn token_terminal_generalizes_to_pos() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        let tok = TreePattern::parse(c.vocab(), "storm").unwrap();
        let id = idx.lookup(&tok).expect("storm indexed");
        let noun = TreePattern::term_pos(PosTag::Noun);
        let has_noun_parent = idx.parents(id).iter().any(|&p| idx.pattern(p) == &noun);
        assert!(
            has_noun_parent,
            "Term(storm) should generalize to Term(NOUN)"
        );
    }

    #[test]
    fn roots_have_no_parents_and_children_inverse_holds() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        assert!(!idx.roots().is_empty());
        for &r in idx.roots() {
            assert!(idx.parents(r).is_empty());
        }
        for id in idx.pat_ids() {
            for &p in idx.parents(id) {
                assert!(idx.children(p).contains(&id));
            }
        }
    }

    #[test]
    fn shared_pattern_counts_both_sentences() {
        let c = corpus();
        let idx = TreeIndex::build(&c, &TreeSketchConfig::default());
        // "caused/NOUN-ish": both cause sentences have "caused" as root verb.
        let p = TreePattern::parse(c.vocab(), "caused").unwrap();
        let id = idx.lookup(&p).unwrap();
        assert_eq!(idx.count(id), 2);
    }
}

//! Derivation sketches and the heuristic index (paper §3.1).
//!
//! Darwin pre-indexes the corpus so that "the set of sentences that satisfy
//! a given heuristic" is a lookup, not a scan. For each sentence a
//! *derivation sketch* enumerates the heuristics the sentence satisfies
//! (bounded by the number of derivation steps); the sketches are merged into
//! a global index whose nodes carry a sentence count and an inverted list
//! (Figures 5 and 6 of the paper).
//!
//! * [`sketch`] — per-sentence enumeration for both grammars,
//! * [`phrase_index`] — the trie over TokensRegex n-grams with sequential,
//!   parallel (chunk + merge) and incremental construction,
//! * [`tree_index`] — the pattern table over TreeMatch patterns with
//!   structural generalization edges,
//! * [`api`] — [`IndexSet`]: the unified view the Darwin pipeline consumes
//!   ([`RuleRef`] = a node in either index; children/parents/coverage),
//! * [`inverted`] — the sentence → covering-rules transpose
//!   ([`IndexSet::rules_covering`]), the delta primitive of the
//!   incremental benefit engine,
//! * [`shard`] — [`ShardMap`]: contiguous sentence-id partitioning with
//!   shard-sliced postings, the ownership layer of the sharded execution
//!   engine, plus [`intersect_count`], the sorted-posting intersection
//!   primitive incremental maintenance filters dirty ids with,
//! * [`bitset`] — a dense id set used throughout the pipeline,
//! * [`fx`] — the FxHash hasher (integer-keyed maps are hot here).

#![warn(missing_docs)]

pub mod api;
pub mod bitset;
pub mod fx;
mod intern;
pub mod inverted;
pub mod phrase_index;
pub mod shard;
pub mod sketch;
pub mod tree_index;

pub use api::{AppendDelta, AppendError, IndexConfig, IndexSet, RuleRef};
pub use bitset::IdSet;
pub use inverted::InvertedIndex;
pub use phrase_index::PhraseIndex;
pub use shard::{intersect_count, shard_slice, ShardMap};
pub use sketch::TreeSketchConfig;
pub use tree_index::TreeIndex;
